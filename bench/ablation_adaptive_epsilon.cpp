// Ablation: fixed border region (epsilon = 0.05 T, the paper's default)
// vs the adaptive extension (epsilon sized per node from the local slope
// so the selected strip is ~one radio range wide everywhere). The
// paper's Section 5 observes that the right epsilon depends on density —
// rough borders help sparse networks, hurt dense ones; the adaptive rule
// makes that choice locally.
// Expectation: adaptive matches fixed at density 1+ and beats it at low
// density (where a fixed epsilon under-selects in steep areas), while
// under failures the wider steep-area strips add redundancy.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Ablation", "fixed epsilon = 0.05T vs slope-adaptive epsilon",
         "adaptive >= fixed at low density and under failures");

  const int kSeeds = 4;
  Table table({"density", "failures_pct", "variant", "reports",
               "sink_reports", "accuracy_pct"});
  struct Config {
    double density;
    double failures;
  };
  const Config configs[] = {
      {0.16, 0.0}, {0.36, 0.0}, {1.0, 0.0}, {1.0, 0.2}, {1.0, 0.3}};
  for (const auto& cfg : configs) {
    for (const bool adaptive : {false, true}) {
      RunningStats generated, sunk, acc;
      for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
        const std::uint64_t seed = trial_seed(trial);
        ScenarioConfig sc;
        sc.num_nodes = static_cast<int>(cfg.density * 2500.0 + 0.5);
        sc.failure_fraction = cfg.failures;
        sc.seed = seed;
        const Scenario s = make_scenario(sc);
        IsoMapOptions options;
        options.query = default_query(s.field, 4);
        options.adaptive_epsilon = adaptive;
        const IsoMapRun run = run_isomap(s, options);
        generated.add(run.result.generated_reports);
        sunk.add(run.result.delivered_reports);
        acc.add(mapping_accuracy(run.result.map, s.field,
                                 options.query.isolevels(), 70) *
                100.0);
      }
      table.row()
          .cell(cfg.density, 2)
          .cell(cfg.failures * 100.0, 0)
          .cell(adaptive ? "adaptive" : "fixed")
          .cell(generated.mean(), 1)
          .cell(sunk.mean(), 1)
          .cell(acc.mean(), 1);
    }
  }
  emit_table("ablation_adaptive_epsilon", title, table);
  return 0;
}
