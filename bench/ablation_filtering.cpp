// Ablation: the angular-separation criterion in the in-network filter
// (Section 3.5). The paper argues that filtering on gradient angle keeps
// report density uniform along isolines, so fidelity degrades evenly.
// Compare: (a) paper filter (angle AND distance), (b) distance-only
// filtering tuned to a similar report count, (c) no filtering.
// Expectation: at comparable report counts, the angle-aware filter
// preserves accuracy better than distance-only filtering.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

struct Outcome {
  double reports = 0.0;
  double accuracy = 0.0;
  double traffic_kb = 0.0;
};

Outcome run_with(const Scenario& s, bool filtering, double sa, double sd) {
  IsoMapOptions options;
  options.query = default_query(s.field, 4);
  options.query.enable_filtering = filtering;
  options.query.angular_separation_deg = sa;
  options.query.distance_separation = sd;
  const IsoMapRun run = run_isomap(s, options);
  return {static_cast<double>(run.result.delivered_reports),
          mapping_accuracy(run.result.map, s.field,
                           options.query.isolevels(), 80) *
              100.0,
          run.result.report_traffic_bytes / 1024.0};
}

}  // namespace

int main() {
  const std::string title = banner("Ablation", "angular-aware vs distance-only in-network filtering",
         "angle-aware filtering preserves accuracy at matched report "
         "counts");

  Table table({"filter", "reports_at_sink", "traffic_KB", "accuracy_pct"});
  const int kSeeds = 4;
  RunningStats none_r, none_a, none_kb;
  RunningStats paper_r, paper_a, paper_kb;
  RunningStats dist_r, dist_a, dist_kb;
  for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    const Scenario s = harbor_scenario(2500, seed);
    const Outcome none = run_with(s, false, 0.0, 0.0);
    const Outcome paper = run_with(s, true, 30.0, 4.0);
    // Distance-only: 180 deg angular tolerance accepts any angle, so only
    // sd filters; sd tuned to land near the paper filter's report count.
    const Outcome dist = run_with(s, true, 180.0, 3.0);
    none_r.add(none.reports);
    none_a.add(none.accuracy);
    none_kb.add(none.traffic_kb);
    paper_r.add(paper.reports);
    paper_a.add(paper.accuracy);
    paper_kb.add(paper.traffic_kb);
    dist_r.add(dist.reports);
    dist_a.add(dist.accuracy);
    dist_kb.add(dist.traffic_kb);
  }
  table.row()
      .cell("none")
      .cell(none_r.mean(), 1)
      .cell(none_kb.mean(), 2)
      .cell(none_a.mean(), 2);
  table.row()
      .cell("angle+distance (sa=30,sd=4)")
      .cell(paper_r.mean(), 1)
      .cell(paper_kb.mean(), 2)
      .cell(paper_a.mean(), 2);
  table.row()
      .cell("distance-only (sd=3)")
      .cell(dist_r.mean(), 1)
      .cell(dist_kb.mean(), 2)
      .cell(dist_a.mean(), 2);
  emit_table("ablation_filtering", title, table);
  return 0;
}
