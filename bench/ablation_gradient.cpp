// Ablation: the value of the reported gradient direction d — the 3rd
// element of the Iso-Map report tuple and the paper's answer to the
// Fig. 4 ambiguity ("having only p and v is often not sufficient for the
// sink to construct the contour map"). Compare Iso-Map with the
// isoline-aggregation baseline (identical node selection, but reports
// carry no gradient and the sink must chain isopositions by proximity).
// Expectation: at comparable traffic, the gradient-bearing reports yield
// substantially higher fidelity, and the gap widens at low density where
// the chaining ambiguity bites hardest.

#include "baselines/isoline_agg.hpp"
#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Ablation", "reporting the gradient direction d vs positions only",
         "gradient reports win at similar traffic; gap widens when sparse");

  const int kSeeds = 3;
  Table table({"density", "variant", "sink_reports", "traffic_KB",
               "accuracy_pct", "mean_iou"});
  for (const double density : {0.25, 1.0, 4.0}) {
    const int n = static_cast<int>(density * 2500.0 + 0.5);
    RunningStats iso_rep, iso_kb, iso_acc, iso_iou;
    RunningStats agg_rep, agg_kb, agg_acc, agg_iou;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      ScenarioConfig config;
      config.num_nodes = n;
      config.seed = seed;
      const Scenario s = make_scenario(config);
      const ContourQuery query = default_query(s.field, 4);
      const auto levels = query.isolevels();

      IsoMapOptions iso_options;
      iso_options.query = query;
      const IsoMapRun iso = run_isomap(s, iso_options);
      iso_rep.add(iso.result.delivered_reports);
      iso_kb.add(iso.result.report_traffic_bytes / 1024.0);
      iso_acc.add(
          mapping_accuracy(iso.result.map, s.field, levels, 70) * 100.0);
      iso_iou.add(mean_region_iou(iso.result.map, s.field, levels, 70));

      IsolineAggOptions agg_options;
      agg_options.query = query;
      agg_options.distance_separation = query.distance_separation;
      IsolineAggProtocol agg(agg_options);
      Ledger ledger(s.deployment.size());
      const IsolineAggResult agg_result =
          agg.run(s.readings, s.deployment, s.graph, s.tree, ledger);
      const IsolineAggMap agg_map =
          agg.build_map(agg_result, s.field.bounds());
      agg_rep.add(agg_result.delivered_reports);
      agg_kb.add(agg_result.traffic_bytes / 1024.0);
      const LevelMap truth =
          LevelMap::ground_truth(s.field, levels, 70, 70);
      const LevelMap est = LevelMap::rasterize(
          s.field.bounds(), 70, 70,
          [&](Vec2 p) { return agg_map.level_index(p); });
      agg_acc.add(est.accuracy_against(truth) * 100.0);
      // IoU for the aggregation map, computed with the same formula.
      long long inter[8] = {0}, uni[8] = {0};
      const int num_levels = static_cast<int>(levels.size());
      for (int iy = 0; iy < 70; ++iy) {
        for (int ix = 0; ix < 70; ++ix) {
          for (int k = 0; k < num_levels && k < 8; ++k) {
            const bool in_t = truth.at(ix, iy) >= k + 1;
            const bool in_e = est.at(ix, iy) >= k + 1;
            if (in_t && in_e) ++inter[k];
            if (in_t || in_e) ++uni[k];
          }
        }
      }
      double iou_total = 0.0;
      for (int k = 0; k < num_levels && k < 8; ++k)
        iou_total += uni[k] ? static_cast<double>(inter[k]) / uni[k] : 1.0;
      agg_iou.add(iou_total / num_levels);
    }
    table.row()
        .cell(density, 2)
        .cell("Iso-Map (with d)")
        .cell(iso_rep.mean(), 1)
        .cell(iso_kb.mean(), 2)
        .cell(iso_acc.mean(), 1)
        .cell(iso_iou.mean(), 3);
    table.row()
        .cell(density, 2)
        .cell("isoline-agg (no d)")
        .cell(agg_rep.mean(), 1)
        .cell(agg_kb.mean(), 2)
        .cell(agg_acc.mean(), 1)
        .cell(agg_iou.mean(), 3);
  }
  emit_table("ablation_gradient", title, table);
  return 0;
}
