// Ablation: the neighbourhood scope of the local regression (Section 3.3
// allows "k-hop neighbours for different sensor deployment densities or
// to achieve different levels of estimation precision"). Compare k = 1
// vs k = 2 at several densities: gradient quality, measurement traffic
// and map fidelity.
// Expectation: k = 2 pays a multiple of the local-measurement traffic
// for a modest gradient improvement that only matters at low density.

#include "bench/bench_common.hpp"
#include "isomap/node_selection.hpp"
#include "isomap/regression.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Ablation", "regression neighbourhood scope: 1-hop vs 2-hop",
         "2-hop helps only at low density, at a measurement-traffic cost");

  const int kSeeds = 3;
  Table table({"density", "hops", "gradient_err_deg", "measurement_KB",
               "accuracy_pct"});
  for (const double density : {0.25, 1.0, 4.0}) {
    for (const int hops : {1, 2}) {
      RunningStats err, kb, acc;
      for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
        const std::uint64_t seed = trial_seed(trial);
        ScenarioConfig config;
        config.num_nodes = static_cast<int>(density * 2500.0 + 0.5);
        config.seed = seed;
        const Scenario s = make_scenario(config);
        IsoMapOptions options;
        options.query = default_query(s.field, 4);
        options.query.regression_hops = hops;
        const IsoMapRun run = run_isomap(s, options);
        kb.add(run.result.measurement_traffic_bytes / 1024.0);
        acc.add(mapping_accuracy(run.result.map, s.field,
                                 options.query.isolevels(), 70) *
                100.0);
        for (const auto& report : run.result.sink_reports) {
          const Vec2 true_pos = s.deployment.node(report.source).pos;
          if (s.field.gradient(true_pos).norm() < 0.02) continue;
          err.add(gradient_error_deg(s.field, true_pos, report.gradient));
        }
      }
      table.row()
          .cell(density, 2)
          .cell(hops)
          .cell(err.mean(), 2)
          .cell(kb.mean(), 2)
          .cell(acc.mean(), 1);
    }
  }
  emit_table("ablation_regression_scope", title, table);
  return 0;
}
