// Ablation: the contribution of the sink-side regulation (Rules 1 & 2 of
// Section 3.4) to map fidelity, against the raw Voronoi/type-1
// construction (Fig. 8d) and the non-paper inverse-distance blended
// classifier.
// Expectation: rules regulation improves (or matches) the raw construction
// on both the accuracy and Hausdorff metrics, approaching the blended
// upper bound.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Ablation", "sink-side regulation: none vs rules vs blended",
         "rules >= none on fidelity; pinnacle/concavity smoothing helps");

  const RegulationMode modes[] = {RegulationMode::kNone,
                                  RegulationMode::kRules,
                                  RegulationMode::kBlended};
  const char* names[] = {"none (raw Fig. 8d)", "rules 1&2 (paper)",
                         "blended (extension)"};

  Table table({"mode", "accuracy_pct", "mean_iou", "hausdorff_norm",
               "boundary_chains"});
  const int kSeeds = 4;
  for (int m = 0; m < 3; ++m) {
    RunningStats acc, iou, haus, chains;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario s = harbor_scenario(2500, seed);
      IsoMapOptions options;
      options.query = default_query(s.field, 4);
      options.regulation = modes[m];
      const IsoMapRun run = run_isomap(s, options);
      acc.add(mapping_accuracy(run.result.map, s.field,
                               options.query.isolevels(), 80) *
              100.0);
      iou.add(mean_region_iou(run.result.map, s.field,
                              options.query.isolevels(), 80));
      const double h = isoline_hausdorff(run.result.map, s.field,
                                         options.query.isolevels(), 150, 0.5);
      if (std::isfinite(h)) haus.add(h / 50.0);
      int chain_count = 0;
      for (int k = 0; k < run.result.map.level_count(); ++k)
        chain_count += static_cast<int>(run.result.map.isolines(k).size());
      chains.add(chain_count);
    }
    table.row()
        .cell(names[m])
        .cell(acc.mean(), 2)
        .cell(iou.mean(), 3)
        .cell(haus.count() ? haus.mean() : -1.0, 4)
        .cell(chains.mean(), 1);
  }
  emit_table("ablation_regulation", title, table);
  std::cout << "\n(blended mode classifies without explicit boundary "
               "geometry; its Hausdorff column reflects the same "
               "boundary-extraction machinery run on its pieces)\n";
  return 0;
}
