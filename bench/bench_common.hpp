#pragma once

// Shared helpers for the figure/table reproduction harnesses. Each bench
// binary regenerates one table or figure of the paper (see DESIGN.md's
// experiment index) and prints the same rows/series the paper reports.

#include <iostream>
#include <string>

#include "eval/metrics.hpp"
#include "eval/render.hpp"
#include "sim/runners.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace isomap::bench {

/// Print the standard figure banner.
inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_expectation) {
  std::cout << "==================================================\n"
            << id << ": " << title << "\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "==================================================\n";
}

/// A field side that yields roughly the requested routing-tree diameter
/// (hop count from the centre sink to the farthest node) at unit density
/// with radio range 1.5. Empirically one BFS hop advances ~1.0 units, and
/// the farthest corner is side/sqrt(2) from the centre.
inline double side_for_diameter(int diameter_hops) {
  return diameter_hops * 1.41;
}

/// Scenario at unit density over a side x side field of scale-invariant
/// sloped terrain — the Theorem 4.1 regime used by the scaling figures.
inline Scenario sloped_scenario(double side, std::uint64_t seed,
                                bool grid = false, double failures = 0.0) {
  ScenarioConfig config;
  config.field_side = side;
  config.num_nodes = static_cast<int>(side * side + 0.5);
  config.field = FieldKind::kSloped;
  config.grid_deployment = grid;
  config.failure_fraction = failures;
  config.seed = seed;
  return make_scenario(config);
}

/// Scenario over the paper's 50x50 harbor section with `n` nodes (the
/// fidelity experiments' setup: densities 4 / 1 / 0.16 correspond to
/// n = 10000 / 2500 / 400).
inline Scenario harbor_scenario(int n, std::uint64_t seed, bool grid = false,
                                double failures = 0.0) {
  ScenarioConfig config;
  config.num_nodes = n;
  config.field_side = 50.0;
  config.field = FieldKind::kHarbor;
  config.grid_deployment = grid;
  config.failure_fraction = failures;
  config.seed = seed;
  return make_scenario(config);
}

/// Mapping accuracy of a TinyDB reconstruction against the true field.
inline double tinydb_accuracy(const TinyDBRun& run, const ScalarField& field,
                              const std::vector<double>& levels,
                              int resolution = 80) {
  const LevelMap truth =
      LevelMap::ground_truth(field, levels, resolution, resolution);
  const LevelMap est = LevelMap::rasterize(
      field.bounds(), resolution, resolution,
      [&](Vec2 p) { return run.result.level_index(p, levels); });
  return est.accuracy_against(truth);
}

/// Hausdorff distance (averaged over levels) of a TinyDB reconstruction.
inline double tinydb_hausdorff(const TinyDBRun& run, const ScalarField& field,
                               const std::vector<double>& levels,
                               int resolution = 150) {
  double total = 0.0;
  int counted = 0;
  for (double level : levels) {
    const auto est = run.result.isolines(level, resolution);
    if (est.empty()) continue;
    const auto truth = true_isolines(field, level, resolution);
    if (truth.empty()) continue;
    const double h = hausdorff_distance(est, truth, 0.5);
    if (std::isfinite(h)) {
      total += h;
      ++counted;
    }
  }
  return counted ? total / counted
                 : std::numeric_limits<double>::infinity();
}

}  // namespace isomap::bench
