#pragma once

// Shared helpers for the figure/table reproduction harnesses. Each bench
// binary regenerates one table or figure of the paper (see DESIGN.md's
// experiment index) and prints the same rows/series the paper reports.

#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "eval/metrics.hpp"
#include "eval/render.hpp"
#include "exec/exec.hpp"
#include "sim/runners.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace isomap::bench {

/// Base seed every benchmark derives its trial seeds from, so the whole
/// harness reruns one deterministic experiment set: trial t uses
/// trial_seed(t) (1-based, matching the paper's "seeds 1..k" sweeps).
inline constexpr std::uint64_t kBenchSeed = 1;
inline std::uint64_t trial_seed(std::uint64_t trial) {
  return kBenchSeed + trial - 1;
}

/// Output directory for machine-readable benchmark results (created on
/// first use). Defaults to `results/` under the current directory;
/// override with the ISOMAP_RESULTS_DIR environment variable.
inline std::filesystem::path results_dir() {
  const char* env = std::getenv("ISOMAP_RESULTS_DIR");
  std::filesystem::path dir = (env && *env) ? env : "results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// A table as JSON: {"headers": [...], "rows": [[...], ...]}. Cells that
/// parse fully as numbers are emitted as numbers, others as strings.
inline JsonValue table_json(const Table& table) {
  JsonValue v = JsonValue::object();
  JsonValue& hs = v["headers"];
  hs = JsonValue::array();
  for (const auto& h : table.headers()) hs.push_back(JsonValue(h));
  JsonValue& rows = v["rows"];
  rows = JsonValue::array();
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    JsonValue row = JsonValue::array();
    for (std::size_t c = 0; c < table.num_cols(); ++c) {
      const std::string& cell = table.at(r, c);
      double num = 0.0;
      const auto res =
          std::from_chars(cell.data(), cell.data() + cell.size(), num);
      if (res.ec == std::errc() && res.ptr == cell.data() + cell.size())
        row.push_back(JsonValue(num));
      else
        row.push_back(JsonValue(cell));
    }
    rows.push_back(std::move(row));
  }
  return v;
}

/// Write `payload` to results/BENCH_<id>.json (pretty-printed). Returns
/// the path written, or empty on I/O failure (reported to stderr, never
/// fatal — benches still print their tables).
inline std::string write_bench_json(const std::string& id,
                                    const JsonValue& payload) {
  const std::filesystem::path path = results_dir() / ("BENCH_" + id + ".json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[bench] cannot write " << path << "\n";
    return {};
  }
  out << payload.dump(2) << "\n";
  return path.string();
}

/// Print a table to stdout AND persist it as results/BENCH_<id>.json —
/// the machine-readable twin of every paper-shaped table. The title is
/// passed explicitly (usually the string banner() returned) so emission
/// order no longer matters and there is no hidden mutable state.
inline void emit_table(const std::string& id, const std::string& title,
                       const Table& table) {
  table.print(std::cout);
  JsonValue payload = JsonValue::object();
  payload["bench"] = JsonValue(id);
  payload["title"] = JsonValue(title);
  payload["seed_base"] = JsonValue(kBenchSeed);
  payload["table"] = table_json(table);
  const std::string path = write_bench_json(id, payload);
  if (!path.empty()) std::cout << "[bench] wrote " << path << "\n";
}

/// Persist a RunSummary alongside a bench's tables (BENCH_<id>.json with
/// a "run_summary" payload) — per-phase timings for one representative run.
inline void emit_run_summary(const std::string& id, const std::string& title,
                             const obs::RunSummary& summary) {
  JsonValue payload = JsonValue::object();
  payload["bench"] = JsonValue(id);
  payload["title"] = JsonValue(title);
  payload["seed_base"] = JsonValue(kBenchSeed);
  payload["run_summary"] = summary.to_json();
  const std::string path = write_bench_json(id, payload);
  if (!path.empty()) std::cout << "[bench] wrote " << path << "\n";
}

/// Print the standard figure banner and return the title, for forwarding
/// to emit_table() / emit_run_summary().
inline std::string banner(const std::string& id, const std::string& title,
                          const std::string& paper_expectation) {
  std::cout << "==================================================\n"
            << id << ": " << title << "\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "==================================================\n";
  return title;
}

/// Run `trials` independent trials for each of `points` sweep points as
/// ONE flat parallel region (point-major), so sweeps whose per-point
/// trial count is smaller than the pool still fill it. Each trial gets
/// trial_seed(trial) exactly as the serial loops did, and runs under
/// exec::parallel_trials' determinism contract (suppressed obs context,
/// results in order). Returns results grouped per point, in trial order —
/// accumulate them serially for bitwise-stable statistics.
template <typename RunFn>
auto sweep_trials(std::size_t points, int trials, RunFn&& run) {
  using T = std::decay_t<
      std::invoke_result_t<RunFn&, std::size_t, int, std::uint64_t>>;
  const auto per = static_cast<std::size_t>(std::max(0, trials));
  auto flat = exec::parallel_trials(
      static_cast<int>(points * per),
      [&](std::uint64_t t) { return trial_seed((t - 1) % per + 1); },
      [&](int t, std::uint64_t seed) {
        const auto flat_idx = static_cast<std::size_t>(t - 1);
        return run(flat_idx / per, static_cast<int>(flat_idx % per) + 1, seed);
      });
  std::vector<std::vector<T>> out(points);
  for (std::size_t p = 0; p < points; ++p) {
    out[p].reserve(per);
    for (std::size_t t = 0; t < per; ++t)
      out[p].push_back(std::move(flat[p * per + t]));
  }
  return out;
}

/// A field side that yields roughly the requested routing-tree diameter
/// (hop count from the centre sink to the farthest node) at unit density
/// with radio range 1.5. Empirically one BFS hop advances ~1.0 units, and
/// the farthest corner is side/sqrt(2) from the centre.
inline double side_for_diameter(int diameter_hops) {
  return diameter_hops * 1.41;
}

/// Scenario at unit density over a side x side field of scale-invariant
/// sloped terrain — the Theorem 4.1 regime used by the scaling figures.
inline Scenario sloped_scenario(double side, std::uint64_t seed,
                                bool grid = false, double failures = 0.0) {
  ScenarioConfig config;
  config.field_side = side;
  config.num_nodes = static_cast<int>(side * side + 0.5);
  config.field = FieldKind::kSloped;
  config.grid_deployment = grid;
  config.failure_fraction = failures;
  config.seed = seed;
  return make_scenario(config);
}

/// Scenario over the paper's 50x50 harbor section with `n` nodes (the
/// fidelity experiments' setup: densities 4 / 1 / 0.16 correspond to
/// n = 10000 / 2500 / 400).
inline Scenario harbor_scenario(int n, std::uint64_t seed, bool grid = false,
                                double failures = 0.0) {
  ScenarioConfig config;
  config.num_nodes = n;
  config.field_side = 50.0;
  config.field = FieldKind::kHarbor;
  config.grid_deployment = grid;
  config.failure_fraction = failures;
  config.seed = seed;
  return make_scenario(config);
}

/// Mapping accuracy of a TinyDB reconstruction against the true field.
inline double tinydb_accuracy(const TinyDBRun& run, const ScalarField& field,
                              const std::vector<double>& levels,
                              int resolution = 80) {
  const LevelMap truth =
      LevelMap::ground_truth(field, levels, resolution, resolution);
  const LevelMap est = LevelMap::rasterize(
      field.bounds(), resolution, resolution,
      [&](Vec2 p) { return run.result.level_index(p, levels); });
  return est.accuracy_against(truth);
}

/// Hausdorff distance (averaged over levels) of a TinyDB reconstruction.
inline double tinydb_hausdorff(const TinyDBRun& run, const ScalarField& field,
                               const std::vector<double>& levels,
                               int resolution = 150) {
  double total = 0.0;
  int counted = 0;
  for (double level : levels) {
    const auto est = run.result.isolines(level, resolution);
    if (est.empty()) continue;
    const auto truth = true_isolines(field, level, resolution);
    if (truth.empty()) continue;
    const double h = hausdorff_distance(est, truth, 0.5);
    if (std::isfinite(h)) {
      total += h;
      ++counted;
    }
  }
  return counted ? total / counted
                 : std::numeric_limits<double>::infinity();
}

}  // namespace isomap::bench
