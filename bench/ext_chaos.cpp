// Extension: chaos engineering for the convergecast — mid-run node
// crashes, correlated region blackouts and Gilbert–Elliott bursty links,
// with the self-healing routing repair on and off.
// Expectation: with self-healing, delivery degrades gracefully (>= ~90%
// of fault-free deliveries at 10% mid-run crashes) at a small repair
// energy premium; without it every crash silently swallows a subtree.
// Every run is checked against the loss-accounting identity
//   generated == delivered + filtered + lost_channel + lost_crash
// and the bench exits non-zero on any violation.

#include <atomic>

#include "bench/bench_common.hpp"
#include "eval/heatmap.hpp"
#include "obs/node_telemetry.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

// Incremented from concurrent trials; atomic so the count stays exact.
std::atomic<int> identity_violations{0};

/// Every generated report must be delivered, filtered or accounted as
/// lost — a silent loss is a bug, not a data point.
void check_identity(const IsoMapRun& run) {
  const auto& r = run.result;
  const int accounted = r.delivered_reports + r.filtered_reports +
                        r.lost_channel_reports + r.lost_crash_reports;
  if (accounted != r.generated_reports) {
    std::cerr << "[ext_chaos] ACCOUNTING VIOLATION: generated="
              << r.generated_reports << " but accounted=" << accounted
              << " (delivered=" << r.delivered_reports
              << " filtered=" << r.filtered_reports
              << " lost_channel=" << r.lost_channel_reports
              << " lost_crash=" << r.lost_crash_reports << ")\n";
    ++identity_violations;
  }
}

IsoMapRun chaos_run(const Scenario& s, double crash_fraction,
                    std::uint64_t seed, bool self_healing = true,
                    const std::optional<GilbertElliottParams>& burst = {},
                    int retries = 3) {
  IsoMapOptions options = isomap_options(s, 4);
  options.fault.crash_fraction = crash_fraction;
  options.fault.seed = seed * 1013;
  options.fault.self_healing = self_healing;
  options.link_burst = burst;
  options.link_retries = retries;
  options.link_seed = seed * 977;
  const IsoMapRun run = run_isomap(s, options);
  check_identity(run);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 2500;
  const int kSeeds = argc > 2 ? std::atoi(argv[2]) : 3;
  const Mica2Model energy;

  const std::string titlea = banner("Chaos (a)",
         "mid-run crash sweep, self-healing routing (nodes = " +
             std::to_string(nodes) + ")",
         "delivery ratio >= ~90% at 10% crashes; repair cost a few KB");
  Table a({"crash_pct", "crashed", "delivered_ratio_pct", "lost_crash",
           "lost_channel", "repairs", "repair_KB", "accuracy_pct",
           "mean_energy_uJ"});
  const std::vector<double> crash_fracs = {0.0, 0.02, 0.05, 0.10, 0.20};
  struct CrashTrial {
    double crashed, ratio, lcrash, lchan, repairs, rkb, acc, uj;
  };
  const auto crash_runs = sweep_trials(
      crash_fracs.size(), kSeeds, [&](std::size_t pi, int, std::uint64_t seed) {
        const double crash = crash_fracs[pi];
        const Scenario s = harbor_scenario(nodes, seed);
        const IsoMapRun clean = chaos_run(s, 0.0, seed);
        const IsoMapRun run = crash > 0.0 ? chaos_run(s, crash, seed) : clean;
        return CrashTrial{
            static_cast<double>(run.result.crashed_nodes),
            clean.result.delivered_reports
                ? 100.0 * run.result.delivered_reports /
                      clean.result.delivered_reports
                : 0.0,
            static_cast<double>(run.result.lost_crash_reports),
            static_cast<double>(run.result.lost_channel_reports),
            static_cast<double>(run.result.route_repairs),
            run.result.repair_traffic_bytes / 1024.0,
            mapping_accuracy(run.result.map, s.field,
                             default_query(s.field, 4).isolevels(), 70) *
                100.0,
            energy.mean_node_energy_j(run.ledger) * 1e6};
      });
  for (std::size_t pi = 0; pi < crash_fracs.size(); ++pi) {
    RunningStats crashed, ratio, lcrash, lchan, repairs, rkb, acc, uj;
    for (const CrashTrial& t : crash_runs[pi]) {
      crashed.add(t.crashed);
      ratio.add(t.ratio);
      lcrash.add(t.lcrash);
      lchan.add(t.lchan);
      repairs.add(t.repairs);
      rkb.add(t.rkb);
      acc.add(t.acc);
      uj.add(t.uj);
    }
    a.row()
        .cell(crash_fracs[pi] * 100.0, 0)
        .cell(crashed.mean(), 1)
        .cell(ratio.mean(), 1)
        .cell(lcrash.mean(), 1)
        .cell(lchan.mean(), 1)
        .cell(repairs.mean(), 1)
        .cell(rkb.mean(), 2)
        .cell(acc.mean(), 1)
        .cell(uj.mean(), 2);
  }
  emit_table("ext_chaos_crash", titlea, a);

  const std::string titleb = banner("Chaos (b)", "bursty links (Gilbert-Elliott) x mid-run crashes",
         "burst losses beyond ARQ's reach shift losses from crash to "
         "channel; accounting identity holds everywhere");
  const GilbertElliottParams kMildBurst{0.02, 0.25, 0.01, 0.8};
  const GilbertElliottParams kHeavyBurst{0.05, 0.2, 0.02, 0.9};
  Table b({"channel", "crash_pct", "delivered", "lost_crash", "lost_channel",
           "retries_per_send", "accuracy_pct"});
  const std::pair<const char*, std::optional<GilbertElliottParams>>
      channels[] = {{"clean", {}}, {"mild_burst", kMildBurst},
                    {"heavy_burst", kHeavyBurst}};
  // Flatten (channel x crash) into one sweep: point pi = channel pi/2,
  // crash fraction 0% or 10% by parity.
  struct BurstTrial {
    double delivered, lcrash, lchan, rps, acc;
  };
  const auto burst_runs = sweep_trials(
      std::size(channels) * 2, kSeeds,
      [&](std::size_t pi, int, std::uint64_t seed) {
        const auto& burst = channels[pi / 2].second;
        const double crash = (pi % 2) ? 0.10 : 0.0;
        const Scenario s = harbor_scenario(nodes, seed);
        const IsoMapRun run = chaos_run(s, crash, seed, true, burst);
        const auto& counters = run.summary.counters;
        const auto it = counters.find("channel.retries");
        const double sends =
            std::max(1.0, static_cast<double>(run.result.generated_reports));
        return BurstTrial{
            static_cast<double>(run.result.delivered_reports),
            static_cast<double>(run.result.lost_crash_reports),
            static_cast<double>(run.result.lost_channel_reports),
            (it != counters.end() ? it->second : 0.0) / sends,
            mapping_accuracy(run.result.map, s.field,
                             default_query(s.field, 4).isolevels(), 70) *
                100.0};
      });
  for (std::size_t pi = 0; pi < std::size(channels) * 2; ++pi) {
    RunningStats delivered, lcrash, lchan, rps, acc;
    for (const BurstTrial& t : burst_runs[pi]) {
      delivered.add(t.delivered);
      lcrash.add(t.lcrash);
      lchan.add(t.lchan);
      rps.add(t.rps);
      acc.add(t.acc);
    }
    b.row()
        .cell(channels[pi / 2].first)
        .cell((pi % 2) ? 10.0 : 0.0, 0)
        .cell(delivered.mean(), 1)
        .cell(lcrash.mean(), 1)
        .cell(lchan.mean(), 1)
        .cell(rps.mean(), 2)
        .cell(acc.mean(), 1);
  }
  emit_table("ext_chaos_burst", titleb, b);

  const std::string titlec = banner("Chaos (c)", "region blackout + self-healing ablation",
         "self-healing recovers reports routed around the dead region; a "
         "static tree loses every subtree behind it");
  Table c({"config", "delivered", "lost_crash", "repairs", "repair_KB",
           "accuracy_pct"});
  const struct {
    const char* label;
    bool blackout;
    double crash;
    bool heal;
  } configs[] = {
      {"fault_free", false, 0.0, true},
      {"blackout_healed", true, 0.0, true},
      {"blackout_static", true, 0.0, false},
      {"blackout+crash_healed", true, 0.05, true},
      {"blackout+crash_static", true, 0.05, false},
  };
  struct BlackoutTrial {
    double delivered, lcrash, repairs, rkb, acc;
  };
  const auto blackout_runs = sweep_trials(
      std::size(configs), kSeeds,
      [&](std::size_t pi, int, std::uint64_t seed) {
        const auto& cfg = configs[pi];
        const Scenario s = harbor_scenario(nodes, seed);
        IsoMapOptions options = isomap_options(s, 4);
        options.fault.crash_fraction = cfg.crash;
        options.fault.seed = seed * 1013;
        options.fault.self_healing = cfg.heal;
        if (cfg.blackout) {
          options.fault.blackout = true;
          // Off-centre disc (~1/8 of the field side as radius) so the sink
          // survives but a populated region dies mid-run.
          options.fault.blackout_center = {s.config.field_side * 0.7,
                                           s.config.field_side * 0.7};
          options.fault.blackout_radius = s.config.field_side * 0.125;
          options.fault.blackout_time = 0.4;
        }
        const IsoMapRun run = run_isomap(s, options);
        check_identity(run);
        return BlackoutTrial{
            static_cast<double>(run.result.delivered_reports),
            static_cast<double>(run.result.lost_crash_reports),
            static_cast<double>(run.result.route_repairs),
            run.result.repair_traffic_bytes / 1024.0,
            mapping_accuracy(run.result.map, s.field,
                             default_query(s.field, 4).isolevels(), 70) *
                100.0};
      });
  for (std::size_t pi = 0; pi < std::size(configs); ++pi) {
    RunningStats delivered, lcrash, repairs, rkb, acc;
    for (const BlackoutTrial& t : blackout_runs[pi]) {
      delivered.add(t.delivered);
      lcrash.add(t.lcrash);
      repairs.add(t.repairs);
      rkb.add(t.rkb);
      acc.add(t.acc);
    }
    c.row()
        .cell(configs[pi].label)
        .cell(delivered.mean(), 1)
        .cell(lcrash.mean(), 1)
        .cell(repairs.mean(), 1)
        .cell(rkb.mean(), 2)
        .cell(acc.mean(), 1);
  }
  emit_table("ext_chaos_blackout", titlec, c);

  const std::string titled = banner("Chaos (d)", "link impairment (jitter/dup/reorder/corrupt) x bursty x crashes",
         "ARQ absorbs corruption as retransmissions, the receiver "
         "suppresses duplicates, and the accounting identity still holds "
         "with every impairment active at once");
  Table d({"config", "delivered", "lost_channel", "dup_rx", "corrupt_rx",
           "arq_timeouts", "e2e_last(s)", "accuracy_pct"});
  const struct {
    const char* label;
    bool burst;
    double crash;
  } impair_configs[] = {
      {"impair_only", false, 0.0},
      {"impair+burst", true, 0.0},
      {"impair+burst+crash10", true, 0.10},
  };
  struct ImpairTrial {
    double delivered, lchan, dup, corrupt, timeouts, e2e, acc;
  };
  const auto impair_runs = sweep_trials(
      std::size(impair_configs), kSeeds,
      [&](std::size_t pi, int, std::uint64_t seed) {
        const auto& cfg = impair_configs[pi];
        const Scenario s = harbor_scenario(nodes, seed);
        IsoMapOptions options = isomap_options(s, 4);
        options.fault.crash_fraction = cfg.crash;
        options.fault.seed = seed * 1013;
        options.fault.self_healing = true;
        if (cfg.burst) options.link_burst = kHeavyBurst;
        options.link_retries = 3;
        options.link_seed = seed * 977;
        ImpairmentConfig impair;
        impair.latency_s = 0.002;
        impair.jitter_s = 0.004;
        impair.dup_prob = 0.2;
        impair.reorder_prob = 0.15;
        impair.corrupt_prob = 0.08;
        options.link_impair = impair;
        options.link_arq.max_frame_attempts = 5;
        const IsoMapRun run = run_isomap(s, options);
        check_identity(run);
        const auto& counters = run.summary.counters;
        const auto counter = [&](const char* key) {
          const auto it = counters.find(key);
          return it != counters.end() ? it->second : 0.0;
        };
        return ImpairTrial{
            static_cast<double>(run.result.delivered_reports),
            static_cast<double>(run.result.lost_channel_reports),
            counter("channel.dup_rx"),
            counter("channel.corrupt_rx"),
            counter("channel.arq_timeouts"),
            run.result.e2e_last_latency_s,
            mapping_accuracy(run.result.map, s.field,
                             default_query(s.field, 4).isolevels(), 70) *
                100.0};
      });
  for (std::size_t pi = 0; pi < std::size(impair_configs); ++pi) {
    RunningStats delivered, lchan, dup, corrupt, timeouts, e2e, acc;
    for (const ImpairTrial& t : impair_runs[pi]) {
      delivered.add(t.delivered);
      lchan.add(t.lchan);
      dup.add(t.dup);
      corrupt.add(t.corrupt);
      timeouts.add(t.timeouts);
      e2e.add(t.e2e);
      acc.add(t.acc);
    }
    d.row()
        .cell(impair_configs[pi].label)
        .cell(delivered.mean(), 1)
        .cell(lchan.mean(), 1)
        .cell(dup.mean(), 1)
        .cell(corrupt.mean(), 1)
        .cell(timeouts.mean(), 1)
        .cell(e2e.mean(), 4)
        .cell(acc.mean(), 1);
  }
  emit_table("ext_chaos_impair", titled, d);

  // Per-node pass over one representative chaos run (10% crashes + heavy
  // burst, self-healing on) with the flight recorder installed: the
  // loss-accounting identity above is aggregate, this one must hold node
  // by node — every report a source generated is delivered, filtered or
  // lost, per source. The run also yields the chaos energy heatmap
  // artifact: where the repair-and-retry bill actually landed.
  {
    const std::uint64_t seed = trial_seed(1);
    const Scenario s = harbor_scenario(nodes, seed);
    IsoMapOptions options = isomap_options(s, 4);
    options.fault.crash_fraction = 0.10;
    options.fault.seed = seed * 1013;
    options.fault.self_healing = true;
    options.link_burst = kHeavyBurst;
    options.link_retries = 3;
    options.link_seed = seed * 977;
    obs::NodeTelemetry telemetry(s.graph.size());
    const IsoMapRun run = run_isomap(s, options, nullptr, &telemetry);
    check_identity(run);
    int bad_nodes = 0;
    for (int v = 0; v < s.graph.size(); ++v) {
      const long long accounted =
          telemetry.delivered(v) + telemetry.filtered(v) +
          telemetry.lost_channel(v) + telemetry.lost_crash(v);
      if (accounted != telemetry.generated(v)) {
        ++bad_nodes;
        if (bad_nodes <= 5)
          std::cerr << "[ext_chaos] PER-NODE ACCOUNTING VIOLATION: node "
                    << v << " generated=" << telemetry.generated(v)
                    << " accounted=" << accounted << "\n";
      }
    }
    identity_violations += bad_nodes;
    if (bad_nodes == 0)
      std::cout << "[ext_chaos] per-node accounting identity held across "
                << s.graph.size() << " node(s)\n";
    std::vector<Vec2> positions;
    std::vector<double> energy_j;
    std::vector<int> hops;
    for (int v = 0; v < s.graph.size(); ++v) {
      positions.push_back(s.deployment.node(v).reported_pos());
      energy_j.push_back(telemetry.energy_j(v));
      hops.push_back(telemetry.hops(v));
    }
    const std::string csv_path =
        (results_dir() / "ext_chaos_energy_heatmap.csv").string();
    const std::string geo_path =
        (results_dir() / "ext_chaos_energy_heatmap.geojson").string();
    if (save_text(csv_path, heatmap_csv_grid(s.field.bounds(), positions,
                                             energy_j, 32, 32)))
      std::cout << "[bench] wrote " << csv_path << "\n";
    if (save_text(geo_path,
                  heatmap_geojson(positions, energy_j, hops, "energy_j")))
      std::cout << "[bench] wrote " << geo_path << "\n";
  }

  if (identity_violations > 0) {
    std::cerr << "[ext_chaos] " << identity_violations
              << " accounting violation(s)\n";
    return 1;
  }
  std::cout << "[ext_chaos] accounting identity held across all runs\n";
  return 0;
}
