// Extension: continuous contour mapping of an evolving field (the
// paper's stated deployment goal — continuous siltation monitoring — and
// its future-work direction). Two experiments share this bench:
//
//  1. Traffic: the harbor seabed drifts from the normal bathymetry to the
//     post-storm one over `rounds` rounds; the incremental delta protocol
//     (ContinuousMapper) is compared with re-running the one-shot Iso-Map
//     protocol every round. Expectation: per-round delta traffic is a
//     small fraction of a full snapshot while the field drifts slowly,
//     spikes while isolines move fastest, and accuracy stays comparable.
//
//  2. Round engines: per-round CPU cost of the full-recompute oracle vs
//     the incremental dirty-set engine while a localized disturbance
//     touches a controlled fraction of readings per round. Both engines
//     produce identical rounds (spot-checked on a running checksum); the
//     incremental one skips clean nodes, cached fits and clean isolevels.
//     Expectation: >= 5x per-round speedup at <= 10% changed readings.
//
// Usage: ext_continuous [num_nodes] [rounds] (defaults 2500, 20).

#include <algorithm>
#include <chrono>
#include <cmath>

#include "bench/bench_common.hpp"
#include "field/blended_field.hpp"
#include "isomap/continuous.hpp"
#include "obs/obs.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

/// Base field plus a compactly supported bump of radius r around a
/// movable centre: outside the radius the value equals the base field
/// exactly (bitwise), so the fraction of nodes whose reading changes per
/// round is controlled by r and the centre's motion.
class BumpField final : public ScalarField {
 public:
  BumpField(const ScalarField& base, double radius, double amplitude)
      : base_(&base), radius_(radius), amplitude_(amplitude) {}

  void set_center(Vec2 c) { center_ = c; }

  double value(Vec2 p) const override {
    const double base_v = base_->value(p);
    const double dx = p.x - center_.x;
    const double dy = p.y - center_.y;
    const double d2 = dx * dx + dy * dy;
    const double r2 = radius_ * radius_;
    if (d2 >= r2) return base_v;
    const double w = 1.0 - d2 / r2;  // 1 at the centre, exactly 0 at r.
    return base_v + amplitude_ * w * w;
  }

  FieldBounds bounds() const override { return base_->bounds(); }

 private:
  const ScalarField* base_;
  Vec2 center_{-1e9, -1e9};  // Far away: bump initially inert.
  double radius_;
  double amplitude_;
};

double wall_ms(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int num_nodes = argc > 1 ? std::atoi(argv[1]) : 2500;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 20;
  const std::string title =
      banner("Extension", "continuous mapping of an evolving harbor bed",
             "delta traffic << snapshot re-runs; incremental engine >= 5x "
             "oracle at <= 10% changed readings");

  const Scenario s = harbor_scenario(num_nodes, kBenchSeed);
  const double side = s.config.field_side;
  const FieldBounds bounds = {0, 0, side, side};
  const GaussianField before = harbor_bathymetry(bounds);
  const GaussianField after = silted_harbor_bathymetry(bounds);

  ContinuousOptions options;
  options.base.query = default_query(before, 4);
  const auto levels = options.base.query.isolevels();

  // ---- Experiment 1: delta traffic vs snapshot re-runs. ----
  ContinuousMapper mapper(options, s.deployment, s.graph, s.tree);
  Ledger cont_ledger(s.deployment.size());

  Table drift({"round", "alpha", "adds", "refresh", "withdraw", "delta_KB",
               "snapshot_KB", "cont_acc_pct", "snap_acc_pct"});

  double delta_total = 0.0, snapshot_total = 0.0;
  BlendedField field(before, after, 0.0);
  for (int round = 0; round < rounds; ++round) {
    // Storm hits around 40% of the way in: sigmoid drift of the seabed.
    const double alpha = 1.0 / (1.0 + std::exp(-(round - 0.4 * rounds)));
    field.set_alpha(alpha);

    const RoundResult r = mapper.round(field, cont_ledger);
    const double cont_acc =
        mapping_accuracy(r.map, field, levels, 60) * 100.0;

    // Snapshot comparator: full one-shot protocol on the same field state.
    Ledger snap_ledger(s.deployment.size());
    IsoMapProtocol snapshot(options.base);
    std::vector<double> readings(
        static_cast<std::size_t>(s.deployment.size()), 0.0);
    for (const auto& node : s.deployment.nodes())
      if (node.alive)
        readings[static_cast<std::size_t>(node.id)] = field.value(node.pos);
    const IsoMapResult snap =
        snapshot.run(readings, s.deployment, s.graph, s.tree, snap_ledger);
    const double snap_acc =
        mapping_accuracy(snap.map, field, levels, 60) * 100.0;

    delta_total += r.delta_traffic_bytes;
    snapshot_total += snap.report_traffic_bytes;
    drift.row()
        .cell(round)
        .cell(alpha, 2)
        .cell(r.adds)
        .cell(r.refreshes)
        .cell(r.withdrawals)
        .cell(r.delta_traffic_bytes / 1024.0, 2)
        .cell(snap.report_traffic_bytes / 1024.0, 2)
        .cell(cont_acc, 1)
        .cell(snap_acc, 1);
  }
  drift.print(std::cout);
  std::cout << "\nTotals over " << rounds << " rounds: delta "
            << delta_total / 1024.0 << " KB vs snapshot re-runs "
            << snapshot_total / 1024.0 << " KB ("
            << snapshot_total / std::max(delta_total, 1.0)
            << "x reduction); 1-hop beacons add "
            << 2.0 * s.deployment.alive_count() * rounds / 1024.0
            << " KB of local traffic.\n\n";

  // ---- Experiment 2: oracle vs incremental round engine. ----
  // A compact disturbance orbits the field; its radius sets the fraction
  // of readings it can touch. Each engine runs the same seeded sequence;
  // per-round wall time excludes the untimed priming round.
  //
  // The regime is the steady-state monitoring case the incremental engine
  // targets: a dense level query (many isolevels, as a bathymetric chart
  // has) over a smooth field, with a disturbance whose amplitude sits
  // below the band epsilon. Readings inside the disk change bitwise every
  // round (the changed_pct column), but they rarely move a node across a
  // band edge or rotate a gradient past the refresh threshold — so the
  // dirty set stays small and most isolevel regions are reused. The base
  // field is a plain linear ramp so the timings measure the engines, not
  // the bathymetry's Gaussian evaluations.
  const int cost_rounds = std::max(4, rounds / 2);
  const int reps = 3;  // Best-of-reps defends the ratio against scheduler jitter.
  const GaussianField ramp(bounds, 0.0, {1.0, 0.35}, {});
  ContinuousOptions cost_options;
  cost_options.base.query = default_query(ramp, 64);
  const double amplitude = 0.02 * cost_options.base.query.granularity;
  Table engines({"delta_pct", "changed_pct", "dirty_pct", "rebuilt_mean",
                 "oracle_ms", "incr_ms", "speedup"});

  const auto median_of = [](std::vector<double> v) {
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
    return v[mid];
  };

  for (const double fraction : {0.01, 0.05, 0.10, 0.25, 1.0}) {
    // The per-round changed set is the union of the disk and its previous
    // position, so the swept strip counts toward the fraction too: solve
    // pi*rho^2 + 2*rho*chord = fraction for the radius (in units of side)
    // or a "10%" run actually touches ~12% of readings.
    const double step = 0.35;  // Orbit step per round, radians.
    const double chord = 2.0 * 0.22 * std::sin(step / 2.0);
    const double rho =
        fraction >= 1.0
            ? 2.0
            : (std::sqrt(chord * chord + M_PI * fraction) - chord) / M_PI;
    const double radius = side * rho;
    double engine_ms[2] = {1e300, 1e300};
    double changed_mean = 0.0, dirty_mean = 0.0, rebuilt_mean = 0.0;

    for (int rep = 0; rep < reps; ++rep) {
      double checksum[2] = {0.0, 0.0};
      for (const ContinuousEngine engine :
           {ContinuousEngine::kOracle, ContinuousEngine::kIncremental}) {
        const int ei = engine == ContinuousEngine::kIncremental ? 1 : 0;
        ContinuousOptions opts = cost_options;
        opts.engine = engine;
        ContinuousMapper m(opts, s.deployment, s.graph, s.tree);
        Ledger ledger(s.deployment.size());
        BumpField bump(ramp, radius, amplitude);

        std::vector<double> prev(
            static_cast<std::size_t>(s.deployment.size()), 0.0);
        std::vector<double> samples;
        samples.reserve(static_cast<std::size_t>(cost_rounds));
        for (int round = 0; round <= cost_rounds; ++round) {
          const double theta = step * round;
          bump.set_center({side * (0.5 + 0.22 * std::cos(theta)),
                           side * (0.5 + 0.22 * std::sin(theta))});
          obs::MetricsRegistry metrics;
          const auto start = std::chrono::steady_clock::now();
          const RoundResult r = [&] {
            const obs::ObsScope scope(&metrics, nullptr);
            return m.round(bump, ledger);
          }();
          const double ms = wall_ms(start);
          checksum[ei] += r.adds + r.withdrawals + r.active_reports +
                          r.delta_traffic_bytes;
          if (ei == 1 && rep == 0) {
            int changed = 0;
            for (const auto& node : s.deployment.nodes())
              if (node.alive) {
                const double v = bump.value(node.pos);
                const auto id = static_cast<std::size_t>(node.id);
                if (v != prev[id]) ++changed;
                prev[id] = v;
              }
            if (round > 0) changed_mean += changed;
          }
          if (round == 0) continue;  // Priming round: both engines cold.
          samples.push_back(ms);
          if (ei == 1 && rep == 0) {
            dirty_mean += metrics.counter("continuous.dirty_nodes");
            rebuilt_mean += metrics.counter("continuous.levels_rebuilt");
          }
        }
        engine_ms[ei] = std::min(engine_ms[ei], median_of(std::move(samples)));
      }
      if (checksum[0] != checksum[1]) {
        std::cerr << "[ext_continuous] engine outputs diverged at fraction "
                  << fraction << "\n";
        return 1;
      }
    }
    const double n_alive = static_cast<double>(s.deployment.alive_count());
    engines.row()
        .cell(fraction * 100.0, 0)
        .cell(100.0 * changed_mean / cost_rounds / n_alive, 1)
        .cell(100.0 * dirty_mean / cost_rounds / n_alive, 1)
        .cell(rebuilt_mean / cost_rounds, 1)
        .cell(engine_ms[0], 3)
        .cell(engine_ms[1], 3)
        .cell(engine_ms[0] / std::max(engine_ms[1], 1e-9), 1);
  }
  engines.print(std::cout);

  // One combined JSON artifact: both tables under BENCH_ext_continuous.
  JsonValue payload = JsonValue::object();
  payload["bench"] = JsonValue(std::string("ext_continuous"));
  payload["title"] = JsonValue(title);
  payload["seed_base"] = JsonValue(kBenchSeed);
  payload["num_nodes"] = JsonValue(num_nodes);
  payload["rounds"] = JsonValue(rounds);
  payload["drift_table"] = table_json(drift);
  payload["engine_table"] = table_json(engines);
  const std::string path = write_bench_json("ext_continuous", payload);
  if (!path.empty()) std::cout << "[bench] wrote " << path << "\n";
  return 0;
}
