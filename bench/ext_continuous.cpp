// Extension: continuous contour mapping of an evolving field (the
// paper's stated deployment goal — continuous siltation monitoring — and
// its future-work direction). The harbor seabed drifts from the normal
// bathymetry to the post-storm one over 20 rounds; compare the
// incremental delta protocol (ContinuousMapper) with re-running the
// one-shot Iso-Map protocol every round.
// Expectation: per-round delta traffic is a small fraction of a full
// snapshot while the field drifts slowly, spikes while isolines move
// fastest, and accuracy stays comparable throughout.

#include "bench/bench_common.hpp"
#include "field/blended_field.hpp"
#include "isomap/continuous.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Extension", "continuous mapping of an evolving harbor bed",
         "delta traffic << snapshot re-runs at comparable accuracy");

  const Scenario s = harbor_scenario(2500, 1);
  const GaussianField before = harbor_bathymetry({0, 0, 50, 50});
  const GaussianField after = silted_harbor_bathymetry({0, 0, 50, 50});

  ContinuousOptions options;
  options.base.query = default_query(before, 4);
  const auto levels = options.base.query.isolevels();

  ContinuousMapper mapper(options, s.deployment, s.graph, s.tree);
  Ledger cont_ledger(s.deployment.size());

  Table table({"round", "alpha", "adds", "refresh", "withdraw", "delta_KB",
               "snapshot_KB", "cont_acc_pct", "snap_acc_pct"});

  const int kRounds = 20;
  double delta_total = 0.0, snapshot_total = 0.0;
  BlendedField field(before, after, 0.0);
  for (int round = 0; round < kRounds; ++round) {
    // Storm hits around round 8: sigmoid drift of the seabed.
    const double alpha =
        1.0 / (1.0 + std::exp(-(round - 8.0)));
    field.set_alpha(alpha);

    const RoundResult r = mapper.round(field, cont_ledger);
    const double cont_acc =
        mapping_accuracy(r.map, field, levels, 60) * 100.0;

    // Snapshot comparator: full one-shot protocol on the same field state.
    Ledger snap_ledger(s.deployment.size());
    IsoMapProtocol snapshot(options.base);
    std::vector<double> readings(
        static_cast<std::size_t>(s.deployment.size()), 0.0);
    for (const auto& node : s.deployment.nodes())
      if (node.alive)
        readings[static_cast<std::size_t>(node.id)] = field.value(node.pos);
    const IsoMapResult snap =
        snapshot.run(readings, s.deployment, s.graph, s.tree, snap_ledger);
    const double snap_acc =
        mapping_accuracy(snap.map, field, levels, 60) * 100.0;

    delta_total += r.delta_traffic_bytes;
    snapshot_total += snap.report_traffic_bytes;
    table.row()
        .cell(round)
        .cell(alpha, 2)
        .cell(r.adds)
        .cell(r.refreshes)
        .cell(r.withdrawals)
        .cell(r.delta_traffic_bytes / 1024.0, 2)
        .cell(snap.report_traffic_bytes / 1024.0, 2)
        .cell(cont_acc, 1)
        .cell(snap_acc, 1);
  }
  emit_table("ext_continuous", title, table);
  std::cout << "\nTotals over " << kRounds
            << " rounds: delta " << delta_total / 1024.0
            << " KB vs snapshot re-runs " << snapshot_total / 1024.0
            << " KB (" << snapshot_total / std::max(delta_total, 1.0)
            << "x reduction); 1-hop beacons add "
            << 2.0 * s.deployment.alive_count() * kRounds / 1024.0
            << " KB of local traffic.\n";
  return 0;
}
