// Extension: the paper's actual deployment target — "more than 40,000
// sensor nodes over the 380 km^2 sea area" (Section 2). Run Iso-Map at
// that scale (and the steps up to it) on this simulator and report the
// protocol-side numbers plus the wall-clock cost of simulating a full
// mapping round, demonstrating that the planned deployment is
// laptop-simulable. An optional argv[1] raises the largest scale:
// `ext_deployment_scale 1000000` adds the 100k and million-node rows
// (the default 40000 keeps CI runs comparable to the committed
// baseline).
// Expectation: reports stay O(sqrt(n)) — the reports_per_sqrt_n column
// is flat — per-node energy stays flat, and a full 40k-node round
// simulates in seconds.

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench/bench_common.hpp"
#include "util/mem.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int max_nodes = argc > 1 ? std::atoi(argv[1]) : 40000;
  const std::string title =
      banner("Extension", "the Huanghua deployment scale (40k default, 10^6 max)",
             "O(sqrt(n)) reports and flat per-node energy at full scale");

  const Mica2Model energy;
  Table table({"nodes", "field", "isoline_nodes", "sink_reports",
               "reports_per_sqrt_n", "traffic_KB", "node_energy_uJ",
               "accuracy_pct", "peak_rss_MB", "setup_wall_s",
               "round_wall_s"});
  std::vector<int> scales;
  for (const int n : {2500, 10000, 22500, 40000, 100000, 1000000})
    if (n <= max_nodes) scales.push_back(n);

  // Each scale is timed serially — running the rows concurrently (the old
  // parallel_trials layout) let the larger rows contend with each other,
  // so every wall-clock column read high by the co-scheduled work. The
  // protocol itself still uses the exec pool *within* a scale; only the
  // scale loop is serial.
  bool ok = true;
  double min_density = 1e300, max_density = 0.0;
  for (const int n : scales) {
    const double side = std::sqrt(static_cast<double>(n));
    const double sqrt_n = std::sqrt(static_cast<double>(n));

    const auto setup_start = std::chrono::steady_clock::now();
    ScenarioConfig config;
    config.num_nodes = n;
    config.field_side = side;
    config.field = FieldKind::kSloped;
    config.seed = kBenchSeed;
    const Scenario s = make_scenario(config);
    const double setup_wall = seconds_since(setup_start);

    IsoMapOptions options;
    options.query = scaling_query();
    const auto round_start = std::chrono::steady_clock::now();
    const IsoMapRun run = run_isomap(s, options);
    const double round_wall = seconds_since(round_start);
    const double accuracy =
        mapping_accuracy(run.result.map, s.field, options.query.isolevels(),
                         80) *
        100.0;

    const double reports = static_cast<double>(run.result.delivered_reports);
    const double density = reports / sqrt_n;
    min_density = std::min(min_density, density);
    max_density = std::max(max_density, density);
    table.row()
        .cell(n)
        .cell(format_double(side, 0) + "x" + format_double(side, 0))
        .cell(run.result.isoline_node_count)
        .cell(reports, 0)
        .cell(density, 2)
        .cell(run.result.report_traffic_bytes / 1024.0, 1)
        .cell(energy.mean_node_energy_j(run.ledger) * 1e6, 2)
        .cell(accuracy, 1)
        .cell(run.summary.peak_rss_bytes / (1024.0 * 1024.0), 1)
        .cell(setup_wall, 2)
        .cell(round_wall, 2);

    // Self-checks: a silent degenerate round (no isoline nodes, nothing
    // delivered, garbage map) would otherwise still print a plausible
    // table. Fail loudly instead.
    if (run.result.isoline_node_count <= 0 || reports <= 0.0) {
      std::cerr << "[FAIL] n=" << n << ": degenerate round (isoline_nodes="
                << run.result.isoline_node_count << ", sink_reports="
                << reports << ")\n";
      ok = false;
    }
    if (accuracy < 90.0) {
      std::cerr << "[FAIL] n=" << n << ": accuracy " << accuracy
                << "% below the 90% floor\n";
      ok = false;
    }
    if (density < 0.2 || density > 3.0) {
      std::cerr << "[FAIL] n=" << n << ": sink_reports/sqrt(n) = " << density
                << " outside the [0.2, 3] band\n";
      ok = false;
    }
  }
  // The sqrt law itself: across a 400x node range the report density may
  // drift (boundary effects shrink at scale) but must not trend — a
  // superlinear report count would blow the band open.
  if (!scales.empty() && max_density / min_density > 2.5) {
    std::cerr << "[FAIL] sink_reports/sqrt(n) spans " << min_density << ".."
              << max_density << " — not flat (ratio > 2.5)\n";
    ok = false;
  }

  emit_table("ext_deployment_scale", title, table);
  std::cout << "\n(x4 nodes should roughly x2 the isoline-node count — "
               "the sqrt law — while per-node energy stays flat.)\n";
  return ok ? 0 : 1;
}
