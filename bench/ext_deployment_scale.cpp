// Extension: the paper's actual deployment target — "more than 40,000
// sensor nodes over the 380 km^2 sea area" (Section 2). Run Iso-Map at
// that scale (and the steps up to it) on this simulator and report the
// protocol-side numbers plus the wall-clock cost of simulating a full
// mapping round, demonstrating that the planned deployment is
// laptop-simulable. An optional argv[1] raises the largest scale:
// `ext_deployment_scale 1000000` adds the 100k and million-node rows
// (the default 40000 keeps CI runs comparable to the committed
// baseline).
// Expectation: reports stay O(sqrt(n)) — the reports_per_sqrt_n column
// is flat — per-node energy stays flat, and a full 40k-node round
// simulates in seconds.
// Every scale runs twice, pinned to 1 and to 4 threads, and the two runs
// must be bitwise identical (counters, per-node ledger sums, map
// geometry): the par_identical column is the check's outcome and is
// gated, so a determinism break at deployment scale fails CI.

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench/bench_common.hpp"
#include "exec/exec.hpp"
#include "util/mem.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Summary JSON with the machine-dependent fields zeroed (wall clock,
/// phase histograms, RSS sample) — everything left must be bit-identical
/// across thread counts.
std::string normalized_summary(obs::RunSummary summary) {
  summary.wall_s = 0.0;
  summary.phases.clear();
  summary.peak_rss_bytes = 0.0;
  return summary.to_json().dump(2);
}

/// Hard bitwise-identity check between a 1-thread and a 4-thread run of
/// the same scenario: counters, normalized summary, every per-node ledger
/// sum, and the sink map's full geometry (Voronoi cells and isoline
/// polylines per level). Any difference is a determinism-contract break —
/// report it and fail the bench.
bool runs_identical(int n, const IsoMapRun& a, const IsoMapRun& b) {
  const auto fail = [n](const char* what) {
    std::cerr << "[FAIL] n=" << n
              << ": threads=1 vs threads=4 mismatch in " << what << "\n";
    return false;
  };
  if (a.result.generated_reports != b.result.generated_reports ||
      a.result.delivered_reports != b.result.delivered_reports ||
      a.result.isoline_node_count != b.result.isoline_node_count)
    return fail("report counters");
  if (a.result.report_traffic_bytes != b.result.report_traffic_bytes ||
      a.result.measurement_traffic_bytes != b.result.measurement_traffic_bytes)
    return fail("traffic totals");
  if (normalized_summary(a.summary) != normalized_summary(b.summary))
    return fail("run summary");
  for (int v = 0; v < n; ++v)
    if (a.ledger.tx_bytes(v) != b.ledger.tx_bytes(v) ||
        a.ledger.rx_bytes(v) != b.ledger.rx_bytes(v) ||
        a.ledger.ops(v) != b.ledger.ops(v))
      return fail("per-node ledger");
  const ContourMap& ma = a.result.map;
  const ContourMap& mb = b.result.map;
  if (ma.level_count() != mb.level_count()) return fail("level count");
  for (int k = 0; k < ma.level_count(); ++k) {
    const VoronoiDiagram& va = ma.region(k).voronoi();
    const VoronoiDiagram& vb = mb.region(k).voronoi();
    if (va.size() != vb.size()) return fail("voronoi size");
    for (std::size_t i = 0; i < va.size(); ++i)
      if (va.cell(i).vertices != vb.cell(i).vertices ||
          va.cell(i).edge_tags != vb.cell(i).edge_tags)
        return fail("voronoi cells");
    if (ma.isolines(k).size() != mb.isolines(k).size())
      return fail("isoline count");
    for (std::size_t p = 0; p < ma.isolines(k).size(); ++p)
      if (ma.isolines(k)[p].points() != mb.isolines(k)[p].points())
        return fail("isoline points");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_nodes = argc > 1 ? std::atoi(argv[1]) : 40000;
  const std::string title =
      banner("Extension", "the Huanghua deployment scale (40k default, 10^6 max)",
             "O(sqrt(n)) reports and flat per-node energy at full scale");

  const Mica2Model energy;
  // round_wall_s times the protocol round pinned to one thread (kernel
  // wins only — comparable across machines); round_wall_t4_s the same
  // round at ISOMAP_THREADS=4. par_identical is the bitwise-identity
  // self-check between the two runs (1 = every counter, ledger sum and
  // map vertex matched) — a gated column, so CI fails if determinism
  // breaks at scale.
  Table table({"nodes", "field", "isoline_nodes", "sink_reports",
               "reports_per_sqrt_n", "traffic_KB", "node_energy_uJ",
               "accuracy_pct", "par_identical", "peak_rss_MB",
               "setup_wall_s", "round_wall_s", "round_wall_t4_s"});
  std::vector<int> scales;
  for (const int n : {2500, 10000, 22500, 40000, 100000, 1000000})
    if (n <= max_nodes) scales.push_back(n);

  // Each scale is timed serially — running the rows concurrently (the old
  // parallel_trials layout) let the larger rows contend with each other,
  // so every wall-clock column read high by the co-scheduled work. The
  // protocol itself still uses the exec pool *within* a scale; only the
  // scale loop is serial.
  bool ok = true;
  double min_density = 1e300, max_density = 0.0;
  for (const int n : scales) {
    const double side = std::sqrt(static_cast<double>(n));
    const double sqrt_n = std::sqrt(static_cast<double>(n));

    const auto setup_start = std::chrono::steady_clock::now();
    ScenarioConfig config;
    config.num_nodes = n;
    config.field_side = side;
    config.field = FieldKind::kSloped;
    config.seed = kBenchSeed;
    const Scenario s = make_scenario(config);
    const double setup_wall = seconds_since(setup_start);

    IsoMapOptions options;
    options.query = scaling_query();
    exec::set_thread_count(1);
    const auto round_start = std::chrono::steady_clock::now();
    const IsoMapRun run = run_isomap(s, options);
    const double round_wall = seconds_since(round_start);
    exec::set_thread_count(4);
    const auto round4_start = std::chrono::steady_clock::now();
    const IsoMapRun run4 = run_isomap(s, options);
    const double round4_wall = seconds_since(round4_start);
    exec::set_thread_count(0);
    const bool identical = runs_identical(n, run, run4);
    if (!identical) ok = false;
    const double accuracy =
        mapping_accuracy(run.result.map, s.field, options.query.isolevels(),
                         80) *
        100.0;

    const double reports = static_cast<double>(run.result.delivered_reports);
    const double density = reports / sqrt_n;
    min_density = std::min(min_density, density);
    max_density = std::max(max_density, density);
    table.row()
        .cell(n)
        .cell(format_double(side, 0) + "x" + format_double(side, 0))
        .cell(run.result.isoline_node_count)
        .cell(reports, 0)
        .cell(density, 2)
        .cell(run.result.report_traffic_bytes / 1024.0, 1)
        .cell(energy.mean_node_energy_j(run.ledger) * 1e6, 2)
        .cell(accuracy, 1)
        .cell(identical ? 1 : 0)
        .cell(run.summary.peak_rss_bytes / (1024.0 * 1024.0), 1)
        .cell(setup_wall, 2)
        .cell(round_wall, 2)
        .cell(round4_wall, 2);

    // Self-checks: a silent degenerate round (no isoline nodes, nothing
    // delivered, garbage map) would otherwise still print a plausible
    // table. Fail loudly instead.
    if (run.result.isoline_node_count <= 0 || reports <= 0.0) {
      std::cerr << "[FAIL] n=" << n << ": degenerate round (isoline_nodes="
                << run.result.isoline_node_count << ", sink_reports="
                << reports << ")\n";
      ok = false;
    }
    if (accuracy < 90.0) {
      std::cerr << "[FAIL] n=" << n << ": accuracy " << accuracy
                << "% below the 90% floor\n";
      ok = false;
    }
    if (density < 0.2 || density > 3.0) {
      std::cerr << "[FAIL] n=" << n << ": sink_reports/sqrt(n) = " << density
                << " outside the [0.2, 3] band\n";
      ok = false;
    }
  }
  // The sqrt law itself: across a 400x node range the report density may
  // drift (boundary effects shrink at scale) but must not trend — a
  // superlinear report count would blow the band open.
  if (!scales.empty() && max_density / min_density > 2.5) {
    std::cerr << "[FAIL] sink_reports/sqrt(n) spans " << min_density << ".."
              << max_density << " — not flat (ratio > 2.5)\n";
    ok = false;
  }

  emit_table("ext_deployment_scale", title, table);
  std::cout << "\n(x4 nodes should roughly x2 the isoline-node count — "
               "the sqrt law — while per-node energy stays flat.)\n";
  return ok ? 0 : 1;
}
