// Extension: the paper's actual deployment target — "more than 40,000
// sensor nodes over the 380 km^2 sea area" (Section 2). Run Iso-Map at
// that scale (and the steps up to it) on this simulator and report the
// protocol-side numbers plus the wall-clock cost of simulating a full
// mapping round, demonstrating that the planned deployment is
// laptop-simulable.
// Expectation: reports stay O(sqrt(n)), per-node energy stays flat, and
// a full 40k-node round simulates in seconds.

#include <chrono>

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Extension", "the Huanghua deployment scale (up to 40k nodes)",
         "O(sqrt(n)) reports and flat per-node energy at full scale");

  const Mica2Model energy;
  Table table({"nodes", "field", "isoline_nodes", "sink_reports",
               "traffic_KB", "node_energy_uJ", "accuracy_pct",
               "sim_wall_s"});
  const std::vector<int> scales = {2500, 10000, 22500, 40000};
  struct ScaleRow {
    double isoline_nodes, sink_reports, traffic_kb, energy_uj, accuracy, wall;
  };
  // One scale per trial; every scale uses the fixed kBenchSeed. sim_wall_s
  // is still measured per run — with concurrent rows it reads slightly
  // high from contention, so it remains an upper bound on the serial cost.
  const auto rows = exec::parallel_trials(
      static_cast<int>(scales.size()), [](std::uint64_t) { return kBenchSeed; },
      [&](int trial, std::uint64_t seed) {
        const int n = scales[static_cast<std::size_t>(trial - 1)];
        const double side = std::sqrt(static_cast<double>(n));
        const auto start = std::chrono::steady_clock::now();

        ScenarioConfig config;
        config.num_nodes = n;
        config.field_side = side;
        config.field = FieldKind::kSloped;
        config.seed = seed;
        const Scenario s = make_scenario(config);

        IsoMapOptions options;
        options.query = scaling_query();
        const IsoMapRun run = run_isomap(s, options);
        const double accuracy =
            mapping_accuracy(run.result.map, s.field,
                             options.query.isolevels(), 80) *
            100.0;
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        return ScaleRow{static_cast<double>(run.result.isoline_node_count),
                        static_cast<double>(run.result.delivered_reports),
                        run.result.report_traffic_bytes / 1024.0,
                        energy.mean_node_energy_j(run.ledger) * 1e6, accuracy,
                        wall};
      });
  for (std::size_t pi = 0; pi < scales.size(); ++pi) {
    const double side = std::sqrt(static_cast<double>(scales[pi]));
    table.row()
        .cell(scales[pi])
        .cell(format_double(side, 0) + "x" + format_double(side, 0))
        .cell(rows[pi].isoline_nodes, 0)
        .cell(rows[pi].sink_reports, 0)
        .cell(rows[pi].traffic_kb, 1)
        .cell(rows[pi].energy_uj, 2)
        .cell(rows[pi].accuracy, 1)
        .cell(rows[pi].wall, 2);
  }
  emit_table("ext_deployment_scale", title, table);
  std::cout << "\n(x4 nodes should roughly x2 the isoline-node count — "
               "the sqrt law — while per-node energy stays flat.)\n";
  return 0;
}
