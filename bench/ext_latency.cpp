// Extension: map-collection latency under level-slotted TDMA
// convergecast (the TAG scheme the paper assumes in Section 3.1 but does
// not evaluate). Each tree level transmits in its own slot, sized to the
// level's busiest node; the total is the time for one complete map
// collection at the CC1000's 38.4 kbps.
// Expectation: TinyDB's latency balloons with network size (nodes one
// hop from the sink forward O(n) reports, so their slot dominates);
// Iso-Map's near-sink forwarders carry only the filtered isoline
// reports, so latency grows mildly with depth.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Extension", "TDMA collection latency vs network diameter",
         "TinyDB latency grows ~linearly with n; Iso-Map with depth only");

  const int kSeeds = 3;
  Table table({"diameter_hops", "nodes", "tinydb_latency_s",
               "isomap_latency_s", "ratio"});
  for (const int diameter : {10, 20, 30, 40, 50}) {
    const double side = side_for_diameter(diameter);
    RunningStats tinydb_s, iso_s;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario grid = sloped_scenario(side, seed, /*grid=*/true);
      const Scenario random = sloped_scenario(side, seed);
      tinydb_s.add(run_tinydb(grid).result.latency_s());
      IsoMapOptions options;
      options.query = scaling_query();
      iso_s.add(run_isomap(random, options).result.latency_s());
    }
    table.row()
        .cell(diameter)
        .cell(static_cast<int>(side * side))
        .cell(tinydb_s.mean(), 3)
        .cell(iso_s.mean(), 3)
        .cell(tinydb_s.mean() / std::max(iso_s.mean(), 1e-12), 1);
  }
  emit_table("ext_latency", title, table);
  return 0;
}
