// Extension: map-collection latency, two complementary measurements.
//
// Table 1 — level-slotted TDMA convergecast (the TAG scheme the paper
// assumes in Section 3.1 but does not evaluate). Each tree level
// transmits in its own slot, sized to the level's busiest node; the
// total is the time for one complete map collection at the CC1000's
// 38.4 kbps.
// Expectation: TinyDB's latency balloons with network size (nodes one
// hop from the sink forward O(n) reports, so their slot dominates);
// Iso-Map's near-sink forwarders carry only the filtered isoline
// reports, so latency grows mildly with depth.
//
// Table 2 — MEASURED end-to-end map latency over the link-impairment
// pipeline (net/impairment.hpp) with sliding-window ARQ: every report's
// per-hop ARQ completion times accumulate into the e2e_* fields of
// IsoMapResult. Swept over jitter and reordering; these are virtual-time
// model outputs (deterministic per seed), so the bench-regression gate
// holds them to the committed baseline.
// Expectation: e2e map latency grows monotonically with jitter (enforced
// below — the bench exits 1 on a violation) and degrades gracefully
// under reordering.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

struct E2eStats {
  RunningStats first, last, mean, delivered, timeouts;
};

/// One impaired Iso-Map run on the fixed latency scenario; accumulates
/// the measured e2e latencies into `out`.
void impaired_trial(const ImpairmentConfig& impair, std::uint64_t seed,
                    E2eStats& out) {
  const Scenario scenario = sloped_scenario(side_for_diameter(15), seed);
  IsoMapOptions options;
  options.query = scaling_query();
  options.link_impair = impair;
  options.link_burst = GilbertElliottParams{};
  options.link_arq.max_frame_attempts = 6;
  const IsoMapRun run = run_isomap(scenario, options);
  out.first.add(run.result.e2e_first_latency_s);
  out.last.add(run.result.e2e_last_latency_s);
  out.mean.add(run.result.e2e_mean_latency_s);
  out.delivered.add(run.result.delivered_reports);
  out.timeouts.add(run.summary.counters.count("channel.arq_timeouts")
                       ? run.summary.counters.at("channel.arq_timeouts")
                       : 0.0);
}

}  // namespace

int main() {
  const std::string title = banner("Extension", "TDMA collection latency vs network diameter",
         "TinyDB latency grows ~linearly with n; Iso-Map with depth only");

  const int kSeeds = 3;
  Table table({"diameter_hops", "nodes", "tinydb_latency_s",
               "isomap_latency_s", "ratio"});
  for (const int diameter : {10, 20, 30, 40, 50}) {
    const double side = side_for_diameter(diameter);
    RunningStats tinydb_s, iso_s;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario grid = sloped_scenario(side, seed, /*grid=*/true);
      const Scenario random = sloped_scenario(side, seed);
      tinydb_s.add(run_tinydb(grid).result.latency_s());
      IsoMapOptions options;
      options.query = scaling_query();
      iso_s.add(run_isomap(random, options).result.latency_s());
    }
    table.row()
        .cell(diameter)
        .cell(static_cast<int>(side * side))
        .cell(tinydb_s.mean(), 3)
        .cell(iso_s.mean(), 3)
        .cell(tinydb_s.mean() / std::max(iso_s.mean(), 1e-12), 1);
  }
  emit_table("ext_latency", title, table);

  // Table 2: measured e2e map latency over the impaired ARQ pipeline.
  const std::string impair_title =
      banner("Extension", "measured e2e map latency under impairment",
             "e2e latency monotone in jitter; graceful under reordering");
  Table impaired({"jitter(ms)", "reorder(%)", "dup(%)", "delivered",
                  "arq_timeouts", "e2e_first(s)", "e2e_last(s)",
                  "e2e_mean(s)"});
  std::vector<double> last_by_jitter;
  for (const double jitter_ms : {0.0, 5.0, 15.0, 40.0}) {
    ImpairmentConfig impair;
    impair.jitter_s = jitter_ms * 1e-3;
    impair.reorder_prob = 0.10;
    impair.dup_prob = 0.05;
    E2eStats stats;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial)
      impaired_trial(impair, trial_seed(trial), stats);
    impaired.row()
        .cell(jitter_ms, 0)
        .cell(10)
        .cell(5)
        .cell(stats.delivered.mean(), 1)
        .cell(stats.timeouts.mean(), 1)
        .cell(stats.first.mean(), 6)
        .cell(stats.last.mean(), 6)
        .cell(stats.mean.mean(), 6);
    last_by_jitter.push_back(stats.last.mean());
  }
  for (const double reorder_pct : {20.0, 40.0}) {
    ImpairmentConfig impair;
    impair.jitter_s = 5e-3;
    impair.reorder_prob = reorder_pct / 100.0;
    impair.dup_prob = 0.05;
    E2eStats stats;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial)
      impaired_trial(impair, trial_seed(trial), stats);
    impaired.row()
        .cell(5, 0)
        .cell(reorder_pct, 0)
        .cell(5)
        .cell(stats.delivered.mean(), 1)
        .cell(stats.timeouts.mean(), 1)
        .cell(stats.first.mean(), 6)
        .cell(stats.last.mean(), 6)
        .cell(stats.mean.mean(), 6);
  }
  emit_table("ext_latency_impair", impair_title, impaired);

  // Sanity gate: the measured map latency must grow with jitter — the
  // whole point of carrying real per-hop completion times instead of a
  // synthetic TDMA estimate.
  for (std::size_t i = 1; i < last_by_jitter.size(); ++i) {
    if (last_by_jitter[i] + 1e-12 < last_by_jitter[i - 1]) {
      std::cerr << "ext_latency: e2e map latency not monotone in jitter ("
                << last_by_jitter[i - 1] << " -> " << last_by_jitter[i]
                << ")\n";
      return 1;
    }
  }
  return 0;
}
