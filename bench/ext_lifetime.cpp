// Extension: network lifetime under repeated mapping rounds. The paper
// argues per-round energy; this bench integrates it over time — each
// node starts with a battery budget, every mapping round charges its
// ledger, depleted nodes die (and stop routing), and the run continues
// until the map becomes unusable. Reported: rounds until first node
// death, until 10% dead, and until accuracy falls below 70%.
// Expectation: Iso-Map's lifetime is an order of magnitude beyond
// TinyDB's, and its deaths start along the isoline corridor rather than
// at the sink funnel.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

struct LifetimeOutcome {
  int first_death = -1;
  int ten_pct_dead = -1;
  int map_unusable = -1;
  int rounds_run = 0;
};

/// Run mapping rounds with battery depletion until the map degrades or
/// `max_rounds` is hit. `protocol` is "isomap" or "tinydb".
LifetimeOutcome run_lifetime(const std::string& protocol, double battery_mj,
                             int max_rounds, std::uint64_t seed) {
  ScenarioConfig config;
  config.num_nodes = 900;
  config.field_side = 30.0;
  config.grid_deployment = protocol == "tinydb";
  config.seed = seed;
  Scenario s = make_scenario(config);
  const ContourQuery query = default_query(s.field, 4);
  const auto levels = query.isolevels();
  const Mica2Model energy;

  std::vector<double> spent_j(static_cast<std::size_t>(s.deployment.size()),
                              0.0);
  LifetimeOutcome outcome;
  const int n = s.deployment.size();

  for (int round = 1; round <= max_rounds; ++round) {
    outcome.rounds_run = round;
    // Rebuild connectivity over the survivors every round.
    CommGraph graph(s.deployment, config.effective_radio_range());
    const int sink = s.deployment.nearest_alive(
        {config.field_side / 2, config.field_side / 2});
    if (sink < 0) break;
    RoutingTree tree(graph, sink);

    std::vector<double> readings(static_cast<std::size_t>(n), 0.0);
    for (const auto& node : s.deployment.nodes())
      if (node.alive)
        readings[static_cast<std::size_t>(node.id)] =
            s.field.value(node.pos);

    Ledger ledger(n);
    double accuracy = 0.0;
    if (protocol == "isomap") {
      IsoMapOptions options;
      options.query = query;
      IsoMapProtocol proto(options);
      const IsoMapResult result =
          proto.run(readings, s.deployment, graph, tree, ledger);
      accuracy = mapping_accuracy(result.map, s.field, levels, 50);
    } else {
      TinyDBProtocol proto;
      const TinyDBResult result =
          proto.run(s.deployment, readings, tree, ledger);
      const LevelMap truth = LevelMap::ground_truth(s.field, levels, 50, 50);
      const LevelMap est = LevelMap::rasterize(
          s.field.bounds(), 50, 50,
          [&](Vec2 p) { return result.level_index(p, levels); });
      accuracy = est.accuracy_against(truth);
    }

    // Deplete batteries; kill exhausted nodes (the sink is mains-powered).
    int dead = 0;
    for (auto& node : s.deployment.nodes()) {
      if (!node.alive) {
        ++dead;
        continue;
      }
      spent_j[static_cast<std::size_t>(node.id)] +=
          energy.node_energy_j(ledger, node.id);
      if (node.id != sink &&
          spent_j[static_cast<std::size_t>(node.id)] * 1e3 > battery_mj) {
        node.alive = false;
        ++dead;
      }
    }
    if (dead > 0 && outcome.first_death < 0) outcome.first_death = round;
    if (dead >= n / 10 && outcome.ten_pct_dead < 0)
      outcome.ten_pct_dead = round;
    if (accuracy < 0.70) {
      outcome.map_unusable = round;
      break;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  const std::string title = banner("Extension", "network lifetime under repeated mapping rounds",
         "Iso-Map sustains an order of magnitude more rounds than TinyDB");

  const double kBatteryMj = 40.0;
  const int kMaxRounds = 4000;
  Table table({"protocol", "battery_mJ", "first_death_round",
               "ten_pct_dead_round", "map_unusable_round"});
  for (const std::string protocol : {"tinydb", "isomap"}) {
    RunningStats first, ten, unusable;
    for (std::uint64_t trial = 1; trial <= 2; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const LifetimeOutcome outcome =
          run_lifetime(protocol, kBatteryMj, kMaxRounds, seed);
      if (outcome.first_death > 0) first.add(outcome.first_death);
      if (outcome.ten_pct_dead > 0) ten.add(outcome.ten_pct_dead);
      unusable.add(outcome.map_unusable > 0 ? outcome.map_unusable
                                            : outcome.rounds_run);
    }
    table.row()
        .cell(protocol)
        .cell(kBatteryMj, 0)
        .cell(first.count() ? first.mean() : -1.0, 0)
        .cell(ten.count() ? ten.mean() : -1.0, 0)
        .cell(unusable.mean(), 0);
  }
  emit_table("ext_lifetime", title, table);
  std::cout << "\n(-1 = never reached within " << kMaxRounds
            << " rounds; the sink is mains-powered and exempt.)\n";
  return 0;
}
