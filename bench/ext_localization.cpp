// Extension: where do the node positions come from? The paper assumes
// GPS or a localization algorithm (Section 3.3). Compare Iso-Map's map
// fidelity under: exact positions (GPS everywhere), DV-Hop localization
// at several anchor fractions (emergent, spatially correlated error),
// and injected Gaussian error matched to DV-Hop's mean error.
// Expectation: DV-Hop's correlated errors distort the map *less* than
// white Gaussian error of the same magnitude (neighbouring nodes shift
// together, so local gradients survive), and more anchors buy fidelity.

#include "bench/bench_common.hpp"
#include "net/localization.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Extension", "localization source vs map fidelity",
         "DV-Hop degrades gracefully; correlated error beats white noise "
         "of equal magnitude");

  const int kSeeds = 3;
  Table table({"localization", "mean_pos_err", "flood_KB", "accuracy_pct"});

  // Exact (GPS) baseline.
  {
    RunningStats acc;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario s = harbor_scenario(2500, seed);
      const IsoMapRun run = run_isomap(s, 4);
      acc.add(mapping_accuracy(run.result.map, s.field,
                               default_query(s.field, 4).isolevels(), 70) *
              100.0);
    }
    table.row().cell("GPS (exact)").cell(0.0, 2).cell(0.0, 1).cell(
        acc.mean(), 1);
  }

  double dvhop_err_at_5pct = 0.0;
  for (const double anchors : {0.02, 0.05, 0.10}) {
    RunningStats err, kb, acc;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      Scenario s = harbor_scenario(2500, seed);
      Rng rng(seed * 131);
      Ledger ledger(s.deployment.size());
      DvHopOptions options;
      options.anchor_fraction = anchors;
      const DvHopResult loc =
          dv_hop_localize(s.deployment, s.graph, options, rng, ledger);
      apply_localization(s.deployment, loc);
      err.add(loc.mean_error);
      kb.add(loc.flood_traffic_bytes / 1024.0);
      const IsoMapRun run = run_isomap(s, 4);
      acc.add(mapping_accuracy(run.result.map, s.field,
                               default_query(s.field, 4).isolevels(), 70) *
              100.0);
    }
    if (anchors == 0.05) dvhop_err_at_5pct = err.mean();
    table.row()
        .cell("DV-Hop " + format_double(anchors * 100, 0) + "% anchors")
        .cell(err.mean(), 2)
        .cell(kb.mean(), 1)
        .cell(acc.mean(), 1);
  }

  // White Gaussian error matched to DV-Hop's 5%-anchor magnitude.
  {
    RunningStats acc;
    // Gaussian with std sigma has mean |error| = sigma * sqrt(pi/2).
    const double sigma = dvhop_err_at_5pct / std::sqrt(M_PI / 2.0) /
                         std::sqrt(2.0);  // Per-axis std for 2-D mean.
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      ScenarioConfig config;
      config.num_nodes = 2500;
      config.seed = seed;
      config.position_error_std = sigma;
      const Scenario s = make_scenario(config);
      const IsoMapRun run = run_isomap(s, 4);
      acc.add(mapping_accuracy(run.result.map, s.field,
                               default_query(s.field, 4).isolevels(), 70) *
              100.0);
    }
    table.row()
        .cell("white Gaussian (matched)")
        .cell(dvhop_err_at_5pct, 2)
        .cell(0.0, 1)
        .cell(acc.mean(), 1);
  }
  emit_table("ext_localization", title, table);
  std::cout << "\n(DV-Hop flood traffic is a one-time deployment cost, "
               "amortized over every subsequent mapping round.)\n";
  return 0;
}
