// Extension: MAC-layer contention replay. The paper's simulation assumes
// a perfect link layer with TDMA slotting; here the recorded convergecast
// transmissions of Iso-Map and TinyDB are replayed through a p-persistent
// slotted-CSMA model (collisions destroy frames at the receiver,
// interference reaches 1.5x the radio range — the Z-MAC style contention
// inside each level's phase).
// Expectation: TinyDB's dense near-sink traffic collides heavily, so its
// effective collection time and wasted airtime blow up; Iso-Map's thin
// report flow stays close to its ideal schedule.

#include "bench/bench_common.hpp"
#include "mac/contention.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Extension", "slotted-CSMA contention replay of the convergecast",
         "TinyDB collides heavily near the sink; Iso-Map near-ideal");

  const int kSeeds = 2;
  Table table({"diameter", "protocol", "frames", "delivery_pct",
               "collisions", "mac_time_s", "ideal_time_s",
               "wasted_KB"});
  for (const int diameter : {10, 20, 30}) {
    const double side = side_for_diameter(diameter);
    RunningStats iso_frames, iso_del, iso_col, iso_time, iso_ideal, iso_waste;
    RunningStats tdb_frames, tdb_del, tdb_col, tdb_time, tdb_ideal, tdb_waste;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario random = sloped_scenario(side, seed);
      const Scenario grid = sloped_scenario(side, seed, /*grid=*/true);
      const MacOptions mac;

      IsoMapOptions iso_options;
      iso_options.query = scaling_query();
      iso_options.record_transmissions = true;
      const IsoMapRun iso = run_isomap(random, iso_options);
      Rng iso_rng(seed * 31);
      const MacStats iso_stats =
          replay_with_contention(iso.result.transmissions, random.deployment,
                                 random.graph, mac, iso_rng);
      iso_frames.add(iso_stats.frames_offered);
      iso_del.add(iso_stats.delivery_ratio() * 100.0);
      iso_col.add(iso_stats.collisions);
      iso_time.add(iso_stats.duration_s(mac));
      iso_ideal.add(iso.result.latency_s());
      iso_waste.add(iso_stats.airtime_wasted_bytes / 1024.0);

      TinyDBOptions tdb_options;
      tdb_options.record_transmissions = true;
      const TinyDBRun tdb = run_tinydb(grid, tdb_options);
      Rng tdb_rng(seed * 77);
      const MacStats tdb_stats =
          replay_with_contention(tdb.result.transmissions, grid.deployment,
                                 grid.graph, mac, tdb_rng);
      tdb_frames.add(tdb_stats.frames_offered);
      tdb_del.add(tdb_stats.delivery_ratio() * 100.0);
      tdb_col.add(tdb_stats.collisions);
      tdb_time.add(tdb_stats.duration_s(mac));
      tdb_ideal.add(tdb.result.latency_s());
      tdb_waste.add(tdb_stats.airtime_wasted_bytes / 1024.0);
    }
    table.row()
        .cell(diameter)
        .cell("Iso-Map")
        .cell(iso_frames.mean(), 0)
        .cell(iso_del.mean(), 1)
        .cell(iso_col.mean(), 0)
        .cell(iso_time.mean(), 2)
        .cell(iso_ideal.mean(), 2)
        .cell(iso_waste.mean(), 1);
    table.row()
        .cell(diameter)
        .cell("TinyDB")
        .cell(tdb_frames.mean(), 0)
        .cell(tdb_del.mean(), 1)
        .cell(tdb_col.mean(), 0)
        .cell(tdb_time.mean(), 2)
        .cell(tdb_ideal.mean(), 2)
        .cell(tdb_waste.mean(), 1);
  }
  emit_table("ext_mac", title, table);

  // Table 2: the same contention replay, but the recorded convergecast
  // now comes from runs over the impaired ARQ link — give-ups prune
  // subtree traffic and the measured e2e ARQ latency rides alongside the
  // MAC's own collection time.
  const std::string impair_title =
      banner("Extension", "CSMA replay of Iso-Map recorded under link impairment",
             "ARQ give-ups thin the offered frame load; e2e ARQ latency "
             "adds to (not replaces) the MAC collection time");
  Table impaired_table({"link", "frames", "delivery_pct", "collisions",
                        "mac_time_s", "arq_e2e_last(s)", "wasted_KB"});
  const struct {
    const char* label;
    bool impair;
    bool burst;
  } links[] = {{"perfect", false, false},
               {"impaired", true, false},
               {"impaired+burst", true, true}};
  const double side = side_for_diameter(20);
  for (const auto& link : links) {
    RunningStats frames, del, col, mac_time, e2e, waste;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario scenario = sloped_scenario(side, seed);
      const MacOptions mac;
      IsoMapOptions options;
      options.query = scaling_query();
      options.record_transmissions = true;
      if (link.impair) {
        ImpairmentConfig impair;
        impair.latency_s = 0.002;
        impair.jitter_s = 0.005;
        impair.dup_prob = 0.1;
        impair.reorder_prob = 0.1;
        impair.corrupt_prob = 0.05;
        options.link_impair = impair;
        options.link_arq.max_frame_attempts = 5;
      }
      if (link.burst) {
        options.link_burst = GilbertElliottParams{};
        options.link_seed = seed * 977;
      }
      const IsoMapRun run = run_isomap(scenario, options);
      Rng mac_rng(seed * 31);
      const MacStats stats =
          replay_with_contention(run.result.transmissions,
                                 scenario.deployment, scenario.graph, mac,
                                 mac_rng);
      frames.add(stats.frames_offered);
      del.add(stats.delivery_ratio() * 100.0);
      col.add(stats.collisions);
      mac_time.add(stats.duration_s(mac));
      e2e.add(run.result.e2e_last_latency_s);
      waste.add(stats.airtime_wasted_bytes / 1024.0);
    }
    impaired_table.row()
        .cell(link.label)
        .cell(frames.mean(), 0)
        .cell(del.mean(), 1)
        .cell(col.mean(), 0)
        .cell(mac_time.mean(), 2)
        .cell(e2e.mean(), 4)
        .cell(waste.mean(), 1);
  }
  emit_table("ext_mac_impair", impair_title, impaired_table);

  std::cout << "\n(The replay keeps the protocols' burst schedules; a "
               "production TinyDB would pace its epoch to survive, paying "
               "even more latency. The point is the contention *pressure* "
               "each protocol puts on the MAC, which Iso-Map's thin report "
               "flow barely exerts.)\n";
  return 0;
}
