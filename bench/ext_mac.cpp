// Extension: MAC-layer contention replay. The paper's simulation assumes
// a perfect link layer with TDMA slotting; here the recorded convergecast
// transmissions of Iso-Map and TinyDB are replayed through a p-persistent
// slotted-CSMA model (collisions destroy frames at the receiver,
// interference reaches 1.5x the radio range — the Z-MAC style contention
// inside each level's phase).
// Expectation: TinyDB's dense near-sink traffic collides heavily, so its
// effective collection time and wasted airtime blow up; Iso-Map's thin
// report flow stays close to its ideal schedule.

#include "bench/bench_common.hpp"
#include "mac/contention.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Extension", "slotted-CSMA contention replay of the convergecast",
         "TinyDB collides heavily near the sink; Iso-Map near-ideal");

  const int kSeeds = 2;
  Table table({"diameter", "protocol", "frames", "delivery_pct",
               "collisions", "mac_time_s", "ideal_time_s",
               "wasted_KB"});
  for (const int diameter : {10, 20, 30}) {
    const double side = side_for_diameter(diameter);
    RunningStats iso_frames, iso_del, iso_col, iso_time, iso_ideal, iso_waste;
    RunningStats tdb_frames, tdb_del, tdb_col, tdb_time, tdb_ideal, tdb_waste;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario random = sloped_scenario(side, seed);
      const Scenario grid = sloped_scenario(side, seed, /*grid=*/true);
      const MacOptions mac;

      IsoMapOptions iso_options;
      iso_options.query = scaling_query();
      iso_options.record_transmissions = true;
      const IsoMapRun iso = run_isomap(random, iso_options);
      Rng iso_rng(seed * 31);
      const MacStats iso_stats =
          replay_with_contention(iso.result.transmissions, random.deployment,
                                 random.graph, mac, iso_rng);
      iso_frames.add(iso_stats.frames_offered);
      iso_del.add(iso_stats.delivery_ratio() * 100.0);
      iso_col.add(iso_stats.collisions);
      iso_time.add(iso_stats.duration_s(mac));
      iso_ideal.add(iso.result.latency_s());
      iso_waste.add(iso_stats.airtime_wasted_bytes / 1024.0);

      TinyDBOptions tdb_options;
      tdb_options.record_transmissions = true;
      const TinyDBRun tdb = run_tinydb(grid, tdb_options);
      Rng tdb_rng(seed * 77);
      const MacStats tdb_stats =
          replay_with_contention(tdb.result.transmissions, grid.deployment,
                                 grid.graph, mac, tdb_rng);
      tdb_frames.add(tdb_stats.frames_offered);
      tdb_del.add(tdb_stats.delivery_ratio() * 100.0);
      tdb_col.add(tdb_stats.collisions);
      tdb_time.add(tdb_stats.duration_s(mac));
      tdb_ideal.add(tdb.result.latency_s());
      tdb_waste.add(tdb_stats.airtime_wasted_bytes / 1024.0);
    }
    table.row()
        .cell(diameter)
        .cell("Iso-Map")
        .cell(iso_frames.mean(), 0)
        .cell(iso_del.mean(), 1)
        .cell(iso_col.mean(), 0)
        .cell(iso_time.mean(), 2)
        .cell(iso_ideal.mean(), 2)
        .cell(iso_waste.mean(), 1);
    table.row()
        .cell(diameter)
        .cell("TinyDB")
        .cell(tdb_frames.mean(), 0)
        .cell(tdb_del.mean(), 1)
        .cell(tdb_col.mean(), 0)
        .cell(tdb_time.mean(), 2)
        .cell(tdb_ideal.mean(), 2)
        .cell(tdb_waste.mean(), 1);
  }
  emit_table("ext_mac", title, table);
  std::cout << "\n(The replay keeps the protocols' burst schedules; a "
               "production TinyDB would pace its epoch to survive, paying "
               "even more latency. The point is the contention *pressure* "
               "each protocol puts on the MAC, which Iso-Map's thin report "
               "flow barely exerts.)\n";
  return 0;
}
