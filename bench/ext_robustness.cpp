// Extension: robustness of Iso-Map beyond the paper's perfect-link,
// noise-free assumptions — sweeps (a) link loss with ARQ, (b) sonar
// reading noise, (c) localization error, measuring fidelity and the
// retransmission energy overhead.
// Expectation: graceful degradation; ARQ recovers moderate loss at a
// bounded energy premium; fidelity falls once localization error
// approaches the report spacing s_d.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const int kSeeds = 5;
  const Mica2Model energy;

  banner("Extension (a)", "link loss with ARQ (retries = 3)",
         "delivery recovered up to ~30% loss; tx energy premium bounded");
  Table a({"loss_pct", "delivered_reports", "delivered_sd", "accuracy_pct",
           "accuracy_sd", "tx_KB", "mean_energy_uJ"});
  for (const double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    RunningStats delivered, acc, txkb, uj;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario s = harbor_scenario(2500, seed);
      IsoMapOptions options;
      options.query = default_query(s.field, 4);
      options.link_loss = loss;
      options.link_retries = 3;
      options.link_seed = seed * 977;
      const IsoMapRun run = run_isomap(s, options);
      delivered.add(run.result.delivered_reports);
      acc.add(mapping_accuracy(run.result.map, s.field,
                               options.query.isolevels(), 70) *
              100.0);
      txkb.add(run.ledger.total_tx_bytes() / 1024.0);
      uj.add(energy.mean_node_energy_j(run.ledger) * 1e6);
    }
    a.row()
        .cell(loss * 100.0, 0)
        .cell(delivered.mean(), 1)
        .cell(delivered.stddev(), 1)
        .cell(acc.mean(), 1)
        .cell(acc.stddev(), 1)
        .cell(txkb.mean(), 2)
        .cell(uj.mean(), 2);
  }
  emit_table("ext_robustness_loss", a);

  banner("Extension (b)", "sonar reading noise (std dev, metres)",
         "mild noise absorbed by the regression; heavy noise floods the "
         "border region with spurious isoline nodes");
  Table b({"noise_std_m", "generated_reports", "sink_reports",
           "accuracy_pct", "accuracy_sd"});
  for (const double noise : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    RunningStats generated, sunk, acc;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      ScenarioConfig config;
      config.num_nodes = 2500;
      config.seed = seed;
      config.reading_noise_std = noise;
      const Scenario s = make_scenario(config);
      const IsoMapRun run = run_isomap(s, 4);
      generated.add(run.result.generated_reports);
      sunk.add(run.result.delivered_reports);
      acc.add(mapping_accuracy(run.result.map, s.field,
                               default_query(s.field, 4).isolevels(), 70) *
              100.0);
    }
    b.row()
        .cell(noise, 2)
        .cell(generated.mean(), 1)
        .cell(sunk.mean(), 1)
        .cell(acc.mean(), 1)
        .cell(acc.stddev(), 1);
  }
  emit_table("ext_robustness_noise", b);

  banner("Extension (c)", "localization error (std dev, field units)",
         "fidelity falls as error approaches the report spacing s_d = 4");
  Table c({"pos_err_std", "accuracy_pct", "accuracy_sd", "hausdorff_norm",
           "hausdorff_sd"});
  for (const double err : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    RunningStats acc, haus;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      ScenarioConfig config;
      config.num_nodes = 2500;
      config.seed = seed;
      config.position_error_std = err;
      const Scenario s = make_scenario(config);
      const IsoMapRun run = run_isomap(s, 4);
      const auto levels = default_query(s.field, 4).isolevels();
      acc.add(mapping_accuracy(run.result.map, s.field, levels, 70) * 100.0);
      const double h =
          isoline_hausdorff(run.result.map, s.field, levels, 120, 0.5);
      if (std::isfinite(h)) haus.add(h / 50.0);
    }
    c.row()
        .cell(err, 2)
        .cell(acc.mean(), 1)
        .cell(acc.stddev(), 1)
        .cell(haus.mean(), 4)
        .cell(haus.stddev(), 4);
  }
  emit_table("ext_robustness_localization", c);
  return 0;
}
