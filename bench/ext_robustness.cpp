// Extension: robustness of Iso-Map beyond the paper's perfect-link,
// noise-free assumptions — sweeps (a) link loss with ARQ, (b) sonar
// reading noise, (c) localization error, measuring fidelity and the
// retransmission energy overhead.
// Expectation: graceful degradation; ARQ recovers moderate loss at a
// bounded energy premium; fidelity falls once localization error
// approaches the report spacing s_d.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const int kSeeds = 5;
  const Mica2Model energy;

  const std::string titlea = banner("Extension (a)", "link loss with ARQ (retries = 3)",
         "delivery recovered up to ~30% loss; tx energy premium bounded");
  Table a({"loss_pct", "delivered_reports", "delivered_sd", "accuracy_pct",
           "accuracy_sd", "tx_KB", "mean_energy_uJ"});
  const std::vector<double> losses = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  struct LossTrial {
    double delivered, acc, txkb, uj;
  };
  const auto loss_runs = sweep_trials(
      losses.size(), kSeeds, [&](std::size_t pi, int, std::uint64_t seed) {
        const Scenario s = harbor_scenario(2500, seed);
        IsoMapOptions options;
        options.query = default_query(s.field, 4);
        options.link_loss = losses[pi];
        options.link_retries = 3;
        options.link_seed = seed * 977;
        const IsoMapRun run = run_isomap(s, options);
        return LossTrial{static_cast<double>(run.result.delivered_reports),
                         mapping_accuracy(run.result.map, s.field,
                                          options.query.isolevels(), 70) *
                             100.0,
                         run.ledger.total_tx_bytes() / 1024.0,
                         energy.mean_node_energy_j(run.ledger) * 1e6};
      });
  for (std::size_t pi = 0; pi < losses.size(); ++pi) {
    RunningStats delivered, acc, txkb, uj;
    for (const LossTrial& t : loss_runs[pi]) {
      delivered.add(t.delivered);
      acc.add(t.acc);
      txkb.add(t.txkb);
      uj.add(t.uj);
    }
    a.row()
        .cell(losses[pi] * 100.0, 0)
        .cell(delivered.mean(), 1)
        .cell(delivered.stddev(), 1)
        .cell(acc.mean(), 1)
        .cell(acc.stddev(), 1)
        .cell(txkb.mean(), 2)
        .cell(uj.mean(), 2);
  }
  emit_table("ext_robustness_loss", titlea, a);

  const std::string titleb = banner("Extension (b)", "sonar reading noise (std dev, metres)",
         "mild noise absorbed by the regression; heavy noise floods the "
         "border region with spurious isoline nodes");
  Table b({"noise_std_m", "generated_reports", "sink_reports",
           "accuracy_pct", "accuracy_sd"});
  const std::vector<double> noises = {0.0, 0.05, 0.1, 0.2, 0.4, 0.8};
  struct NoiseTrial {
    double generated, sunk, acc;
  };
  const auto noise_runs = sweep_trials(
      noises.size(), kSeeds, [&](std::size_t pi, int, std::uint64_t seed) {
        ScenarioConfig config;
        config.num_nodes = 2500;
        config.seed = seed;
        config.reading_noise_std = noises[pi];
        const Scenario s = make_scenario(config);
        const IsoMapRun run = run_isomap(s, 4);
        return NoiseTrial{
            static_cast<double>(run.result.generated_reports),
            static_cast<double>(run.result.delivered_reports),
            mapping_accuracy(run.result.map, s.field,
                             default_query(s.field, 4).isolevels(), 70) *
                100.0};
      });
  for (std::size_t pi = 0; pi < noises.size(); ++pi) {
    RunningStats generated, sunk, acc;
    for (const NoiseTrial& t : noise_runs[pi]) {
      generated.add(t.generated);
      sunk.add(t.sunk);
      acc.add(t.acc);
    }
    b.row()
        .cell(noises[pi], 2)
        .cell(generated.mean(), 1)
        .cell(sunk.mean(), 1)
        .cell(acc.mean(), 1)
        .cell(acc.stddev(), 1);
  }
  emit_table("ext_robustness_noise", titleb, b);

  const std::string titlec = banner("Extension (c)", "localization error (std dev, field units)",
         "fidelity falls as error approaches the report spacing s_d = 4");
  Table c({"pos_err_std", "accuracy_pct", "accuracy_sd", "hausdorff_norm",
           "hausdorff_sd"});
  const std::vector<double> errs = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
  struct LocTrial {
    double acc, haus;  // haus may be non-finite; filtered at accumulation.
  };
  const auto loc_runs = sweep_trials(
      errs.size(), kSeeds, [&](std::size_t pi, int, std::uint64_t seed) {
        ScenarioConfig config;
        config.num_nodes = 2500;
        config.seed = seed;
        config.position_error_std = errs[pi];
        const Scenario s = make_scenario(config);
        const IsoMapRun run = run_isomap(s, 4);
        const auto levels = default_query(s.field, 4).isolevels();
        return LocTrial{
            mapping_accuracy(run.result.map, s.field, levels, 70) * 100.0,
            isoline_hausdorff(run.result.map, s.field, levels, 120, 0.5)};
      });
  for (std::size_t pi = 0; pi < errs.size(); ++pi) {
    RunningStats acc, haus;
    for (const LocTrial& t : loc_runs[pi]) {
      acc.add(t.acc);
      if (std::isfinite(t.haus)) haus.add(t.haus / 50.0);
    }
    c.row()
        .cell(errs[pi], 2)
        .cell(acc.mean(), 1)
        .cell(acc.stddev(), 1)
        .cell(haus.mean(), 4)
        .cell(haus.stddev(), 4);
  }
  emit_table("ext_robustness_localization", titlec, c);
  return 0;
}
