// Extension: Iso-Map-as-a-service query throughput. Hosts a two-shard
// service (src/serve) and drives the per-tick query mix across three
// cache regimes — hot (frozen fields, full-set queries: the cache
// answers almost everything), mixed (drifting fields, half subset
// queries), and cold (fast drift, all subset queries: fingerprints churn
// every tick) — measuring served queries/sec and the response-latency
// tail. Expectation: the fingerprint-keyed cache turns the hot regime
// into sub-microsecond-median lookups, and even the cold regime's p99
// stays bounded by one parallel body build.
//
// Columns: queries / cache_hits / cache_misses / hit_rate_pct are
// deterministic (gated by check_bench_regression); queries_per_s /
// p50_us / p99_us are wall-clock (skipped by the gate's timing filter).
//
// Usage: ext_service [rounds] [queries_per_tick] (defaults 12, 64).

#include <chrono>
#include <cstdlib>
#include <string>

#include "bench/bench_common.hpp"
#include "serve/scenario.hpp"
#include "serve/service.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

struct Regime {
  const char* label;
  double drift_harbor;  ///< drift_per_round of the first shard.
  double drift_basin;   ///< drift_per_round of the second shard.
  double subset_fraction;
};

serve::ServiceScenario make_scenario_for(const Regime& regime, int rounds,
                                         int queries_per_tick) {
  serve::ServiceScenario sc;
  sc.name = std::string("bench_") + regime.label;
  sc.rounds = rounds;
  sc.cache_capacity = 4096;
  serve::DeploymentSpec harbor;
  harbor.name = "harbor";
  harbor.nodes = 400;
  harbor.field_side = 20.0;
  harbor.field = FieldKind::kHarbor;
  harbor.drift_target = FieldKind::kSilted;
  harbor.drift_per_round = regime.drift_harbor;
  harbor.seed = kBenchSeed;
  harbor.num_levels = 4;
  serve::DeploymentSpec basin = harbor;
  basin.name = "basin";
  basin.nodes = 300;
  basin.field = FieldKind::kMultiBasin;
  basin.drift_target = FieldKind::kSloped;
  basin.seed = kBenchSeed + 1;
  basin.num_levels = 3;
  basin.drift_per_round = regime.drift_basin;
  sc.deployments = {harbor, basin};
  sc.query_mix.queries_per_tick = queries_per_tick;
  sc.query_mix.subset_fraction = regime.subset_fraction;
  sc.query_mix.seed = kBenchSeed;
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 12;
  const int queries_per_tick = argc > 2 ? std::atoi(argv[2]) : 64;
  const std::string title =
      banner("Extension", "service query throughput vs cache-hit regime",
             "hot regime served from cache at sub-microsecond medians; "
             "cold regime bounded by parallel body builds");

  // Drift 0.07/round keeps every alpha within a 12-round run distinct
  // (the ping-pong first revisits a value after ~15 rounds), so a
  // drifting shard's fingerprints churn every tick. The hit ratio then
  // falls monotonically: hot = both shards frozen, mixed = one shard
  // drifting, cold = both drifting + fully fragmented subset queries.
  const Regime regimes[] = {
      {"hot", 0.0, 0.0, 0.0},
      {"mixed", 0.07, 0.0, 0.5},
      {"cold", 0.07, 0.07, 1.0},
  };

  Table table({"mix", "rounds", "queries", "cache_hits", "cache_misses",
               "hit_rate_pct", "queries_per_s", "p50_us", "p99_us"});
  for (const Regime& regime : regimes) {
    serve::IsoMapService service(
        make_scenario_for(regime, rounds, queries_per_tick));
    double serve_s = 0.0;
    for (int r = 0; r < rounds; ++r) {
      service.tick();
      const auto mix = service.mix_for_tick();
      const auto t0 = std::chrono::steady_clock::now();
      service.serve_batch(mix);
      serve_s += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    }
    const serve::ServiceStats& stats = service.stats();
    const double hit_rate =
        stats.queries > 0 ? 100.0 * static_cast<double>(stats.cache_hits) /
                                static_cast<double>(stats.queries)
                          : 0.0;
    table.row()
        .cell(regime.label)
        .cell(service.rounds_done())
        .cell(stats.queries)
        .cell(stats.cache_hits)
        .cell(stats.cache_misses)
        .cell(hit_rate, 1)
        .cell(static_cast<double>(stats.queries) /
                  std::max(serve_s, 1e-9),
              0)
        .cell(service.latency_all().quantile(0.5), 2)
        .cell(service.latency_all().quantile(0.99), 2);
  }

  JsonValue payload = JsonValue::object();
  payload["bench"] = JsonValue(std::string("ext_service"));
  payload["title"] = JsonValue(title);
  payload["seed_base"] = JsonValue(kBenchSeed);
  payload["rounds"] = JsonValue(rounds);
  payload["queries_per_tick"] = JsonValue(queries_per_tick);
  payload["table"] = table_json(table);
  table.print(std::cout);
  const std::string path = write_bench_json("ext_service", payload);
  if (!path.empty()) std::cout << "[bench] wrote " << path << "\n";
  return 0;
}
