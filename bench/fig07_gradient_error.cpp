// Fig. 7: error between the regression-estimated gradient direction and
// the true isoline normal, as a function of the average node degree.
// Paper expectation: the error drops rapidly with degree; at the typical
// connected-deployment degree of ~7 it is suppressed to within ~5 deg.

#include "bench/bench_common.hpp"
#include "isomap/node_selection.hpp"
#include "isomap/regression.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Fig. 7", "gradient direction error vs average node degree",
         "error falls quickly; within ~5 deg at degree >= 7");

  Table table({"target_degree", "measured_degree", "mean_err_deg",
               "p90_err_deg", "max_err_deg", "samples"});

  for (int degree = 4; degree <= 16; degree += 2) {
    // Radio range for a target mean degree at unit density:
    // deg = pi r^2 => r = sqrt(deg / pi).
    const double radio = std::sqrt(degree / M_PI);
    RunningStats err;
    SampleSet samples;
    double measured_degree = 0.0;
    int runs = 0;
    for (std::uint64_t trial = 1; trial <= 5; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      ScenarioConfig config;
      config.num_nodes = 2500;
      config.field_side = 50.0;
      config.field = FieldKind::kRandom;
      config.radio_range = radio;
      config.seed = seed;
      const Scenario s = make_scenario(config);
      measured_degree += s.graph.average_degree();
      ++runs;

      const ContourQuery query = default_query(s.field, 4);
      const auto selected =
          select_isoline_nodes(s.graph, s.readings, query);
      for (const auto& entry : selected) {
        const Node& node = s.deployment.node(entry.node);
        std::vector<FieldSample> fit_samples{
            {node.pos, s.readings[static_cast<std::size_t>(entry.node)]}};
        for (int nb : s.graph.neighbours(entry.node))
          fit_samples.push_back(
              {s.deployment.node(nb).pos,
               s.readings[static_cast<std::size_t>(nb)]});
        const auto fit = fit_plane(fit_samples);
        if (!fit) continue;
        if (s.field.gradient(node.pos).norm() < 0.02) continue;
        const double e =
            gradient_error_deg(s.field, node.pos, fit->descent_direction());
        err.add(e);
        samples.add(e);
      }
    }
    table.row()
        .cell(degree)
        .cell(measured_degree / runs, 2)
        .cell(err.mean(), 2)
        .cell(samples.quantile(0.9), 2)
        .cell(err.max(), 2)
        .cell(err.count());
  }
  emit_table("fig07", title, table);
  return 0;
}
