// Fig. 9: contour regions built under different report densities. The
// in-network filter thresholds control how many isoline reports reach the
// sink; evenly filtering reports should not degrade the map by much.
// Paper expectation: a map built from a filtered (sparser) report set is
// visually and quantitatively close to the unfiltered one.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Fig. 9", "contour regions under different report densities",
         "evenly filtered reports barely degrade the map");

  const Scenario s = harbor_scenario(2500, 1);
  const ContourQuery base = default_query(s.field, 4);
  const auto levels = base.isolevels();

  struct Setting {
    const char* name;
    bool filtering;
    double sa_deg;
    double sd;
  };
  const Setting settings[] = {
      {"unfiltered (all isoline reports)", false, 0.0, 0.0},
      {"paper default (sa=30 deg, sd=4)", true, 30.0, 4.0},
      {"aggressive (sa=60 deg, sd=8)", true, 60.0, 8.0},
  };

  Table table({"setting", "reports_at_sink", "traffic_KB", "accuracy_pct"});
  const int res = 40;
  const LevelMap truth = LevelMap::ground_truth(s.field, levels, res, res);
  std::vector<LevelMap> maps;
  for (const auto& setting : settings) {
    IsoMapOptions options;
    options.query = base;
    options.query.enable_filtering = setting.filtering;
    options.query.angular_separation_deg = setting.sa_deg;
    options.query.distance_separation = setting.sd;
    const IsoMapRun run = run_isomap(s, options);
    const double accuracy =
        mapping_accuracy(run.result.map, s.field, levels, 80);
    table.row()
        .cell(setting.name)
        .cell(run.result.delivered_reports)
        .cell(run.result.report_traffic_bytes / 1024.0, 2)
        .cell(accuracy * 100.0, 1);
    maps.push_back(LevelMap::rasterize(
        s.field.bounds(), res, res,
        [&](Vec2 p) { return run.result.map.level_index(p); }));
  }
  emit_table("fig09", title, table);

  std::cout << "\n"
            << ascii_render_pair(truth, maps[0], "ground truth",
                                 "unfiltered")
            << "\n"
            << ascii_render_pair(maps[1], maps[2], "default filter",
                                 "aggressive filter");
  return 0;
}
