// Fig. 10: the contour maps created by TinyDB and Iso-Map over the harbor
// section under normalized node densities 4, 1 and 0.16 (10000, 2500 and
// 400 nodes on the 50x50 field).
// Paper expectation: both protocols degrade as density drops but remain
// usable; Iso-Map's sink receives on the order of 112 / 89 / 49 reports —
// not linear in density because the in-network filter razes redundancy.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Fig. 10", "contour maps: TinyDB vs Iso-Map across node densities",
         "comparable maps; Iso-Map report count stays ~50-120, sublinear "
         "in density");

  const int kNodes[] = {10000, 2500, 400};
  const double kDensity[] = {4.0, 1.0, 0.16};

  Table table({"density", "nodes", "tinydb_reports", "tinydb_acc_pct",
               "isomap_sink_reports", "isomap_acc_pct"});

  const int res = 40;
  for (int i = 0; i < 3; ++i) {
    const Scenario grid = harbor_scenario(kNodes[i], 7, /*grid=*/true);
    const Scenario random = harbor_scenario(kNodes[i], 7, /*grid=*/false);
    const ContourQuery query = default_query(random.field, 4);
    const auto levels = query.isolevels();

    const TinyDBRun tinydb = run_tinydb(grid);
    const IsoMapRun isomap = run_isomap(random, 4);

    const double t_acc = tinydb_accuracy(tinydb, grid.field, levels);
    const double i_acc =
        mapping_accuracy(isomap.result.map, random.field, levels, 80);

    table.row()
        .cell(kDensity[i], 2)
        .cell(kNodes[i])
        .cell(tinydb.result.reports_delivered)
        .cell(t_acc * 100.0, 1)
        .cell(isomap.result.delivered_reports)
        .cell(i_acc * 100.0, 1);

    const LevelMap t_map = LevelMap::rasterize(
        grid.field.bounds(), res, res, [&](Vec2 p) {
          return tinydb.result.level_index(p, levels);
        });
    const LevelMap i_map = LevelMap::rasterize(
        random.field.bounds(), res, res,
        [&](Vec2 p) { return isomap.result.map.level_index(p); });
    std::cout << "\n--- density " << kDensity[i] << " (" << kNodes[i]
              << " nodes) ---\n"
              << ascii_render_pair(t_map, i_map, "TinyDB", "Iso-Map");
    write_pgm(t_map, "fig10_tinydb_d" + std::to_string(i) + ".pgm");
    write_pgm(i_map, "fig10_isomap_d" + std::to_string(i) + ".pgm");
  }
  std::cout << "\n";
  emit_table("fig10", title, table);
  std::cout << "\nPGM renders written to fig10_*.pgm\n";
  return 0;
}
