// Fig. 11: contour mapping accuracy against (a) node density and (b) node
// failures, for TinyDB and Iso-Map, including the effect of the border
// range epsilon.
// Paper expectation: (a) accuracy of both protocols climbs above ~80% as
// density reaches 1 and beyond, Iso-Map slightly below TinyDB throughout;
// a large epsilon helps at low density but hurts at high density.
// (b) both degrade with failures and become unusable beyond ~40%; a large
// epsilon adds failure tolerance at the cost of peak fidelity.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

double isomap_accuracy_run(const Scenario& s, double epsilon_fraction) {
  IsoMapOptions options;
  options.query = default_query(s.field, 4);
  options.query.epsilon_fraction = epsilon_fraction;
  const IsoMapRun run = run_isomap(s, options);
  return mapping_accuracy(run.result.map, s.field,
                          options.query.isolevels(), 80);
}

struct AccuracyTrial {
  double tinydb, iso, iso_wide;
};

}  // namespace

int main() {
  const int kSeeds = 3;

  const std::string titlea = banner("Fig. 11a", "mapping accuracy vs node density",
         ">80% for density >= 1; Iso-Map slightly below TinyDB; large "
         "epsilon helps only at low density");
  Table a({"density", "nodes", "tinydb_pct", "isomap_pct",
           "isomap_eps20_pct"});
  const std::vector<double> densities = {0.16, 0.36, 0.64, 1.0, 2.0, 4.0};
  const auto density_runs = sweep_trials(
      densities.size(), kSeeds, [&](std::size_t pi, int, std::uint64_t seed) {
        const int n = static_cast<int>(densities[pi] * 2500.0 + 0.5);
        const Scenario grid = harbor_scenario(n, seed, /*grid=*/true);
        const Scenario random = harbor_scenario(n, seed);
        const ContourQuery query = default_query(grid.field, 4);
        return AccuracyTrial{
            tinydb_accuracy(run_tinydb(grid), grid.field, query.isolevels()),
            isomap_accuracy_run(random, 0.05),
            isomap_accuracy_run(random, 0.20)};
      });
  for (std::size_t pi = 0; pi < densities.size(); ++pi) {
    double tinydb_acc = 0, iso_acc = 0, iso_wide_acc = 0;
    for (const AccuracyTrial& t : density_runs[pi]) {
      tinydb_acc += t.tinydb;
      iso_acc += t.iso;
      iso_wide_acc += t.iso_wide;
    }
    a.row()
        .cell(densities[pi], 2)
        .cell(static_cast<int>(densities[pi] * 2500.0 + 0.5))
        .cell(tinydb_acc / kSeeds * 100.0, 1)
        .cell(iso_acc / kSeeds * 100.0, 1)
        .cell(iso_wide_acc / kSeeds * 100.0, 1);
  }
  emit_table("fig11a", titlea, a);

  const std::string titleb = banner("Fig. 11b", "mapping accuracy vs node-failure ratio",
         "both degrade; unusable beyond ~40% failures; large epsilon is "
         "more failure-tolerant");
  Table b({"failure_pct", "tinydb_pct", "isomap_pct", "isomap_eps20_pct"});
  const std::vector<double> failure_fracs = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  const auto failure_runs = sweep_trials(
      failure_fracs.size(), kSeeds,
      [&](std::size_t pi, int, std::uint64_t seed) {
        const double failures = failure_fracs[pi];
        const Scenario grid =
            harbor_scenario(2500, seed, /*grid=*/true, failures);
        const Scenario random =
            harbor_scenario(2500, seed, /*grid=*/false, failures);
        const ContourQuery query = default_query(grid.field, 4);
        return AccuracyTrial{
            tinydb_accuracy(run_tinydb(grid), grid.field, query.isolevels()),
            isomap_accuracy_run(random, 0.05),
            isomap_accuracy_run(random, 0.20)};
      });
  for (std::size_t pi = 0; pi < failure_fracs.size(); ++pi) {
    double tinydb_acc = 0, iso_acc = 0, iso_wide_acc = 0;
    for (const AccuracyTrial& t : failure_runs[pi]) {
      tinydb_acc += t.tinydb;
      iso_acc += t.iso;
      iso_wide_acc += t.iso_wide;
    }
    b.row()
        .cell(failure_fracs[pi] * 100.0, 0)
        .cell(tinydb_acc / kSeeds * 100.0, 1)
        .cell(iso_acc / kSeeds * 100.0, 1)
        .cell(iso_wide_acc / kSeeds * 100.0, 1);
  }
  emit_table("fig11b", titleb, b);
  return 0;
}
