// Fig. 12: Hausdorff distance between the real isolines and the estimated
// isolines, against (a) node density and (b) node failures. Iso-Map is
// run on both random and grid deployments.
// Paper expectation: irregularity grows as density falls and failures
// rise; Iso-Map benefits from grid deployment; TinyDB's irregularity is
// relatively stable with density (proportional to grid size) but is more
// vulnerable to failures. Distances are normalized to the 50x50 field.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

double isomap_hausdorff_run(const Scenario& s) {
  const IsoMapRun run = run_isomap(s, 4);
  const ContourQuery query = default_query(s.field, 4);
  const double h =
      isoline_hausdorff(run.result.map, s.field, query.isolevels(), 150, 0.5);
  return h / 50.0;  // Normalize to the field side, as the paper does.
}

// Per-trial distances; non-finite values are filtered at accumulation.
struct HausdorffTrial {
  double tinydb, iso_random, iso_grid;
};

HausdorffTrial hausdorff_trial(const Scenario& grid, const Scenario& random) {
  const ContourQuery query = isomap::default_query(grid.field, 4);
  return {isomap::bench::tinydb_hausdorff(isomap::run_tinydb(grid), grid.field,
                                          query.isolevels()) /
              50.0,
          isomap_hausdorff_run(random), isomap_hausdorff_run(grid)};
}

}  // namespace

int main() {
  const int kSeeds = 5;

  const std::string titlea = banner("Fig. 12a", "normalized Hausdorff distance vs node density",
         "grows as density falls; grid helps Iso-Map; TinyDB scales with "
         "grid cell size");
  Table a({"density", "nodes", "tinydb", "isomap_random", "isomap_grid"});
  const std::vector<double> densities = {0.16, 0.36, 0.64, 1.0, 2.0, 4.0};
  const auto density_runs = sweep_trials(
      densities.size(), kSeeds, [&](std::size_t pi, int, std::uint64_t seed) {
        const int n = static_cast<int>(densities[pi] * 2500.0 + 0.5);
        return hausdorff_trial(harbor_scenario(n, seed, /*grid=*/true),
                               harbor_scenario(n, seed));
      });
  for (std::size_t pi = 0; pi < densities.size(); ++pi) {
    RunningStats tinydb_h, iso_rand_h, iso_grid_h;
    for (const HausdorffTrial& t : density_runs[pi]) {
      if (std::isfinite(t.tinydb)) tinydb_h.add(t.tinydb);
      if (std::isfinite(t.iso_random)) iso_rand_h.add(t.iso_random);
      if (std::isfinite(t.iso_grid)) iso_grid_h.add(t.iso_grid);
    }
    a.row()
        .cell(densities[pi], 2)
        .cell(static_cast<int>(densities[pi] * 2500.0 + 0.5))
        .cell(tinydb_h.mean(), 4)
        .cell(iso_rand_h.mean(), 4)
        .cell(iso_grid_h.mean(), 4);
  }
  emit_table("fig12a", titlea, a);

  const std::string titleb = banner("Fig. 12b", "normalized Hausdorff distance vs node failures",
         "grows with failures; TinyDB more vulnerable at high failure "
         "rates");
  Table b({"failure_pct", "tinydb", "isomap_random", "isomap_grid"});
  const std::vector<double> failure_fracs = {0.0, 0.1, 0.2, 0.3, 0.4};
  const auto failure_runs = sweep_trials(
      failure_fracs.size(), kSeeds,
      [&](std::size_t pi, int, std::uint64_t seed) {
        const double failures = failure_fracs[pi];
        return hausdorff_trial(
            harbor_scenario(2500, seed, /*grid=*/true, failures),
            harbor_scenario(2500, seed, /*grid=*/false, failures));
      });
  for (std::size_t pi = 0; pi < failure_fracs.size(); ++pi) {
    RunningStats tinydb_h, iso_rand_h, iso_grid_h;
    for (const HausdorffTrial& t : failure_runs[pi]) {
      if (std::isfinite(t.tinydb)) tinydb_h.add(t.tinydb);
      if (std::isfinite(t.iso_random)) iso_rand_h.add(t.iso_random);
      if (std::isfinite(t.iso_grid)) iso_grid_h.add(t.iso_grid);
    }
    b.row()
        .cell(failure_fracs[pi] * 100.0, 0)
        .cell(tinydb_h.mean(), 4)
        .cell(iso_rand_h.mean(), 4)
        .cell(iso_grid_h.mean(), 4);
  }
  emit_table("fig12b", titleb, b);
  return 0;
}
