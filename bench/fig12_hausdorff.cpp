// Fig. 12: Hausdorff distance between the real isolines and the estimated
// isolines, against (a) node density and (b) node failures. Iso-Map is
// run on both random and grid deployments.
// Paper expectation: irregularity grows as density falls and failures
// rise; Iso-Map benefits from grid deployment; TinyDB's irregularity is
// relatively stable with density (proportional to grid size) but is more
// vulnerable to failures. Distances are normalized to the 50x50 field.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

double isomap_hausdorff_run(const Scenario& s) {
  const IsoMapRun run = run_isomap(s, 4);
  const ContourQuery query = default_query(s.field, 4);
  const double h =
      isoline_hausdorff(run.result.map, s.field, query.isolevels(), 150, 0.5);
  return h / 50.0;  // Normalize to the field side, as the paper does.
}

}  // namespace

int main() {
  const int kSeeds = 5;

  banner("Fig. 12a", "normalized Hausdorff distance vs node density",
         "grows as density falls; grid helps Iso-Map; TinyDB scales with "
         "grid cell size");
  Table a({"density", "nodes", "tinydb", "isomap_random", "isomap_grid"});
  for (const double density : {0.16, 0.36, 0.64, 1.0, 2.0, 4.0}) {
    const int n = static_cast<int>(density * 2500.0 + 0.5);
    RunningStats tinydb_h, iso_rand_h, iso_grid_h;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario grid = harbor_scenario(n, seed, /*grid=*/true);
      const Scenario random = harbor_scenario(n, seed);
      const ContourQuery query = default_query(grid.field, 4);
      const double th = tinydb_hausdorff(run_tinydb(grid), grid.field,
                                         query.isolevels()) /
                        50.0;
      if (std::isfinite(th)) tinydb_h.add(th);
      const double hr = isomap_hausdorff_run(random);
      if (std::isfinite(hr)) iso_rand_h.add(hr);
      const double hg = isomap_hausdorff_run(grid);
      if (std::isfinite(hg)) iso_grid_h.add(hg);
    }
    a.row()
        .cell(density, 2)
        .cell(n)
        .cell(tinydb_h.mean(), 4)
        .cell(iso_rand_h.mean(), 4)
        .cell(iso_grid_h.mean(), 4);
  }
  emit_table("fig12a", a);

  banner("Fig. 12b", "normalized Hausdorff distance vs node failures",
         "grows with failures; TinyDB more vulnerable at high failure "
         "rates");
  Table b({"failure_pct", "tinydb", "isomap_random", "isomap_grid"});
  for (const double failures : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    RunningStats tinydb_h, iso_rand_h, iso_grid_h;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario grid =
          harbor_scenario(2500, seed, /*grid=*/true, failures);
      const Scenario random =
          harbor_scenario(2500, seed, /*grid=*/false, failures);
      const ContourQuery query = default_query(grid.field, 4);
      const double th = tinydb_hausdorff(run_tinydb(grid), grid.field,
                                         query.isolevels()) /
                        50.0;
      if (std::isfinite(th)) tinydb_h.add(th);
      const double hr = isomap_hausdorff_run(random);
      if (std::isfinite(hr)) iso_rand_h.add(hr);
      const double hg = isomap_hausdorff_run(grid);
      if (std::isfinite(hg)) iso_grid_h.add(hg);
    }
    b.row()
        .cell(failures * 100.0, 0)
        .cell(tinydb_h.mean(), 4)
        .cell(iso_rand_h.mean(), 4)
        .cell(iso_grid_h.mean(), 4);
  }
  emit_table("fig12b", b);
  return 0;
}
