// Fig. 13: the effect of the in-network filter thresholds s_a (angular
// separation) and s_d (distance separation) on (a) the number of reports
// reaching the sink and (b) the mapping accuracy.
// Paper expectation: higher tolerances cut reports sharply while accuracy
// falls only gently — the sa=30deg / sd=4 setting keeps high accuracy with
// substantial traffic savings.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Fig. 13", "reports and accuracy vs filter thresholds (sa, sd)",
         "reports drop fast with tolerance; accuracy degrades slowly; "
         "sa=30,sd=4 is a good trade-off");

  const int kSeeds = 3;
  Table table({"sa_deg", "sd", "reports_at_sink", "traffic_KB",
               "accuracy_pct"});

  const double sa_values[] = {0.0, 10.0, 20.0, 30.0, 45.0, 60.0};
  const double sd_values[] = {1.0, 2.0, 4.0, 8.0};

  for (double sa : sa_values) {
    for (double sd : sd_values) {
      RunningStats reports, kb, acc;
      for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
        const std::uint64_t seed = trial_seed(trial);
        const Scenario s = harbor_scenario(2500, seed);
        IsoMapOptions options;
        options.query = default_query(s.field, 4);
        options.query.enable_filtering = sa > 0.0;
        options.query.angular_separation_deg = sa;
        options.query.distance_separation = sd;
        const IsoMapRun run = run_isomap(s, options);
        reports.add(run.result.delivered_reports);
        kb.add(run.result.report_traffic_bytes / 1024.0);
        acc.add(mapping_accuracy(run.result.map, s.field,
                                 options.query.isolevels(), 80) *
                100.0);
      }
      table.row()
          .cell(sa, 0)
          .cell(sd, 0)
          .cell(reports.mean(), 1)
          .cell(kb.mean(), 2)
          .cell(acc.mean(), 1);
    }
  }
  emit_table("fig13", title, table);
  std::cout << "\n(sa = 0 disables filtering; that row is the unfiltered "
               "baseline.)\n";
  return 0;
}
