// Fig. 14: network traffic overhead against (a) the network diameter
// (10-50 hops at density 1) and (b) the node density, for TinyDB, INLR
// and Iso-Map.
// Paper expectation: TinyDB and INLR traffic grows rapidly with both
// diameter and density (O(n) reports, each travelling many hops); Iso-Map
// stays far below with a much smaller growth factor.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const int kSeeds = 2;

  const std::string titlea = banner("Fig. 14a", "traffic (KB) vs network diameter at density 1",
         "TinyDB/INLR grow fast; Iso-Map nearly flat in comparison");
  Table a({"diameter_hops", "measured_depth", "nodes", "tinydb_KB",
           "inlr_KB", "isomap_KB"});
  for (const int diameter : {10, 20, 30, 40, 50}) {
    const double side = side_for_diameter(diameter);
    RunningStats tinydb_kb, inlr_kb, iso_kb, depth;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario grid = sloped_scenario(side, seed, /*grid=*/true);
      const Scenario random = sloped_scenario(side, seed);
      depth.add(random.tree.depth());
      tinydb_kb.add(run_tinydb(grid).result.traffic_bytes / 1024.0);
      inlr_kb.add(run_inlr(grid).result.traffic_bytes / 1024.0);
      IsoMapOptions options;
      options.query = scaling_query();
      iso_kb.add(run_isomap(random, options).result.report_traffic_bytes /
                 1024.0);
    }
    a.row()
        .cell(diameter)
        .cell(depth.mean(), 1)
        .cell(static_cast<int>(side * side))
        .cell(tinydb_kb.mean(), 1)
        .cell(inlr_kb.mean(), 1)
        .cell(iso_kb.mean(), 1);
  }
  emit_table("fig14a", titlea, a);

  const std::string titleb = banner("Fig. 14b", "traffic (KB) vs node density (50x50 field)",
         "all grow with density, Iso-Map with a much smaller factor");
  Table b({"density", "nodes", "tinydb_KB", "inlr_KB", "isomap_KB"});
  for (const double density : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    const int n = static_cast<int>(density * 2500.0 + 0.5);
    RunningStats tinydb_kb, inlr_kb, iso_kb;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      ScenarioConfig config;
      config.num_nodes = n;
      config.field_side = 50.0;
      config.field = FieldKind::kSloped;
      config.seed = seed;
      ScenarioConfig grid_config = config;
      grid_config.grid_deployment = true;
      const Scenario grid = make_scenario(grid_config);
      const Scenario random = make_scenario(config);
      tinydb_kb.add(run_tinydb(grid).result.traffic_bytes / 1024.0);
      inlr_kb.add(run_inlr(grid).result.traffic_bytes / 1024.0);
      IsoMapOptions options;
      options.query = scaling_query();
      iso_kb.add(run_isomap(random, options).result.report_traffic_bytes /
                 1024.0);
    }
    b.row()
        .cell(density, 2)
        .cell(n)
        .cell(tinydb_kb.mean(), 1)
        .cell(inlr_kb.mean(), 1)
        .cell(iso_kb.mean(), 1);
  }
  emit_table("fig14b", titleb, b);
  return 0;
}
