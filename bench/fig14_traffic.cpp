// Fig. 14: network traffic overhead against (a) the network diameter
// (10-50 hops at density 1) and (b) the node density, for TinyDB, INLR
// and Iso-Map.
// Paper expectation: TinyDB and INLR traffic grows rapidly with both
// diameter and density (O(n) reports, each travelling many hops); Iso-Map
// stays far below with a much smaller growth factor.

#include <cmath>

#include "bench/bench_common.hpp"
#include "eval/heatmap.hpp"
#include "obs/node_telemetry.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const int kSeeds = 2;

  const std::string titlea = banner("Fig. 14a", "traffic (KB) vs network diameter at density 1",
         "TinyDB/INLR grow fast; Iso-Map nearly flat in comparison");
  Table a({"diameter_hops", "measured_depth", "nodes", "tinydb_KB",
           "inlr_KB", "isomap_KB"});
  for (const int diameter : {10, 20, 30, 40, 50}) {
    const double side = side_for_diameter(diameter);
    RunningStats tinydb_kb, inlr_kb, iso_kb, depth;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario grid = sloped_scenario(side, seed, /*grid=*/true);
      const Scenario random = sloped_scenario(side, seed);
      depth.add(random.tree.depth());
      tinydb_kb.add(run_tinydb(grid).result.traffic_bytes / 1024.0);
      inlr_kb.add(run_inlr(grid).result.traffic_bytes / 1024.0);
      IsoMapOptions options;
      options.query = scaling_query();
      iso_kb.add(run_isomap(random, options).result.report_traffic_bytes /
                 1024.0);
    }
    a.row()
        .cell(diameter)
        .cell(depth.mean(), 1)
        .cell(static_cast<int>(side * side))
        .cell(tinydb_kb.mean(), 1)
        .cell(inlr_kb.mean(), 1)
        .cell(iso_kb.mean(), 1);
  }
  emit_table("fig14a", titlea, a);

  const std::string titleb = banner("Fig. 14b", "traffic (KB) vs node density (50x50 field)",
         "all grow with density, Iso-Map with a much smaller factor");
  Table b({"density", "nodes", "tinydb_KB", "inlr_KB", "isomap_KB"});
  for (const double density : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    const int n = static_cast<int>(density * 2500.0 + 0.5);
    RunningStats tinydb_kb, inlr_kb, iso_kb;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      ScenarioConfig config;
      config.num_nodes = n;
      config.field_side = 50.0;
      config.field = FieldKind::kSloped;
      config.seed = seed;
      ScenarioConfig grid_config = config;
      grid_config.grid_deployment = true;
      const Scenario grid = make_scenario(grid_config);
      const Scenario random = make_scenario(config);
      tinydb_kb.add(run_tinydb(grid).result.traffic_bytes / 1024.0);
      inlr_kb.add(run_inlr(grid).result.traffic_bytes / 1024.0);
      IsoMapOptions options;
      options.query = scaling_query();
      iso_kb.add(run_isomap(random, options).result.report_traffic_bytes /
                 1024.0);
    }
    b.row()
        .cell(density, 2)
        .cell(n)
        .cell(tinydb_kb.mean(), 1)
        .cell(inlr_kb.mean(), 1)
        .cell(iso_kb.mean(), 1);
  }
  emit_table("fig14b", titleb, b);

  // Where Fig. 14 totals the traffic, this table localises it: one
  // representative run at the largest diameter with the per-node flight
  // recorder installed, collapsed by hop-ring distance to the sink.
  // Theorem 4.1 says the reports crossing any ring trace O(sqrt(n))
  // contour length, so total_tx / sqrt(n) should stay bounded across
  // rings rather than blowing up near the sink the way an O(n)
  // every-node-reports scheme (TinyDB) must.
  const std::string titler =
      banner("Fig. 14 rings",
             "per-ring report traffic, one telemetry run at diameter 50",
             "ring totals stay O(sqrt(n)): tx_over_sqrt_n bounded, no "
             "near-sink blowup");
  {
    const Scenario s = sloped_scenario(side_for_diameter(50), trial_seed(1));
    IsoMapOptions options;
    options.query = scaling_query();
    obs::NodeTelemetry telemetry(s.graph.size());
    run_isomap(s, options, nullptr, &telemetry);
    std::vector<int> hops;
    std::vector<double> tx;
    hops.reserve(static_cast<std::size_t>(s.graph.size()));
    tx.reserve(static_cast<std::size_t>(s.graph.size()));
    for (int v = 0; v < s.graph.size(); ++v) {
      hops.push_back(telemetry.hops(v));
      tx.push_back(telemetry.tx_bytes(v));
    }
    const auto rings = aggregate_by_ring(hops, tx);
    const double sqrt_n = std::sqrt(static_cast<double>(s.graph.size()));
    Table r({"hops", "nodes", "total_tx_B", "mean_tx_B", "tx_over_sqrt_n"});
    for (const RingAggregate& ring : rings)
      r.row()
          .cell(ring.hops)
          .cell(ring.node_count)
          .cell(ring.total, 1)
          .cell(ring.mean(), 1)
          .cell(ring.total / sqrt_n, 2);
    emit_table("fig14_rings", titler, r);
    const std::string ring_path = (results_dir() / "fig14_rings.csv").string();
    if (save_text(ring_path, ring_csv(rings)))
      std::cout << "[bench] wrote " << ring_path << "\n";
  }
  return 0;
}
