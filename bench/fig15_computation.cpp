// Fig. 15: per-node computational intensity against the network diameter
// for TinyDB, INLR and Iso-Map, plus the paper's amplified Iso-Map view.
// Paper expectation: INLR's per-node computation is orders of magnitude
// higher and grows with network size; TinyDB and Iso-Map stay low, and
// the amplified view shows Iso-Map's per-node cost does not grow with the
// network (constant per-node overhead).

#include <array>

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const int kSeeds = 2;

  const std::string titlea = banner("Fig. 15a", "mean per-node computation (ops) vs network diameter",
         "INLR huge and growing; TinyDB and Iso-Map low");
  Table a({"diameter_hops", "nodes", "tinydb_ops", "inlr_ops",
           "isomap_ops"});
  std::vector<std::array<double, 3>> iso_series;
  std::vector<int> diameters{10, 20, 30, 40, 50};
  for (const int diameter : diameters) {
    const double side = side_for_diameter(diameter);
    RunningStats tinydb_ops, inlr_ops, iso_ops;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario grid = sloped_scenario(side, seed, /*grid=*/true);
      const Scenario random = sloped_scenario(side, seed);
      tinydb_ops.add(run_tinydb(grid).ledger.mean_ops());
      inlr_ops.add(run_inlr(grid).ledger.mean_ops());
      IsoMapOptions options;
      options.query = scaling_query();
      iso_ops.add(run_isomap(random, options).ledger.mean_ops());
    }
    a.row()
        .cell(diameter)
        .cell(static_cast<int>(side * side))
        .cell(tinydb_ops.mean(), 1)
        .cell(inlr_ops.mean(), 1)
        .cell(iso_ops.mean(), 2);
    iso_series.push_back({static_cast<double>(diameter), iso_ops.mean(),
                          iso_ops.max()});
  }
  emit_table("fig15a", titlea, a);

  const std::string titleb = banner("Fig. 15b", "amplified view: Iso-Map per-node computation",
         "flat — per-node cost does not grow with network size");
  Table b({"diameter_hops", "isomap_mean_ops", "isomap_max_seed_ops"});
  for (const auto& row : iso_series)
    b.row().cell(static_cast<int>(row[0])).cell(row[1], 2).cell(row[2], 2);
  emit_table("fig15b", titleb, b);
  return 0;
}
