// Fig. 16: per-node energy consumption for one contour-mapping round
// under TinyDB, INLR and Iso-Map, against network size, using the MICA2
// energy model (CC1000 radio at 38.4 kbps: 42 mW tx / 29 mW rx; ATmega128
// at 33 mW, 242 MIPS/W).
// Paper expectation: Iso-Map's per-node energy is far below both
// baselines, and stays near-flat as the network grows while TinyDB and
// INLR climb.

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Fig. 16", "mean per-node energy (mJ) vs network size",
         "Iso-Map lowest and near-flat; TinyDB/INLR grow with size");

  const Mica2Model energy;
  const int kSeeds = 2;
  Table table({"diameter_hops", "nodes", "tinydb_mJ", "inlr_mJ",
               "isomap_mJ"});
  for (const int diameter : {10, 20, 30, 40, 50}) {
    const double side = side_for_diameter(diameter);
    RunningStats tinydb_mj, inlr_mj, iso_mj;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario grid = sloped_scenario(side, seed, /*grid=*/true);
      const Scenario random = sloped_scenario(side, seed);
      tinydb_mj.add(energy.mean_node_energy_j(run_tinydb(grid).ledger) *
                    1e3);
      inlr_mj.add(energy.mean_node_energy_j(run_inlr(grid).ledger) * 1e3);
      IsoMapOptions options;
      options.query = scaling_query();
      iso_mj.add(
          energy.mean_node_energy_j(run_isomap(random, options).ledger) *
          1e3);
    }
    table.row()
        .cell(diameter)
        .cell(static_cast<int>(side * side))
        .cell(tinydb_mj.mean(), 4)
        .cell(inlr_mj.mean(), 4)
        .cell(iso_mj.mean(), 4);
  }
  emit_table("fig16", title, table);
  return 0;
}
