// Fig. 16: per-node energy consumption for one contour-mapping round
// under TinyDB, INLR and Iso-Map, against network size, using the MICA2
// energy model (CC1000 radio at 38.4 kbps: 42 mW tx / 29 mW rx; ATmega128
// at 33 mW, 242 MIPS/W).
// Paper expectation: Iso-Map's per-node energy is far below both
// baselines, and stays near-flat as the network grows while TinyDB and
// INLR climb.

#include "bench/bench_common.hpp"
#include "eval/heatmap.hpp"
#include "obs/node_telemetry.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Fig. 16", "mean per-node energy (mJ) vs network size",
         "Iso-Map lowest and near-flat; TinyDB/INLR grow with size");

  const Mica2Model energy;
  const int kSeeds = 2;
  Table table({"diameter_hops", "nodes", "tinydb_mJ", "inlr_mJ",
               "isomap_mJ"});
  for (const int diameter : {10, 20, 30, 40, 50}) {
    const double side = side_for_diameter(diameter);
    RunningStats tinydb_mj, inlr_mj, iso_mj;
    for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
      const std::uint64_t seed = trial_seed(trial);
      const Scenario grid = sloped_scenario(side, seed, /*grid=*/true);
      const Scenario random = sloped_scenario(side, seed);
      tinydb_mj.add(energy.mean_node_energy_j(run_tinydb(grid).ledger) *
                    1e3);
      inlr_mj.add(energy.mean_node_energy_j(run_inlr(grid).ledger) * 1e3);
      IsoMapOptions options;
      options.query = scaling_query();
      iso_mj.add(
          energy.mean_node_energy_j(run_isomap(random, options).ledger) *
          1e3);
    }
    table.row()
        .cell(diameter)
        .cell(static_cast<int>(side * side))
        .cell(tinydb_mj.mean(), 4)
        .cell(inlr_mj.mean(), 4)
        .cell(iso_mj.mean(), 4);
  }
  emit_table("fig16", title, table);

  // Spatial twin of the mean above: one representative run at the largest
  // size with the flight recorder installed, exported as a binned energy
  // grid (CSV, loads straight into numpy) and per-node GeoJSON points.
  // The table says Iso-Map's mean is low; the heatmap shows the residual
  // concentration along the contour bands and the sink's relay spine.
  {
    const Scenario s = sloped_scenario(side_for_diameter(50), trial_seed(1));
    IsoMapOptions options;
    options.query = scaling_query();
    obs::NodeTelemetry telemetry(s.graph.size());
    run_isomap(s, options, nullptr, &telemetry);
    std::vector<Vec2> positions;
    std::vector<double> energy_j;
    std::vector<int> hops;
    for (int v = 0; v < s.graph.size(); ++v) {
      positions.push_back(s.deployment.node(v).reported_pos());
      energy_j.push_back(telemetry.energy_j(v));
      hops.push_back(telemetry.hops(v));
    }
    const std::string csv_path =
        (results_dir() / "fig16_energy_heatmap.csv").string();
    const std::string geo_path =
        (results_dir() / "fig16_energy_heatmap.geojson").string();
    if (save_text(csv_path, heatmap_csv_grid(s.field.bounds(), positions,
                                             energy_j, 32, 32)))
      std::cout << "[bench] wrote " << csv_path << "\n";
    if (save_text(geo_path,
                  heatmap_geojson(positions, energy_j, hops, "energy_j")))
      std::cout << "[bench] wrote " << geo_path << "\n";
  }
  return 0;
}
