// Grand comparison: all six protocols on one scenario and one meter —
// the summary table that a reader of Table 1 + Figs. 10-16 would want.
// Setup: the paper's default (n = 2500, density 1, harbor section,
// 4 isolevels), averaged over seeds. "Fidelity" columns use each
// protocol's own sink reconstruction.
// Expectation: Iso-Map matches TinyDB's fidelity within a few points at
// ~1/20 the traffic and ~1/10 the energy; every aggregation baseline
// trades fidelity or computation for its traffic savings.

#include "baselines/isoline_agg.hpp"
#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Grand comparison", "all protocols, one scenario, one meter",
         "Iso-Map: TinyDB-class fidelity at a fraction of every cost");

  const int kSeeds = 3;
  const Mica2Model energy;

  struct Row {
    RunningStats reports, traffic_kb, mean_ops, energy_uj, accuracy;
    bool has_accuracy = true;
  };
  Row isomap_row, tinydb_row, inlr_row, escan_row, suppress_row, agg_row;

  // One parallel trial = all six protocols on that trial's scenarios; the
  // per-protocol samples come back in trial order and accumulate below
  // exactly as the serial loop did.
  struct ProtoSample {
    double reports, traffic_kb, mean_ops, energy_uj, accuracy;
  };
  struct TrialResult {
    ProtoSample isomap, tinydb, inlr, escan, suppress, agg;
  };
  const auto trials = exec::parallel_trials(
      kSeeds, trial_seed, [&](int, std::uint64_t seed) {
    TrialResult out{};
    const Scenario random = harbor_scenario(2500, seed);
    const Scenario grid = harbor_scenario(2500, seed, /*grid=*/true);
    const ContourQuery query = default_query(random.field, 4);
    const auto levels = query.isolevels();
    const LevelMap truth =
        LevelMap::ground_truth(random.field, levels, 70, 70);
    const LevelMap grid_truth =
        LevelMap::ground_truth(grid.field, levels, 70, 70);

    auto accuracy_of = [&](const std::function<int(Vec2)>& classify,
                           const LevelMap& reference,
                           const ScalarField& field) {
      const LevelMap est = LevelMap::rasterize(field.bounds(), 70, 70,
                                               classify);
      return est.accuracy_against(reference) * 100.0;
    };

    {
      IsoMapOptions options;
      options.query = query;
      const IsoMapRun run = run_isomap(random, options);
      out.isomap = {static_cast<double>(run.result.delivered_reports),
                    run.result.report_traffic_bytes / 1024.0,
                    run.ledger.mean_ops(),
                    energy.mean_node_energy_j(run.ledger) * 1e6,
                    accuracy_of(
                        [&](Vec2 p) { return run.result.map.level_index(p); },
                        truth, random.field)};
    }
    {
      const TinyDBRun run = run_tinydb(grid);
      out.tinydb = {
          static_cast<double>(run.result.reports_delivered),
          run.result.traffic_bytes / 1024.0, run.ledger.mean_ops(),
          energy.mean_node_energy_j(run.ledger) * 1e6,
          accuracy_of(
              [&](Vec2 p) { return run.result.level_index(p, levels); },
              grid_truth, grid.field)};
    }
    {
      const InlrRun run = run_inlr(grid);
      out.inlr = {
          static_cast<double>(run.result.regions_at_sink),
          run.result.traffic_bytes / 1024.0, run.ledger.mean_ops(),
          energy.mean_node_energy_j(run.ledger) * 1e6,
          accuracy_of(
              [&](Vec2 p) { return run.result.level_index(p, levels); },
              grid_truth, grid.field)};
    }
    {
      const EScanRun run = run_escan(grid);
      out.escan = {
          static_cast<double>(run.result.tuples_at_sink),
          run.result.traffic_bytes / 1024.0, run.ledger.mean_ops(),
          energy.mean_node_energy_j(run.ledger) * 1e6,
          accuracy_of(
              [&](Vec2 p) { return run.result.level_index(p, levels); },
              grid_truth, grid.field)};
    }
    {
      const SuppressionRun run = run_suppression(grid);
      out.suppress = {static_cast<double>(run.result.reports_generated),
                      run.result.traffic_bytes / 1024.0,
                      run.ledger.mean_ops(),
                      energy.mean_node_energy_j(run.ledger) * 1e6,
                      0.0};  // No sink map in this protocol.
    }
    {
      IsolineAggOptions options;
      options.query = query;
      IsolineAggProtocol protocol(options);
      Ledger ledger(random.deployment.size());
      const IsolineAggResult result =
          protocol.run(random.readings, random.deployment, random.graph,
                       random.tree, ledger);
      const IsolineAggMap map =
          protocol.build_map(result, random.field.bounds());
      out.agg = {static_cast<double>(result.delivered_reports),
                 result.traffic_bytes / 1024.0, ledger.mean_ops(),
                 energy.mean_node_energy_j(ledger) * 1e6,
                 accuracy_of([&](Vec2 p) { return map.level_index(p); },
                             truth, random.field)};
    }
    return out;
  });

  suppress_row.has_accuracy = false;
  auto accumulate = [](Row& row, const ProtoSample& s) {
    row.reports.add(s.reports);
    row.traffic_kb.add(s.traffic_kb);
    row.mean_ops.add(s.mean_ops);
    row.energy_uj.add(s.energy_uj);
    if (row.has_accuracy) row.accuracy.add(s.accuracy);
  };
  for (const TrialResult& t : trials) {
    accumulate(isomap_row, t.isomap);
    accumulate(tinydb_row, t.tinydb);
    accumulate(inlr_row, t.inlr);
    accumulate(escan_row, t.escan);
    accumulate(suppress_row, t.suppress);
    accumulate(agg_row, t.agg);
  }

  Table table({"protocol", "sink_units", "traffic_KB", "mean_node_ops",
               "node_energy_uJ", "accuracy_pct"});
  auto add = [&](const std::string& name, const Row& row) {
    table.row()
        .cell(name)
        .cell(row.reports.mean(), 0)
        .cell(row.traffic_kb.mean(), 1)
        .cell(row.mean_ops.mean(), 1)
        .cell(row.energy_uj.mean(), 1)
        .cell(row.has_accuracy ? format_double(row.accuracy.mean(), 1)
                               : std::string("n/a"));
  };
  add("Iso-Map", isomap_row);
  add("TinyDB", tinydb_row);
  add("INLR", inlr_row);
  add("eScan", escan_row);
  add("DataSuppression", suppress_row);
  add("IsolineAgg (no d)", agg_row);
  emit_table("grand_comparison", title, table);
  std::cout << "\n(sink_units: reports / regions / tuples the sink "
              "receives; suppression has no sink reconstruction.)\n";
  return 0;
}
