// Grand comparison: all six protocols on one scenario and one meter —
// the summary table that a reader of Table 1 + Figs. 10-16 would want.
// Setup: the paper's default (n = 2500, density 1, harbor section,
// 4 isolevels), averaged over seeds. "Fidelity" columns use each
// protocol's own sink reconstruction.
// Expectation: Iso-Map matches TinyDB's fidelity within a few points at
// ~1/20 the traffic and ~1/10 the energy; every aggregation baseline
// trades fidelity or computation for its traffic savings.

#include "baselines/isoline_agg.hpp"
#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  banner("Grand comparison", "all protocols, one scenario, one meter",
         "Iso-Map: TinyDB-class fidelity at a fraction of every cost");

  const int kSeeds = 3;
  const Mica2Model energy;

  struct Row {
    RunningStats reports, traffic_kb, mean_ops, energy_uj, accuracy;
    bool has_accuracy = true;
  };
  Row isomap_row, tinydb_row, inlr_row, escan_row, suppress_row, agg_row;

  for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    const Scenario random = harbor_scenario(2500, seed);
    const Scenario grid = harbor_scenario(2500, seed, /*grid=*/true);
    const ContourQuery query = default_query(random.field, 4);
    const auto levels = query.isolevels();
    const LevelMap truth =
        LevelMap::ground_truth(random.field, levels, 70, 70);
    const LevelMap grid_truth =
        LevelMap::ground_truth(grid.field, levels, 70, 70);

    auto accuracy_of = [&](const std::function<int(Vec2)>& classify,
                           const LevelMap& reference,
                           const ScalarField& field) {
      const LevelMap est = LevelMap::rasterize(field.bounds(), 70, 70,
                                               classify);
      return est.accuracy_against(reference) * 100.0;
    };

    {
      IsoMapOptions options;
      options.query = query;
      const IsoMapRun run = run_isomap(random, options);
      isomap_row.reports.add(run.result.delivered_reports);
      isomap_row.traffic_kb.add(run.result.report_traffic_bytes / 1024.0);
      isomap_row.mean_ops.add(run.ledger.mean_ops());
      isomap_row.energy_uj.add(energy.mean_node_energy_j(run.ledger) * 1e6);
      isomap_row.accuracy.add(accuracy_of(
          [&](Vec2 p) { return run.result.map.level_index(p); }, truth,
          random.field));
    }
    {
      const TinyDBRun run = run_tinydb(grid);
      tinydb_row.reports.add(run.result.reports_delivered);
      tinydb_row.traffic_kb.add(run.result.traffic_bytes / 1024.0);
      tinydb_row.mean_ops.add(run.ledger.mean_ops());
      tinydb_row.energy_uj.add(energy.mean_node_energy_j(run.ledger) * 1e6);
      tinydb_row.accuracy.add(accuracy_of(
          [&](Vec2 p) { return run.result.level_index(p, levels); },
          grid_truth, grid.field));
    }
    {
      const InlrRun run = run_inlr(grid);
      inlr_row.reports.add(run.result.regions_at_sink);
      inlr_row.traffic_kb.add(run.result.traffic_bytes / 1024.0);
      inlr_row.mean_ops.add(run.ledger.mean_ops());
      inlr_row.energy_uj.add(energy.mean_node_energy_j(run.ledger) * 1e6);
      inlr_row.accuracy.add(accuracy_of(
          [&](Vec2 p) { return run.result.level_index(p, levels); },
          grid_truth, grid.field));
    }
    {
      const EScanRun run = run_escan(grid);
      escan_row.reports.add(run.result.tuples_at_sink);
      escan_row.traffic_kb.add(run.result.traffic_bytes / 1024.0);
      escan_row.mean_ops.add(run.ledger.mean_ops());
      escan_row.energy_uj.add(energy.mean_node_energy_j(run.ledger) * 1e6);
      escan_row.accuracy.add(accuracy_of(
          [&](Vec2 p) { return run.result.level_index(p, levels); },
          grid_truth, grid.field));
    }
    {
      const SuppressionRun run = run_suppression(grid);
      suppress_row.reports.add(run.result.reports_generated);
      suppress_row.traffic_kb.add(run.result.traffic_bytes / 1024.0);
      suppress_row.mean_ops.add(run.ledger.mean_ops());
      suppress_row.energy_uj.add(energy.mean_node_energy_j(run.ledger) *
                                 1e6);
      suppress_row.has_accuracy = false;  // No sink map in this protocol.
    }
    {
      IsolineAggOptions options;
      options.query = query;
      IsolineAggProtocol protocol(options);
      Ledger ledger(random.deployment.size());
      const IsolineAggResult result =
          protocol.run(random.readings, random.deployment, random.graph,
                       random.tree, ledger);
      const IsolineAggMap map =
          protocol.build_map(result, random.field.bounds());
      agg_row.reports.add(result.delivered_reports);
      agg_row.traffic_kb.add(result.traffic_bytes / 1024.0);
      agg_row.mean_ops.add(ledger.mean_ops());
      agg_row.energy_uj.add(energy.mean_node_energy_j(ledger) * 1e6);
      agg_row.accuracy.add(accuracy_of(
          [&](Vec2 p) { return map.level_index(p); }, truth, random.field));
    }
  }

  Table table({"protocol", "sink_units", "traffic_KB", "mean_node_ops",
               "node_energy_uJ", "accuracy_pct"});
  auto add = [&](const std::string& name, const Row& row) {
    table.row()
        .cell(name)
        .cell(row.reports.mean(), 0)
        .cell(row.traffic_kb.mean(), 1)
        .cell(row.mean_ops.mean(), 1)
        .cell(row.energy_uj.mean(), 1)
        .cell(row.has_accuracy ? format_double(row.accuracy.mean(), 1)
                               : std::string("n/a"));
  };
  add("Iso-Map", isomap_row);
  add("TinyDB", tinydb_row);
  add("INLR", inlr_row);
  add("eScan", escan_row);
  add("DataSuppression", suppress_row);
  add("IsolineAgg (no d)", agg_row);
  emit_table("grand_comparison", table);
  std::cout << "\n(sink_units: reports / regions / tuples the sink "
              "receives; suppression has no sink reconstruction.)\n";
  return 0;
}
