// Google-benchmark microbenchmarks for the computational kernels: sink
// Voronoi construction, contour-map building, marching squares, the local
// regression and the in-network filter. These quantify the sink/node
// costs behind the Table 1 / Fig. 15 numbers on real hardware.

#include <benchmark/benchmark.h>

#include <cmath>

#include "eval/metrics.hpp"
#include "field/bathymetry.hpp"
#include "field/grid_field.hpp"
#include "geometry/marching_squares.hpp"
#include "geometry/voronoi.hpp"
#include "isomap/contour_map.hpp"
#include "isomap/filter.hpp"
#include "isomap/regression.hpp"
#include "net/comm_graph.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace isomap {
namespace {

std::vector<Vec2> random_sites(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> sites;
  sites.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    sites.push_back({rng.uniform(0, 50), rng.uniform(0, 50)});
  return sites;
}

std::vector<IsolineReport> random_reports(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IsolineReport> reports;
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform(0, 2 * M_PI);
    reports.push_back({10.0,
                       {rng.uniform(0, 50), rng.uniform(0, 50)},
                       {std::cos(a), std::sin(a)},
                       i});
  }
  return reports;
}

void BM_VoronoiConstruction(benchmark::State& state) {
  const auto sites = random_sites(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    VoronoiDiagram vd(sites, 0, 0, 50, 50);
    benchmark::DoNotOptimize(vd.cells().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VoronoiConstruction)->Range(16, 512)->Complexity();

// The deployment-scale sizes the fidelity experiments use (densities
// 0.16 / 1 / 4 on the 50x50 harbor section), indexed vs the brute-force
// oracle the indexed path replaced.
void BM_VoronoiIndexed(benchmark::State& state) {
  const auto sites = random_sites(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    VoronoiDiagram vd(sites, 0, 0, 50, 50, VoronoiConstruction::kIndexed);
    benchmark::DoNotOptimize(vd.cells().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VoronoiIndexed)->Arg(400)->Arg(2500)->Arg(10000)->Complexity();

void BM_VoronoiBruteForce(benchmark::State& state) {
  const auto sites = random_sites(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    VoronoiDiagram vd(sites, 0, 0, 50, 50, VoronoiConstruction::kBruteForce);
    benchmark::DoNotOptimize(vd.cells().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VoronoiBruteForce)->Arg(400)->Arg(2500)->Complexity();

// One 2-hop neighbourhood query on a unit-density graph — the inner call
// of the gradient-fit phase (one BFS per isoline node).
void BM_KHopNeighbours(benchmark::State& state) {
  Rng rng(7);
  const int n = static_cast<int>(state.range(0));
  const double side = std::sqrt(static_cast<double>(n));
  const Deployment deployment =
      Deployment::uniform_random({0, 0, side, side}, n, rng);
  const CommGraph graph(deployment, 1.5);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph.k_hop_neighbours_with_distance(i, 2).size());
    i = (i + 1) % graph.size();
  }
}
BENCHMARK(BM_KHopNeighbours)->Arg(400)->Arg(2500)->Arg(10000);

void BM_ContourMapBuild(benchmark::State& state) {
  const auto reports = random_reports(static_cast<int>(state.range(0)), 2);
  const ContourMapBuilder builder({0, 0, 50, 50});
  for (auto _ : state) {
    const ContourMap map = builder.build(reports, {10.0});
    benchmark::DoNotOptimize(map.level_count());
  }
}
BENCHMARK(BM_ContourMapBuild)->Range(16, 256);

void BM_ContourMapClassify(benchmark::State& state) {
  const auto reports = random_reports(100, 3);
  const ContourMap map =
      ContourMapBuilder({0, 0, 50, 50}).build(reports, {10.0});
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.level_index({rng.uniform(0, 50), rng.uniform(0, 50)}));
  }
}
BENCHMARK(BM_ContourMapClassify);

void BM_MarchingSquares(benchmark::State& state) {
  const GaussianField field = harbor_bathymetry();
  const int res = static_cast<int>(state.range(0));
  const GridField grid = GridField::sample(field, res, res);
  for (auto _ : state) {
    const auto lines = marching_squares(grid.as_sample_grid(), 11.0);
    benchmark::DoNotOptimize(lines.size());
  }
}
BENCHMARK(BM_MarchingSquares)->Range(64, 512);

void BM_PlaneRegression(benchmark::State& state) {
  Rng rng(5);
  std::vector<FieldSample> samples;
  for (int i = 0; i < state.range(0); ++i)
    samples.push_back(
        {{rng.uniform(0, 10), rng.uniform(0, 10)}, rng.uniform(0, 5)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_plane(samples));
  }
}
BENCHMARK(BM_PlaneRegression)->Range(8, 64);

void BM_InNetworkFilter(benchmark::State& state) {
  const auto reports = random_reports(static_cast<int>(state.range(0)), 6);
  const InNetworkFilter filter(30.0, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.filter(reports).size());
  }
}
BENCHMARK(BM_InNetworkFilter)->Range(32, 512);

void BM_HausdorffDistance(benchmark::State& state) {
  const GaussianField field = harbor_bathymetry();
  const auto a = true_isolines(field, 10.0, 150);
  const auto b = true_isolines(field, 10.2, 150);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hausdorff_distance(a, b, 0.5));
  }
}
BENCHMARK(BM_HausdorffDistance);

// The cost of an observability hook with no context installed — the
// "near-zero overhead when disabled" contract. Expected: ~1 ns (one
// thread-local read plus a branch).
void BM_ObsDisabledHook(benchmark::State& state) {
  for (auto _ : state) {
    obs::count("bench.counter");
    benchmark::DoNotOptimize(obs::active());
  }
}
BENCHMARK(BM_ObsDisabledHook);

}  // namespace
}  // namespace isomap

BENCHMARK_MAIN();
