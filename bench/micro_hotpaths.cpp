// Hot-path micro-benchmark: before/after numbers for the two sink/protocol
// kernels this repo optimised — Voronoi construction (per-cell full sort
// vs ring-expanding enumeration over the spatial index) and the k-hop BFS
// (fresh O(n) buffers per call vs the epoch-stamped scratch). Each pair is
// identity-checked before timing, so a speedup can never come from a
// behaviour change.
// Expectation: indexed Voronoi >= 5x at n = 10000; scratch BFS ahead of
// the allocating baseline at every density.

#include <chrono>

#include "bench/bench_common.hpp"
#include "geometry/marching_squares.hpp"
#include "geometry/voronoi.hpp"
#include "isomap/node_selection.hpp"
#include "isomap/regression.hpp"
#include "net/ledger.hpp"
#include "obs/node_telemetry.hpp"
#include "obs/obs.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

std::vector<Vec2> random_sites(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> sites;
  sites.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    sites.push_back({rng.uniform(0, 50), rng.uniform(0, 50)});
  return sites;
}

/// Best-of-`reps` wall time of `fn`, in milliseconds.
template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    best = std::min(best, ms);
  }
  return best;
}

void require_identical_cells(const VoronoiDiagram& a,
                             const VoronoiDiagram& b) {
  bool same = a.size() == b.size();
  for (std::size_t i = 0; same && i < a.size(); ++i)
    same = a.cell(i).vertices == b.cell(i).vertices &&
           a.cell(i).edge_tags == b.cell(i).edge_tags;
  if (!same) {
    std::cerr << "[micro_hotpaths] indexed/brute cell mismatch\n";
    std::exit(1);
  }
}

/// The pre-optimisation k-hop BFS: fresh O(n) buffers on every call.
std::vector<std::pair<int, int>> k_hop_baseline(const CommGraph& graph, int i,
                                                int k) {
  std::vector<std::pair<int, int>> out;
  std::vector<int> hop(static_cast<std::size_t>(graph.size()), -1);
  std::vector<int> queue;
  hop[static_cast<std::size_t>(i)] = 0;
  queue.push_back(i);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    if (hop[static_cast<std::size_t>(u)] >= k) continue;
    for (int v : graph.neighbours(u)) {
      if (hop[static_cast<std::size_t>(v)] >= 0) continue;
      hop[static_cast<std::size_t>(v)] = hop[static_cast<std::size_t>(u)] + 1;
      out.emplace_back(v, hop[static_cast<std::size_t>(v)]);
      queue.push_back(v);
    }
  }
  return out;
}

/// The pre-banded Definition 3.1 evaluation: every level scanned.
NodeSelectionResult selection_full_scan(const CommGraph& graph,
                                        const std::vector<double>& readings,
                                        int node,
                                        const std::vector<double>& levels,
                                        double epsilon,
                                        std::vector<int>& admitted) {
  admitted.clear();
  NodeSelectionResult result;
  const double v = readings[static_cast<std::size_t>(node)];
  result.ops = static_cast<double>(levels.size());
  for (std::size_t li = 0; li < levels.size(); ++li) {
    const double lambda = levels[li];
    if (!is_candidate(v, lambda, epsilon)) continue;
    ++result.candidates;
    bool crossing = false;
    for (int nb : graph.neighbours(node)) {
      result.ops += 2.0;
      const double nv = readings[static_cast<std::size_t>(nb)];
      if ((v < lambda && lambda < nv) || (nv < lambda && lambda < v)) {
        crossing = true;
        break;
      }
    }
    if (crossing) admitted.push_back(static_cast<int>(li));
  }
  return result;
}

}  // namespace

int main() {
  const std::string title =
      banner("Micro", "hot-path kernels, baseline vs optimised",
             "indexed Voronoi >= 5x at n = 10000; scratch BFS beats "
             "per-call allocation at every size");

  Table table({"kernel", "n", "baseline_ms", "optimized_ms", "speedup"});

  for (const int n : {400, 2500, 10000}) {
    const auto sites = random_sites(n, kBenchSeed);
    // Identity first: the optimised construction must reproduce the
    // oracle bit for bit.
    require_identical_cells(
        VoronoiDiagram(sites, 0, 0, 50, 50, VoronoiConstruction::kIndexed),
        VoronoiDiagram(sites, 0, 0, 50, 50, VoronoiConstruction::kBruteForce));
    const int brute_reps = n >= 10000 ? 1 : (n >= 2500 ? 2 : 5);
    const int indexed_reps = n >= 10000 ? 3 : 10;
    const double brute_ms = best_ms(brute_reps, [&] {
      VoronoiDiagram vd(sites, 0, 0, 50, 50, VoronoiConstruction::kBruteForce);
      if (vd.size() != sites.size()) std::exit(1);
    });
    const double indexed_ms = best_ms(indexed_reps, [&] {
      VoronoiDiagram vd(sites, 0, 0, 50, 50, VoronoiConstruction::kIndexed);
      if (vd.size() != sites.size()) std::exit(1);
    });
    table.row()
        .cell("voronoi")
        .cell(n)
        .cell(brute_ms, 2)
        .cell(indexed_ms, 2)
        .cell(brute_ms / indexed_ms, 1);
  }

  for (const int n : {400, 2500, 10000}) {
    const Scenario s = harbor_scenario(n, kBenchSeed);
    const CommGraph& graph = s.graph;
    // Identity: scratch BFS must return exactly the baseline's output.
    for (int i = 0; i < graph.size(); i += 37) {
      if (graph.k_hop_neighbours_with_distance(i, 2) !=
          k_hop_baseline(graph, i, 2)) {
        std::cerr << "[micro_hotpaths] k_hop mismatch at node " << i << "\n";
        return 1;
      }
    }
    volatile std::size_t sink = 0;
    const double baseline_ms = best_ms(3, [&] {
      std::size_t total = 0;
      for (int i = 0; i < graph.size(); ++i)
        total += k_hop_baseline(graph, i, 2).size();
      sink = total;
    });
    const double scratch_ms = best_ms(3, [&] {
      std::size_t total = 0;
      for (int i = 0; i < graph.size(); ++i)
        total += graph.k_hop_neighbours_with_distance(i, 2).size();
      sink = total;
    });
    table.row()
        .cell("k_hop_2")
        .cell(n)
        .cell(baseline_ms, 2)
        .cell(scratch_ms, 2)
        .cell(baseline_ms / scratch_ms, 1);
  }

  // Definition 3.1 selection: full per-level scan (the pre-banded kernel)
  // vs the binary-searched candidate window shared with the continuous
  // engine. Identity-checked on admissions, candidates and modelled ops.
  for (const int n : {400, 2500, 10000}) {
    const Scenario s = harbor_scenario(n, kBenchSeed);
    ContourQuery query = default_query(s.field, 4);
    query.granularity /= 8.0;  // Many levels: where the scan cost lives.
    const auto levels = query.isolevels();
    const double eps = query.epsilon();
    std::vector<int> banded, reference;
    for (int i = 0; i < s.graph.size(); ++i) {
      if (!s.graph.alive(i)) continue;
      const NodeSelectionResult got = evaluate_node_selection(
          s.graph, s.readings, i, levels, eps, banded);
      const NodeSelectionResult want =
          selection_full_scan(s.graph, s.readings, i, levels, eps, reference);
      if (banded != reference || got.candidates != want.candidates ||
          got.ops != want.ops) {
        std::cerr << "[micro_hotpaths] selection mismatch at node " << i
                  << "\n";
        return 1;
      }
    }
    volatile double sink = 0.0;
    const double full_ms = best_ms(5, [&] {
      double total = 0.0;
      for (int i = 0; i < s.graph.size(); ++i) {
        if (!s.graph.alive(i)) continue;
        total += selection_full_scan(s.graph, s.readings, i, levels, eps,
                                     reference)
                     .ops;
      }
      sink = total;
    });
    const double banded_ms = best_ms(5, [&] {
      double total = 0.0;
      for (int i = 0; i < s.graph.size(); ++i) {
        if (!s.graph.alive(i)) continue;
        total +=
            evaluate_node_selection(s.graph, s.readings, i, levels, eps,
                                    banded)
                .ops;
      }
      sink = total;
    });
    table.row()
        .cell("select_def31")
        .cell(n)
        .cell(full_ms, 2)
        .cell(banded_ms, 2)
        .cell(full_ms / banded_ms, 1);
  }

  // Regression refresh: full fit_plane per round vs the continuous
  // engine's split — position sufficient statistics computed once, only
  // the value block and the 3x3 solve redone when readings change.
  // Identity-checked bit for bit on the fitted plane.
  for (const int n : {400, 2500, 10000}) {
    const Scenario s = harbor_scenario(n, kBenchSeed);
    std::vector<std::vector<FieldSample>> neighbourhoods;
    for (int i = 0; i < s.graph.size(); ++i) {
      if (!s.graph.alive(i)) continue;
      std::vector<FieldSample> samples;
      samples.push_back({s.deployment.node(i).reported_pos(),
                         s.readings[static_cast<std::size_t>(i)]});
      for (int nb : s.graph.neighbour_span(i))
        samples.push_back({s.deployment.node(nb).reported_pos(),
                           s.readings[static_cast<std::size_t>(nb)]});
      neighbourhoods.push_back(std::move(samples));
    }
    std::vector<PlanePositionStats> pos_stats;
    pos_stats.reserve(neighbourhoods.size());
    for (const auto& samples : neighbourhoods)
      pos_stats.push_back(plane_position_stats(samples));
    for (std::size_t i = 0; i < neighbourhoods.size(); ++i) {
      const auto full = fit_plane(neighbourhoods[i]);
      const auto split = solve_plane(
          pos_stats[i], plane_value_stats(neighbourhoods[i], pos_stats[i]));
      const bool same =
          full.has_value() == split.has_value() &&
          (!full || (full->c0 == split->c0 && full->c1 == split->c1 &&
                     full->c2 == split->c2));
      if (!same) {
        std::cerr << "[micro_hotpaths] regression split mismatch\n";
        return 1;
      }
    }
    volatile double sink = 0.0;
    const double full_ms = best_ms(5, [&] {
      double total = 0.0;
      for (const auto& samples : neighbourhoods)
        if (const auto fit = fit_plane(samples)) total += fit->c1;
      sink = total;
    });
    const double split_ms = best_ms(5, [&] {
      double total = 0.0;
      for (std::size_t i = 0; i < neighbourhoods.size(); ++i) {
        const auto fit = solve_plane(
            pos_stats[i], plane_value_stats(neighbourhoods[i], pos_stats[i]));
        if (fit) total += fit->c1;
      }
      sink = total;
    });
    table.row()
        .cell("fit_refresh")
        .cell(n)
        .cell(full_ms, 2)
        .cell(split_ms, 2)
        .cell(full_ms / split_ms, 1);
  }

  // SoA regression: the AoS fit_plane walks FieldSample structs (24-byte
  // stride per coordinate); the SoA overload streams flat coordinate and
  // value arrays. Each of the independent accumulator chains adds the same
  // addends in the same order, so the fitted plane is bit-identical —
  // checked on every neighbourhood before timing.
  for (const int n : {400, 2500, 10000}) {
    const Scenario s = harbor_scenario(n, kBenchSeed);
    std::vector<std::vector<FieldSample>> aos;
    std::vector<std::vector<double>> all_xs, all_ys, all_vs;
    for (int i = 0; i < s.graph.size(); ++i) {
      if (!s.graph.alive(i)) continue;
      std::vector<FieldSample> samples;
      std::vector<double> xs, ys, vs;
      const auto push = [&](int v) {
        const Vec2 p = s.deployment.node(v).reported_pos();
        const double reading = s.readings[static_cast<std::size_t>(v)];
        samples.push_back({p, reading});
        xs.push_back(p.x);
        ys.push_back(p.y);
        vs.push_back(reading);
      };
      push(i);
      for (int nb : s.graph.neighbour_span(i)) push(nb);
      aos.push_back(std::move(samples));
      all_xs.push_back(std::move(xs));
      all_ys.push_back(std::move(ys));
      all_vs.push_back(std::move(vs));
    }
    for (std::size_t i = 0; i < aos.size(); ++i) {
      const auto a = fit_plane(aos[i]);
      const auto b = fit_plane(all_xs[i], all_ys[i], all_vs[i]);
      const bool same = a.has_value() == b.has_value() &&
                        (!a || (a->c0 == b->c0 && a->c1 == b->c1 &&
                                a->c2 == b->c2));
      if (!same) {
        std::cerr << "[micro_hotpaths] AoS/SoA fit mismatch\n";
        return 1;
      }
    }
    volatile double sink = 0.0;
    const double aos_ms = best_ms(5, [&] {
      double total = 0.0;
      for (const auto& samples : aos)
        if (const auto fit = fit_plane(samples)) total += fit->c1;
      sink = total;
    });
    const double soa_ms = best_ms(5, [&] {
      double total = 0.0;
      for (std::size_t i = 0; i < aos.size(); ++i)
        if (const auto fit = fit_plane(all_xs[i], all_ys[i], all_vs[i]))
          total += fit->c1;
      sink = total;
    });
    table.row()
        .cell("fit_soa")
        .cell(n)
        .cell(aos_ms, 2)
        .cell(soa_ms, 2)
        .cell(aos_ms / soa_ms, 1);
  }

  // Fused SoA fit: the split span kernels (plane_position_stats +
  // plane_value_stats, four passes over the arrays — retained as the
  // scalar oracle) vs plane_stats_batch's two fused branch-free passes.
  // Fusing interleaves independent accumulator chains without touching
  // any chain's addend order, so the fitted plane must be — and is
  // checked to be — bit-identical before timing.
  for (const int n : {400, 2500, 10000}) {
    const Scenario s = harbor_scenario(n, kBenchSeed);
    std::vector<std::vector<double>> all_xs, all_ys, all_vs;
    for (int i = 0; i < s.graph.size(); ++i) {
      if (!s.graph.alive(i)) continue;
      std::vector<double> xs, ys, vs;
      const auto push = [&](int v) {
        const Vec2 p = s.deployment.node(v).reported_pos();
        xs.push_back(p.x);
        ys.push_back(p.y);
        vs.push_back(s.readings[static_cast<std::size_t>(v)]);
      };
      push(i);
      for (int nb : s.graph.neighbour_span(i)) push(nb);
      all_xs.push_back(std::move(xs));
      all_ys.push_back(std::move(ys));
      all_vs.push_back(std::move(vs));
    }
    const auto split_fit = [](std::span<const double> xs,
                              std::span<const double> ys,
                              std::span<const double> vs) {
      if (xs.size() < 3) return std::optional<PlaneFit>();
      const PlanePositionStats pos = plane_position_stats(xs, ys);
      return solve_plane(pos, plane_value_stats(xs, ys, vs, pos));
    };
    for (std::size_t i = 0; i < all_xs.size(); ++i) {
      const auto a = split_fit(all_xs[i], all_ys[i], all_vs[i]);
      const auto b = fit_plane_soa(all_xs[i], all_ys[i], all_vs[i]);
      const bool same = a.has_value() == b.has_value() &&
                        (!a || (a->c0 == b->c0 && a->c1 == b->c1 &&
                                a->c2 == b->c2));
      if (!same) {
        std::cerr << "[micro_hotpaths] split/fused fit mismatch\n";
        return 1;
      }
    }
    volatile double sink = 0.0;
    const double split_ms = best_ms(5, [&] {
      double total = 0.0;
      for (std::size_t i = 0; i < all_xs.size(); ++i)
        if (const auto fit = split_fit(all_xs[i], all_ys[i], all_vs[i]))
          total += fit->c1;
      sink = total;
    });
    const double fused_ms = best_ms(5, [&] {
      double total = 0.0;
      for (std::size_t i = 0; i < all_xs.size(); ++i)
        if (const auto fit = fit_plane_soa(all_xs[i], all_ys[i], all_vs[i]))
          total += fit->c1;
      sink = total;
    });
    table.row()
        .cell("fit_soa_batch")
        .cell(n)
        .cell(split_ms, 2)
        .cell(fused_ms, 2)
        .cell(split_ms / fused_ms, 1);
  }

  // Batch point-in-region: the scalar level_index walk (retained oracle,
  // one region-stack descent with branchy box rejects per point) vs the
  // level_index_batch sieve feeding LevelRegion::contains_batch. Identity
  // over every grid point first — the batch path must reproduce the
  // scalar classification exactly.
  {
    const Scenario s = harbor_scenario(2500, kBenchSeed);
    const ContourMap map = run_isomap(s, 4).result.map;
    const FieldBounds fb = s.field.bounds();
    for (const int res : {64, 128, 256}) {
      std::vector<Vec2> pts;
      pts.reserve(static_cast<std::size_t>(res) * res);
      for (int iy = 0; iy < res; ++iy)
        for (int ix = 0; ix < res; ++ix)
          pts.push_back({fb.x0 + fb.width() * (ix + 0.5) / res,
                         fb.y0 + fb.height() * (iy + 0.5) / res});
      std::vector<int> batch(pts.size());
      map.level_index_batch(pts, batch);
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (batch[i] != map.level_index(pts[i])) {
          std::cerr << "[micro_hotpaths] point_in_region_batch mismatch at "
                    << i << "\n";
          return 1;
        }
      }
      volatile long long sink = 0;
      const double scalar_ms = best_ms(3, [&] {
        long long total = 0;
        for (const Vec2 p : pts) total += map.level_index(p);
        sink = total;
      });
      const double batch_ms = best_ms(3, [&] {
        map.level_index_batch(pts, batch);
        long long total = 0;
        for (const int lvl : batch) total += lvl;
        sink = total;
      });
      table.row()
          .cell("point_in_region_batch")
          .cell(res)
          .cell(scalar_ms, 2)
          .cell(batch_ms, 2)
          .cell(scalar_ms / batch_ms, 1);
    }
  }

  // Marching squares: per-cell corner re-evaluation + eager edge
  // interpolation (reference) vs the two-row value cache with lazy
  // crossings and per-row threshold bytes. Identity-checked on the full
  // polyline set per isolevel.
  {
    const Scenario s = harbor_scenario(2500, kBenchSeed);
    const FieldBounds fb = s.field.bounds();
    for (const int res : {128, 256, 512}) {
      SampleGrid grid;
      grid.nx = res;
      grid.ny = res;
      grid.origin = {fb.x0, fb.y0};
      grid.dx = fb.width() / static_cast<double>(res - 1);
      grid.dy = fb.height() / static_cast<double>(res - 1);
      grid.value = [&](int ix, int iy) {
        return s.field.value(grid.world(ix, iy));
      };
      const std::vector<double> levels = {4.0, 8.0, 12.0, 16.0};
      for (const double level : levels) {
        const auto got = marching_squares(grid, level);
        const auto want = marching_squares_reference(grid, level);
        bool same = got.size() == want.size();
        for (std::size_t c = 0; same && c < got.size(); ++c)
          same = got[c].points() == want[c].points() &&
                 got[c].closed() == want[c].closed();
        if (!same) {
          std::cerr << "[micro_hotpaths] marching-squares mismatch at level "
                    << level << "\n";
          return 1;
        }
      }
      volatile std::size_t sink = 0;
      const double reference_ms = best_ms(3, [&] {
        std::size_t total = 0;
        for (const double level : levels)
          total += marching_squares_reference(grid, level).size();
        sink = total;
      });
      const double cached_ms = best_ms(3, [&] {
        std::size_t total = 0;
        for (const double level : levels)
          total += marching_squares(grid, level).size();
        sink = total;
      });
      table.row()
          .cell("marching_sq")
          .cell(res)
          .cell(reference_ms, 2)
          .cell(cached_ms, 2)
          .cell(reference_ms / cached_ms, 1);
    }
  }

  // Flight-recorder charge path: the per-node telemetry table rides the
  // Ledger's charge hooks, so the Ledger transmit/compute loop is the
  // subsystem's hot path. With no obs context installed (every exec
  // worker, every pre-telemetry caller) a charge pays one thread-local
  // read plus a branch — the "near-zero when disabled" contract — and
  // with a NodeTelemetry installed it adds a handful of O(1) array
  // writes. Here baseline = telemetry enabled and optimized = disabled,
  // so the speedup column reads as the overhead factor the disabled path
  // avoids. Identity first: an instrumented pass must post bit-identical
  // per-node sums to the ledger's own arrays.
  for (const int n : {400, 2500, 10000}) {
    {
      Ledger ledger(n);
      obs::NodeTelemetry telemetry(n);
      obs::ObsScope scope(nullptr, nullptr, &telemetry);
      for (int v = 0; v < n; ++v) {
        ledger.transmit(v, (v + 1) % n, 36.0);
        ledger.compute(v, 8.0);
      }
      for (int v = 0; v < n; ++v) {
        if (telemetry.tx_bytes(v) != ledger.tx_bytes(v) ||
            telemetry.rx_bytes(v) != ledger.rx_bytes(v) ||
            telemetry.ops(v) != ledger.ops(v)) {
          std::cerr << "[micro_hotpaths] telemetry/ledger mismatch at node "
                    << v << "\n";
          return 1;
        }
      }
    }
    const int passes = std::max(1, 1000000 / n);
    Ledger enabled_ledger(n);
    obs::NodeTelemetry telemetry(n);
    const double enabled_ms = best_ms(3, [&] {
      obs::ObsScope scope(nullptr, nullptr, &telemetry);
      for (int pass = 0; pass < passes; ++pass)
        for (int v = 0; v < n; ++v) {
          enabled_ledger.transmit(v, (v + 1) % n, 36.0);
          enabled_ledger.compute(v, 8.0);
        }
    });
    Ledger disabled_ledger(n);
    const double disabled_ms = best_ms(3, [&] {
      for (int pass = 0; pass < passes; ++pass)
        for (int v = 0; v < n; ++v) {
          disabled_ledger.transmit(v, (v + 1) % n, 36.0);
          disabled_ledger.compute(v, 8.0);
        }
    });
    table.row()
        .cell("ledger_telemetry")
        .cell(n)
        .cell(enabled_ms, 2)
        .cell(disabled_ms, 2)
        .cell(enabled_ms / disabled_ms, 1);
  }

  emit_table("micro_hotpaths", title, table);
  return 0;
}
