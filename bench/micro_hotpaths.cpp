// Hot-path micro-benchmark: before/after numbers for the two sink/protocol
// kernels this repo optimised — Voronoi construction (per-cell full sort
// vs ring-expanding enumeration over the spatial index) and the k-hop BFS
// (fresh O(n) buffers per call vs the epoch-stamped scratch). Each pair is
// identity-checked before timing, so a speedup can never come from a
// behaviour change.
// Expectation: indexed Voronoi >= 5x at n = 10000; scratch BFS ahead of
// the allocating baseline at every density.

#include <chrono>

#include "bench/bench_common.hpp"
#include "geometry/voronoi.hpp"

using namespace isomap;
using namespace isomap::bench;

namespace {

std::vector<Vec2> random_sites(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> sites;
  sites.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    sites.push_back({rng.uniform(0, 50), rng.uniform(0, 50)});
  return sites;
}

/// Best-of-`reps` wall time of `fn`, in milliseconds.
template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    best = std::min(best, ms);
  }
  return best;
}

void require_identical_cells(const VoronoiDiagram& a,
                             const VoronoiDiagram& b) {
  bool same = a.size() == b.size();
  for (std::size_t i = 0; same && i < a.size(); ++i)
    same = a.cell(i).vertices == b.cell(i).vertices &&
           a.cell(i).edge_tags == b.cell(i).edge_tags;
  if (!same) {
    std::cerr << "[micro_hotpaths] indexed/brute cell mismatch\n";
    std::exit(1);
  }
}

/// The pre-optimisation k-hop BFS: fresh O(n) buffers on every call.
std::vector<std::pair<int, int>> k_hop_baseline(const CommGraph& graph, int i,
                                                int k) {
  std::vector<std::pair<int, int>> out;
  std::vector<int> hop(static_cast<std::size_t>(graph.size()), -1);
  std::vector<int> queue;
  hop[static_cast<std::size_t>(i)] = 0;
  queue.push_back(i);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    if (hop[static_cast<std::size_t>(u)] >= k) continue;
    for (int v : graph.neighbours(u)) {
      if (hop[static_cast<std::size_t>(v)] >= 0) continue;
      hop[static_cast<std::size_t>(v)] = hop[static_cast<std::size_t>(u)] + 1;
      out.emplace_back(v, hop[static_cast<std::size_t>(v)]);
      queue.push_back(v);
    }
  }
  return out;
}

}  // namespace

int main() {
  const std::string title =
      banner("Micro", "hot-path kernels, baseline vs optimised",
             "indexed Voronoi >= 5x at n = 10000; scratch BFS beats "
             "per-call allocation at every size");

  Table table({"kernel", "n", "baseline_ms", "optimized_ms", "speedup"});

  for (const int n : {400, 2500, 10000}) {
    const auto sites = random_sites(n, kBenchSeed);
    // Identity first: the optimised construction must reproduce the
    // oracle bit for bit.
    require_identical_cells(
        VoronoiDiagram(sites, 0, 0, 50, 50, VoronoiConstruction::kIndexed),
        VoronoiDiagram(sites, 0, 0, 50, 50, VoronoiConstruction::kBruteForce));
    const int brute_reps = n >= 10000 ? 1 : (n >= 2500 ? 2 : 5);
    const int indexed_reps = n >= 10000 ? 3 : 10;
    const double brute_ms = best_ms(brute_reps, [&] {
      VoronoiDiagram vd(sites, 0, 0, 50, 50, VoronoiConstruction::kBruteForce);
      if (vd.size() != sites.size()) std::exit(1);
    });
    const double indexed_ms = best_ms(indexed_reps, [&] {
      VoronoiDiagram vd(sites, 0, 0, 50, 50, VoronoiConstruction::kIndexed);
      if (vd.size() != sites.size()) std::exit(1);
    });
    table.row()
        .cell("voronoi")
        .cell(n)
        .cell(brute_ms, 2)
        .cell(indexed_ms, 2)
        .cell(brute_ms / indexed_ms, 1);
  }

  for (const int n : {400, 2500, 10000}) {
    const Scenario s = harbor_scenario(n, kBenchSeed);
    const CommGraph& graph = s.graph;
    // Identity: scratch BFS must return exactly the baseline's output.
    for (int i = 0; i < graph.size(); i += 37) {
      if (graph.k_hop_neighbours_with_distance(i, 2) !=
          k_hop_baseline(graph, i, 2)) {
        std::cerr << "[micro_hotpaths] k_hop mismatch at node " << i << "\n";
        return 1;
      }
    }
    volatile std::size_t sink = 0;
    const double baseline_ms = best_ms(3, [&] {
      std::size_t total = 0;
      for (int i = 0; i < graph.size(); ++i)
        total += k_hop_baseline(graph, i, 2).size();
      sink = total;
    });
    const double scratch_ms = best_ms(3, [&] {
      std::size_t total = 0;
      for (int i = 0; i < graph.size(); ++i)
        total += graph.k_hop_neighbours_with_distance(i, 2).size();
      sink = total;
    });
    table.row()
        .cell("k_hop_2")
        .cell(n)
        .cell(baseline_ms, 2)
        .cell(scratch_ms, 2)
        .cell(baseline_ms / scratch_ms, 1);
  }

  emit_table("micro_hotpaths", title, table);
  return 0;
}
