// Table 1: overhead comparison of the five protocols — analytic
// complexities from the paper plus the counts measured by our simulation
// at the paper's default configuration (n = 2500, density 1).
// Paper expectation: Iso-Map is the only protocol with O(sqrt(n)) report
// generation; its network computation is O(n) while eScan reaches O(n^4)
// worst-case and INLR Theta(n^1.5).

#include "bench/bench_common.hpp"

using namespace isomap;
using namespace isomap::bench;

int main() {
  const std::string title = banner("Table 1", "overhead comparison of different approaches",
         "Iso-Map: O(sqrt(n)) reports, O(n) network computation, "
         "no deployment requirement");

  std::cout << "\nAnalytic complexities (from the paper):\n";
  Table analytic({"protocol", "reports", "network_computation",
                  "deployment_requirement"});
  analytic.row().cell("TinyDB").cell("n").cell("O(n)").cell("grid");
  analytic.row().cell("eScan").cell("n").cell("O(n^4) worst").cell("none");
  analytic.row().cell("INLR").cell("n").cell(">= Theta(n^1.5)").cell("grid");
  analytic.row()
      .cell("DataSuppression")
      .cell("O(n)")
      .cell(">= Theta(n*deg2)")
      .cell("grid");
  analytic.row()
      .cell("Iso-Map")
      .cell("O(sqrt(n))")
      .cell("O(n)")
      .cell("none");
  emit_table("table1_analytic", title, analytic);

  std::cout << "\nMeasured at n = 2500 (50x50 field, density 1, averaged "
               "over 3 seeds):\n";
  Table measured({"protocol", "reports_generated", "traffic_KB",
                  "total_ops", "mean_ops_per_node"});

  double tinydb_reports = 0, tinydb_kb = 0, tinydb_ops = 0;
  double escan_reports = 0, escan_kb = 0, escan_ops = 0;
  double inlr_reports = 0, inlr_kb = 0, inlr_ops = 0;
  double sup_reports = 0, sup_kb = 0, sup_ops = 0;
  double iso_reports = 0, iso_kb = 0, iso_ops = 0;
  const int kSeeds = 3;
  for (std::uint64_t trial = 1; trial <= kSeeds; ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    const Scenario grid = harbor_scenario(2500, seed, /*grid=*/true);
    const Scenario random = harbor_scenario(2500, seed, /*grid=*/false);

    const TinyDBRun tinydb = run_tinydb(grid);
    tinydb_reports += tinydb.result.reports_generated;
    tinydb_kb += tinydb.result.traffic_bytes / 1024.0;
    tinydb_ops += tinydb.ledger.total_ops();

    const EScanRun escan = run_escan(grid);
    escan_reports += escan.result.reports_generated;
    escan_kb += escan.result.traffic_bytes / 1024.0;
    escan_ops += escan.ledger.total_ops();

    const InlrRun inlr = run_inlr(grid);
    inlr_reports += inlr.result.reports_generated;
    inlr_kb += inlr.result.traffic_bytes / 1024.0;
    inlr_ops += inlr.ledger.total_ops();

    const SuppressionRun sup = run_suppression(grid);
    sup_reports += sup.result.reports_generated;
    sup_kb += sup.result.traffic_bytes / 1024.0;
    sup_ops += sup.ledger.total_ops();

    const IsoMapRun iso = run_isomap(random, 4);
    iso_reports += iso.result.generated_reports;
    iso_kb += iso.result.report_traffic_bytes / 1024.0;
    iso_ops += iso.ledger.total_ops();
  }
  auto add = [&](const std::string& name, double reports, double kb,
                 double ops) {
    measured.row()
        .cell(name)
        .cell(reports / kSeeds, 0)
        .cell(kb / kSeeds, 1)
        .cell(ops / kSeeds, 0)
        .cell(ops / kSeeds / 2500.0, 1);
  };
  add("TinyDB", tinydb_reports, tinydb_kb, tinydb_ops);
  add("eScan", escan_reports, escan_kb, escan_ops);
  add("INLR", inlr_reports, inlr_kb, inlr_ops);
  add("DataSuppression", sup_reports, sup_kb, sup_ops);
  add("Iso-Map", iso_reports, iso_kb, iso_ops);
  emit_table("table1_measured", title, measured);

  std::cout << "\nsqrt(2500) = 50 for reference: Iso-Map generates reports "
               "on that order while every baseline generates hundreds to "
               "thousands.\n";
  return 0;
}
