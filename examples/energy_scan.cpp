// Residual-energy scan — Iso-Map mapping the network's own battery
// state. This is the use case of the eScan baseline (Zhao et al.): the
// sink wants a contour map of residual energy to spot depletion.
// Because Iso-Map's protocol maps *any* per-node scalar, we feed it the
// nodes' residual energy as the readings and get an "energy terrain" map.
// Two depletion structures emerge: the relay zone around the sink, and —
// dominating here — the drained corridor along the monitored isolines,
// whose isoline nodes and neighbours pay the local measurement exchange
// every round. The scan turns the network's own wear pattern into the
// map that schedules battery replacement.
//
// Flow: run `--rounds` contour-mapping rounds of the harbor application,
// accumulate each node's energy spend in the ledger, derive residual
// energy, then run one Iso-Map round over *that* field and render it.
//
// Usage: energy_scan [--nodes=2500] [--rounds=40] [--battery-mj=25]

#include <algorithm>
#include <iostream>

#include "eval/render.hpp"
#include "sim/runners.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace isomap;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  ScenarioConfig config;
  config.num_nodes = args.get_int("nodes", 2500);
  config.seed = args.get_u64("seed", 1);
  const int rounds = args.get_int("rounds", 40);
  const double battery_mj = args.get_double("battery-mj", 25.0);

  const Scenario s = make_scenario(config);
  const Mica2Model energy;

  std::cout << "Running " << rounds
            << " contour-mapping rounds to age the batteries...\n";
  Ledger lifetime(s.deployment.size());
  IsoMapOptions mapping;
  mapping.query = default_query(s.field, 4);
  IsoMapProtocol protocol(mapping);
  for (int round = 0; round < rounds; ++round) {
    protocol.run(s.readings, s.deployment, s.graph, s.tree, lifetime);
  }

  // Residual energy per node, in millijoules.
  std::vector<double> residual(static_cast<std::size_t>(s.deployment.size()),
                               0.0);
  double min_res = battery_mj, max_res = 0.0;
  int weakest = -1;
  for (const auto& node : s.deployment.nodes()) {
    if (!node.alive) continue;
    const double spent = energy.node_energy_j(lifetime, node.id) * 1e3;
    const double left = std::max(0.0, battery_mj - spent);
    residual[static_cast<std::size_t>(node.id)] = left;
    if (left < min_res) {
      min_res = left;
      weakest = node.id;
    }
    max_res = std::max(max_res, left);
  }
  std::cout << "Residual energy range: " << min_res << " - " << max_res
            << " mJ; weakest node " << weakest << " at "
            << s.deployment.node(std::max(weakest, 0)).pos << " ("
            << s.deployment.node(std::max(weakest, 0))
                   .pos.distance_to(
                       s.deployment.node(s.tree.sink()).pos)
            << " units from the sink)\n\n";

  // Raw per-node spend is spatially rough (an isoline node burns hot next
  // to an idle neighbour), so nodes first smooth their residual over the
  // 1-hop neighbourhood — the values are already known from the beacon
  // exchange, so this costs nothing extra on the air.
  std::vector<double> smoothed = residual;
  for (const auto& node : s.deployment.nodes()) {
    if (!node.alive) continue;
    double sum = residual[static_cast<std::size_t>(node.id)];
    int count = 1;
    for (int nb : s.graph.k_hop_neighbours(node.id, 2)) {
      sum += residual[static_cast<std::size_t>(nb)];
      ++count;
    }
    smoothed[static_cast<std::size_t>(node.id)] = sum / count;
  }
  double smin = battery_mj, smax = 0.0;
  for (const auto& node : s.deployment.nodes()) {
    if (!node.alive) continue;
    smin = std::min(smin, smoothed[static_cast<std::size_t>(node.id)]);
    smax = std::max(smax, smoothed[static_cast<std::size_t>(node.id)]);
  }

  // Map the energy terrain with Iso-Map itself: isolevels spread over the
  // residual-energy range.
  IsoMapOptions scan;
  // Concentrate the isolevels on the lower 60% of the range — the crater
  // walls — so the flat fully-charged plain sits above the top level and
  // its residual sensing noise does not spawn spurious isolines.
  scan.query.lambda_lo = smin;
  scan.query.lambda_hi = smin + 0.6 * (smax - smin);
  scan.query.granularity = (scan.query.lambda_hi - scan.query.lambda_lo) / 4.0;
  // Energy varies on hop-count scale; loosen the filter so the steep
  // crater walls keep enough reports.
  scan.query.distance_separation = 2.0;
  scan.query.regression_hops = 2;
  Ledger scan_ledger(s.deployment.size());
  IsoMapProtocol scanner(scan);
  const IsoMapResult result =
      scanner.run(smoothed, s.deployment, s.graph, s.tree, scan_ledger);

  std::cout << "Energy-scan reports at sink: "
            << result.delivered_reports << " (scan traffic "
            << result.report_traffic_bytes / 1024.0 << " KB)\n";

  const int res = 44;
  const LevelMap map = LevelMap::rasterize(
      s.field.bounds(), res, res,
      [&](Vec2 p) { return result.map.level_index(p); });
  std::cout << "\nResidual-energy contour map (darker = more energy "
               "left). The light band tracing the harbor channel is the "
               "drained isoline corridor - those nodes re-measure every "
               "round; the centre dimple is the sink relay zone:\n\n"
            << ascii_render(map);

  // Per-ring summary: mean residual by hop distance from the sink.
  Table rings({"hops_from_sink", "nodes", "mean_residual_mJ"});
  std::vector<double> ring_sum(64, 0.0);
  std::vector<int> ring_count(64, 0);
  for (const auto& node : s.deployment.nodes()) {
    if (!node.alive || !s.tree.reachable(node.id)) continue;
    const int level = std::min(s.tree.level(node.id), 63);
    ring_sum[static_cast<std::size_t>(level)] +=
        residual[static_cast<std::size_t>(node.id)];
    ring_count[static_cast<std::size_t>(level)]++;
  }
  for (int level = 0; level < 64; level += 4) {
    if (!ring_count[static_cast<std::size_t>(level)]) continue;
    rings.row()
        .cell(level)
        .cell(ring_count[static_cast<std::size_t>(level)])
        .cell(ring_sum[static_cast<std::size_t>(level)] /
                  ring_count[static_cast<std::size_t>(level)],
              3);
  }
  std::cout << "\n";
  rings.print(std::cout);
  return 0;
}
