// Failure resilience — watch the reconstructed contour map and the
// network's delivery statistics degrade as nodes die (battery depletion,
// storm damage). Reproduces the Section 5 failure analysis as a runnable
// scenario and shows the role of the border-range epsilon: a wider border
// region selects redundant isoline nodes, buying failure tolerance at the
// cost of peak fidelity.
//
// Usage: failure_resilience [--nodes=2500] [--seed=1] [--epsilon=0.05]

#include <iostream>

#include "eval/metrics.hpp"
#include "eval/render.hpp"
#include "sim/runners.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace isomap;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int nodes = args.get_int("nodes", 2500);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const double epsilon = args.get_double("epsilon", 0.05);

  std::cout << "Progressive node failures on a " << nodes
            << "-node deployment (epsilon = " << epsilon << " T)\n\n";

  Table table({"failures_pct", "alive", "tree_reach_pct", "sink_reports",
               "accuracy_pct", "verdict"});

  LevelMap last_map({0, 0, 50, 50}, 1, 1);
  for (const double failures : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    ScenarioConfig config;
    config.num_nodes = nodes;
    config.seed = seed;
    config.failure_fraction = failures;
    const Scenario s = make_scenario(config);

    IsoMapOptions options;
    options.query = default_query(s.field, 4);
    options.query.epsilon_fraction = epsilon;
    const IsoMapRun run = run_isomap(s, options);
    const double accuracy = mapping_accuracy(run.result.map, s.field,
                                             options.query.isolevels(), 80) *
                            100.0;
    const double reach = 100.0 * s.tree.reachable_count() /
                         std::max(1, s.deployment.alive_count());
    const char* verdict = accuracy > 85.0   ? "good"
                          : accuracy > 60.0 ? "degraded"
                                            : "unusable";
    table.row()
        .cell(failures * 100.0, 0)
        .cell(s.deployment.alive_count())
        .cell(reach, 1)
        .cell(run.result.delivered_reports)
        .cell(accuracy, 1)
        .cell(verdict);

    const int res = 40;
    last_map = LevelMap::rasterize(
        {0, 0, 50, 50}, res, res,
        [&](Vec2 p) { return run.result.map.level_index(p); });
    if (failures == 0.0 || failures == 0.3) {
      std::cout << "map at " << failures * 100 << "% failures:\n"
                << ascii_render(last_map) << "\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nNote how the collapse tracks the routing tree's reach: "
               "once the communication graph percolates apart, reports "
               "cannot reach the sink no matter how many isoline nodes "
               "fire. A wider --epsilon keeps more redundant reporters "
               "alive along each isoline.\n";
  return 0;
}
