// Filter tuning — explore the traffic/fidelity trade-off of Section 3.5
// interactively. Sweeps the in-network filter thresholds (angular
// separation s_a and distance separation s_d) on one deployment and
// prints the frontier, plus the MICA2 energy cost of each setting, so an
// operator can pick thresholds for a deployment's accuracy target.
//
// Usage: filter_tuning [--nodes=2500] [--levels=4] [--seed=1]
//                      [--min-accuracy=90]

#include <iostream>

#include "eval/metrics.hpp"
#include "sim/runners.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace isomap;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  ScenarioConfig config;
  config.num_nodes = args.get_int("nodes", 2500);
  config.seed = args.get_u64("seed", 1);
  const int levels = args.get_int("levels", 4);
  const double min_accuracy = args.get_double("min-accuracy", 90.0);

  const Scenario scenario = make_scenario(config);
  const ContourQuery base = default_query(scenario.field, levels);
  const Mica2Model energy;

  std::cout << "Sweeping in-network filter thresholds on " << config.num_nodes
            << " nodes (accuracy target >= " << min_accuracy << "%)\n\n";

  Table table({"sa_deg", "sd", "sink_reports", "traffic_KB",
               "mean_energy_uJ", "accuracy_pct", "meets_target"});

  struct Best {
    double sa = -1, sd = -1, traffic = 1e300, accuracy = 0;
  } best;

  for (double sa : {10.0, 20.0, 30.0, 45.0, 60.0}) {
    for (double sd : {1.0, 2.0, 4.0, 6.0, 8.0}) {
      IsoMapOptions options;
      options.query = base;
      options.query.angular_separation_deg = sa;
      options.query.distance_separation = sd;
      const IsoMapRun run = run_isomap(scenario, options);
      const double accuracy =
          mapping_accuracy(run.result.map, scenario.field, base.isolevels(),
                           80) *
          100.0;
      const double kb = run.result.report_traffic_bytes / 1024.0;
      const bool ok = accuracy >= min_accuracy;
      table.row()
          .cell(sa, 0)
          .cell(sd, 0)
          .cell(run.result.delivered_reports)
          .cell(kb, 2)
          .cell(energy.mean_node_energy_j(run.ledger) * 1e6, 2)
          .cell(accuracy, 1)
          .cell(ok ? "yes" : "no");
      if (ok && kb < best.traffic) best = {sa, sd, kb, accuracy};
    }
  }
  table.print(std::cout);

  if (best.sa >= 0) {
    std::cout << "\nRecommended setting: sa = " << best.sa
              << " deg, sd = " << best.sd << "  ->  " << best.traffic
              << " KB at " << best.accuracy << "% accuracy\n";
  } else {
    std::cout << "\nNo setting met the accuracy target; try more isolevels "
                 "or a denser deployment.\n";
  }
  return 0;
}
