// Harbor siltation monitoring — the paper's motivating application
// (Section 2). An echolocation sensor network floats over the Huanghua
// sea route; Iso-Map builds isobath contour maps, and the harbor
// authority uses them to (a) route ships by tonnage draft and (b) raise
// alarms when siltation pushes the safe channel below its design depth.
//
// The example runs two mapping rounds: normal operation, then after a
// simulated storm deposits silt in the channel (the October 2003 event:
// depth dropping from ~9.5 m to ~5.7 m), and reports the area navigable
// per draft class before and after.
//
// Usage: harbor_monitoring [--nodes=2500] [--seed=1]

#include <iostream>

#include "eval/metrics.hpp"
#include "eval/render.hpp"
#include "sim/runners.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace isomap;

namespace {

struct RoundOutcome {
  IsoMapRun run;
  ContourQuery query;
};

RoundOutcome map_round(FieldKind field, int nodes, std::uint64_t seed) {
  ScenarioConfig config;
  config.num_nodes = nodes;
  config.field_side = 50.0;
  config.field = field;
  config.seed = seed;
  const Scenario scenario = make_scenario(config);

  // Isobaths at fixed depths relevant to ship drafts. Each normalized
  // field unit is 8 m of sea surface in the paper's deployment (one node
  // per 100 m x 100 m at density ~1 would be side 400 m; we keep the
  // paper's normalized units).
  IsoMapOptions options;
  options.query.lambda_lo = 6.0;
  options.query.lambda_hi = 12.0;
  options.query.granularity = 2.0;  // Isobaths at 8, 10, 12 m.
  IsoMapRun run = run_isomap(scenario, options);

  std::cout << "\n=== "
            << (field == FieldKind::kHarbor ? "Normal operation"
                                            : "After storm siltation")
            << " ===\n"
            << "isoline reports at sink: " << run.result.delivered_reports
            << ", traffic " << run.result.report_traffic_bytes / 1024.0
            << " KB\n";

  // Navigable-area table: a ship class needs depth >= its draft
  // everywhere it sails. Estimate per-class navigable fraction from the
  // reconstructed map.
  const double drafts[] = {8.0, 10.0, 12.0};
  const char* classes[] = {"coaster (draft < 8 m)", "handysize (< 10 m)",
                           "panamax (< 12 m)"};
  Table table({"ship class", "navigable area (map)", "navigable (truth)"});
  const int res = 60;
  for (int c = 0; c < 3; ++c) {
    int est_ok = 0, true_ok = 0;
    for (int iy = 0; iy < res; ++iy) {
      for (int ix = 0; ix < res; ++ix) {
        const Vec2 p{50.0 * (ix + 0.5) / res, 50.0 * (iy + 0.5) / res};
        // Level index k means depth >= lambda_k for the first k levels.
        const int level = run.result.map.level_index(p);
        const double est_depth =
            level == 0 ? 0.0 : 6.0 + 2.0 * level;  // Deepest passed level.
        if (est_depth >= drafts[c]) ++est_ok;
        if (scenario.field.value(p) >= drafts[c]) ++true_ok;
      }
    }
    table.row()
        .cell(classes[c])
        .cell(format_double(100.0 * est_ok / (res * res), 1) + " %")
        .cell(format_double(100.0 * true_ok / (res * res), 1) + " %");
  }
  table.print(std::cout);

  // Alarm check: the design depth of the dredged route is 13.5 m; alarm
  // when the 12 m isobath region (deep channel) shrinks drastically.
  return {std::move(run), options.query};
}

double channel_area(const ContourMap& map, int level_count) {
  const int res = 80;
  int inside = 0;
  for (int iy = 0; iy < res; ++iy)
    for (int ix = 0; ix < res; ++ix)
      if (map.level_index({50.0 * (ix + 0.5) / res,
                           50.0 * (iy + 0.5) / res}) >= level_count)
        ++inside;
  return 2500.0 * inside / (res * res);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int nodes = args.get_int("nodes", 2500);
  const std::uint64_t seed = args.get_u64("seed", 1);

  std::cout << "Huanghua Harbor sea-route monitoring with Iso-Map\n"
            << "(" << nodes << " echolocation buoys over the 50x50 "
            << "normalized route section)\n";

  RoundOutcome normal = map_round(FieldKind::kHarbor, nodes, seed);
  RoundOutcome silted = map_round(FieldKind::kSilted, nodes, seed);

  const int levels =
      static_cast<int>(normal.query.isolevels().size());
  const double area_before = channel_area(normal.run.result.map, levels);
  const double area_after = channel_area(silted.run.result.map, levels);
  std::cout << "\nDeep-channel area (>= 12 m): " << area_before
            << " -> " << area_after << " square units\n";
  if (area_after < 0.5 * area_before) {
    std::cout << "*** SILTATION ALARM: deep channel shrank by more than "
                 "half — dispatch dredgers and reroute deep-draft ships "
                 "***\n";
  } else {
    std::cout << "Channel within normal bounds.\n";
  }

  const int res = 44;
  const LevelMap before = LevelMap::rasterize(
      {0, 0, 50, 50}, res, res,
      [&](Vec2 p) { return normal.run.result.map.level_index(p); });
  const LevelMap after = LevelMap::rasterize(
      {0, 0, 50, 50}, res, res,
      [&](Vec2 p) { return silted.run.result.map.level_index(p); });
  std::cout << "\n"
            << ascii_render_pair(before, after, "isobaths before storm",
                                 "after storm");
  return 0;
}
