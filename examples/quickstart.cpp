// Quickstart: run Iso-Map end to end on the default harbor scenario and
// print the reconstructed isobath contour map next to the ground truth.
//
// Usage: quickstart [--nodes=2500] [--side=50] [--levels=4] [--seed=1]

#include <iostream>

#include "eval/metrics.hpp"
#include "eval/render.hpp"
#include "sim/runners.hpp"
#include "util/cli.hpp"

using namespace isomap;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  ScenarioConfig config;
  config.num_nodes = args.get_int("nodes", 2500);
  config.field_side = args.get_double("side", 50.0);
  config.seed = args.get_u64("seed", 1);
  const int levels = args.get_int("levels", 4);

  std::cout << "Deploying " << config.num_nodes << " sensor nodes over a "
            << config.field_side << " x " << config.field_side
            << " field (density " << config.density() << ", radio range "
            << config.effective_radio_range() << ")...\n";

  const Scenario scenario = make_scenario(config);
  std::cout << "Average node degree: " << scenario.graph.average_degree()
            << ", routing-tree depth: " << scenario.tree.depth() << " hops\n";

  const IsoMapRun run = run_isomap(scenario, levels);
  const ContourQuery query = default_query(scenario.field, levels);

  std::cout << "Isoline nodes selected: " << run.result.isoline_node_count
            << "\nReports generated:      " << run.result.generated_reports
            << "\nReports at sink:        " << run.result.delivered_reports
            << " (after in-network filtering)"
            << "\nReport traffic:         "
            << run.result.report_traffic_bytes / 1024.0 << " KB\n";

  const double accuracy = mapping_accuracy(run.result.map, scenario.field,
                                           query.isolevels(), 100);
  std::cout << "Mapping accuracy:       " << accuracy * 100.0 << " %\n";

  const Mica2Model energy;
  std::cout << "Mean per-node energy:   "
            << energy.mean_node_energy_j(run.ledger) * 1000.0 << " mJ\n\n";

  const int res = 48;
  const LevelMap truth =
      LevelMap::ground_truth(scenario.field, query.isolevels(), res, res);
  const LevelMap estimate =
      LevelMap::rasterize(scenario.field.bounds(), res, res,
                          [&](Vec2 p) { return run.result.map.level_index(p); });
  std::cout << ascii_render_pair(truth, estimate, "ground truth",
                                 "Iso-Map reconstruction");
  return 0;
}
