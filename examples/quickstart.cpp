// Quickstart: run Iso-Map end to end on the default harbor scenario and
// print the reconstructed isobath contour map next to the ground truth.
//
// Usage: quickstart [--nodes=2500] [--side=50] [--levels=4] [--seed=1]
//                   [--threads=N] [--crash=0.1] [--burst] [--no-heal]
//                   [--jitter=0.005] [--dup=0.1] [--reorder=0.1]
//                   [--arq-window=4]
//                   [--trace=<run.jsonl>] [--summary=<summary.json>]
//
// --threads sizes the exec thread pool used for sink-side map generation
// (default: ISOMAP_THREADS, else hardware). The result is bitwise
// identical at any thread count — see docs/PERFORMANCE.md.
//
// --trace streams every ledger charge, phase timing, selection and filter
// drop as one JSON object per line (inspect with tools/trace_summary).
// --summary writes the run's obs::RunSummary (per-phase timing histograms,
// counters, ledger totals) as a single JSON document.
// --crash kills that fraction of nodes mid-convergecast (self-healing
// routing repairs the tree unless --no-heal); --burst switches the link
// to a Gilbert-Elliott bursty-loss channel. Any of --jitter (seconds),
// --dup, --reorder (probabilities) or --arq-window engages the
// link-impairment pipeline with sliding-window ARQ, and the run then
// reports measured end-to-end map latency. See docs/ROBUSTNESS.md.

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "eval/metrics.hpp"
#include "eval/render.hpp"
#include "exec/exec.hpp"
#include "obs/trace.hpp"
#include "sim/runners.hpp"
#include "util/cli.hpp"

using namespace isomap;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  ScenarioConfig config;
  config.num_nodes = args.get_int("nodes", 2500);
  config.field_side = args.get_double("side", 50.0);
  config.seed = args.get_u64("seed", 1);
  const int levels = args.get_int("levels", 4);
  if (const int threads = args.get_int("threads", 0); threads > 0)
    exec::set_thread_count(threads);

  std::cout << "Deploying " << config.num_nodes << " sensor nodes over a "
            << config.field_side << " x " << config.field_side
            << " field (density " << config.density() << ", radio range "
            << config.effective_radio_range() << ", "
            << exec::thread_count() << " thread(s))...\n";

  const Scenario scenario = make_scenario(config);
  std::cout << "Average node degree: " << scenario.graph.average_degree()
            << ", routing-tree depth: " << scenario.tree.depth() << " hops\n";

  std::unique_ptr<obs::TraceSink> trace;
  if (const auto trace_path = args.get("trace")) {
    trace = std::make_unique<obs::TraceSink>(*trace_path);
    if (!trace->ok()) {
      std::cerr << "quickstart: cannot write trace to " << *trace_path
                << "\n";
      return 1;
    }
  }

  IsoMapOptions options = isomap_options(scenario, levels);
  options.fault.crash_fraction = args.get_double("crash", 0.0);
  options.fault.self_healing = !args.has("no-heal");
  if (args.has("burst")) {
    options.link_burst = GilbertElliottParams{};  // Mild default bursts.
    options.link_seed = config.seed * 977;
  }
  if (args.has("jitter") || args.has("dup") || args.has("reorder") ||
      args.has("arq-window")) {
    ImpairmentConfig impair;
    impair.latency_s = 0.002;
    impair.jitter_s = args.get_double("jitter", 0.0);
    impair.dup_prob = args.get_double("dup", 0.0);
    impair.reorder_prob = args.get_double("reorder", 0.0);
    options.link_impair = impair;
    options.link_arq.window = args.get_int("arq-window", 4);
    options.link_impair->validate();
    options.link_arq.validate();
  }
  const IsoMapRun run = run_isomap(scenario, options, trace.get());
  const ContourQuery query = default_query(scenario.field, levels);

  if (trace) {
    trace->flush();
    std::cout << "Trace events written:   " << trace->events() << " (to "
              << *args.get("trace") << ")\n";
  }
  if (const auto summary_path = args.get("summary")) {
    std::ofstream out(*summary_path);
    if (!out) {
      std::cerr << "quickstart: cannot write summary to " << *summary_path
                << "\n";
      return 1;
    }
    out << run.summary.to_json().dump(2) << "\n";
    std::cout << "Run summary written:    " << *summary_path << "\n";
  }

  std::cout << "Isoline nodes selected: " << run.result.isoline_node_count
            << "\nReports generated:      " << run.result.generated_reports
            << "\nReports at sink:        " << run.result.delivered_reports
            << " (after in-network filtering)"
            << "\nReport traffic:         "
            << run.result.report_traffic_bytes / 1024.0 << " KB\n";
  if (run.result.crashed_nodes > 0 || run.result.lost_channel_reports > 0) {
    std::cout << "Nodes crashed mid-run:  " << run.result.crashed_nodes
              << "\nReports lost (crash):   " << run.result.lost_crash_reports
              << "\nReports lost (channel): "
              << run.result.lost_channel_reports
              << "\nTree repairs:           " << run.result.route_repairs
              << " (" << run.result.repair_traffic_bytes / 1024.0
              << " KB of beacons)\n";
  }
  if (options.link_impair) {
    std::cout << "E2E map latency:        first "
              << run.result.e2e_first_latency_s * 1000.0 << " ms, mean "
              << run.result.e2e_mean_latency_s * 1000.0 << " ms, last "
              << run.result.e2e_last_latency_s * 1000.0 << " ms (measured "
              << "over the impaired ARQ link)\n";
  }

  const double accuracy = mapping_accuracy(run.result.map, scenario.field,
                                           query.isolevels(), 100);
  std::cout << "Mapping accuracy:       " << accuracy * 100.0 << " %\n";

  const Mica2Model energy;
  std::cout << "Mean per-node energy:   "
            << energy.mean_node_energy_j(run.ledger) * 1000.0 << " mJ\n\n";

  const int res = 48;
  const LevelMap truth =
      LevelMap::ground_truth(scenario.field, query.isolevels(), res, res);
  const LevelMap estimate =
      LevelMap::rasterize(scenario.field.bounds(), res, res,
                          [&](Vec2 p) { return run.result.map.level_index(p); });
  std::cout << ascii_render_pair(truth, estimate, "ground truth",
                                 "Iso-Map reconstruction");
  return 0;
}
