// simulate — the full-featured command-line runner: pick a protocol, a
// field, a deployment and impairments, and get metrics plus optional
// ASCII / PGM / SVG / CSV artifacts. This is the "drive everything from
// one binary" entry point for downstream users.
//
// Usage examples:
//   simulate --protocol=isomap --nodes=2500 --levels=4 --svg=map.svg
//   simulate --protocol=tinydb --grid --failures=0.2
//   simulate --protocol=isomap --field=silted --loss=0.2 --noise=0.1
//   simulate --protocol=isomap --localization=dvhop --anchors=0.05
//   simulate --protocol=agg --csv=run.csv
//
// Options:
//   --protocol=isomap|tinydb|inlr|escan|suppression|agg   (default isomap)
//   --trace=FILE.asc  drive the run from an ESRI ASCII grid survey trace
//   --field=harbor|silted|multibasin|sloped|random        (default harbor)
//   --nodes=N --side=S --levels=K --seed=R
//   --grid            grid deployment (tinydb always uses its own grid)
//   --failures=F      fraction of nodes failed
//   --noise=SD        reading noise (attribute units)
//   --poserr=SD       localization error injected as Gaussian noise
//   --localization=dvhop --anchors=FRAC    emergent DV-Hop positions
//   --loss=P --retries=R                    lossy links with ARQ
//   --sa=DEG --sd=DIST --epsilon=FRAC       Iso-Map filter / border range
//   --regulation=none|rules|blended
//   --ascii --pgm=PATH --svg=PATH --csv=PATH --geojson=PATH

#include <iostream>
#include <memory>

#include "baselines/isoline_agg.hpp"
#include "field/trace_io.hpp"
#include "eval/metrics.hpp"
#include "eval/render.hpp"
#include "eval/geojson.hpp"
#include "eval/svg.hpp"
#include "net/localization.hpp"
#include "sim/runners.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace isomap;

namespace {

FieldKind parse_field(const std::string& name) {
  if (name == "harbor") return FieldKind::kHarbor;
  if (name == "silted") return FieldKind::kSilted;
  if (name == "multibasin") return FieldKind::kMultiBasin;
  if (name == "sloped") return FieldKind::kSloped;
  if (name == "random") return FieldKind::kRandom;
  throw std::invalid_argument("unknown --field: " + name);
}

RegulationMode parse_regulation(const std::string& name) {
  if (name == "none") return RegulationMode::kNone;
  if (name == "rules") return RegulationMode::kRules;
  if (name == "blended") return RegulationMode::kBlended;
  throw std::invalid_argument("unknown --regulation: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string protocol = args.get_or("protocol", "isomap");

  ScenarioConfig config;
  config.num_nodes = args.get_int("nodes", 2500);
  config.field_side = args.get_double("side", 50.0);
  config.seed = args.get_u64("seed", 1);
  config.field = parse_field(args.get_or("field", "harbor"));
  config.grid_deployment = args.has("grid") || protocol == "tinydb" ||
                           protocol == "inlr";
  config.failure_fraction = args.get_double("failures", 0.0);
  config.reading_noise_std = args.get_double("noise", 0.0);
  config.position_error_std = args.get_double("poserr", 0.0);
  const int levels = args.get_int("levels", 4);

  Scenario s = [&] {
    if (const auto trace = args.get("trace")) {
      auto grid = std::make_shared<GridField>(load_ascii_grid(*trace));
      std::cout << "trace: " << *trace << " (" << grid->nx() << "x"
                << grid->ny() << " samples)\n";
      return make_scenario_with_field(config, std::move(grid));
    }
    return make_scenario(config);
  }();
  std::cout << "scenario: " << config.num_nodes << " nodes, "
            << config.field_side << "x" << config.field_side
            << " field, density " << config.density() << ", degree "
            << s.graph.average_degree() << ", tree depth "
            << s.tree.depth() << "\n";

  // Optional emergent localization.
  if (args.get_or("localization", "exact") == "dvhop") {
    Rng loc_rng(config.seed ^ 0xD0C5ULL);
    Ledger loc_ledger(s.deployment.size());
    DvHopOptions dv;
    dv.anchor_fraction = args.get_double("anchors", 0.05);
    const DvHopResult loc =
        dv_hop_localize(s.deployment, s.graph, dv, loc_rng, loc_ledger);
    apply_localization(s.deployment, loc);
    std::cout << "dv-hop: " << loc.anchors.size() << " anchors, mean error "
              << loc.mean_error << " units, flood traffic "
              << loc.flood_traffic_bytes / 1024.0 << " KB\n";
  }

  const ContourQuery base_query = default_query(s.field, levels);
  const auto isolevels = base_query.isolevels();
  const Mica2Model energy;

  Table metrics({"metric", "value"});
  std::function<int(Vec2)> classify;
  std::vector<Polyline> boundaries;

  if (protocol == "isomap") {
    IsoMapOptions options;
    options.query = base_query;
    options.query.angular_separation_deg = args.get_double("sa", 30.0);
    options.query.distance_separation = args.get_double("sd", 4.0);
    options.query.epsilon_fraction = args.get_double("epsilon", 0.05);
    options.regulation = parse_regulation(args.get_or("regulation", "rules"));
    options.link_loss = args.get_double("loss", 0.0);
    options.link_retries = args.get_int("retries", 3);
    const IsoMapRun run = run_isomap(s, options);
    metrics.row().cell("isoline nodes").cell(run.result.isoline_node_count);
    metrics.row().cell("reports generated").cell(run.result.generated_reports);
    metrics.row().cell("reports at sink").cell(run.result.delivered_reports);
    metrics.row().cell("report traffic KB").cell(
        run.result.report_traffic_bytes / 1024.0, 2);
    metrics.row().cell("collection latency s").cell(
        run.result.latency_s(), 3);
    metrics.row().cell("mean node energy uJ").cell(
        energy.mean_node_energy_j(run.ledger) * 1e6, 2);
    metrics.row().cell("accuracy %").cell(
        mapping_accuracy(run.result.map, s.field, isolevels, 90) * 100.0, 2);
    metrics.row().cell("mean IoU").cell(
        mean_region_iou(run.result.map, s.field, isolevels, 90), 3);
    const double h = isoline_hausdorff(run.result.map, s.field, isolevels);
    metrics.row().cell("hausdorff (norm)").cell(
        std::isfinite(h) ? h / config.field_side : -1.0, 4);
    // Keep a copy of the map for the renders.
    auto map = std::make_shared<ContourMap>(run.result.map);
    classify = [map](Vec2 p) { return map->level_index(p); };
    for (int k = 0; k < map->level_count(); ++k)
      for (const auto& chain : map->isolines(k)) boundaries.push_back(chain);
    if (const auto geojson = args.get("geojson")) {
      GeoJsonWriter writer;
      writer.add_contour_map(*map);
      writer.add_reports(run.result.sink_reports);
      if (writer.save(*geojson))
        std::cout << "geojson: " << *geojson << " (" << writer.feature_count()
                  << " features)\n";
    }
  } else if (protocol == "tinydb") {
    TinyDBOptions options;
    options.link_loss = args.get_double("loss", 0.0);
    options.link_retries = args.get_int("retries", 3);
    const TinyDBRun run = run_tinydb(s, options);
    metrics.row().cell("reports delivered").cell(run.result.reports_delivered);
    metrics.row().cell("traffic KB").cell(run.result.traffic_bytes / 1024.0,
                                          2);
    metrics.row().cell("collection latency s").cell(run.result.latency_s(),
                                                    3);
    metrics.row().cell("mean node energy uJ").cell(
        energy.mean_node_energy_j(run.ledger) * 1e6, 2);
    auto result = std::make_shared<TinyDBResult>(run.result);
    const LevelMap truth =
        LevelMap::ground_truth(s.field, isolevels, 90, 90);
    const LevelMap est = LevelMap::rasterize(
        s.field.bounds(), 90, 90,
        [&](Vec2 p) { return result->level_index(p, isolevels); });
    metrics.row().cell("accuracy %").cell(est.accuracy_against(truth) * 100.0,
                                          2);
    classify = [result, isolevels](Vec2 p) {
      return result->level_index(p, isolevels);
    };
  } else if (protocol == "agg") {
    IsolineAggOptions options;
    options.query = base_query;
    options.distance_separation = args.get_double("sd", 4.0);
    IsolineAggProtocol agg(options);
    Ledger ledger(s.deployment.size());
    const IsolineAggResult result =
        agg.run(s.readings, s.deployment, s.graph, s.tree, ledger);
    auto map = std::make_shared<IsolineAggMap>(
        agg.build_map(result, s.field.bounds()));
    metrics.row().cell("reports at sink").cell(result.delivered_reports);
    metrics.row().cell("traffic KB").cell(result.traffic_bytes / 1024.0, 2);
    const LevelMap truth =
        LevelMap::ground_truth(s.field, isolevels, 90, 90);
    const LevelMap est =
        LevelMap::rasterize(s.field.bounds(), 90, 90,
                            [&](Vec2 p) { return map->level_index(p); });
    metrics.row().cell("accuracy %").cell(est.accuracy_against(truth) * 100.0,
                                          2);
    classify = [map](Vec2 p) { return map->level_index(p); };
    for (int k = 0; k < map->level_count(); ++k)
      for (const auto& chain : map->chains(k)) boundaries.push_back(chain);
  } else if (protocol == "inlr") {
    const InlrRun run = run_inlr(s);
    metrics.row().cell("reports generated").cell(
        run.result.reports_generated);
    metrics.row().cell("regions at sink").cell(run.result.regions_at_sink);
    metrics.row().cell("traffic KB").cell(run.result.traffic_bytes / 1024.0,
                                          2);
    metrics.row().cell("mean node ops").cell(run.ledger.mean_ops(), 1);
    metrics.row().cell("mean node energy uJ").cell(
        energy.mean_node_energy_j(run.ledger) * 1e6, 2);
    auto result = std::make_shared<InlrResult>(run.result);
    const LevelMap truth = LevelMap::ground_truth(s.field, isolevels, 90, 90);
    const LevelMap est = LevelMap::rasterize(
        s.field.bounds(), 90, 90,
        [&](Vec2 p) { return result->level_index(p, isolevels); });
    metrics.row().cell("accuracy %").cell(est.accuracy_against(truth) * 100.0,
                                          2);
    classify = [result, isolevels](Vec2 p) {
      return result->level_index(p, isolevels);
    };
  } else if (protocol == "escan") {
    const EScanRun run = run_escan(s);
    metrics.row().cell("tuples at sink").cell(run.result.tuples_at_sink);
    metrics.row().cell("traffic KB").cell(run.result.traffic_bytes / 1024.0,
                                          2);
    metrics.row().cell("mean node ops").cell(run.ledger.mean_ops(), 1);
    auto result = std::make_shared<EScanResult>(run.result);
    const LevelMap truth = LevelMap::ground_truth(s.field, isolevels, 90, 90);
    const LevelMap est = LevelMap::rasterize(
        s.field.bounds(), 90, 90,
        [&](Vec2 p) { return result->level_index(p, isolevels); });
    metrics.row().cell("accuracy %").cell(est.accuracy_against(truth) * 100.0,
                                          2);
    classify = [result, isolevels](Vec2 p) {
      return result->level_index(p, isolevels);
    };
  } else if (protocol == "suppression") {
    const SuppressionRun run = run_suppression(s);
    metrics.row().cell("reports sent").cell(run.result.reports_generated);
    metrics.row().cell("reports suppressed").cell(
        run.result.reports_suppressed);
    metrics.row().cell("traffic KB").cell(run.result.traffic_bytes / 1024.0,
                                          2);
  } else {
    std::cerr << "unknown --protocol: " << protocol << "\n";
    return 1;
  }

  metrics.print(std::cout);

  if (const auto csv = args.get("csv")) {
    if (metrics.save_csv(*csv)) std::cout << "metrics csv: " << *csv << "\n";
  }
  if (classify) {
    if (args.has("ascii")) {
      const LevelMap map = LevelMap::rasterize(s.field.bounds(), 44, 44,
                                               classify);
      std::cout << "\n" << ascii_render(map);
    }
    if (const auto pgm = args.get("pgm")) {
      const LevelMap map = LevelMap::rasterize(s.field.bounds(), 256, 256,
                                               classify);
      if (write_pgm(map, *pgm)) std::cout << "pgm: " << *pgm << "\n";
    }
    if (const auto svg = args.get("svg")) {
      SvgWriter writer(s.field.bounds());
      writer.add_level_raster(classify,
                              static_cast<int>(isolevels.size()));
      writer.add_polylines(boundaries, "rgb(180,30,30)", 1.2);
      // True isolines for reference, faint.
      for (double lambda : isolevels)
        writer.add_polylines(true_isolines(s.field, lambda, 150),
                             "rgba(0,0,0,0.35)", 0.8);
      writer.add_marker(s.deployment.node(s.tree.sink()).pos, "sink",
                        "rgb(20,20,20)");
      if (writer.save(*svg)) std::cout << "svg: " << *svg << "\n";
    }
  }
  return 0;
}
