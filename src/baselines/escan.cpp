#include "baselines/escan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"

namespace isomap {
namespace {

using Tuple = EScanTuple;

double coverage_distance(const Tuple& a, const Tuple& b) {
  const double dx = std::max({0.0, a.min_x - b.max_x, b.min_x - a.max_x});
  const double dy = std::max({0.0, a.min_y - b.max_y, b.min_y - a.max_y});
  return std::hypot(dx, dy);
}

}  // namespace

EScanProtocol::EScanProtocol(EScanOptions options) : options_(options) {}

EScanResult EScanProtocol::run(const Deployment& deployment,
                               const std::vector<double>& readings,
                               const RoutingTree& tree,
                               Ledger& ledger) const {
  EScanResult result;
  const int n = deployment.size();
  std::vector<std::vector<Tuple>> buffer(static_cast<std::size_t>(n));
  for (const auto& node : deployment.nodes()) {
    if (!node.alive || !tree.reachable(node.id)) continue;
    ++result.reports_generated;
    const double v = readings[static_cast<std::size_t>(node.id)];
    buffer[static_cast<std::size_t>(node.id)].push_back(
        {v, v, node.pos.x, node.pos.y, node.pos.x, node.pos.y, 1});
  }

  auto merge_tuples = [&](std::vector<Tuple>& tuples, int at_node) {
    double ops = 0.0;
    bool merged_any = true;
    while (merged_any) {
      merged_any = false;
      for (std::size_t i = 0; i < tuples.size() && !merged_any; ++i) {
        for (std::size_t j = i + 1; j < tuples.size(); ++j) {
          ops += 8.0;  // Adjacency + interval tests.
          if (coverage_distance(tuples[i], tuples[j]) >
              options_.adjacency_distance)
            continue;
          const double vmin = std::min(tuples[i].vmin, tuples[j].vmin);
          const double vmax = std::max(tuples[i].vmax, tuples[j].vmax);
          if (vmax - vmin > options_.value_tolerance) continue;
          // Polygon-merge charge: proportional to the product of the
          // member counts (the paper's worst case is cubic in scan size;
          // our bbox merge is the cheap end of that spectrum, charged
          // super-linearly to reflect coverage-boundary work).
          ops += 4.0 * static_cast<double>(tuples[i].count) *
                 static_cast<double>(tuples[j].count);
          Tuple& a = tuples[i];
          const Tuple& b = tuples[j];
          a.vmin = vmin;
          a.vmax = vmax;
          a.min_x = std::min(a.min_x, b.min_x);
          a.max_x = std::max(a.max_x, b.max_x);
          a.min_y = std::min(a.min_y, b.min_y);
          a.max_y = std::max(a.max_y, b.max_y);
          a.count += b.count;
          tuples.erase(tuples.begin() + static_cast<long>(j));
          merged_any = true;
          break;
        }
      }
    }
    ledger.compute(at_node, ops);
  };

  Channel channel =
      Channel::make(options_.link_loss, options_.link_retries,
                    options_.link_seed, options_.link_burst,
                    options_.link_impair, options_.link_arq);
  const bool impaired = channel.impaired();
  std::vector<double> arrival(static_cast<std::size_t>(n), 0.0);
  for (int u : tree.post_order()) {
    auto& outgoing = buffer[static_cast<std::size_t>(u)];
    if (outgoing.empty()) continue;
    {
      const obs::PhaseTimer timer(obs::kPhaseAggregate);
      merge_tuples(outgoing, u);
    }
    if (u == tree.sink()) continue;
    const int p = tree.parent(u);
    const double bytes =
        static_cast<double>(outgoing.size()) * options_.tuple_bytes;
    Channel::Transfer transfer;
    {
      const obs::PhaseTimer timer(obs::kPhaseReportRoute);
      transfer = channel.transfer(u, p, bytes, ledger);
    }
    result.traffic_bytes += bytes;
    if (!transfer.delivered) {
      ++result.batches_lost;
      result.tuples_lost += static_cast<int>(outgoing.size());
      outgoing.clear();
      continue;
    }
    if (impaired) {
      const auto pu = static_cast<std::size_t>(p);
      arrival[pu] = std::max(
          arrival[pu],
          arrival[static_cast<std::size_t>(u)] + transfer.latency_s);
    }
    auto& inbox = buffer[static_cast<std::size_t>(p)];
    inbox.insert(inbox.end(), outgoing.begin(), outgoing.end());
    outgoing.clear();
  }
  if (impaired)
    result.collection_latency_s =
        arrival[static_cast<std::size_t>(tree.sink())];
  result.sink_tuples =
      std::move(buffer[static_cast<std::size_t>(tree.sink())]);
  result.tuples_at_sink = static_cast<int>(result.sink_tuples.size());
  obs::count("reports.generated", result.reports_generated);
  obs::count("aggregate.tuples_at_sink", result.tuples_at_sink);
  return result;
}

double EScanResult::estimated_value(Vec2 p) const {
  if (sink_tuples.empty())
    return std::numeric_limits<double>::quiet_NaN();
  const EScanTuple* best = nullptr;
  double best_area = std::numeric_limits<double>::infinity();
  for (const auto& tuple : sink_tuples) {
    if (!tuple.contains(p)) continue;
    const double area = (tuple.max_x - tuple.min_x + 1e-9) *
                        (tuple.max_y - tuple.min_y + 1e-9);
    if (area < best_area) {
      best_area = area;
      best = &tuple;
    }
  }
  if (!best) {
    double best_d = std::numeric_limits<double>::infinity();
    for (const auto& tuple : sink_tuples) {
      const double dx = std::max({0.0, tuple.min_x - p.x, p.x - tuple.max_x});
      const double dy = std::max({0.0, tuple.min_y - p.y, p.y - tuple.max_y});
      const double d = std::hypot(dx, dy);
      if (d < best_d) {
        best_d = d;
        best = &tuple;
      }
    }
  }
  return best->mid();
}

int EScanResult::level_index(Vec2 p,
                             const std::vector<double>& isolevels) const {
  const double v = estimated_value(p);
  if (std::isnan(v)) return 0;
  int level = 0;
  for (double lambda : isolevels) {
    if (v >= lambda) ++level;
    else break;
  }
  return level;
}

}  // namespace isomap
