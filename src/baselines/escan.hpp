#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geometry/vec2.hpp"
#include "net/channel.hpp"
#include "net/deployment.hpp"
#include "net/ledger.hpp"
#include "net/routing_tree.hpp"

namespace isomap {

/// The eScan baseline (Zhao et al., WCNC'02): every node emits a
/// (VALUE, COVERAGE) tuple — VALUE a [min, max] attribute interval and
/// COVERAGE a polygonal (here: bounding-box) region — and intermediate
/// nodes aggregate tuples with adjacent coverage and overlapping value
/// ranges. Aggregation is polygon merging, whose worst case the paper
/// quotes as O(m^3) per sensor; we charge the measured merge work.
/// Traffic remains O(n).
struct EScanOptions {
  double tuple_bytes = 12.0;       ///< min, max, bbox(4) at 2 bytes each.
  double value_tolerance = 1.0;    ///< Max value-interval width after merge.
  double adjacency_distance = 2.0; ///< Coverage adjacency threshold.

  /// Link layer for the tuple convergecast (see net/channel.hpp); the
  /// defaults reproduce the historical perfect-link behavior bit for bit.
  /// A lost hop loses the whole outgoing tuple batch.
  double link_loss = 0.0;
  int link_retries = 3;
  std::uint64_t link_seed = 0xC0FFEEULL;
  std::optional<GilbertElliottParams> link_burst;
  /// Impairment pipeline + sliding-window ARQ (net/impairment.hpp).
  std::optional<ImpairmentConfig> link_impair;
  ArqConfig link_arq;
};

/// A (VALUE, COVERAGE) tuple as received by the sink.
struct EScanTuple {
  double vmin = 0.0, vmax = 0.0;
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  int count = 1;

  double mid() const { return (vmin + vmax) * 0.5; }
  bool contains(Vec2 p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
};

struct EScanResult {
  int reports_generated = 0;
  int tuples_at_sink = 0;
  double traffic_bytes = 0.0;
  std::vector<EScanTuple> sink_tuples;

  /// Lossy-link accounting: hop batches that exhausted the ARQ and the
  /// tuples they carried (both 0 on a perfect channel).
  int batches_lost = 0;
  int tuples_lost = 0;
  /// Measured collection latency over the impaired pipeline (see
  /// InlrResult::collection_latency_s). 0.0 when link_impair is unset.
  double collection_latency_s = 0.0;

  /// Sink map: the estimate at p is the midpoint value of the smallest
  /// covering tuple (nearest coverage when none covers p); NaN when the
  /// sink received nothing.
  double estimated_value(Vec2 p) const;
  /// Level classification from the estimate (0 when empty).
  int level_index(Vec2 p, const std::vector<double>& isolevels) const;
};

class EScanProtocol {
 public:
  explicit EScanProtocol(EScanOptions options = {});

  EScanResult run(const Deployment& deployment,
                  const std::vector<double>& readings,
                  const RoutingTree& tree, Ledger& ledger) const;

 private:
  EScanOptions options_;
};

}  // namespace isomap
