#include "baselines/inlr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"

namespace isomap {
namespace {

using Region = InlrRegion;

Region point_region(Vec2 p, double value) {
  Region r;
  r.c0 = value;
  r.min_x = r.max_x = p.x;
  r.min_y = r.max_y = p.y;
  return r;
}

double bbox_distance(const Region& a, const Region& b) {
  const double dx =
      std::max({0.0, a.min_x - b.max_x, b.min_x - a.max_x});
  const double dy =
      std::max({0.0, a.min_y - b.max_y, b.min_y - a.max_y});
  return std::hypot(dx, dy);
}

}  // namespace

InlrProtocol::InlrProtocol(InlrOptions options) : options_(options) {}

InlrResult InlrProtocol::run(const Deployment& deployment,
                             const std::vector<double>& readings,
                             const RoutingTree& tree, Ledger& ledger) const {
  InlrResult result;
  const int n = deployment.size();
  const int g = std::max(2, options_.integration_grid);

  // Per-node outgoing region sets, processed leaves-first.
  std::vector<std::vector<Region>> buffer(static_cast<std::size_t>(n));
  for (const auto& node : deployment.nodes()) {
    if (!node.alive || !tree.reachable(node.id)) continue;
    ++result.reports_generated;
    buffer[static_cast<std::size_t>(node.id)].push_back(
        point_region(node.pos, readings[static_cast<std::size_t>(node.id)]));
  }

  // RMS difference of two models over the union bbox. The difference is
  // *estimated* on a coarse g x g grid, but the *charged* cost models the
  // paper's fixed-resolution numerical integration over the joint region:
  // (area / step^2) grid points at ~8 flops each. Regions near the sink
  // span large areas, so their comparisons dominate — INLR's per-node
  // computation grows with network size.
  auto model_rms = [&](const Region& a, const Region& b, double& ops) {
    const double x0 = std::min(a.min_x, b.min_x);
    const double x1 = std::max(a.max_x, b.max_x);
    const double y0 = std::min(a.min_y, b.min_y);
    const double y1 = std::max(a.max_y, b.max_y);
    double acc = 0.0;
    for (int iy = 0; iy < g; ++iy) {
      for (int ix = 0; ix < g; ++ix) {
        const Vec2 p{x0 + (x1 - x0) * (ix + 0.5) / g,
                     y0 + (y1 - y0) * (iy + 0.5) / g};
        const double d = a.model(p) - b.model(p);
        acc += d * d;
      }
    }
    const double step2 =
        options_.integration_step * options_.integration_step;
    const double cells =
        std::max(static_cast<double>(g) * g,
                 (x1 - x0) * (y1 - y0) / std::max(step2, 1e-9));
    ops += cells * 8.0;
    return std::sqrt(acc / (g * g));
  };

  auto merge_regions = [&](std::vector<Region>& regions, int at_node) {
    double ops = 0.0;
    bool merged_any = true;
    while (merged_any) {
      merged_any = false;
      for (std::size_t i = 0; i < regions.size() && !merged_any; ++i) {
        for (std::size_t j = i + 1; j < regions.size(); ++j) {
          ops += 6.0;  // bbox distance test
          if (bbox_distance(regions[i], regions[j]) >
              options_.adjacency_distance)
            continue;
          if (model_rms(regions[i], regions[j], ops) >
              options_.merge_threshold)
            continue;
          // Merge j into i: count-weighted model average, joint bbox, and
          // a model refresh charge.
          Region& a = regions[i];
          Region& b = regions[j];
          const double wa = a.count, wb = b.count;
          const double w = wa + wb;
          a.c0 = (a.c0 * wa + b.c0 * wb) / w;
          a.c1 = (a.c1 * wa + b.c1 * wb) / w;
          a.c2 = (a.c2 * wa + b.c2 * wb) / w;
          a.min_x = std::min(a.min_x, b.min_x);
          a.max_x = std::max(a.max_x, b.max_x);
          a.min_y = std::min(a.min_y, b.min_y);
          a.max_y = std::max(a.max_y, b.max_y);
          a.count += b.count;
          ops += 20.0;
          regions.erase(regions.begin() + static_cast<long>(j));
          merged_any = true;
          break;
        }
      }
    }
    ledger.compute(at_node, ops);
  };

  Channel channel =
      Channel::make(options_.link_loss, options_.link_retries,
                    options_.link_seed, options_.link_burst,
                    options_.link_impair, options_.link_arq);
  const bool impaired = channel.impaired();
  // Per-node batch arrival time over the impaired pipeline: a node's
  // batch leaves once all children delivered, so its arrival at the
  // parent is max over contributing children plus this hop's ARQ time.
  std::vector<double> arrival(static_cast<std::size_t>(n), 0.0);
  for (int u : tree.post_order()) {
    auto& outgoing = buffer[static_cast<std::size_t>(u)];
    if (outgoing.empty()) continue;
    {
      // The numerical-integration merge is INLR's computational burden —
      // phase-separated from routing so Fig. 15's cost is visible per hop.
      const obs::PhaseTimer timer(obs::kPhaseAggregate);
      merge_regions(outgoing, u);
    }
    if (u == tree.sink()) continue;
    const int p = tree.parent(u);
    const double bytes =
        static_cast<double>(outgoing.size()) * options_.region_bytes;
    Channel::Transfer transfer;
    {
      const obs::PhaseTimer timer(obs::kPhaseReportRoute);
      transfer = channel.transfer(u, p, bytes, ledger);
    }
    result.traffic_bytes += bytes;
    if (!transfer.delivered) {
      ++result.batches_lost;
      result.regions_lost += static_cast<int>(outgoing.size());
      outgoing.clear();
      continue;
    }
    if (impaired) {
      const auto pu = static_cast<std::size_t>(p);
      arrival[pu] = std::max(
          arrival[pu],
          arrival[static_cast<std::size_t>(u)] + transfer.latency_s);
    }
    auto& inbox = buffer[static_cast<std::size_t>(p)];
    inbox.insert(inbox.end(), outgoing.begin(), outgoing.end());
    outgoing.clear();
  }
  if (impaired)
    result.collection_latency_s =
        arrival[static_cast<std::size_t>(tree.sink())];

  result.sink_regions =
      std::move(buffer[static_cast<std::size_t>(tree.sink())]);
  result.regions_at_sink = static_cast<int>(result.sink_regions.size());
  obs::count("reports.generated", result.reports_generated);
  obs::count("aggregate.regions_at_sink", result.regions_at_sink);
  return result;
}

double InlrResult::estimated_value(Vec2 p) const {
  if (sink_regions.empty())
    return std::numeric_limits<double>::quiet_NaN();
  // Prefer the smallest region containing p (the most specific model);
  // otherwise fall back to the region whose bbox is nearest.
  const InlrRegion* best = nullptr;
  double best_area = std::numeric_limits<double>::infinity();
  for (const auto& region : sink_regions) {
    if (!region.contains(p)) continue;
    const double area = (region.max_x - region.min_x + 1e-9) *
                        (region.max_y - region.min_y + 1e-9);
    if (area < best_area) {
      best_area = area;
      best = &region;
    }
  }
  if (!best) {
    double best_d = std::numeric_limits<double>::infinity();
    for (const auto& region : sink_regions) {
      const double dx =
          std::max({0.0, region.min_x - p.x, p.x - region.max_x});
      const double dy =
          std::max({0.0, region.min_y - p.y, p.y - region.max_y});
      const double d = std::hypot(dx, dy);
      if (d < best_d) {
        best_d = d;
        best = &region;
      }
    }
  }
  return best->model(p);
}

int InlrResult::level_index(Vec2 p,
                            const std::vector<double>& isolevels) const {
  const double v = estimated_value(p);
  if (std::isnan(v)) return 0;
  int level = 0;
  for (double lambda : isolevels) {
    if (v >= lambda) ++level;
    else break;
  }
  return level;
}

}  // namespace isomap
