#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geometry/vec2.hpp"
#include "net/channel.hpp"
#include "net/deployment.hpp"
#include "net/ledger.hpp"
#include "net/routing_tree.hpp"

namespace isomap {

/// The INLR baseline (Xue et al., SIGMOD'06): every node reports, and
/// intermediate nodes aggregate reports into contour *regions*, each
/// described by a numerical (linear) data model over its bounding box.
/// Aggregation compares candidate region pairs by numerically integrating
/// the squared difference of their models over the overlap area — the
/// "multiple integrals" per intermediate node the paper cites as INLR's
/// computational burden. Traffic stays O(n) (every node sources a report;
/// aggregation shrinks but does not bound the flow), while per-node
/// computation grows with network size (Theta(n^1.5) network-wide).
struct InlrOptions {
  /// Bytes per region summary: model coefficients (3), bbox (4), count (1),
  /// two bytes per parameter.
  double region_bytes = 16.0;
  /// Model-similarity threshold for merging, in attribute units: regions
  /// merge when the RMS difference of their models over the joint bbox is
  /// below this value.
  double merge_threshold = 0.5;
  /// Only regions whose bounding boxes are within this distance merge.
  double adjacency_distance = 3.0;
  /// Evaluation grid (g x g points) used to *estimate* the model
  /// difference; kept coarse so the simulation itself stays fast.
  int integration_grid = 4;
  /// Spatial step of the fixed-resolution numerical integration whose cost
  /// is *charged* to the node: comparing two regions costs
  /// ~(bbox area / step^2) operations, so comparisons between large
  /// regions near the sink are expensive — the source of INLR's growing
  /// per-node computation (Fig. 15).
  double integration_step = 1.0;

  /// Link layer for the region convergecast (see net/channel.hpp); the
  /// defaults reproduce the historical perfect-link behavior bit for bit.
  /// A lost hop loses the whole outgoing region batch.
  double link_loss = 0.0;
  int link_retries = 3;
  std::uint64_t link_seed = 0xC0FFEEULL;
  std::optional<GilbertElliottParams> link_burst;
  /// Impairment pipeline + sliding-window ARQ (net/impairment.hpp).
  std::optional<ImpairmentConfig> link_impair;
  ArqConfig link_arq;
};

/// A contour-region summary as received by the sink: the linear data
/// model v = c0 + c1 x + c2 y over an axis-aligned bounding box, plus the
/// number of aggregated source reports.
struct InlrRegion {
  double c0 = 0.0, c1 = 0.0, c2 = 0.0;
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  int count = 1;

  double model(Vec2 p) const { return c0 + c1 * p.x + c2 * p.y; }
  Vec2 center() const {
    return {(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }
  bool contains(Vec2 p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
};

struct InlrResult {
  int reports_generated = 0;      ///< One per alive reachable node.
  int regions_at_sink = 0;        ///< Aggregated regions the sink receives.
  double traffic_bytes = 0.0;
  std::vector<InlrRegion> sink_regions;

  /// Lossy-link accounting: hop batches that exhausted the ARQ, and the
  /// region summaries they carried (both 0 on a perfect channel).
  int batches_lost = 0;
  int regions_lost = 0;
  /// Measured collection latency over the impaired pipeline: the virtual
  /// time when the last region batch reached the sink (per-node arrival
  /// time = max over children of child arrival + hop ARQ completion).
  /// 0.0 when link_impair is unset.
  double collection_latency_s = 0.0;

  /// Sink map reconstruction: the field estimate at q is the model of the
  /// containing region (smallest if nested; nearest bbox when none
  /// contains q). NaN when the sink received nothing.
  double estimated_value(Vec2 p) const;
  /// Level classification from the estimate (0 when empty).
  int level_index(Vec2 p, const std::vector<double>& isolevels) const;
};

class InlrProtocol {
 public:
  explicit InlrProtocol(InlrOptions options = {});

  InlrResult run(const Deployment& deployment,
                 const std::vector<double>& readings, const RoutingTree& tree,
                 Ledger& ledger) const;

 private:
  InlrOptions options_;
};

}  // namespace isomap
