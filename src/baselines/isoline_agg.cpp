#include "baselines/isoline_agg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "isomap/node_selection.hpp"

namespace isomap {

std::vector<Polyline> chain_points(const std::vector<Vec2>& points,
                                   double link_radius) {
  std::vector<Polyline> chains;
  const double radius2 = link_radius * link_radius;
  std::vector<bool> used(points.size(), false);
  for (std::size_t start = 0; start < points.size(); ++start) {
    if (used[start]) continue;
    used[start] = true;
    std::vector<Vec2> chain{points[start]};
    // Grow from the tail, then from the head (so the seed point need not
    // be an endpoint of the final chain).
    for (int pass = 0; pass < 2; ++pass) {
      for (;;) {
        const Vec2 tail = pass == 0 ? chain.back() : chain.front();
        int best = -1;
        double best_d2 = radius2;
        for (std::size_t i = 0; i < points.size(); ++i) {
          if (used[i]) continue;
          const double d2 = (points[i] - tail).norm2();
          if (d2 <= best_d2) {
            best_d2 = d2;
            best = static_cast<int>(i);
          }
        }
        if (best < 0) break;
        used[static_cast<std::size_t>(best)] = true;
        if (pass == 0) chain.push_back(points[static_cast<std::size_t>(best)]);
        else chain.insert(chain.begin(), points[static_cast<std::size_t>(best)]);
      }
    }
    bool closed = false;
    if (chain.size() >= 3 &&
        chain.front().distance_to(chain.back()) <= link_radius)
      closed = true;
    chains.emplace_back(std::move(chain), closed);
  }
  return chains;
}

IsolineAggMap::IsolineAggMap(FieldBounds bounds,
                             std::vector<double> isolevels,
                             std::vector<std::vector<Polyline>> chains,
                             std::vector<Vec2> sample_positions,
                             std::vector<double> sample_readings)
    : bounds_(bounds),
      isolevels_(std::move(isolevels)),
      chains_(std::move(chains)),
      samples_(std::move(sample_positions)),
      sample_values_(std::move(sample_readings)) {}

double IsolineAggMap::interpolated_value(Vec2 q) const {
  if (samples_.size() == 0)
    return std::numeric_limits<double>::quiet_NaN();
  const auto nearest = samples_.k_nearest(q, 6);
  double weight_sum = 0.0;
  double value_sum = 0.0;
  for (int idx : nearest) {
    const double d2 =
        (samples_.points()[static_cast<std::size_t>(idx)] - q).norm2();
    if (d2 < 1e-18)
      return sample_values_[static_cast<std::size_t>(idx)];
    const double w = 1.0 / d2;
    weight_sum += w;
    value_sum += w * sample_values_[static_cast<std::size_t>(idx)];
  }
  return value_sum / weight_sum;
}

int IsolineAggMap::level_index(Vec2 q) const {
  const double v = interpolated_value(q);
  if (std::isnan(v)) return 0;
  int level = 0;
  for (double lambda : isolevels_) {
    if (v >= lambda - 1e-12) ++level;
    else break;
  }
  return level;
}

IsolineAggProtocol::IsolineAggProtocol(IsolineAggOptions options)
    : options_(std::move(options)) {}

IsolineAggResult IsolineAggProtocol::run(const std::vector<double>& readings,
                                         const Deployment& deployment,
                                         const CommGraph& graph,
                                         const RoutingTree& tree,
                                         Ledger& ledger) const {
  IsolineAggResult result;
  const ContourQuery& query = options_.query;
  const auto levels = query.isolevels();
  result.sink_points.resize(levels.size());

  // Selection is Iso-Map's Definition 3.1 (it needs no gradient).
  std::vector<double> ops;
  const auto selected = select_isoline_nodes(graph, readings, query, &ops);
  for (int v = 0; v < graph.size(); ++v)
    if (graph.alive(v)) ledger.compute(v, ops[static_cast<std::size_t>(v)]);

  auto level_of = [&](double lambda) {
    for (std::size_t k = 0; k < levels.size(); ++k)
      if (std::abs(levels[k] - lambda) < 1e-9) return static_cast<int>(k);
    return -1;
  };

  result.sink_values.resize(levels.size());

  // Convergecast with the distance-only filter.
  struct Point {
    int level;
    Vec2 pos;
    double value;
  };
  std::vector<std::vector<Point>> buffer(
      static_cast<std::size_t>(deployment.size()));
  for (const auto& entry : selected) {
    if (!tree.reachable(entry.node)) continue;
    const int level = level_of(entry.isolevel);
    if (level < 0) continue;
    buffer[static_cast<std::size_t>(entry.node)].push_back(
        {level, deployment.node(entry.node).reported_pos(),
         readings[static_cast<std::size_t>(entry.node)]});
    ++result.generated_reports;
  }

  const double sd = options_.distance_separation;
  for (int u : tree.post_order()) {
    if (u == tree.sink()) continue;
    auto& outgoing = buffer[static_cast<std::size_t>(u)];
    if (outgoing.empty()) continue;
    const int parent = tree.parent(u);
    const double bytes =
        static_cast<double>(outgoing.size()) * options_.report_bytes;
    ledger.transmit(u, parent, bytes);
    result.traffic_bytes += bytes;
    auto& inbox = buffer[static_cast<std::size_t>(parent)];
    for (const auto& incoming : outgoing) {
      bool drop = false;
      if (options_.enable_filtering) {
        for (const auto& kept : inbox) {
          ledger.compute(parent, 6.0);
          if (kept.level == incoming.level &&
              kept.pos.distance_to(incoming.pos) < sd) {
            drop = true;
            break;
          }
        }
      }
      if (!drop) inbox.push_back(incoming);
    }
    outgoing.clear();
  }

  for (const auto& point :
       buffer[static_cast<std::size_t>(tree.sink())]) {
    result.sink_points[static_cast<std::size_t>(point.level)].push_back(
        point.pos);
    result.sink_values[static_cast<std::size_t>(point.level)].push_back(
        point.value);
    ++result.delivered_reports;
  }
  return result;
}

IsolineAggMap IsolineAggProtocol::build_map(const IsolineAggResult& result,
                                            FieldBounds bounds) const {
  const auto levels = options_.query.isolevels();
  std::vector<std::vector<Polyline>> chains(levels.size());
  const double radius = options_.effective_link_radius();
  std::vector<Vec2> positions;
  std::vector<double> values;
  for (std::size_t k = 0; k < levels.size(); ++k) {
    chains[k] = chain_points(result.sink_points[k], radius);
    positions.insert(positions.end(), result.sink_points[k].begin(),
                     result.sink_points[k].end());
    values.insert(values.end(), result.sink_values[k].begin(),
                  result.sink_values[k].end());
  }
  return IsolineAggMap(bounds, levels, std::move(chains),
                       std::move(positions), std::move(values));
}

}  // namespace isomap
