#pragma once

#include <vector>

#include "geometry/point_index.hpp"
#include "geometry/polygon.hpp"
#include "geometry/polyline.hpp"
#include "isomap/query.hpp"
#include "net/comm_graph.hpp"
#include "net/deployment.hpp"
#include "net/ledger.hpp"
#include "net/routing_tree.hpp"

namespace isomap {

/// Isoline-aggregation baseline, modelled on Solis & Obraczka
/// (Mobiquitous'05), which the paper's related work credits with the
/// isoline-reporting idea but faults for not specifying "how the sink
/// recovers the isolines from the discrete reports": isoline nodes are
/// selected exactly as in Iso-Map (Definition 3.1) but report only
/// <isolevel, position> — *no gradient direction*. The sink reconstructs
/// each isoline by greedy nearest-neighbour chaining of the isopositions
/// and treats closed chains as contour-region boundaries.
///
/// Comparing this against Iso-Map isolates the value of the gradient
/// field d: without it the sink faces the paper's Fig. 4 ambiguity and
/// must guess how the isoline passes through the points.
struct IsolineAggOptions {
  ContourQuery query;         ///< Same query semantics as Iso-Map.
  double report_bytes = 6.0;  ///< <value, x, y>, two bytes each.
  /// Distance-only in-network filter (no angle available).
  double distance_separation = 4.0;
  bool enable_filtering = true;
  /// Sink chaining: points within this distance may be linked. Scales
  /// with the filter threshold by default (<= 0 means 2.5x separation).
  double link_radius = -1.0;

  double effective_link_radius() const {
    return link_radius > 0.0 ? link_radius : 2.5 * distance_separation;
  }
};

/// Sink-side reconstruction. Without gradients the sink cannot orient
/// region boundaries (most isolines are open curves crossing the field
/// border), so the fairest no-gradient classifier is value
/// interpolation: every isoposition carries its isolevel as a value
/// sample, and the field is estimated by inverse-distance weighting over
/// the k nearest samples; the level index is then derived from the
/// interpolated value. Chains (greedy nearest-neighbour linking, the
/// best the sink can do for isoline geometry) are kept for rendering and
/// Hausdorff comparison.
class IsolineAggMap {
 public:
  /// `sample_positions` / `sample_readings` are the flattened sink
  /// reports (positions with the reporting nodes' readings).
  IsolineAggMap(FieldBounds bounds, std::vector<double> isolevels,
                std::vector<std::vector<Polyline>> chains,
                std::vector<Vec2> sample_positions,
                std::vector<double> sample_readings);

  int level_count() const { return static_cast<int>(isolevels_.size()); }
  const std::vector<Polyline>& chains(int level) const {
    return chains_[static_cast<std::size_t>(level)];
  }

  /// IDW-interpolated value estimate at q (the isolevel of the single
  /// nearest sample when only one exists); NaN with no samples.
  double interpolated_value(Vec2 q) const;

  /// Level classification from the interpolated value; 0 with no samples.
  int level_index(Vec2 q) const;

 private:
  FieldBounds bounds_;
  std::vector<double> isolevels_;
  std::vector<std::vector<Polyline>> chains_;
  PointIndex samples_;
  std::vector<double> sample_values_;
};

struct IsolineAggResult {
  std::vector<std::vector<Vec2>> sink_points;  ///< Per isolevel.
  /// The reporting node's actual reading (the report's value field) for
  /// each sink point — readings straddle the isolevel, which is what
  /// lets the sink's interpolation tell the two sides apart.
  std::vector<std::vector<double>> sink_values;
  int generated_reports = 0;
  int delivered_reports = 0;
  double traffic_bytes = 0.0;
};

class IsolineAggProtocol {
 public:
  explicit IsolineAggProtocol(IsolineAggOptions options);

  IsolineAggResult run(const std::vector<double>& readings,
                       const Deployment& deployment, const CommGraph& graph,
                       const RoutingTree& tree, Ledger& ledger) const;

  /// Sink reconstruction from a result.
  IsolineAggMap build_map(const IsolineAggResult& result,
                          FieldBounds bounds) const;

 private:
  IsolineAggOptions options_;
};

/// Greedy nearest-neighbour chaining of a point set: starting from an
/// arbitrary unused point, repeatedly extend the chain tail to its
/// nearest unused point within `link_radius`; a chain whose two ends
/// fall within the radius is closed. Exposed for testing.
std::vector<Polyline> chain_points(const std::vector<Vec2>& points,
                                   double link_radius);

}  // namespace isomap
