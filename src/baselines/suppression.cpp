#include "baselines/suppression.hpp"

#include <cmath>

#include "obs/obs.hpp"

namespace isomap {

SuppressionProtocol::SuppressionProtocol(SuppressionOptions options)
    : options_(options) {}

SuppressionResult SuppressionProtocol::run(const Deployment& deployment,
                                           const std::vector<double>& readings,
                                           const CommGraph& graph,
                                           const RoutingTree& tree,
                                           Ledger& ledger) const {
  SuppressionResult result;
  const int n = deployment.size();
  // Greedy suppression in id order: a node stays silent when some
  // already-transmitting node within its neighbourhood holds a similar
  // reading.
  std::vector<bool> transmitting(static_cast<std::size_t>(n), false);
  for (const auto& node : deployment.nodes()) {
    if (!node.alive || !tree.reachable(node.id)) continue;
    const double v = readings[static_cast<std::size_t>(node.id)];
    bool suppressed = false;
    double ops = 0.0;
    for (int nb :
         graph.k_hop_neighbours(node.id, options_.neighbourhood_hops)) {
      ops += options_.ops_per_comparison;
      if (!transmitting[static_cast<std::size_t>(nb)]) continue;
      if (std::abs(readings[static_cast<std::size_t>(nb)] - v) <=
          options_.value_tolerance) {
        suppressed = true;
        break;
      }
    }
    {
      const obs::PhaseTimer timer(obs::kPhaseSuppress);
      ledger.compute(node.id, ops);
    }
    if (suppressed) {
      ++result.reports_suppressed;
      continue;
    }
    transmitting[static_cast<std::size_t>(node.id)] = true;
    ++result.reports_generated;
    const obs::PhaseTimer timer(obs::kPhaseReportRoute);
    const auto path = tree.path_to_sink(node.id);
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      ledger.transmit(path[h], path[h + 1], options_.report_bytes);
      result.traffic_bytes += options_.report_bytes;
    }
  }
  obs::count("reports.generated", result.reports_generated);
  obs::count("reports.suppressed", result.reports_suppressed);
  return result;
}

}  // namespace isomap
