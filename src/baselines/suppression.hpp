#pragma once

#include <vector>

#include "net/comm_graph.hpp"
#include "net/deployment.hpp"
#include "net/ledger.hpp"
#include "net/routing_tree.hpp"

namespace isomap {

/// The data-suppression baseline (Meng et al., Computer Networks'06): a
/// node suppresses its report when another node within its 2-hop
/// neighbourhood is already transmitting a similar reading; the
/// transmitted value then represents the local field and the sink
/// interpolates. The suppressed fraction is bounded by the 2-hop degree,
/// so the generated traffic is still Theta(n) (reduced by a degree
/// factor).
struct SuppressionOptions {
  double report_bytes = 6.0;      ///< value + position.
  double value_tolerance = 0.5;   ///< Readings within this are "similar".
  int neighbourhood_hops = 2;     ///< Suppression scope.
  double ops_per_comparison = 4.0;
};

struct SuppressionResult {
  int reports_generated = 0;  ///< Reports actually transmitted.
  int reports_suppressed = 0;
  double traffic_bytes = 0.0;
};

class SuppressionProtocol {
 public:
  explicit SuppressionProtocol(SuppressionOptions options = {});

  SuppressionResult run(const Deployment& deployment,
                        const std::vector<double>& readings,
                        const CommGraph& graph, const RoutingTree& tree,
                        Ledger& ledger) const;

 private:
  SuppressionOptions options_;
};

}  // namespace isomap
