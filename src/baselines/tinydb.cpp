#include "baselines/tinydb.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "eval/level_map.hpp"
#include "net/channel.hpp"
#include "geometry/marching_squares.hpp"
#include "obs/obs.hpp"

namespace isomap {

TinyDBProtocol::TinyDBProtocol(TinyDBOptions options) : options_(options) {}

TinyDBResult TinyDBProtocol::run(const Deployment& deployment,
                                 const std::vector<double>& readings,
                                 const RoutingTree& tree,
                                 Ledger& ledger) const {
  TinyDBResult result;
  const int n = deployment.size();

  // Grid dimensions must match Deployment::grid's layout.
  const int cols =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  const int rows = (n + cols - 1) / cols;

  // Every alive, reachable node reports; the report is forwarded hop by
  // hop along the tree with no aggregation.
  Channel channel =
      Channel::make(options_.link_loss, options_.link_retries,
                    options_.link_seed, options_.link_burst,
                    options_.link_impair, options_.link_arq);
  const bool impaired = channel.impaired();
  obs::PhaseTimer route_timer(obs::kPhaseReportRoute);
  std::vector<std::optional<double>> received(
      static_cast<std::size_t>(cols) * rows);
  std::vector<double> tx_per_node(static_cast<std::size_t>(n), 0.0);
  double latency_sum = 0.0;
  for (const auto& node : deployment.nodes()) {
    if (!node.alive) continue;
    ++result.reports_generated;
    if (!tree.reachable(node.id)) continue;
    const auto path = tree.path_to_sink(node.id);
    bool delivered = true;
    double path_latency = 0.0;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const Channel::Transfer transfer =
          channel.transfer(path[h], path[h + 1], options_.report_bytes,
                           ledger);
      if (!transfer.delivered) {
        delivered = false;
        break;
      }
      path_latency += transfer.latency_s;
      ledger.compute(path[h + 1], options_.ops_per_forward);
      result.traffic_bytes += options_.report_bytes;
      tx_per_node[static_cast<std::size_t>(path[h])] += options_.report_bytes;
      if (options_.record_transmissions)
        result.transmissions.push_back({path[h], path[h + 1],
                                        options_.report_bytes,
                                        tree.level(path[h])});
    }
    if (!delivered) continue;
    if (impaired) {
      if (result.reports_delivered == 0) {
        result.e2e_first_latency_s = result.e2e_last_latency_s = path_latency;
      } else {
        result.e2e_first_latency_s =
            std::min(result.e2e_first_latency_s, path_latency);
        result.e2e_last_latency_s =
            std::max(result.e2e_last_latency_s, path_latency);
      }
      latency_sum += path_latency;
    }
    ++result.reports_delivered;
    const int r = node.id / cols;
    const int c = node.id % cols;
    received[static_cast<std::size_t>(r) * cols + c] =
        readings[static_cast<std::size_t>(node.id)];
  }
  if (impaired && result.reports_delivered > 0)
    result.e2e_mean_latency_s =
        latency_sum / static_cast<double>(result.reports_delivered);

  // TDMA bottleneck: each tree level gets a slot sized to its busiest
  // forwarder.
  std::vector<double> level_bottleneck(
      static_cast<std::size_t>(tree.depth()) + 1, 0.0);
  for (int u = 0; u < n; ++u) {
    if (!tree.reachable(u)) continue;
    auto& slot = level_bottleneck[static_cast<std::size_t>(tree.level(u))];
    slot = std::max(slot, tx_per_node[static_cast<std::size_t>(u)]);
  }
  for (double slot : level_bottleneck) result.bottleneck_bytes += slot;
  route_timer.stop();
  obs::count("reports.generated", result.reports_generated);
  obs::count("reports.delivered", result.reports_delivered);

  if (result.reports_delivered == 0) return result;

  // Sink interpolation: fill missing cells by iteratively averaging the
  // available 4-neighbourhood until every cell has a value.
  const obs::PhaseTimer map_timer(obs::kPhaseMapGen);
  std::vector<std::optional<double>> grid = received;
  bool any_missing = true;
  for (int pass = 0; pass < cols + rows && any_missing; ++pass) {
    any_missing = false;
    std::vector<std::optional<double>> next = grid;
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        auto& cell = next[static_cast<std::size_t>(r) * cols + c];
        if (cell.has_value()) continue;
        double sum = 0.0;
        int count = 0;
        const int dr[] = {1, -1, 0, 0};
        const int dc[] = {0, 0, 1, -1};
        for (int k = 0; k < 4; ++k) {
          const int rr = r + dr[k];
          const int cc = c + dc[k];
          if (rr < 0 || rr >= rows || cc < 0 || cc >= cols) continue;
          const auto& nb = grid[static_cast<std::size_t>(rr) * cols + cc];
          if (nb.has_value()) {
            sum += *nb;
            ++count;
          }
        }
        if (count > 0) cell = sum / count;
        else any_missing = true;
      }
    }
    grid = std::move(next);
  }

  // Any still-missing cells (fully disconnected areas) default to the mean
  // of the received values.
  double mean = 0.0;
  int have = 0;
  for (const auto& cell : grid)
    if (cell.has_value()) {
      mean += *cell;
      ++have;
    }
  mean = have ? mean / have : 0.0;
  std::vector<double> samples;
  samples.reserve(grid.size());
  for (const auto& cell : grid) samples.push_back(cell.value_or(mean));

  // Grid nodes sit at cell centres; the reconstruction's sample lattice
  // spans centre-to-centre.
  const FieldBounds b = deployment.bounds();
  const double cw = b.width() / cols;
  const double ch = b.height() / rows;
  const FieldBounds sample_bounds{b.x0 + cw / 2, b.y0 + ch / 2,
                                  b.x1 - cw / 2, b.y1 - ch / 2};
  result.reconstruction =
      GridField(sample_bounds, cols, rows, std::move(samples));
  return result;
}

int TinyDBResult::level_index(Vec2 p,
                              const std::vector<double>& isolevels) const {
  if (!reconstruction) return 0;
  // Snap to the nearest grid sample (cell representative value): the
  // TinyDB isobar map is blocky, not interpolated.
  const FieldBounds b = reconstruction->bounds();
  const int nx = reconstruction->nx();
  const int ny = reconstruction->ny();
  const int ix = std::clamp(
      static_cast<int>(std::lround((p.x - b.x0) / b.width() * (nx - 1))), 0,
      nx - 1);
  const int iy = std::clamp(
      static_cast<int>(std::lround((p.y - b.y0) / b.height() * (ny - 1))), 0,
      ny - 1);
  return level_index_of_value(reconstruction->at(ix, iy), isolevels);
}

std::vector<Polyline> TinyDBResult::isolines(double isolevel,
                                             int resolution) const {
  if (!reconstruction) return {};
  if (resolution <= 0)
    return marching_squares(reconstruction->as_sample_grid(), isolevel);
  const GridField dense =
      GridField::sample(*reconstruction, resolution, resolution);
  return marching_squares(dense.as_sample_grid(), isolevel);
}

}  // namespace isomap
