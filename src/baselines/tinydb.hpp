#pragma once

#include <optional>
#include <vector>

#include "field/grid_field.hpp"
#include "geometry/polyline.hpp"
#include "net/channel.hpp"
#include "net/deployment.hpp"
#include "net/ledger.hpp"
#include "net/routing_tree.hpp"
#include "net/transmission_log.hpp"

namespace isomap {

/// The TinyDB contour-mapping baseline (Hellerstein et al., IPSN'03) in its
/// aggregate-free form, which the paper uses as the best-fidelity
/// comparator: sensor nodes sit on a regular grid, every node reports its
/// reading to the sink hop by hop with no aggregation, and the sink builds
/// the isobar map from the grid of received values, interpolating cells
/// whose nodes failed ("sink interpolation").
struct TinyDBOptions {
  /// Bytes per report: value + position, two bytes per parameter.
  double report_bytes = 6.0;
  /// Store-and-forward bookkeeping ops charged per forwarded report.
  double ops_per_forward = 4.0;
  /// Link layer (see net/channel.hpp); 0 = the paper's perfect links.
  double link_loss = 0.0;
  int link_retries = 3;
  std::uint64_t link_seed = 0xC0FFEEULL;
  /// Bursty Gilbert–Elliott channel; replaces link_loss when set, so
  /// chaos comparisons against Iso-Map run over the identical link model.
  std::optional<GilbertElliottParams> link_burst;
  /// Impairment pipeline + sliding-window ARQ (see net/impairment.hpp);
  /// when set, per-report path latency is measured hop by hop.
  std::optional<ImpairmentConfig> link_impair;
  ArqConfig link_arq;
  /// Record every forwarding transmission for MAC-layer replay studies.
  bool record_transmissions = false;
};

struct TinyDBResult {
  /// Sink-side reconstruction: a grid field over the deployment bounds.
  /// nullopt when no report reached the sink.
  std::optional<GridField> reconstruction;
  int reports_generated = 0;
  int reports_delivered = 0;
  double traffic_bytes = 0.0;

  /// TDMA convergecast bottleneck (sum over tree levels of the busiest
  /// node's transmitted bytes); see IsoMapResult::bottleneck_bytes.
  double bottleneck_bytes = 0.0;
  double latency_s(double kbps = 38.4) const {
    return bottleneck_bytes * 8.0 / (kbps * 1000.0);
  }

  /// Measured end-to-end report latency over the impaired pipeline (sum
  /// of per-hop ARQ completion times along each delivered report's path;
  /// first/last/mean over delivered reports). 0.0 when link_impair is
  /// unset.
  double e2e_first_latency_s = 0.0;
  double e2e_last_latency_s = 0.0;
  double e2e_mean_latency_s = 0.0;

  /// Forwarding transmissions (when TinyDBOptions::record_transmissions).
  TransmissionLog transmissions;

  /// Level classification against the reconstruction (0 when empty).
  /// TinyDB's isobar map is piecewise constant — each grid cell is
  /// represented by its node's value — so classification uses the nearest
  /// cell's value, which is what makes the paper's Fig. 10 TinyDB maps
  /// blocky at low density.
  int level_index(Vec2 p, const std::vector<double>& isolevels) const;

  /// Estimated isolines from the reconstruction (marching squares).
  std::vector<Polyline> isolines(double isolevel, int resolution = 0) const;
};

class TinyDBProtocol {
 public:
  explicit TinyDBProtocol(TinyDBOptions options = {});

  /// `readings` indexed by node id (only alive nodes are read). The
  /// deployment must be a Deployment::grid layout; the reconstruction maps
  /// grid cells back from node ids.
  TinyDBResult run(const Deployment& deployment,
                   const std::vector<double>& readings,
                   const RoutingTree& tree, Ledger& ledger) const;

 private:
  TinyDBOptions options_;
};

}  // namespace isomap
