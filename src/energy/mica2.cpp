#include "energy/mica2.hpp"

namespace isomap {

double Mica2Model::total_energy_j(const Ledger& ledger) const {
  return tx_energy_j(ledger.total_tx_bytes()) +
         rx_energy_j(ledger.total_rx_bytes()) +
         compute_energy_j(ledger.total_ops());
}

double Mica2Model::mean_node_energy_j(const Ledger& ledger) const {
  const int n = ledger.size();
  return n > 0 ? total_energy_j(ledger) / n : 0.0;
}

}  // namespace isomap
