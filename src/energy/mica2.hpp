#pragma once

#include "net/ledger.hpp"

namespace isomap {

/// Energy model of the MICA2 mote, using the constants the paper quotes in
/// Section 5.3: ATmega128 micro-controller at 33 mW active power and
/// 242 MIPS/W, CC1000 transceiver at 38.4 kbps consuming 29 mW receiving
/// and 42 mW transmitting (0 dBm). The model converts the simulation's
/// byte/op counts into Joules exactly the way the paper does.
struct Mica2Model {
  double radio_kbps = 38.4;        ///< Radio data rate.
  double tx_power_mw = 42.0;       ///< Transmit power.
  double rx_power_mw = 29.0;       ///< Receive power.
  double cpu_mips_per_watt = 242.0;///< Computation efficiency.

  /// Seconds on air for `bytes` bytes.
  double airtime_s(double bytes) const {
    return bytes * 8.0 / (radio_kbps * 1000.0);
  }

  /// Energy (J) to transmit `bytes` bytes.
  double tx_energy_j(double bytes) const {
    return airtime_s(bytes) * tx_power_mw * 1e-3;
  }

  /// Energy (J) to receive `bytes` bytes.
  double rx_energy_j(double bytes) const {
    return airtime_s(bytes) * rx_power_mw * 1e-3;
  }

  /// Energy (J) to execute `ops` arithmetic instructions.
  double compute_energy_j(double ops) const {
    return ops / (cpu_mips_per_watt * 1e6);
  }

  /// Total energy (J) charged to node `node` in `ledger`.
  double node_energy_j(const Ledger& ledger, int node) const {
    return tx_energy_j(ledger.tx_bytes(node)) +
           rx_energy_j(ledger.rx_bytes(node)) +
           compute_energy_j(ledger.ops(node));
  }

  /// Network-wide energy (J).
  double total_energy_j(const Ledger& ledger) const;

  /// Mean per-node energy (J) — the paper's Fig. 16 metric.
  double mean_node_energy_j(const Ledger& ledger) const;
};

}  // namespace isomap
