#include "eval/geojson.hpp"

#include <fstream>
#include <sstream>

namespace isomap {
namespace {

void append_coords(std::ostringstream& ss, const Polyline& line) {
  ss << "[";
  bool first = true;
  for (const Vec2 p : line.points()) {
    if (!first) ss << ",";
    first = false;
    ss << "[" << p.x << "," << p.y << "]";
  }
  if (line.closed() && !line.points().empty()) {
    // GeoJSON polygons repeat the first vertex to close the ring.
    const Vec2 p = line.points().front();
    ss << ",[" << p.x << "," << p.y << "]";
  }
  ss << "]";
}

}  // namespace

void GeoJsonWriter::add_isoline(const Polyline& line, double isolevel,
                                int level_index) {
  if (line.size() < 2) return;
  std::ostringstream ss;
  ss.precision(12);
  ss << "{\"type\":\"Feature\",\"properties\":{\"isolevel\":" << isolevel
     << ",\"level_index\":" << level_index << "},\"geometry\":{";
  if (line.closed() && line.size() >= 3) {
    ss << "\"type\":\"Polygon\",\"coordinates\":[";
    append_coords(ss, line);
    ss << "]";
  } else {
    ss << "\"type\":\"LineString\",\"coordinates\":";
    append_coords(ss, line);
  }
  ss << "}}";
  features_.push_back(ss.str());
}

void GeoJsonWriter::add_contour_map(const ContourMap& map) {
  for (int k = 0; k < map.level_count(); ++k) {
    for (const auto& chain : map.isolines(k))
      add_isoline(chain, map.region(k).isolevel(), k + 1);
  }
}

void GeoJsonWriter::add_reports(const std::vector<IsolineReport>& reports) {
  for (const auto& r : reports) {
    std::ostringstream ss;
    ss.precision(12);
    ss << "{\"type\":\"Feature\",\"properties\":{\"isolevel\":" << r.isolevel
       << ",\"source\":" << r.source << ",\"gradient\":[" << r.gradient.x
       << "," << r.gradient.y
       << "]},\"geometry\":{\"type\":\"Point\",\"coordinates\":["
       << r.position.x << "," << r.position.y << "]}}";
    features_.push_back(ss.str());
  }
}

std::string GeoJsonWriter::str() const {
  std::ostringstream ss;
  ss << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (i) ss << ",";
    ss << "\n" << features_[i];
  }
  ss << "\n]}\n";
  return ss.str();
}

bool GeoJsonWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << str();
  return static_cast<bool>(out);
}

}  // namespace isomap
