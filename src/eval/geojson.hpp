#pragma once

#include <string>
#include <vector>

#include "isomap/contour_map.hpp"

namespace isomap {

/// GeoJSON export of a contour map: each isoline boundary chain becomes a
/// LineString (closed chains a Polygon) feature tagged with its isolevel,
/// plus optional Point features for the reporting isoline nodes. World
/// coordinates are written as-is (the consumer applies the survey's CRS).
/// This is the interchange path into GIS tooling (QGIS etc.), matching
/// the harbor-administration workflow the paper's Section 2 describes.
class GeoJsonWriter {
 public:
  GeoJsonWriter() = default;

  /// All boundary chains of `map`, one feature per chain, with
  /// properties {"isolevel": λ, "level_index": k}.
  void add_contour_map(const ContourMap& map);

  /// A single chain with an isolevel property.
  void add_isoline(const Polyline& line, double isolevel, int level_index);

  /// Report positions as Point features with their isolevel.
  void add_reports(const std::vector<IsolineReport>& reports);

  /// Complete FeatureCollection document.
  std::string str() const;

  /// Write to file; false on I/O failure.
  bool save(const std::string& path) const;

  std::size_t feature_count() const { return features_.size(); }

 private:
  std::vector<std::string> features_;
};

}  // namespace isomap
