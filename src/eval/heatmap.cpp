#include "eval/heatmap.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace isomap {

std::vector<RingAggregate> aggregate_by_ring(
    const std::vector<int>& hops, const std::vector<double>& values) {
  if (hops.size() != values.size())
    throw std::invalid_argument("aggregate_by_ring: size mismatch");
  std::map<int, RingAggregate> rings;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (hops[i] < 0) continue;
    RingAggregate& ring = rings[hops[i]];
    ring.hops = hops[i];
    ++ring.node_count;
    ring.total += values[i];
    ring.max = std::max(ring.max, values[i]);
  }
  std::vector<RingAggregate> out;
  out.reserve(rings.size());
  for (const auto& [_, ring] : rings) out.push_back(ring);
  return out;
}

std::string heatmap_csv_grid(const FieldBounds& bounds,
                             const std::vector<Vec2>& positions,
                             const std::vector<double>& values, int rows,
                             int cols) {
  if (positions.size() != values.size())
    throw std::invalid_argument("heatmap_csv_grid: size mismatch");
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("heatmap_csv_grid: non-positive grid");
  std::vector<double> cells(static_cast<std::size_t>(rows) *
                                static_cast<std::size_t>(cols),
                            0.0);
  const double w = bounds.width() > 0.0 ? bounds.width() : 1.0;
  const double h = bounds.height() > 0.0 ? bounds.height() : 1.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    // Nodes on the upper edges land in the last cell, not one past it.
    int cx = static_cast<int>((positions[i].x - bounds.x0) / w *
                              static_cast<double>(cols));
    int cy = static_cast<int>((positions[i].y - bounds.y0) / h *
                              static_cast<double>(rows));
    cx = std::clamp(cx, 0, cols - 1);
    cy = std::clamp(cy, 0, rows - 1);
    cells[static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols) +
          static_cast<std::size_t>(cx)] += values[i];
  }
  std::ostringstream ss;
  ss.precision(12);
  ss << "# bounds " << bounds.x0 << "," << bounds.y0 << "," << bounds.x1
     << "," << bounds.y1 << " grid " << rows << "x" << cols << "\n";
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c) ss << ",";
      ss << cells[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                  static_cast<std::size_t>(c)];
    }
    ss << "\n";
  }
  return ss.str();
}

std::string heatmap_geojson(const std::vector<Vec2>& positions,
                            const std::vector<double>& values,
                            const std::vector<int>& hops,
                            const std::string& value_name) {
  if (positions.size() != values.size())
    throw std::invalid_argument("heatmap_geojson: size mismatch");
  if (!hops.empty() && hops.size() != positions.size())
    throw std::invalid_argument("heatmap_geojson: hops size mismatch");
  std::ostringstream ss;
  ss.precision(12);
  ss << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i) ss << ",";
    ss << "\n{\"type\":\"Feature\",\"properties\":{\"node\":" << i << ",\""
       << value_name << "\":" << values[i];
    if (!hops.empty()) ss << ",\"hops\":" << hops[i];
    ss << "},\"geometry\":{\"type\":\"Point\",\"coordinates\":["
       << positions[i].x << "," << positions[i].y << "]}}";
  }
  ss << "\n]}\n";
  return ss.str();
}

std::string ring_csv(const std::vector<RingAggregate>& rings) {
  std::ostringstream ss;
  ss.precision(12);
  ss << "hops,nodes,total,mean,max\n";
  for (const RingAggregate& ring : rings)
    ss << ring.hops << "," << ring.node_count << "," << ring.total << ","
       << ring.mean() << "," << ring.max << "\n";
  return ss.str();
}

bool save_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace isomap
