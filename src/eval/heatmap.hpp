#pragma once

#include <string>
#include <vector>

#include "field/scalar_field.hpp"
#include "geometry/vec2.hpp"

namespace isomap {

/// Spatial heatmap artifacts over a per-node value vector (energy in J,
/// traffic in bytes, report counts — anything indexed by node id). Two
/// renderings of the same data:
///
///  - a dense CSV grid (`heatmap_csv_grid`): the field bounds binned into
///    rows×cols cells, each holding the sum of the values of the nodes in
///    it. Loads straight into numpy / a spreadsheet for a colour map.
///  - GeoJSON points (`heatmap_geojson`): one Point feature per node with
///    `{"node", "value", "hops"}` properties, for GIS tooling — the same
///    interchange path eval/geojson.hpp uses for contours.
///
/// Hop-ring aggregation (`aggregate_by_ring`) collapses the same vector
/// by routing-tree distance to the sink. Ring totals are the natural
/// x-axis for the paper's O(√n) convergecast-traffic claim (Section 4):
/// the report traffic a ring must carry grows toward the sink while the
/// ring population shrinks, so per-node load concentrates near ring 1.

/// One hop ring's aggregate: every node at `hops` tree-hops from the
/// sink. Nodes with hops < 0 (unreachable/unknown) are skipped.
struct RingAggregate {
  int hops = 0;
  int node_count = 0;
  double total = 0.0;
  double max = 0.0;

  double mean() const {
    return node_count == 0 ? 0.0 : total / static_cast<double>(node_count);
  }
};

/// Collapse `values` by hop ring; rings are returned in ascending hop
/// order and cover exactly the hop distances that occur in `hops`.
std::vector<RingAggregate> aggregate_by_ring(const std::vector<int>& hops,
                                             const std::vector<double>& values);

/// The grid rendering as CSV text: a `# x0,y0,x1,y1,rows,cols` header
/// comment, then `rows` lines of `cols` comma-separated cell sums (row 0
/// = lowest y). Node i at positions[i] contributes values[i] to its cell.
std::string heatmap_csv_grid(const FieldBounds& bounds,
                             const std::vector<Vec2>& positions,
                             const std::vector<double>& values, int rows,
                             int cols);

/// GeoJSON FeatureCollection of per-node Point features. `hops` may be
/// empty (property omitted); value_name labels the property ("energy_j",
/// "tx_bytes", ...).
std::string heatmap_geojson(const std::vector<Vec2>& positions,
                            const std::vector<double>& values,
                            const std::vector<int>& hops,
                            const std::string& value_name);

/// Ring table as CSV: `hops,nodes,total,mean,max` with one line per ring.
std::string ring_csv(const std::vector<RingAggregate>& rings);

/// Write `text` to `path`; false on I/O failure.
bool save_text(const std::string& path, const std::string& text);

}  // namespace isomap
