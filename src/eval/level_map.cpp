#include "eval/level_map.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/exec.hpp"

namespace isomap {

int level_index_of_value(double value, const std::vector<double>& isolevels) {
  int level = 0;
  for (double lambda : isolevels) {
    if (value >= lambda) ++level;
    else break;
  }
  return level;
}

LevelMap::LevelMap(FieldBounds bounds, int nx, int ny)
    : bounds_(bounds), nx_(nx), ny_(ny) {
  if (nx_ < 1 || ny_ < 1)
    throw std::invalid_argument("LevelMap: needs >= 1x1 pixels");
  levels_.assign(static_cast<std::size_t>(nx_) * ny_, 0);
}

Vec2 LevelMap::pixel_center(int ix, int iy) const {
  return {bounds_.x0 + bounds_.width() * (ix + 0.5) / nx_,
          bounds_.y0 + bounds_.height() * (iy + 0.5) / ny_};
}

LevelMap LevelMap::rasterize(FieldBounds bounds, int nx, int ny,
                             const std::function<int(Vec2)>& classify) {
  LevelMap map(bounds, nx, ny);
  // Rows rasterize across the pool; `classify` must therefore be safe to
  // call concurrently (every in-tree classifier is a pure const read).
  // Each row writes only its own pixels, so the raster is bitwise
  // identical to the serial scan.
  exec::parallel_for(static_cast<std::size_t>(ny), [&](std::size_t row) {
    const int iy = static_cast<int>(row);
    for (int ix = 0; ix < nx; ++ix)
      map.at(ix, iy) = classify(map.pixel_center(ix, iy));
  });
  return map;
}

LevelMap LevelMap::rasterize_rows(FieldBounds bounds, int nx, int ny,
                                  const RowClassifier& classify) {
  LevelMap map(bounds, nx, ny);
  // Same contract as rasterize: rows across the pool, each row writing
  // only its own pixels (the row span aliases the map's backing array).
  exec::parallel_for(static_cast<std::size_t>(ny), [&](std::size_t row) {
    const int iy = static_cast<int>(row);
    std::vector<Vec2> centers(static_cast<std::size_t>(nx));
    for (int ix = 0; ix < nx; ++ix)
      centers[static_cast<std::size_t>(ix)] = map.pixel_center(ix, iy);
    classify(centers,
             {&map.at(0, iy), static_cast<std::size_t>(nx)});
  });
  return map;
}

LevelMap LevelMap::ground_truth(const ScalarField& field,
                                const std::vector<double>& isolevels, int nx,
                                int ny) {
  return rasterize(field.bounds(), nx, ny, [&](Vec2 p) {
    return level_index_of_value(field.value(p), isolevels);
  });
}

double LevelMap::accuracy_against(const LevelMap& reference) const {
  if (reference.nx_ != nx_ || reference.ny_ != ny_)
    throw std::invalid_argument("LevelMap: dimension mismatch");
  std::size_t match = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i)
    if (levels_[i] == reference.levels_[i]) ++match;
  return levels_.empty()
             ? 1.0
             : static_cast<double>(match) / static_cast<double>(levels_.size());
}

int LevelMap::max_level() const {
  int best = 0;
  for (int level : levels_) best = std::max(best, level);
  return best;
}

}  // namespace isomap
