#pragma once

#include <functional>
#include <span>
#include <vector>

#include "field/scalar_field.hpp"

namespace isomap {

/// A rasterized "level map": for every pixel of a regular grid over the
/// field, the contour level index at its centre (0 = below the first
/// isolevel, K = inside the highest region). Both the ground truth and
/// every protocol's reconstruction are rasterized into this form, and the
/// paper's mapping-accuracy metric (Fig. 11: "ratio of the accurately
/// mapped area to the whole area") is the fraction of matching pixels.
class LevelMap {
 public:
  LevelMap(FieldBounds bounds, int nx, int ny);

  /// Rasterize a classifier: `classify(p)` returns the level index at p.
  static LevelMap rasterize(FieldBounds bounds, int nx, int ny,
                            const std::function<int(Vec2)>& classify);

  /// Row-batched classifier: called once per pixel row with the nx pixel
  /// centres and the row's output slots. One indirect call per row
  /// instead of one per pixel, and the classifier sees a contiguous
  /// batch it can process with its own vector kernels (e.g.
  /// ContourMap::level_index_batch).
  using RowClassifier =
      std::function<void(std::span<const Vec2>, std::span<int>)>;

  /// Rasterize a row-batched classifier; same parallel-row scan and
  /// bit-identical output for classifiers that agree pointwise.
  static LevelMap rasterize_rows(FieldBounds bounds, int nx, int ny,
                                 const RowClassifier& classify);

  /// Ground truth from a scalar field: the level index of a point is the
  /// number of isolevels at or below its field value.
  static LevelMap ground_truth(const ScalarField& field,
                               const std::vector<double>& isolevels, int nx,
                               int ny);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  const FieldBounds& bounds() const { return bounds_; }
  int at(int ix, int iy) const {
    return levels_[static_cast<std::size_t>(iy) * nx_ + ix];
  }
  int& at(int ix, int iy) {
    return levels_[static_cast<std::size_t>(iy) * nx_ + ix];
  }
  Vec2 pixel_center(int ix, int iy) const;

  /// Fraction of pixels with identical level index (requires equal
  /// dimensions).
  double accuracy_against(const LevelMap& reference) const;

  /// Highest level index present.
  int max_level() const;

 private:
  FieldBounds bounds_;
  int nx_;
  int ny_;
  std::vector<int> levels_;
};

/// Level index of a field value: the number of isolevels <= value.
int level_index_of_value(double value, const std::vector<double>& isolevels);

}  // namespace isomap
