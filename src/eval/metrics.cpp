#include "eval/metrics.hpp"

#include <cmath>
#include <limits>

#include "field/grid_field.hpp"
#include "geometry/marching_squares.hpp"

namespace isomap {

std::vector<Polyline> true_isolines(const ScalarField& field, double isolevel,
                                    int resolution) {
  const GridField grid = GridField::sample(field, resolution, resolution);
  return marching_squares(grid.as_sample_grid(), isolevel);
}

double mapping_accuracy(const ContourMap& map, const ScalarField& field,
                        const std::vector<double>& isolevels,
                        int resolution) {
  const LevelMap truth =
      LevelMap::ground_truth(field, isolevels, resolution, resolution);
  // Row-batched: one level_index_batch call per pixel row (point-in-
  // region sieve, no per-pixel std::function) — pointwise identical to
  // the scalar level_index walk, so the raster is bit-for-bit the same.
  const LevelMap estimate = LevelMap::rasterize_rows(
      field.bounds(), resolution, resolution,
      [&](std::span<const Vec2> pts, std::span<int> out) {
        map.level_index_batch(pts, out);
      });
  return estimate.accuracy_against(truth);
}

double isoline_hausdorff(const ContourMap& map, const ScalarField& field,
                         const std::vector<double>& isolevels,
                         int resolution, double sample_spacing) {
  double total = 0.0;
  int counted = 0;
  for (std::size_t k = 0; k < isolevels.size(); ++k) {
    const auto& estimated = map.isolines(static_cast<int>(k));
    if (estimated.empty()) continue;
    const auto truth = true_isolines(field, isolevels[k], resolution);
    if (truth.empty()) continue;
    const double h = hausdorff_distance(estimated, truth, sample_spacing);
    if (std::isfinite(h)) {
      total += h;
      ++counted;
    }
  }
  if (counted == 0) return std::numeric_limits<double>::infinity();
  return total / counted;
}

std::vector<double> level_region_iou(const ContourMap& map,
                                     const ScalarField& field,
                                     const std::vector<double>& isolevels,
                                     int resolution) {
  const LevelMap truth =
      LevelMap::ground_truth(field, isolevels, resolution, resolution);
  const LevelMap estimate = LevelMap::rasterize_rows(
      field.bounds(), resolution, resolution,
      [&](std::span<const Vec2> pts, std::span<int> out) {
        map.level_index_batch(pts, out);
      });
  const auto levels = static_cast<int>(isolevels.size());
  std::vector<long long> inter(static_cast<std::size_t>(levels), 0);
  std::vector<long long> uni(static_cast<std::size_t>(levels), 0);
  for (int iy = 0; iy < resolution; ++iy) {
    for (int ix = 0; ix < resolution; ++ix) {
      const int t = truth.at(ix, iy);
      const int e = estimate.at(ix, iy);
      for (int k = 0; k < levels; ++k) {
        const bool in_t = t >= k + 1;
        const bool in_e = e >= k + 1;
        if (in_t && in_e) ++inter[static_cast<std::size_t>(k)];
        if (in_t || in_e) ++uni[static_cast<std::size_t>(k)];
      }
    }
  }
  std::vector<double> iou(static_cast<std::size_t>(levels), 1.0);
  for (int k = 0; k < levels; ++k) {
    if (uni[static_cast<std::size_t>(k)] > 0)
      iou[static_cast<std::size_t>(k)] =
          static_cast<double>(inter[static_cast<std::size_t>(k)]) /
          static_cast<double>(uni[static_cast<std::size_t>(k)]);
  }
  return iou;
}

double mean_region_iou(const ContourMap& map, const ScalarField& field,
                       const std::vector<double>& isolevels,
                       int resolution) {
  const auto iou = level_region_iou(map, field, isolevels, resolution);
  if (iou.empty()) return 1.0;
  double total = 0.0;
  for (double v : iou) total += v;
  return total / static_cast<double>(iou.size());
}

double gradient_error_deg(const ScalarField& field, Vec2 p,
                          Vec2 estimated_descent) {
  const Vec2 true_descent = -field.gradient(p);
  return angle_between(true_descent, estimated_descent) * 180.0 / M_PI;
}

}  // namespace isomap
