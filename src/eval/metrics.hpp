#pragma once

#include <vector>

#include "eval/level_map.hpp"
#include "field/scalar_field.hpp"
#include "geometry/polyline.hpp"
#include "isomap/contour_map.hpp"

namespace isomap {

/// Ground-truth isolines of a field at one isolevel, extracted by marching
/// squares on a dense sample grid (`resolution` samples per axis).
std::vector<Polyline> true_isolines(const ScalarField& field, double isolevel,
                                    int resolution = 200);

/// The paper's Fig. 11 mapping-accuracy metric: rasterize the estimated
/// map and the ground truth at `resolution` and return the fraction of
/// agreeing pixels.
double mapping_accuracy(const ContourMap& map, const ScalarField& field,
                        const std::vector<double>& isolevels,
                        int resolution = 100);

/// The paper's Fig. 12 metric: the Hausdorff distance between estimated
/// and true isolines, averaged over the isolevels that have estimated
/// boundaries. `sample_spacing` controls the curve sampling density.
/// Returns +inf when no level produced any boundary.
double isoline_hausdorff(const ContourMap& map, const ScalarField& field,
                         const std::vector<double>& isolevels,
                         int resolution = 200, double sample_spacing = 0.5);

/// Error in degrees between an estimated descent direction and the true
/// one (-grad f) at `p`; used by the Fig. 7 gradient-error experiment.
double gradient_error_deg(const ScalarField& field, Vec2 p,
                          Vec2 estimated_descent);

/// Per-level intersection-over-union between the estimated and true
/// superlevel regions {p : level_index(p) >= k+1}; finer-grained than the
/// global pixel accuracy (which is dominated by the large easy areas).
/// Returns one value per isolevel; a level where both regions are empty
/// scores 1, a level where exactly one is empty scores 0.
std::vector<double> level_region_iou(const ContourMap& map,
                                     const ScalarField& field,
                                     const std::vector<double>& isolevels,
                                     int resolution = 100);

/// Mean of level_region_iou over the levels.
double mean_region_iou(const ContourMap& map, const ScalarField& field,
                       const std::vector<double>& isolevels,
                       int resolution = 100);

}  // namespace isomap
