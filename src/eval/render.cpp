#include "eval/render.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace isomap {
namespace {

constexpr char kShades[] = {' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'};
constexpr int kNumShades = static_cast<int>(sizeof(kShades));

char shade_for(int level, int max_level) {
  if (max_level <= 0) return kShades[0];
  const int idx = std::min(kNumShades - 1, level * (kNumShades - 1) / max_level);
  return kShades[idx];
}

std::vector<std::string> render_lines(const LevelMap& map) {
  const int max_level = std::max(map.max_level(), 1);
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(map.ny()));
  // Top row of the output = highest y (north up).
  for (int iy = map.ny() - 1; iy >= 0; --iy) {
    std::string line;
    line.reserve(static_cast<std::size_t>(map.nx()));
    for (int ix = 0; ix < map.nx(); ++ix)
      line.push_back(shade_for(map.at(ix, iy), max_level));
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace

std::string ascii_render(const LevelMap& map) {
  std::ostringstream out;
  for (const auto& line : render_lines(map)) out << line << "\n";
  return out.str();
}

std::string ascii_render_pair(const LevelMap& left, const LevelMap& right,
                              const std::string& left_caption,
                              const std::string& right_caption) {
  const auto l = render_lines(left);
  const auto r = render_lines(right);
  std::ostringstream out;
  const std::size_t lw = l.empty() ? left_caption.size() : l[0].size();
  out << left_caption;
  if (left_caption.size() < lw + 4)
    out << std::string(lw + 4 - left_caption.size(), ' ');
  out << right_caption << "\n";
  const std::size_t rows = std::max(l.size(), r.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const std::string& ll = i < l.size() ? l[i] : std::string(lw, ' ');
    out << ll << "    " << (i < r.size() ? r[i] : "") << "\n";
  }
  return out.str();
}

bool write_pgm(const LevelMap& map, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const int max_level = std::max(map.max_level(), 1);
  out << "P5\n" << map.nx() << " " << map.ny() << "\n255\n";
  for (int iy = map.ny() - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < map.nx(); ++ix) {
      const int grey = 255 - map.at(ix, iy) * 255 / max_level;
      out.put(static_cast<char>(grey));
    }
  }
  return static_cast<bool>(out);
}

}  // namespace isomap
