#pragma once

#include <string>

#include "eval/level_map.hpp"

namespace isomap {

/// Render a level map as ASCII art (one character per pixel, darker
/// characters = higher levels, y axis pointing up). Used by the examples
/// and the Fig. 9/10 benches to show the reconstructed contour maps.
std::string ascii_render(const LevelMap& map);

/// Render two maps side by side with captions (e.g. truth vs estimate).
std::string ascii_render_pair(const LevelMap& left, const LevelMap& right,
                              const std::string& left_caption,
                              const std::string& right_caption);

/// Write the level map as a binary PGM image (grey levels spread over the
/// level range). Returns false on I/O failure.
bool write_pgm(const LevelMap& map, const std::string& path);

}  // namespace isomap
