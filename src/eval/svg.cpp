#include "eval/svg.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace isomap {

std::string level_fill_colour(int level, int max_level) {
  // Light steel blue down to deep navy.
  const double t = max_level > 0
                       ? std::clamp(static_cast<double>(level) / max_level,
                                    0.0, 1.0)
                       : 0.0;
  const int r = static_cast<int>(224 - t * 190);
  const int g = static_cast<int>(236 - t * 172);
  const int b = static_cast<int>(246 - t * 116);
  std::ostringstream ss;
  ss << "rgb(" << r << "," << g << "," << b << ")";
  return ss.str();
}

SvgWriter::SvgWriter(FieldBounds bounds, int pixels)
    : bounds_(bounds), width_px_(pixels) {
  height_px_ = static_cast<int>(pixels * bounds.height() /
                                std::max(bounds.width(), 1e-9));
}

Vec2 SvgWriter::to_canvas(Vec2 world) const {
  const double x =
      (world.x - bounds_.x0) / bounds_.width() * width_px_;
  const double y =
      (1.0 - (world.y - bounds_.y0) / bounds_.height()) * height_px_;
  return {x, y};
}

void SvgWriter::add_level_raster(const std::function<int(Vec2)>& classify,
                                 int max_level, int cells) {
  std::ostringstream ss;
  const double cw = static_cast<double>(width_px_) / cells;
  const double ch = static_cast<double>(height_px_) / cells;
  for (int iy = 0; iy < cells; ++iy) {
    for (int ix = 0; ix < cells; ++ix) {
      const Vec2 world{
          bounds_.x0 + bounds_.width() * (ix + 0.5) / cells,
          bounds_.y0 + bounds_.height() * (iy + 0.5) / cells};
      const int level = classify(world);
      const Vec2 canvas = to_canvas(
          {bounds_.x0 + bounds_.width() * ix / cells,
           bounds_.y0 + bounds_.height() * (iy + 1.0) / cells});
      ss << "<rect x=\"" << canvas.x << "\" y=\"" << canvas.y
         << "\" width=\"" << cw + 0.5 << "\" height=\"" << ch + 0.5
         << "\" fill=\"" << level_fill_colour(level, max_level)
         << "\" stroke=\"none\"/>\n";
    }
  }
  body_ += ss.str();
}

void SvgWriter::add_polyline(const Polyline& line, const std::string& colour,
                             double width_px) {
  if (line.size() < 2) return;
  std::ostringstream ss;
  ss << (line.closed() ? "<polygon" : "<polyline") << " points=\"";
  for (const Vec2 p : line.points()) {
    const Vec2 c = to_canvas(p);
    ss << c.x << "," << c.y << " ";
  }
  ss << "\" fill=\"none\" stroke=\"" << colour << "\" stroke-width=\""
     << width_px << "\"/>\n";
  body_ += ss.str();
}

void SvgWriter::add_polylines(const std::vector<Polyline>& lines,
                              const std::string& colour, double width_px) {
  for (const auto& line : lines) add_polyline(line, colour, width_px);
}

void SvgWriter::add_points(const std::vector<Vec2>& points,
                           const std::string& colour, double radius_px) {
  std::ostringstream ss;
  for (const Vec2 p : points) {
    const Vec2 c = to_canvas(p);
    ss << "<circle cx=\"" << c.x << "\" cy=\"" << c.y << "\" r=\""
       << radius_px << "\" fill=\"" << colour << "\"/>\n";
  }
  body_ += ss.str();
}

void SvgWriter::add_marker(Vec2 position, const std::string& label,
                           const std::string& colour) {
  const Vec2 c = to_canvas(position);
  std::ostringstream ss;
  ss << "<rect x=\"" << c.x - 4 << "\" y=\"" << c.y - 4
     << "\" width=\"8\" height=\"8\" fill=\"" << colour << "\"/>\n"
     << "<text x=\"" << c.x + 6 << "\" y=\"" << c.y + 4
     << "\" font-size=\"12\" font-family=\"sans-serif\" fill=\"" << colour
     << "\">" << label << "</text>\n";
  body_ += ss.str();
}

std::string SvgWriter::str() const {
  std::ostringstream ss;
  ss << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px_
     << "\" height=\"" << height_px_ << "\" viewBox=\"0 0 " << width_px_
     << " " << height_px_ << "\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
     << body_ << "</svg>\n";
  return ss.str();
}

bool SvgWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << str();
  return static_cast<bool>(out);
}

}  // namespace isomap
