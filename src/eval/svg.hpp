#pragma once

#include <functional>
#include <string>
#include <vector>

#include "field/scalar_field.hpp"
#include "geometry/polyline.hpp"

namespace isomap {

/// Minimal SVG writer for contour maps: filled level regions (sampled),
/// isoline polylines, node markers. Produces self-contained documents
/// viewable in any browser — the publication-quality counterpart of the
/// ASCII renders.
class SvgWriter {
 public:
  /// `bounds` is the world window; the document maps it onto a canvas of
  /// `pixels` width (height follows the aspect ratio). World y points up
  /// (SVG's points down; the writer flips).
  SvgWriter(FieldBounds bounds, int pixels = 640);

  /// Filled background from a level classifier sampled on a `cells` x
  /// `cells` grid; level 0 is lightest. Call first (painters' order).
  void add_level_raster(const std::function<int(Vec2)>& classify,
                        int max_level, int cells = 120);

  /// One polyline in the given CSS colour.
  void add_polyline(const Polyline& line, const std::string& colour,
                    double width_px = 1.5);

  /// All chains of a set in one colour.
  void add_polylines(const std::vector<Polyline>& lines,
                     const std::string& colour, double width_px = 1.5);

  /// Dots for node positions (e.g. isoline nodes or the deployment).
  void add_points(const std::vector<Vec2>& points, const std::string& colour,
                  double radius_px = 1.5);

  /// A labelled marker (e.g. the sink).
  void add_marker(Vec2 position, const std::string& label,
                  const std::string& colour);

  /// Complete SVG document.
  std::string str() const;

  /// Write to file; false on I/O failure.
  bool save(const std::string& path) const;

 private:
  Vec2 to_canvas(Vec2 world) const;

  FieldBounds bounds_;
  int width_px_;
  int height_px_;
  std::string body_;
};

/// Colour helper: a light-to-dark blue ramp for level fills.
std::string level_fill_colour(int level, int max_level);

}  // namespace isomap
