#include "exec/exec.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace isomap::exec {
namespace {

thread_local bool t_on_worker = false;

std::atomic<int> g_override{0};

int env_threads() {
  const char* env = std::getenv("ISOMAP_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v < 1) return 0;
  return static_cast<int>(std::min(v, 256L));
}

/// Fixed set of helper threads plus the caller: a region is one shared
/// chunk queue (an index cursor under the pool mutex) that the caller and
/// every helper drain together. One region runs at a time; regions are
/// short (a bench sweep point, a map build), so the coarse mutex around
/// chunk handout is never contended enough to matter.
class Pool {
 public:
  explicit Pool(int helpers) {
    threads_.reserve(static_cast<std::size_t>(helpers));
    for (int i = 0; i < helpers; ++i)
      threads_.emplace_back([this] { worker_loop(); });
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           std::size_t chunk) {
    Job job;
    job.fn = &fn;
    job.n = n;
    job.chunk = std::max<std::size_t>(1, chunk);
    std::unique_lock<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
    work_cv_.notify_all();
    const bool was_worker = t_on_worker;
    t_on_worker = true;  // The caller's share must not re-enter the pool.
    help(job, lock);
    t_on_worker = was_worker;
    done_cv_.wait(lock, [&] {
      return job.in_flight == 0 && (job.next >= job.n || job.error);
    });
    job_ = nullptr;
    lock.unlock();
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::size_t next = 0;
    int in_flight = 0;
    std::exception_ptr error;
  };

  /// Drain chunks of the job until none remain; called with `lock` held,
  /// returns with it held. fn runs unlocked.
  void help(Job& job, std::unique_lock<std::mutex>& lock) {
    while (job.next < job.n && !job.error) {
      const std::size_t begin = job.next;
      const std::size_t end = std::min(job.n, begin + job.chunk);
      job.next = end;
      ++job.in_flight;
      lock.unlock();
      std::exception_ptr err;
      try {
        for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      --job.in_flight;
      if (err && !job.error) job.error = err;
    }
  }

  void worker_loop() {
    t_on_worker = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      work_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen && job_ != nullptr);
      });
      if (stop_) return;
      seen = generation_;
      Job& job = *job_;
      help(job, lock);
      if (job.in_flight == 0 && (job.next >= job.n || job.error))
        done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

std::mutex g_pool_mu;       // Guards pool (re)construction.
std::mutex g_region_mu;     // Serialises top-level regions.
std::unique_ptr<Pool> g_pool;
int g_pool_threads = 0;

Pool& pool_for(int threads) {
  const std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool || g_pool_threads != threads) {
    g_pool.reset();  // Joins the old workers before spawning new ones.
    g_pool = std::make_unique<Pool>(threads - 1);
    g_pool_threads = threads;
  }
  return *g_pool;
}

}  // namespace

int thread_count() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  const int env = env_threads();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? static_cast<int>(std::min(hw, 16u)) : 1;
}

void set_thread_count(int n) {
  g_override.store(std::max(0, std::min(n, 256)), std::memory_order_relaxed);
}

bool on_worker_thread() { return t_on_worker; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const int threads = thread_count();
  if (threads <= 1 || n == 1 || t_on_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunk so each participant sees a few handouts (load balance) without
  // taking the mutex per index.
  const auto participants = static_cast<std::size_t>(threads);
  const std::size_t chunk = std::max<std::size_t>(1, n / (participants * 4));
  const std::lock_guard<std::mutex> region(g_region_mu);
  pool_for(threads).run(n, fn, chunk);
}

void parallel_for_blocks(
    const TileBlocks& blocks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  parallel_for(blocks.count(), [&](std::size_t b) {
    fn(b, blocks.begin(b), blocks.end(b));
  });
}

}  // namespace isomap::exec
