#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <vector>

#include "geometry/tile_grid.hpp"
#include "obs/obs.hpp"

namespace isomap::exec {

/// Parallel execution engine for the sink-side hot paths and the bench
/// harness: a single process-wide fixed-size thread pool behind two
/// deterministic primitives, parallel_for and parallel_trials.
///
/// Determinism contract: every parallel region produces bitwise-identical
/// results to its serial execution (ISOMAP_THREADS=1). The primitives
/// guarantee their side: each index/trial writes only its own output slot
/// and results are returned in index order. Callers guarantee theirs:
/// region bodies must not touch shared mutable state and must not emit
/// observability metrics/traces that the serial path would attribute
/// differently (worker threads run with an empty obs::Context).
///
/// Thread count resolution, strongest first:
///   1. set_thread_count(n)  — programmatic override (quickstart --threads)
///   2. ISOMAP_THREADS=n     — environment override (CI, determinism runs)
///   3. hardware concurrency — capped at 16 for the auto default
/// A count of 1 disables the pool entirely: parallel_for runs inline on
/// the calling thread with zero synchronisation.

/// Resolved number of threads a parallel region will use (>= 1).
int thread_count();

/// Override the thread count (n >= 1); n <= 0 clears the override and
/// returns to the ISOMAP_THREADS / hardware default. The pool is rebuilt
/// lazily on the next parallel region; never call mid-region.
void set_thread_count(int n);

/// True on a pool worker thread (nested parallel regions run inline).
bool on_worker_thread();

/// Invoke fn(i) for every i in [0, n), distributed over the pool; blocks
/// until all indices completed. fn runs concurrently on the calling
/// thread plus the pool workers; the first exception thrown by fn is
/// rethrown here (remaining scheduled chunks are abandoned). Nested calls
/// from inside a region run inline, so fn may itself use parallel_for.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Tile-blocked variant: invoke fn(b, begin, end) for every block of the
/// partition, distributed over the pool. The partition is a pure function
/// of (blocks.n, blocks.block), so per-block outputs merged in block
/// order reproduce the serial item order at any thread count. Bodies are
/// subject to the same contract as parallel_for — and note the calling
/// thread participates with its obs::Context still installed, so a body
/// that emits metrics/traces would attribute them nondeterministically:
/// keep blocks pure and do all emission in the caller's ordered merge.
void parallel_for_blocks(
    const TileBlocks& blocks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Run `k` independent trials (1-based, matching the bench harness's
/// "seeds 1..k" convention) and return their results in trial order.
/// Each trial t invokes run_fn(t, seed_fn(t)); the per-trial seed is the
/// only RNG input, so results are independent of execution order and
/// identical to the serial loop. Every trial body runs under a fresh
/// empty obs::Context scope — worker-thread metrics/traces cannot race
/// the caller's, and a trial that installs its own scope (run_isomap
/// does) keeps it private to its thread.
template <typename SeedFn, typename RunFn>
auto parallel_trials(int k, SeedFn&& seed_fn, RunFn&& run_fn)
    -> std::vector<std::decay_t<std::invoke_result_t<RunFn&, int, std::uint64_t>>> {
  using T = std::decay_t<std::invoke_result_t<RunFn&, int, std::uint64_t>>;
  std::vector<std::optional<T>> slots(
      static_cast<std::size_t>(std::max(0, k)));
  parallel_for(slots.size(), [&](std::size_t idx) {
    const int trial = static_cast<int>(idx) + 1;
    const std::uint64_t seed = seed_fn(static_cast<std::uint64_t>(trial));
    const obs::ObsScope scope(nullptr, nullptr);
    slots[idx].emplace(run_fn(trial, seed));
  });
  std::vector<T> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace isomap::exec
