#include "fault/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace isomap {

void FaultPlan::add(const FaultEvent& event) {
  if (!(event.time >= 0.0 && event.time <= 1.0))
    throw std::invalid_argument("FaultPlan: event time must be in [0,1]");
  if (event.kind == FaultKind::kRegionBlackout && event.radius < 0.0)
    throw std::invalid_argument("FaultPlan: blackout radius must be >= 0");
  // Stable insert: after the last event with time <= event.time.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  events_.insert(pos, event);
}

void FaultPlan::merge(const FaultPlan& other) {
  for (const FaultEvent& event : other.events_) add(event);
}

FaultPlan FaultPlan::random_crashes(const Deployment& deployment,
                                    double fraction, double t0, double t1,
                                    Rng rng, int exclude) {
  if (!(t0 >= 0.0 && t1 <= 1.0 && t0 <= t1))
    throw std::invalid_argument(
        "FaultPlan::random_crashes: need 0 <= t0 <= t1 <= 1");
  fraction = std::clamp(fraction, 0.0, 1.0);
  std::vector<int> candidates;
  for (const Node& node : deployment.nodes())
    if (node.alive && node.id != exclude) candidates.push_back(node.id);
  const auto victims = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(candidates.size())));
  FaultPlan plan;
  // Partial Fisher-Yates, mirroring Deployment::fail_random's victim
  // selection so the two fault paths are statistically comparable.
  for (std::size_t i = 0; i < victims && i < candidates.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_int(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
    FaultEvent event;
    event.time = t0 + (t1 - t0) * rng.uniform();
    event.kind = FaultKind::kNodeCrash;
    event.node = candidates[i];
    plan.add(event);
  }
  return plan;
}

FaultPlan FaultPlan::region_blackout(Vec2 center, double radius, double time) {
  FaultEvent event;
  event.time = time;
  event.kind = FaultKind::kRegionBlackout;
  event.center = center;
  event.radius = radius;
  FaultPlan plan;
  plan.add(event);
  return plan;
}

FaultPlan make_fault_plan(const FaultConfig& config,
                          const Deployment& deployment, int sink) {
  FaultPlan plan;
  if (config.crash_fraction > 0.0) {
    plan = FaultPlan::random_crashes(deployment, config.crash_fraction,
                                     config.crash_window_begin,
                                     config.crash_window_end,
                                     Rng(config.seed), sink);
  }
  if (config.blackout) {
    plan.merge(FaultPlan::region_blackout(
        config.blackout_center, config.blackout_radius, config.blackout_time));
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, const Deployment& deployment,
                             int protected_node)
    : plan_(std::move(plan)), protected_node_(protected_node) {
  const auto n = static_cast<std::size_t>(deployment.size());
  positions_.reserve(n);
  alive_mask_.reserve(n);
  for (const Node& node : deployment.nodes()) {
    positions_.push_back(node.pos);
    alive_mask_.push_back(node.alive ? 1 : 0);
  }
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kNodeCrash &&
        (event.node < 0 || static_cast<std::size_t>(event.node) >= n))
      throw std::out_of_range("FaultInjector: crash target outside deployment");
  }
}

void FaultInjector::kill(int node, std::vector<int>& died) {
  if (node == protected_node_) return;
  char& alive = alive_mask_[static_cast<std::size_t>(node)];
  if (!alive) return;
  alive = 0;
  ++crash_count_;
  died.push_back(node);
  obs::count("fault.crashes");
}

std::vector<int> FaultInjector::advance(double progress) {
  std::vector<int> died;
  const auto& events = plan_.events();
  while (next_event_ < events.size() &&
         events[next_event_].time <= progress) {
    const FaultEvent& event = events[next_event_++];
    if (event.kind == FaultKind::kNodeCrash) {
      kill(event.node, died);
    } else {
      const double r2 = event.radius * event.radius;
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        if ((positions_[i] - event.center).norm2() <= r2)
          kill(static_cast<int>(i), died);
      }
    }
  }
  return died;
}

}  // namespace isomap
