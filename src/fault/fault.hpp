#pragma once

#include <cstdint>
#include <vector>

#include "geometry/vec2.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

namespace isomap {

/// Mid-run fault kinds. The paper assumes a static, fault-free network
/// for the duration of a query ("data delivery is guaranteed through ...
/// MAC layer retransmissions", Section 5); this subsystem relaxes that:
/// nodes can crash *while* the convergecast is in flight, individually or
/// as a correlated region blackout (all nodes inside a disc die at once —
/// the harbor-storm scenario where a mooring drags through a sensor
/// cluster).
enum class FaultKind {
  kNodeCrash,       ///< One node dies at `time`.
  kRegionBlackout,  ///< Every node within `radius` of `center` dies.
};

/// One scheduled fault. `time` is convergecast progress in [0, 1]: 0 fires
/// before the first report hop, 1 after the last. The simulator has no
/// wall-clock inside a run, so progress through the TDMA report schedule
/// is the natural (and deterministic) time axis.
struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kNodeCrash;
  int node = -1;     ///< kNodeCrash target.
  Vec2 center{};     ///< kRegionBlackout disc centre.
  double radius = 0.0;
};

/// A deterministic, seed-driven schedule of fault events. Plans are value
/// types: build one per run (or share it across protocols so every
/// comparison suffers the identical outage sequence).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Insert keeping events sorted by time (stable: equal-time events keep
  /// insertion order). Throws on time outside [0, 1] or negative radius.
  void add(const FaultEvent& event);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Append every event of `other` (re-sorted by time).
  void merge(const FaultPlan& other);

  /// Crash a random `fraction` of the currently-alive nodes of
  /// `deployment`, at times spread uniformly over [t0, t1]. `exclude` (a
  /// node id, typically the sink — a powered host) is never scheduled.
  static FaultPlan random_crashes(const Deployment& deployment,
                                  double fraction, double t0, double t1,
                                  Rng rng, int exclude = -1);

  /// One region blackout at `time`.
  static FaultPlan region_blackout(Vec2 center, double radius, double time);

 private:
  std::vector<FaultEvent> events_;
};

/// Declarative fault options carried by protocol option structs — the
/// plumbing-friendly form of a FaultPlan. `make_fault_plan` expands it
/// against a concrete deployment.
struct FaultConfig {
  /// Fraction of alive nodes that crash mid-run, spread over
  /// [crash_window_begin, crash_window_end] of convergecast progress.
  double crash_fraction = 0.0;
  double crash_window_begin = 0.05;
  double crash_window_end = 0.85;

  /// Optional correlated outage: all nodes in the disc die at
  /// blackout_time.
  bool blackout = false;
  Vec2 blackout_center{};
  double blackout_radius = 0.0;
  double blackout_time = 0.5;

  /// Seed for victim selection and crash-time placement (independent of
  /// the scenario and channel seeds).
  std::uint64_t seed = 0xFA17ULL;

  /// When true (default) the routing tree repairs itself after each
  /// crash: orphans re-attach to their lowest-level alive neighbour,
  /// paying repair-beacon bytes. When false the tree stays static and a
  /// dead parent silently swallows its subtree's reports — the paper's
  /// implicit behaviour, kept as an ablation.
  bool self_healing = true;

  bool active() const { return crash_fraction > 0.0 || blackout; }
};

/// Expand a FaultConfig into a concrete plan for `deployment`. `sink` is
/// excluded from random crashes (region blackouts may still cover it; the
/// injector protects the sink unconditionally).
FaultPlan make_fault_plan(const FaultConfig& config,
                          const Deployment& deployment, int sink);

/// Replays a FaultPlan against a run in progress. The injector owns the
/// authoritative alive mask (seeded from the deployment's alive flags);
/// callers poll `advance(progress)` as the convergecast moves and apply
/// the returned deaths (lose buffered reports, repair the routing tree).
/// Every death bumps the "fault.crashes" obs counter. `protected_node`
/// (the sink) never dies, whatever the plan says.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, const Deployment& deployment,
                int protected_node = -1);

  /// Fire every event with time <= progress that has not fired yet;
  /// returns the ids of nodes that died as a result (alive -> dead
  /// transitions only, in event order, blackout victims by ascending id).
  std::vector<int> advance(double progress);

  bool alive(int node) const {
    return alive_mask_[static_cast<std::size_t>(node)] != 0;
  }
  const std::vector<char>& alive_mask() const { return alive_mask_; }

  int crash_count() const { return crash_count_; }
  bool exhausted() const { return next_event_ >= plan_.events().size(); }
  bool plan_empty() const { return plan_.empty(); }

 private:
  void kill(int node, std::vector<int>& died);

  FaultPlan plan_;
  std::vector<Vec2> positions_;  ///< Physical positions, for blackouts.
  std::vector<char> alive_mask_;
  std::size_t next_event_ = 0;
  int protected_node_;
  int crash_count_ = 0;
};

}  // namespace isomap
