#include "field/bathymetry.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace isomap {
namespace {

/// Map a position expressed in fractions of the bounds to world coordinates.
Vec2 frac(const FieldBounds& b, double fx, double fy) {
  return {b.x0 + b.width() * fx, b.y0 + b.height() * fy};
}

double scale(const FieldBounds& b, double f) {
  return f * std::min(b.width(), b.height());
}

}  // namespace

GaussianField harbor_bathymetry(FieldBounds bounds) {
  std::vector<GaussianBump> bumps;
  // Dredged channel: an elongated deep trench running lower-left to
  // upper-right (positive amplitude = deeper water).
  bumps.push_back({frac(bounds, 0.5, 0.5), 4.8, scale(bounds, 0.75),
                   scale(bounds, 0.14), M_PI / 4.0});
  // Natural basin in the north-west corner.
  bumps.push_back({frac(bounds, 0.18, 0.8), 2.2, scale(bounds, 0.18),
                   scale(bounds, 0.13), 0.3});
  // Shoals (negative amplitude = shallower) south-east and near the mouth.
  bumps.push_back({frac(bounds, 0.78, 0.22), -2.6, scale(bounds, 0.2),
                   scale(bounds, 0.15), -0.4});
  bumps.push_back({frac(bounds, 0.3, 0.18), -1.4, scale(bounds, 0.12),
                   scale(bounds, 0.1), 0.9});
  bumps.push_back({frac(bounds, 0.88, 0.72), -1.1, scale(bounds, 0.12),
                   scale(bounds, 0.16), 1.2});
  // Small-scale relief: sand waves and scour holes a few node-spacings
  // across, like the sonar surveys the paper drives its simulation with.
  // Without this fine structure the isolines are unrealistically smooth
  // and far fewer isoline nodes fire than the paper reports.
  Rng detail_rng(0x150b41ULL);
  for (int i = 0; i < 10; ++i) {
    bumps.push_back({frac(bounds, detail_rng.uniform(0.05, 0.95),
                          detail_rng.uniform(0.05, 0.95)),
                     detail_rng.uniform(-0.35, 0.35),
                     scale(bounds, detail_rng.uniform(0.05, 0.12)),
                     scale(bounds, detail_rng.uniform(0.05, 0.12)),
                     detail_rng.uniform(0.0, M_PI)});
  }
  // Base depth 9 m with a mild seaward-deepening trend.
  return GaussianField(bounds, 9.0,
                       Vec2{0.2 / bounds.width(), 0.6 / bounds.height()},
                       std::move(bumps));
}

GaussianField silted_harbor_bathymetry(FieldBounds bounds) {
  GaussianField normal = harbor_bathymetry(bounds);
  std::vector<GaussianBump> bumps = normal.bumps();
  // Silt deposit sitting across the channel mid-section: a strong shallow
  // bump that takes the local minimum depth down to ~5.7 m.
  bumps.push_back({frac(bounds, 0.46, 0.54), -7.2, scale(bounds, 0.16),
                   scale(bounds, 0.1), M_PI / 3.0});
  bumps.push_back({frac(bounds, 0.62, 0.64), -2.0, scale(bounds, 0.12),
                   scale(bounds, 0.1), M_PI / 3.0});
  return GaussianField(bounds, normal.base(), normal.trend(),
                       std::move(bumps));
}

GaussianField multi_basin_bathymetry(FieldBounds bounds) {
  std::vector<GaussianBump> bumps;
  bumps.push_back({frac(bounds, 0.25, 0.3), 3.5, scale(bounds, 0.14),
                   scale(bounds, 0.12), 0.2});
  bumps.push_back({frac(bounds, 0.72, 0.28), 3.0, scale(bounds, 0.12),
                   scale(bounds, 0.16), -0.5});
  bumps.push_back({frac(bounds, 0.5, 0.74), 4.0, scale(bounds, 0.18),
                   scale(bounds, 0.12), 1.0});
  bumps.push_back({frac(bounds, 0.2, 0.78), -1.6, scale(bounds, 0.12),
                   scale(bounds, 0.1), 0.0});
  bumps.push_back({frac(bounds, 0.82, 0.8), -1.2, scale(bounds, 0.1),
                   scale(bounds, 0.12), 0.7});
  return GaussianField(bounds, 8.0, Vec2{}, std::move(bumps));
}

GaussianField sloped_seabed_bathymetry(FieldBounds bounds) {
  // Absolute feature sizes: the terrain extends rather than stretches as
  // the field grows, keeping |grad| constant (see header).
  const Vec2 c = bounds.center();
  std::vector<GaussianBump> bumps;
  bumps.push_back({c + Vec2{-6.0, 4.0}, 2.4, 7.0, 5.0, 0.5});
  bumps.push_back({c + Vec2{9.0, -7.0}, -1.8, 6.0, 8.0, -0.8});
  bumps.push_back({c + Vec2{2.0, 12.0}, 1.2, 5.0, 4.0, 1.1});
  // Depth 9.5 m at the centre, fixed slope of ~0.126 m per unit.
  const Vec2 trend{0.04, 0.12};
  const double base = 9.5 - trend.dot(c);
  return GaussianField(bounds, base, trend, std::move(bumps));
}

}  // namespace isomap
