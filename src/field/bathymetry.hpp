#pragma once

#include "field/gaussian_field.hpp"

namespace isomap {

/// Synthetic stand-ins for the Huanghua Harbor sonar bathymetry traces used
/// by the paper (proprietary; see DESIGN.md "Substitutions"). Values are in
/// metres of water depth and match the depth range the paper reports
/// (sea-route design depth 13.5 m; post-storm siltation down to 5.7 m).
/// The default bounds reproduce the paper's normalized 50x50 field (the
/// 400 m x 400 m evaluation section at unit node density).

/// Normal-operation harbor section: a dredged shipping channel crossing the
/// field diagonally (deep, ~13.5 m), flanked by natural seabed (~9 m) with
/// a few shoals and basins. Produces nested, well-behaved isobaths.
GaussianField harbor_bathymetry(FieldBounds bounds = {0.0, 0.0, 50.0, 50.0});

/// Post-storm variant: the same section after a siltation event has partly
/// filled the channel (local minimum depth ~5.7 m), as in the October 2003
/// storm the paper describes. Used by the failure/alarm examples.
GaussianField silted_harbor_bathymetry(
    FieldBounds bounds = {0.0, 0.0, 50.0, 50.0});

/// Multi-basin field with several disjoint contour regions at mid levels;
/// exercises the multi-region and nesting paths of the map builder.
GaussianField multi_basin_bathymetry(
    FieldBounds bounds = {0.0, 0.0, 50.0, 50.0});

/// Scale-invariant seabed for the paper's *scaling* experiments (Figs.
/// 14-16, Theorem 4.1): a fixed per-unit depth slope plus a few bumps of
/// absolute size anchored at the field centre. Unlike the scaled harbor
/// presets, the gradient magnitude does not shrink as the field grows, so
/// a fixed-granularity query selects an O(sqrt(n)) strip of isoline nodes
/// — the regime Theorem 4.1 analyses (a constant number of well-behaved
/// contour regions crossing an ever-larger field).
GaussianField sloped_seabed_bathymetry(
    FieldBounds bounds = {0.0, 0.0, 50.0, 50.0});

/// The fixed query that pairs with sloped_seabed_bathymetry for scaling
/// runs: an absolute depth window around the centre depth with 4 levels.
/// (Declared here since the window is a property of the terrain, not of
/// any one experiment.)
struct SlopedSeabedQueryWindow {
  static constexpr double kLambdaLo = 7.5;
  static constexpr double kLambdaHi = 11.5;
  static constexpr double kGranularity = 1.0;
};

}  // namespace isomap
