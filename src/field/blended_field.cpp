#include "field/blended_field.hpp"

namespace isomap {

BlendedField::BlendedField(const ScalarField& a, const ScalarField& b,
                           double alpha)
    : a_(&a), b_(&b), alpha_(alpha) {}

double BlendedField::value(Vec2 p) const {
  return (1.0 - alpha_) * a_->value(p) + alpha_ * b_->value(p);
}

Vec2 BlendedField::gradient(Vec2 p) const {
  return a_->gradient(p) * (1.0 - alpha_) + b_->gradient(p) * alpha_;
}

}  // namespace isomap
