#pragma once

#include "field/scalar_field.hpp"

namespace isomap {

/// Linear blend between two fields over the same bounds:
/// value = (1 - alpha) * a + alpha * b. Models a slowly evolving
/// environment — e.g. the harbor seabed silting up between the normal and
/// post-storm bathymetries — for the continuous-mapping extension.
class BlendedField final : public ScalarField {
 public:
  /// Both fields must outlive this object and share bounds (a's bounds
  /// are used).
  BlendedField(const ScalarField& a, const ScalarField& b, double alpha);

  void set_alpha(double alpha) { alpha_ = alpha; }
  double alpha() const { return alpha_; }

  double value(Vec2 p) const override;
  Vec2 gradient(Vec2 p) const override;
  FieldBounds bounds() const override { return a_->bounds(); }

 private:
  const ScalarField* a_;
  const ScalarField* b_;
  double alpha_;
};

}  // namespace isomap
