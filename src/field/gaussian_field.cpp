#include "field/gaussian_field.hpp"

#include <cmath>

namespace isomap {

double GaussianBump::value(Vec2 p) const {
  const Vec2 d = (p - center).rotated(-rotation);
  const double qx = d.x / sx;
  const double qy = d.y / sy;
  return amplitude * std::exp(-0.5 * (qx * qx + qy * qy));
}

Vec2 GaussianBump::gradient(Vec2 p) const {
  const Vec2 d = (p - center).rotated(-rotation);
  const double v = value(p);
  // Gradient in the rotated frame, then rotate back.
  const Vec2 g_local{-d.x / (sx * sx) * v, -d.y / (sy * sy) * v};
  return g_local.rotated(rotation);
}

GaussianField::GaussianField(FieldBounds bounds, double base, Vec2 trend,
                             std::vector<GaussianBump> bumps)
    : bounds_(bounds), base_(base), trend_(trend), bumps_(std::move(bumps)) {}

double GaussianField::value(Vec2 p) const {
  double v = base_ + trend_.dot(p);
  for (const auto& bump : bumps_) v += bump.value(p);
  return v;
}

Vec2 GaussianField::gradient(Vec2 p) const {
  Vec2 g = trend_;
  for (const auto& bump : bumps_) g += bump.gradient(p);
  return g;
}

GaussianField GaussianField::random(FieldBounds bounds, int num_bumps,
                                    double amplitude, Rng& rng) {
  std::vector<GaussianBump> bumps;
  bumps.reserve(static_cast<std::size_t>(num_bumps));
  const double span = std::min(bounds.width(), bounds.height());
  for (int i = 0; i < num_bumps; ++i) {
    GaussianBump b;
    b.center = {rng.uniform(bounds.x0, bounds.x1),
                rng.uniform(bounds.y0, bounds.y1)};
    b.amplitude = rng.uniform(-amplitude, amplitude);
    b.sx = rng.uniform(0.1, 0.35) * span;
    b.sy = rng.uniform(0.1, 0.35) * span;
    b.rotation = rng.uniform(0.0, M_PI);
    bumps.push_back(b);
  }
  const Vec2 trend{rng.uniform(-0.2, 0.2) * amplitude / span,
                   rng.uniform(-0.2, 0.2) * amplitude / span};
  return GaussianField(bounds, 0.0, trend, std::move(bumps));
}

}  // namespace isomap
