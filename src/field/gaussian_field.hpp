#pragma once

#include <vector>

#include "field/scalar_field.hpp"
#include "util/rng.hpp"

namespace isomap {

/// One anisotropic Gaussian bump: amplitude * exp(-q(p - center)) where q is
/// the quadratic form of a rotated ellipse with axis scales (sx, sy).
struct GaussianBump {
  Vec2 center{};
  double amplitude = 1.0;
  double sx = 1.0;       ///< Std-dev along the rotated x axis.
  double sy = 1.0;       ///< Std-dev along the rotated y axis.
  double rotation = 0.0; ///< Radians, CCW.

  double value(Vec2 p) const;
  Vec2 gradient(Vec2 p) const;
};

/// Smooth analytic field: base level + linear trend + sum of Gaussian
/// bumps. Its isolines are "well behaved" in the paper's Def. 4.1 sense
/// (smooth closed/open curves of Hausdorff dimension 1), making it a
/// faithful stand-in for the harbor bathymetry traces. The exact gradient
/// is available, which the Fig. 7 experiment uses as ground truth.
class GaussianField final : public ScalarField {
 public:
  GaussianField(FieldBounds bounds, double base, Vec2 trend,
                std::vector<GaussianBump> bumps);

  double value(Vec2 p) const override;
  Vec2 gradient(Vec2 p) const override;
  FieldBounds bounds() const override { return bounds_; }

  const std::vector<GaussianBump>& bumps() const { return bumps_; }
  double base() const { return base_; }
  Vec2 trend() const { return trend_; }

  /// Random smooth field over `bounds` with `num_bumps` bumps whose
  /// amplitudes lie in [-amplitude, amplitude]; used by property tests and
  /// the gradient-error sweep.
  static GaussianField random(FieldBounds bounds, int num_bumps,
                              double amplitude, Rng& rng);

 private:
  FieldBounds bounds_;
  double base_;
  Vec2 trend_;
  std::vector<GaussianBump> bumps_;
};

}  // namespace isomap
