#include "field/grid_field.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace isomap {

GridField::GridField(FieldBounds bounds, int nx, int ny,
                     std::vector<double> samples)
    : bounds_(bounds), nx_(nx), ny_(ny), samples_(std::move(samples)) {
  if (nx_ < 2 || ny_ < 2)
    throw std::invalid_argument("GridField: needs >= 2x2 samples");
  if (samples_.size() != static_cast<std::size_t>(nx_) * ny_)
    throw std::invalid_argument("GridField: sample count != nx*ny");
  dx_ = bounds_.width() / (nx_ - 1);
  dy_ = bounds_.height() / (ny_ - 1);
}

GridField GridField::sample(const ScalarField& source, int nx, int ny) {
  const FieldBounds b = source.bounds();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(nx) * ny);
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const Vec2 p{b.x0 + b.width() * ix / (nx - 1),
                   b.y0 + b.height() * iy / (ny - 1)};
      samples.push_back(source.value(p));
    }
  }
  return GridField(b, nx, ny, std::move(samples));
}

double GridField::at(int ix, int iy) const {
  ix = std::clamp(ix, 0, nx_ - 1);
  iy = std::clamp(iy, 0, ny_ - 1);
  return samples_[static_cast<std::size_t>(iy) * nx_ + ix];
}

double GridField::value(Vec2 p) const {
  const double fx =
      std::clamp((p.x - bounds_.x0) / dx_, 0.0, static_cast<double>(nx_ - 1));
  const double fy =
      std::clamp((p.y - bounds_.y0) / dy_, 0.0, static_cast<double>(ny_ - 1));
  const int ix = std::min(static_cast<int>(fx), nx_ - 2);
  const int iy = std::min(static_cast<int>(fy), ny_ - 2);
  const double tx = fx - ix;
  const double ty = fy - iy;
  const double v00 = at(ix, iy);
  const double v10 = at(ix + 1, iy);
  const double v01 = at(ix, iy + 1);
  const double v11 = at(ix + 1, iy + 1);
  return v00 * (1 - tx) * (1 - ty) + v10 * tx * (1 - ty) +
         v01 * (1 - tx) * ty + v11 * tx * ty;
}

Vec2 GridField::gradient(Vec2 p) const {
  const double fx =
      std::clamp((p.x - bounds_.x0) / dx_, 0.0, static_cast<double>(nx_ - 1));
  const double fy =
      std::clamp((p.y - bounds_.y0) / dy_, 0.0, static_cast<double>(ny_ - 1));
  const int ix = std::min(static_cast<int>(fx), nx_ - 2);
  const int iy = std::min(static_cast<int>(fy), ny_ - 2);
  const double tx = fx - ix;
  const double ty = fy - iy;
  const double v00 = at(ix, iy);
  const double v10 = at(ix + 1, iy);
  const double v01 = at(ix, iy + 1);
  const double v11 = at(ix + 1, iy + 1);
  // Exact gradient of the bilinear patch.
  const double gx =
      ((v10 - v00) * (1 - ty) + (v11 - v01) * ty) / dx_;
  const double gy =
      ((v01 - v00) * (1 - tx) + (v11 - v10) * tx) / dy_;
  return {gx, gy};
}

SampleGrid GridField::as_sample_grid() const {
  SampleGrid grid;
  grid.nx = nx_;
  grid.ny = ny_;
  grid.origin = {bounds_.x0, bounds_.y0};
  grid.dx = dx_;
  grid.dy = dy_;
  grid.value = [this](int ix, int iy) { return at(ix, iy); };
  return grid;
}

}  // namespace isomap
