#pragma once

#include <vector>

#include "field/scalar_field.hpp"
#include "geometry/marching_squares.hpp"

namespace isomap {

/// Scalar field backed by a regular sample grid with bilinear
/// interpolation. This is the "trace" format: the paper drives its
/// simulation from a gridded sonar bathymetry survey; we sample our
/// synthetic bathymetry onto the same representation so every consumer
/// (protocols, evaluation) sees trace-like data rather than an analytic
/// formula.
class GridField final : public ScalarField {
 public:
  /// `samples` is row-major with nx columns / ny rows covering `bounds`
  /// corner-to-corner. Requires nx, ny >= 2.
  GridField(FieldBounds bounds, int nx, int ny, std::vector<double> samples);

  /// Sample any ScalarField onto an (nx x ny) grid over its own bounds.
  static GridField sample(const ScalarField& source, int nx, int ny);

  double value(Vec2 p) const override;
  Vec2 gradient(Vec2 p) const override;
  FieldBounds bounds() const override { return bounds_; }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  double at(int ix, int iy) const;

  /// Adapter for marching-squares ground-truth extraction.
  SampleGrid as_sample_grid() const;

 private:
  FieldBounds bounds_;
  int nx_;
  int ny_;
  std::vector<double> samples_;
  double dx_;
  double dy_;
};

}  // namespace isomap
