#include "field/scalar_field.hpp"

#include <algorithm>
#include <utility>

namespace isomap {

Vec2 FieldBounds::clamp(Vec2 p) const {
  return {std::clamp(p.x, x0, x1), std::clamp(p.y, y0, y1)};
}

Vec2 ScalarField::gradient(Vec2 p) const {
  const FieldBounds b = bounds();
  const double h = 1e-4 * std::max(b.width(), b.height());
  const double dx =
      (value(b.clamp({p.x + h, p.y})) - value(b.clamp({p.x - h, p.y})));
  const double dy =
      (value(b.clamp({p.x, p.y + h})) - value(b.clamp({p.x, p.y - h})));
  return Vec2{dx, dy} / (2.0 * h);
}

std::pair<double, double> ScalarField::value_range(int resolution) const {
  const FieldBounds b = bounds();
  double lo = value({b.x0, b.y0});
  double hi = lo;
  for (int iy = 0; iy <= resolution; ++iy) {
    for (int ix = 0; ix <= resolution; ++ix) {
      const Vec2 p{b.x0 + b.width() * ix / resolution,
                   b.y0 + b.height() * iy / resolution};
      const double v = value(p);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return {lo, hi};
}

}  // namespace isomap
