#pragma once

#include <utility>

#include "geometry/vec2.hpp"

namespace isomap {

/// Axis-aligned field extent in normalized world coordinates.
struct FieldBounds {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 1.0;
  double y1 = 1.0;

  double width() const { return x1 - x0; }
  double height() const { return y1 - y0; }
  bool contains(Vec2 p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  Vec2 clamp(Vec2 p) const;
  Vec2 center() const { return {(x0 + x1) * 0.5, (y0 + y1) * 0.5}; }
};

/// A continuous 2-D scalar attribute over a bounded field — the physical
/// quantity the sensor network samples (water depth in the paper's
/// Huanghua Harbor deployment). Implementations must be deterministic.
class ScalarField {
 public:
  virtual ~ScalarField() = default;

  virtual double value(Vec2 p) const = 0;

  /// Spatial gradient dv/d(x,y). The default is a central finite
  /// difference; analytic fields override with the exact gradient (used as
  /// the ground truth in the Fig. 7 gradient-error experiment).
  virtual Vec2 gradient(Vec2 p) const;

  virtual FieldBounds bounds() const = 0;

  /// Min/max of the field sampled on a dense grid (resolution per axis);
  /// convenience for choosing isolevels.
  std::pair<double, double> value_range(int resolution = 200) const;
};

}  // namespace isomap
