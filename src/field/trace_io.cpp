#include "field/trace_io.hpp"

#include <algorithm>
#include <cmath>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace isomap {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

GridField read_ascii_grid(std::istream& in) {
  int ncols = -1, nrows = -1;
  double x0 = 0.0, y0 = 0.0, cell = 1.0;
  double nodata = -9999.0;
  bool has_nodata = false;

  // Header: keyword/value pairs until the first purely numeric token run.
  std::string key;
  for (int i = 0; i < 6; ++i) {
    const auto pos = in.tellg();
    if (!(in >> key)) throw std::runtime_error("trace: truncated header");
    const std::string k = lower(key);
    double value = 0.0;
    if (k == "ncols" || k == "nrows" || k == "xllcorner" ||
        k == "yllcorner" || k == "cellsize" || k == "nodata_value") {
      if (!(in >> value))
        throw std::runtime_error("trace: bad header value for " + key);
      if (k == "ncols") ncols = static_cast<int>(value);
      else if (k == "nrows") nrows = static_cast<int>(value);
      else if (k == "xllcorner") x0 = value;
      else if (k == "yllcorner") y0 = value;
      else if (k == "cellsize") cell = value;
      else {
        nodata = value;
        has_nodata = true;
      }
    } else {
      // First data token: rewind and stop header parsing.
      in.clear();
      in.seekg(pos);
      break;
    }
  }
  if (ncols < 2 || nrows < 2)
    throw std::runtime_error("trace: needs ncols/nrows >= 2");
  if (cell <= 0.0) throw std::runtime_error("trace: cellsize must be > 0");

  std::vector<double> rows_first;
  rows_first.reserve(static_cast<std::size_t>(ncols) * nrows);
  double value = 0.0;
  for (long long i = 0; i < static_cast<long long>(ncols) * nrows; ++i) {
    if (!(in >> value))
      throw std::runtime_error("trace: truncated data section");
    rows_first.push_back(value);
  }

  // Fill NODATA with the mean of valid cells.
  if (has_nodata) {
    double sum = 0.0;
    long long valid = 0;
    for (double v : rows_first) {
      if (v != nodata) {
        sum += v;
        ++valid;
      }
    }
    const double fill = valid ? sum / static_cast<double>(valid) : 0.0;
    for (double& v : rows_first)
      if (v == nodata) v = fill;
  }

  // File rows run north->south; GridField rows run south->north.
  std::vector<double> samples(rows_first.size());
  for (int r = 0; r < nrows; ++r) {
    for (int c = 0; c < ncols; ++c) {
      samples[static_cast<std::size_t>(nrows - 1 - r) * ncols + c] =
          rows_first[static_cast<std::size_t>(r) * ncols + c];
    }
  }

  const FieldBounds bounds{x0, y0, x0 + cell * (ncols - 1),
                           y0 + cell * (nrows - 1)};
  return GridField(bounds, ncols, nrows, std::move(samples));
}

GridField load_ascii_grid(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return read_ascii_grid(in);
}

void write_ascii_grid(const GridField& grid, std::ostream& out) {
  const FieldBounds b = grid.bounds();
  const double cell = b.width() / (grid.nx() - 1);
  const double cell_y = b.height() / (grid.ny() - 1);
  if (std::abs(cell - cell_y) > 1e-9 * std::max(cell, cell_y))
    throw std::invalid_argument(
        "trace: ESRI ASCII grids require square cells");
  out.precision(17);  // Round-trip exact doubles (max_digits10).
  out << "ncols " << grid.nx() << "\n"
      << "nrows " << grid.ny() << "\n"
      << "xllcorner " << b.x0 << "\n"
      << "yllcorner " << b.y0 << "\n"
      << "cellsize " << cell << "\n";
  out.precision(12);
  for (int iy = grid.ny() - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < grid.nx(); ++ix)
      out << grid.at(ix, iy) << (ix + 1 < grid.nx() ? ' ' : '\n');
  }
}

bool save_ascii_grid(const GridField& grid, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_ascii_grid(grid, out);
  return static_cast<bool>(out);
}

}  // namespace isomap
