#pragma once

#include <iosfwd>
#include <string>

#include "field/grid_field.hpp"

namespace isomap {

/// Trace file I/O: GridField <-> ESRI ASCII grid (.asc), the standard
/// interchange format for gridded bathymetry/elevation surveys. This is
/// how a real deployment feeds its sonar data into the simulator in
/// place of the synthetic presets — the paper's evaluation is exactly
/// such a trace-driven run over the Huanghua survey.
///
/// Format (row-major, first data row = northernmost):
///   ncols        <nx>
///   nrows        <ny>
///   xllcorner    <x0>
///   yllcorner    <y0>
///   cellsize     <cell>
///   NODATA_value <nodata>     (optional)
///   v v v ...                 (ny rows of nx values)
///
/// Cells equal to NODATA are filled with the mean of the valid samples
/// on load (the sink-interpolation convention used elsewhere).

/// Parse a trace from a stream. Throws std::runtime_error on malformed
/// input.
GridField read_ascii_grid(std::istream& in);

/// Load from a file path. Throws std::runtime_error when unreadable.
GridField load_ascii_grid(const std::string& path);

/// Serialize a grid field to the format above (no NODATA cells).
void write_ascii_grid(const GridField& grid, std::ostream& out);

/// Save to a file path; returns false on I/O failure.
bool save_ascii_grid(const GridField& grid, const std::string& path);

}  // namespace isomap
