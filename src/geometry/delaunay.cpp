#include "geometry/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace isomap {

bool in_circumcircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  // Sign of the 3x3 determinant of the lifted points; positive means d is
  // inside the circumcircle of CCW (a, b, c).
  const double ax = a.x - d.x, ay = a.y - d.y;
  const double bx = b.x - d.x, by = b.y - d.y;
  const double cx = c.x - d.x, cy = c.y - d.y;
  const double det =
      (ax * ax + ay * ay) * (bx * cy - cx * by) -
      (bx * bx + by * by) * (ax * cy - cx * ay) +
      (cx * cx + cy * cy) * (ax * by - bx * ay);
  return det > 0.0;
}

namespace {

struct Tri {
  int a, b, c;   // Vertex indices (may reference the super-triangle).
  bool alive = true;
};

using Edge = std::pair<int, int>;

Edge make_edge(int u, int v) { return u < v ? Edge{u, v} : Edge{v, u}; }

}  // namespace

DelaunayTriangulation::DelaunayTriangulation(const std::vector<Vec2>& points)
    : points_(points) {
  const int n = static_cast<int>(points_.size());
  if (n < 3) return;

  // Super-triangle enclosing all points with a wide margin.
  double min_x = points_[0].x, max_x = points_[0].x;
  double min_y = points_[0].y, max_y = points_[0].y;
  for (const Vec2 p : points_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double span = std::max({max_x - min_x, max_y - min_y, 1.0});
  const Vec2 mid{(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  std::vector<Vec2> pts = points_;
  const int s0 = n, s1 = n + 1, s2 = n + 2;
  // The super-triangle must lie outside the circumcircle of every real
  // triangle — including thin hull slivers with huge circumradii — or
  // genuine hull triangles get suppressed and removal leaves notches.
  const double far = 1e5 * span;
  pts.push_back(mid + Vec2{-2.0 * far, -far});
  pts.push_back(mid + Vec2{2.0 * far, -far});
  pts.push_back(mid + Vec2{0.0, 2.0 * far});

  std::vector<Tri> tris;
  tris.push_back({s0, s1, s2});

  auto ccw = [&](Tri& t) {
    if (orient(pts[t.a], pts[t.b], pts[t.c]) < 0) std::swap(t.b, t.c);
  };
  ccw(tris[0]);

  for (int i = 0; i < n; ++i) {
    const Vec2 p = pts[i];
    // Find all triangles whose circumcircle contains p.
    std::map<Edge, int> edge_count;
    std::vector<Edge> boundary;
    std::vector<std::size_t> bad;
    for (std::size_t t = 0; t < tris.size(); ++t) {
      if (!tris[t].alive) continue;
      if (in_circumcircle(pts[tris[t].a], pts[tris[t].b], pts[tris[t].c], p))
        bad.push_back(t);
    }
    // The cavity must contain the triangle geometrically holding p, or the
    // retriangulation leaves a hole; numerically-borderline circumcircle
    // tests (p on an edge / near-cocircular) can miss it, so add it
    // explicitly.
    for (std::size_t t = 0; t < tris.size(); ++t) {
      if (!tris[t].alive) continue;
      const Vec2 a = pts[tris[t].a], b = pts[tris[t].b], c = pts[tris[t].c];
      constexpr double kEps = -1e-9;
      if (orient(a, b, p) >= kEps && orient(b, c, p) >= kEps &&
          orient(c, a, p) >= kEps) {
        if (std::find(bad.begin(), bad.end(), t) == bad.end())
          bad.push_back(t);
        break;
      }
    }
    for (std::size_t t : bad) {
      tris[t].alive = false;
      for (const Edge& e : {make_edge(tris[t].a, tris[t].b),
                            make_edge(tris[t].b, tris[t].c),
                            make_edge(tris[t].c, tris[t].a)})
        ++edge_count[e];
    }
    for (const auto& [e, cnt] : edge_count)
      if (cnt == 1) boundary.push_back(e);
    // Re-triangulate the cavity.
    for (const Edge& e : boundary) {
      Tri t{e.first, e.second, i};
      ccw(t);
      tris.push_back(t);
    }
  }

  for (const auto& t : tris) {
    if (!t.alive) continue;
    if (t.a >= n || t.b >= n || t.c >= n) continue;  // Touches super-tri.
    triangles_.push_back(Triangle{{t.a, t.b, t.c}});
  }
}

bool DelaunayTriangulation::adjacent(int i, int j) const {
  for (const auto& t : triangles_)
    if (t.has_vertex(i) && t.has_vertex(j)) return true;
  return false;
}

std::vector<int> DelaunayTriangulation::neighbours(int i) const {
  std::vector<int> out;
  for (const auto& t : triangles_) {
    if (!t.has_vertex(i)) continue;
    for (int v : t.v)
      if (v != i) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int DelaunayTriangulation::locate(Vec2 q) const {
  for (std::size_t t = 0; t < triangles_.size(); ++t) {
    const auto& tri = triangles_[t];
    const Vec2 a = points_[tri.v[0]];
    const Vec2 b = points_[tri.v[1]];
    const Vec2 c = points_[tri.v[2]];
    constexpr double kEps = -1e-9;
    if (orient(a, b, q) >= kEps && orient(b, c, q) >= kEps &&
        orient(c, a, q) >= kEps)
      return static_cast<int>(t);
  }
  return -1;
}

std::array<double, 3> DelaunayTriangulation::barycentric(int t, Vec2 q) const {
  const auto& tri = triangles_.at(static_cast<std::size_t>(t));
  const Vec2 a = points_[tri.v[0]];
  const Vec2 b = points_[tri.v[1]];
  const Vec2 c = points_[tri.v[2]];
  const double area = orient(a, b, c);
  if (std::abs(area) < 1e-15) return {1.0, 0.0, 0.0};
  return {orient(b, c, q) / area, orient(c, a, q) / area,
          orient(a, b, q) / area};
}

}  // namespace isomap
