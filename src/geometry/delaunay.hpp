#pragma once

#include <array>
#include <vector>

#include "geometry/vec2.hpp"

namespace isomap {

/// A triangle of a Delaunay triangulation, referring to input point indices.
struct Triangle {
  std::array<int, 3> v;  ///< Vertex indices, CCW.

  bool has_vertex(int idx) const {
    return v[0] == idx || v[1] == idx || v[2] == idx;
  }
};

/// Delaunay triangulation via the Bowyer-Watson incremental algorithm.
/// Complements VoronoiDiagram (its planar dual): we use it to
/// cross-validate adjacency in tests and for barycentric interpolation in
/// the TinyDB sink-interpolation baseline.
class DelaunayTriangulation {
 public:
  explicit DelaunayTriangulation(const std::vector<Vec2>& points);

  const std::vector<Vec2>& points() const { return points_; }
  const std::vector<Triangle>& triangles() const { return triangles_; }

  /// True if points i and j share a triangulation edge.
  bool adjacent(int i, int j) const;

  /// All points sharing an edge with i.
  std::vector<int> neighbours(int i) const;

  /// Triangle containing q (index into triangles()), or -1 if q is outside
  /// the convex hull.
  int locate(Vec2 q) const;

  /// Barycentric coordinates of q within triangle t.
  std::array<double, 3> barycentric(int t, Vec2 q) const;

 private:
  std::vector<Vec2> points_;
  std::vector<Triangle> triangles_;
};

/// True if point d lies strictly inside the circumcircle of CCW triangle
/// (a, b, c).
bool in_circumcircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

}  // namespace isomap
