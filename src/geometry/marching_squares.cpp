#include "geometry/marching_squares.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

namespace isomap {
namespace {

/// Interpolate the crossing point on an edge between sample points p/q
/// with values vp/vq straddling the isolevel.
Vec2 lerp_cross(double isolevel, Vec2 p, double vp, Vec2 q, double vq) {
  const double denom = vq - vp;
  const double t = std::abs(denom) < 1e-300 ? 0.5 : (isolevel - vp) / denom;
  return p + (q - p) * std::clamp(t, 0.0, 1.0);
}

}  // namespace

std::vector<Polyline> marching_squares(const SampleGrid& grid,
                                       double isolevel) {
  if (grid.nx < 2 || grid.ny < 2 || !grid.value)
    throw std::invalid_argument("marching_squares: grid needs >= 2x2 samples");

  std::vector<Segment> segments;

  // Two-row value cache: grid.value is an indirect call (std::function),
  // and the cell loop reads every interior sample four times — once per
  // adjacent cell. Caching the current and next sample rows evaluates each
  // sample exactly once and turns the inner loop's corner reads into
  // unit-stride array loads. The cached value is the same double the
  // repeated evaluation produced (sampling is deterministic), so every
  // mask, crossing and emitted segment is bit-identical to the reference.
  //
  // Per-row threshold bytes: ge_lo/ge_hi[ix] = (row value >= isolevel),
  // computed in their own branch-free passes the compiler vectorizes
  // (packed double compares), so the cell loop assembles each mask from
  // four byte loads instead of four double compares. The comparison per
  // corner is the very one the reference performs — same operands, same
  // predicate — so every mask is identical.
  std::vector<double> row_lo(static_cast<std::size_t>(grid.nx));
  std::vector<double> row_hi(static_cast<std::size_t>(grid.nx));
  std::vector<unsigned char> ge_lo(static_cast<std::size_t>(grid.nx));
  std::vector<unsigned char> ge_hi(static_cast<std::size_t>(grid.nx));
  const auto nxs = static_cast<std::size_t>(grid.nx);
  for (int ix = 0; ix < grid.nx; ++ix)
    row_lo[static_cast<std::size_t>(ix)] = grid.value(ix, 0);
  for (std::size_t i = 0; i < nxs; ++i)
    ge_lo[i] = static_cast<unsigned char>(row_lo[i] >= isolevel);

  for (int iy = 0; iy + 1 < grid.ny; ++iy) {
    if (iy > 0) {
      row_lo.swap(row_hi);  // Last row's top is this row's bottom.
      ge_lo.swap(ge_hi);
    }
    for (int ix = 0; ix < grid.nx; ++ix)
      row_hi[static_cast<std::size_t>(ix)] = grid.value(ix, iy + 1);
    for (std::size_t i = 0; i < nxs; ++i)
      ge_hi[i] = static_cast<unsigned char>(row_hi[i] >= isolevel);

    for (int ix = 0; ix + 1 < grid.nx; ++ix) {
      // Corner order: 0=(ix,iy) 1=(ix+1,iy) 2=(ix+1,iy+1) 3=(ix,iy+1).
      const auto u = static_cast<std::size_t>(ix);
      const double v0 = row_lo[u];
      const double v1 = row_lo[u + 1];
      const double v2 = row_hi[u + 1];
      const double v3 = row_hi[u];

      const int mask = static_cast<int>(ge_lo[u]) |
                       (static_cast<int>(ge_lo[u + 1]) << 1) |
                       (static_cast<int>(ge_hi[u + 1]) << 2) |
                       (static_cast<int>(ge_hi[u]) << 3);
      if (mask == 0 || mask == 15) continue;

      const Vec2 p0 = grid.world(ix, iy);
      const Vec2 p1 = grid.world(ix + 1, iy);
      const Vec2 p2 = grid.world(ix + 1, iy + 1);
      const Vec2 p3 = grid.world(ix, iy + 1);

      // Edge crossing points (bottom, right, top, left), each interpolated
      // only when the case below actually consumes it — non-saddle cases
      // need two of the four divisions, not all four.
      auto bottom = [&] { return lerp_cross(isolevel, p0, v0, p1, v1); };
      auto right = [&] { return lerp_cross(isolevel, p1, v1, p2, v2); };
      auto top = [&] { return lerp_cross(isolevel, p3, v3, p2, v2); };
      auto left = [&] { return lerp_cross(isolevel, p0, v0, p3, v3); };

      auto emit = [&](Vec2 a, Vec2 b) {
        if (a.distance_to(b) > 1e-12) segments.push_back({a, b});
      };

      switch (mask) {
        case 1: case 14: emit(left(), bottom()); break;
        case 2: case 13: emit(bottom(), right()); break;
        case 3: case 12: emit(left(), right()); break;
        case 4: case 11: emit(right(), top()); break;
        case 6: case 9:  emit(bottom(), top()); break;
        case 7: case 8:  emit(left(), top()); break;
        case 5: case 10: {
          // Saddle: disambiguate by the cell-centre average.
          const double centre = 0.25 * (v0 + v1 + v2 + v3);
          const bool centre_high = centre >= isolevel;
          if ((mask == 5) == centre_high) {
            emit(left(), top());
            emit(bottom(), right());
          } else {
            emit(left(), bottom());
            emit(right(), top());
          }
          break;
        }
        default: break;
      }
    }
  }

  // Stitch segments into chains via endpoint matching. Marching squares
  // produces exact shared endpoints on cell edges, so a tight tolerance
  // suffices.
  const double tol = 1e-7 * std::max(grid.dx, grid.dy);
  return stitch_segments(segments, tol);
}

std::vector<Polyline> marching_squares_reference(const SampleGrid& grid,
                                                 double isolevel) {
  if (grid.nx < 2 || grid.ny < 2 || !grid.value)
    throw std::invalid_argument("marching_squares: grid needs >= 2x2 samples");

  std::vector<Segment> segments;

  for (int iy = 0; iy + 1 < grid.ny; ++iy) {
    for (int ix = 0; ix + 1 < grid.nx; ++ix) {
      // Corner order: 0=(ix,iy) 1=(ix+1,iy) 2=(ix+1,iy+1) 3=(ix,iy+1).
      const Vec2 p0 = grid.world(ix, iy);
      const Vec2 p1 = grid.world(ix + 1, iy);
      const Vec2 p2 = grid.world(ix + 1, iy + 1);
      const Vec2 p3 = grid.world(ix, iy + 1);
      const double v0 = grid.value(ix, iy);
      const double v1 = grid.value(ix + 1, iy);
      const double v2 = grid.value(ix + 1, iy + 1);
      const double v3 = grid.value(ix, iy + 1);

      int mask = 0;
      if (v0 >= isolevel) mask |= 1;
      if (v1 >= isolevel) mask |= 2;
      if (v2 >= isolevel) mask |= 4;
      if (v3 >= isolevel) mask |= 8;
      if (mask == 0 || mask == 15) continue;

      // Edge crossing points (bottom, right, top, left), all computed.
      const Vec2 bottom = lerp_cross(isolevel, p0, v0, p1, v1);
      const Vec2 right = lerp_cross(isolevel, p1, v1, p2, v2);
      const Vec2 top = lerp_cross(isolevel, p3, v3, p2, v2);
      const Vec2 left = lerp_cross(isolevel, p0, v0, p3, v3);

      auto emit = [&](Vec2 a, Vec2 b) {
        if (a.distance_to(b) > 1e-12) segments.push_back({a, b});
      };

      switch (mask) {
        case 1: case 14: emit(left, bottom); break;
        case 2: case 13: emit(bottom, right); break;
        case 3: case 12: emit(left, right); break;
        case 4: case 11: emit(right, top); break;
        case 6: case 9:  emit(bottom, top); break;
        case 7: case 8:  emit(left, top); break;
        case 5: case 10: {
          // Saddle: disambiguate by the cell-centre average.
          const double centre = 0.25 * (v0 + v1 + v2 + v3);
          const bool centre_high = centre >= isolevel;
          if ((mask == 5) == centre_high) {
            emit(left, top);
            emit(bottom, right);
          } else {
            emit(left, bottom);
            emit(right, top);
          }
          break;
        }
        default: break;
      }
    }
  }

  const double tol = 1e-7 * std::max(grid.dx, grid.dy);
  return stitch_segments(segments, tol);
}

}  // namespace isomap
