#pragma once

#include <functional>
#include <vector>

#include "geometry/polyline.hpp"
#include "geometry/vec2.hpp"

namespace isomap {

/// A rectangular scalar sample grid for contour extraction: `value(ix, iy)`
/// gives the sample at world position (origin + (ix*dx, iy*dy)).
struct SampleGrid {
  int nx = 0;
  int ny = 0;
  Vec2 origin{};
  double dx = 1.0;
  double dy = 1.0;
  std::function<double(int, int)> value;

  Vec2 world(int ix, int iy) const {
    return origin + Vec2{ix * dx, iy * dy};
  }
};

/// Extract the isolines of `grid` at `isolevel` with the marching-squares
/// algorithm (linear interpolation on cell edges, ambiguous saddle cases
/// resolved by the cell-centre average). Segments are stitched into
/// polylines; chains that close on themselves are marked closed.
///
/// This provides the *ground-truth* isolines against which the paper's
/// Fig. 12 Hausdorff metric is computed, and the dense-field reference map
/// for the Fig. 10/11 accuracy metric.
std::vector<Polyline> marching_squares(const SampleGrid& grid,
                                       double isolevel);

/// Straight-line reference implementation: evaluates every corner sample
/// per cell (no row cache) and every edge crossing per cell (no laziness).
/// Kept as the oracle for the identity checks in bench/micro_hotpaths and
/// the geometry tests — marching_squares must reproduce it bit for bit.
std::vector<Polyline> marching_squares_reference(const SampleGrid& grid,
                                                 double isolevel);

}  // namespace isomap
