#include "geometry/point_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace isomap {

PointIndex::PointIndex(std::vector<Vec2> points)
    : points_(std::move(points)) {
  if (points_.empty()) {
    grid_ = TileGrid(TileLayout{}, {});
    return;
  }
  double max_x = points_[0].x, max_y = points_[0].y;
  min_x_ = points_[0].x;
  min_y_ = points_[0].y;
  for (const Vec2 p : points_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double span_x = std::max(max_x - min_x_, 1e-9);
  const double span_y = std::max(max_y - min_y_, 1e-9);
  // Square cells sized from the larger extent so degenerate (collinear /
  // very thin) point sets still yield at most ~sqrt(n) cells per axis —
  // sizing from the box *area* would explode the column count for thin
  // boxes and make the ring search quadratic.
  const double per_axis =
      std::ceil(std::sqrt(std::max(1.0, static_cast<double>(points_.size()))));
  cell_size_ = std::max(span_x, span_y) / per_axis;
  if (cell_size_ <= 0.0) cell_size_ = 1.0;
  cols_ = std::max(1, static_cast<int>(std::ceil(span_x / cell_size_)));
  rows_ = std::max(1, static_cast<int>(std::ceil(span_y / cell_size_)));
  grid_ = TileGrid(
      TileLayout{min_x_, min_y_, cell_size_, cell_size_, cols_, rows_},
      points_);
}

int PointIndex::nearest(Vec2 q) const {
  if (points_.empty()) return -1;
  const int qc = cell_col(q.x);
  const int qr = cell_row(q.y);
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(cols_, rows_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate exists, stop when the closest possible point in
    // this ring cannot beat it. A point q inside its own cell is at least
    // (ring - 1) * cell_size_ away from any cell in ring `ring`.
    if (best >= 0) {
      const double reach = (ring - 1) * cell_size_;
      if (reach > 0.0 && reach * reach > best_d2) break;
    }
    const int c0 = qc - ring, c1 = qc + ring;
    const int r0 = qr - ring, r1 = qr + ring;
    for (int r = r0; r <= r1; ++r) {
      if (r < 0 || r >= rows_) continue;
      for (int c = c0; c <= c1; ++c) {
        if (c < 0 || c >= cols_) continue;
        // Ring perimeter only.
        if (ring > 0 && r != r0 && r != r1 && c != c0 && c != c1) continue;
        for (int idx : cell(c, r)) {
          const double d2 = (points_[static_cast<std::size_t>(idx)] - q).norm2();
          if (d2 < best_d2 || (d2 == best_d2 && idx < best)) {
            best_d2 = d2;
            best = idx;
          }
        }
      }
    }
  }
  return best;
}

std::vector<int> PointIndex::k_nearest(Vec2 q, int k) const {
  std::vector<int> out;
  if (points_.empty() || k <= 0) return out;
  // Small k over modest sets: collect candidates by expanding radius.
  const auto want = static_cast<std::size_t>(
      std::min<std::size_t>(points_.size(), static_cast<std::size_t>(k)));
  double radius = cell_size_;
  std::vector<int> candidates;
  for (int iter = 0; iter < 64; ++iter) {
    candidates = within(q, radius);
    if (candidates.size() >= want) break;
    radius *= 2.0;
  }
  if (candidates.size() < want) {
    candidates.resize(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i)
      candidates[i] = static_cast<int>(i);
  }
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const double da = (points_[static_cast<std::size_t>(a)] - q).norm2();
    const double db = (points_[static_cast<std::size_t>(b)] - q).norm2();
    return da < db || (da == db && a < b);
  });
  candidates.resize(want);
  return candidates;
}

void PointIndex::append_annulus(Vec2 q, double r_lo, double r_hi,
                                std::vector<int>& out) const {
  if (points_.empty() || r_hi < 0.0 || r_hi <= r_lo) return;
  const int c0 = cell_col(q.x - r_hi);
  const int c1 = cell_col(q.x + r_hi);
  const int r0 = cell_row(q.y - r_hi);
  const int r1 = cell_row(q.y + r_hi);
  const double lo2 = r_lo < 0.0 ? -1.0 : r_lo * r_lo;
  const double hi2 = r_hi * r_hi;
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      if (r_lo > 0.0) {
        // Skip cells whose farthest corner is still inside the r_lo disc:
        // every point in them was already reported by an earlier ring.
        const double cx0 = min_x_ + c * cell_size_;
        const double cy0 = min_y_ + r * cell_size_;
        const double fx = std::max(std::abs(q.x - cx0),
                                   std::abs(q.x - (cx0 + cell_size_)));
        const double fy = std::max(std::abs(q.y - cy0),
                                   std::abs(q.y - (cy0 + cell_size_)));
        if (fx * fx + fy * fy <= lo2) continue;
      }
      for (int idx : cell(c, r)) {
        const double d2 = (points_[static_cast<std::size_t>(idx)] - q).norm2();
        if (d2 > lo2 && d2 <= hi2) out.push_back(idx);
      }
    }
  }
}

std::vector<int> PointIndex::within(Vec2 q, double radius) const {
  std::vector<int> out;
  if (points_.empty() || radius < 0.0) return out;
  const int c0 = cell_col(q.x - radius);
  const int c1 = cell_col(q.x + radius);
  const int r0 = cell_row(q.y - radius);
  const int r1 = cell_row(q.y + radius);
  const double r2 = radius * radius;
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      for (int idx : cell(c, r)) {
        if ((points_[static_cast<std::size_t>(idx)] - q).norm2() <= r2)
          out.push_back(idx);
      }
    }
  }
  return out;
}

}  // namespace isomap
