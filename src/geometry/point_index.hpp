#pragma once

#include <span>
#include <vector>

#include "geometry/tile_grid.hpp"
#include "geometry/vec2.hpp"

namespace isomap {

/// Uniform-grid nearest-neighbour index over a fixed point set. Sink-side
/// map classification performs one nearest-site query per raster pixel
/// (LevelRegion::contains), which is O(sites) naively; the index answers
/// it in ~O(1) for the roughly uniform isoposition sets the sink sees.
///
/// Cell contents live in one flat CSR array (TileGrid) rather than a
/// vector-of-vectors: building is two counting passes and queries walk
/// contiguous spans, so ring searches touch only adjacent tiles of one
/// cache-friendly array. Per-cell point order is identical to the old
/// per-cell push_back layout, keeping every query result bit-compatible.
///
/// The structure is immutable after construction. Queries anywhere in the
/// plane are valid (points outside the indexed bounding box fall back to
/// ring expansion from the nearest cell).
class PointIndex {
 public:
  /// Builds an index over `points` (may be empty; nearest() then returns
  /// -1). Duplicate points are allowed.
  explicit PointIndex(std::vector<Vec2> points);

  std::size_t size() const { return points_.size(); }
  const std::vector<Vec2>& points() const { return points_; }

  /// Index of the nearest point to q (lowest index wins ties); -1 when
  /// the set is empty.
  int nearest(Vec2 q) const;

  /// Indices of the nearest `k` points, closest first (fewer if the set
  /// is smaller).
  std::vector<int> k_nearest(Vec2 q, int k) const;

  /// All indices within `radius` of q (unsorted).
  std::vector<int> within(Vec2 q, double radius) const;

  /// Append (unsorted) all indices with r_lo < |p - q| <= r_hi to `out`;
  /// a negative r_lo includes points at distance exactly 0. Grid cells
  /// entirely inside the r_lo disc are skipped, so expanding-ring callers
  /// (VoronoiDiagram's candidate enumeration) never rescan the interior.
  void append_annulus(Vec2 q, double r_lo, double r_hi,
                      std::vector<int>& out) const;

  /// Edge length of the uniform grid cells (the natural first-ring radius
  /// for expanding searches).
  double cell_size() const { return cell_size_; }

 private:
  int cell_col(double x) const { return grid_.layout().col_of(x); }
  int cell_row(double y) const { return grid_.layout().row_of(y); }
  std::span<const int> cell(int col, int row) const {
    return grid_.tile(col, row);
  }

  std::vector<Vec2> points_;
  double min_x_ = 0.0, min_y_ = 0.0;
  double cell_size_ = 1.0;
  int cols_ = 1, rows_ = 1;
  TileGrid grid_;
};

}  // namespace isomap
