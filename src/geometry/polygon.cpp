#include "geometry/polygon.hpp"

#include <algorithm>
#include <cmath>

namespace isomap {

Polygon::Polygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {}

Polygon Polygon::rect(double x0, double y0, double x1, double y1) {
  return Polygon({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
}

double Polygon::signed_area() const {
  if (vertices_.size() < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % vertices_.size()];
    acc += a.cross(b);
  }
  return acc * 0.5;
}

double Polygon::area() const { return std::abs(signed_area()); }

Vec2 Polygon::centroid() const {
  if (vertices_.empty()) return {};
  const double a = signed_area();
  if (std::abs(a) < 1e-15) {
    // Degenerate: average the vertices.
    Vec2 sum{};
    for (Vec2 v : vertices_) sum += v;
    return sum / static_cast<double>(vertices_.size());
  }
  Vec2 c{};
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 p = vertices_[i];
    const Vec2 q = vertices_[(i + 1) % vertices_.size()];
    const double w = p.cross(q);
    c += (p + q) * w;
  }
  return c / (6.0 * a);
}

double Polygon::perimeter() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) acc += edge(i).length();
  return acc;
}

bool Polygon::contains(Vec2 q, double eps) const {
  if (vertices_.size() < 3) return false;
  // Boundary check first.
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (point_segment_distance(q, edge(i)) <= eps) return true;
  }
  // Ray crossing test.
  bool inside = false;
  for (std::size_t i = 0, j = vertices_.size() - 1; i < vertices_.size();
       j = i++) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[j];
    if ((a.y > q.y) != (b.y > q.y)) {
      const double x_cross = a.x + (q.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (q.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

Polygon Polygon::clip(const HalfPlane& hp) const {
  if (vertices_.empty()) return {};
  std::vector<Vec2> out;
  out.reserve(vertices_.size() + 2);
  constexpr double kEps = 1e-12;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 cur = vertices_[i];
    const Vec2 nxt = vertices_[(i + 1) % vertices_.size()];
    const double dc = hp.signed_excess(cur);
    const double dn = hp.signed_excess(nxt);
    const bool cur_in = dc <= kEps;
    const bool nxt_in = dn <= kEps;
    if (cur_in) out.push_back(cur);
    if (cur_in != nxt_in) {
      const double denom = dc - dn;
      if (std::abs(denom) > kEps) {
        const double t = dc / denom;
        out.push_back(cur + (nxt - cur) * t);
      }
    }
  }
  Polygon result(std::move(out));
  result.dedupe();
  if (result.vertices_.size() < 3) return {};
  return result;
}

Polygon Polygon::clip_to_rect(double x0, double y0, double x1,
                              double y1) const {
  Polygon p = clip(HalfPlane{{-1.0, 0.0}, -x0});
  p = p.clip(HalfPlane{{1.0, 0.0}, x1});
  p = p.clip(HalfPlane{{0.0, -1.0}, -y0});
  return p.clip(HalfPlane{{0.0, 1.0}, y1});
}

void Polygon::make_ccw() {
  if (signed_area() < 0.0) std::reverse(vertices_.begin(), vertices_.end());
}

void Polygon::dedupe(double eps) {
  if (vertices_.empty()) return;
  std::vector<Vec2> out;
  out.reserve(vertices_.size());
  for (Vec2 v : vertices_) {
    if (out.empty() || out.back().distance_to(v) > eps) out.push_back(v);
  }
  while (out.size() > 1 && out.front().distance_to(out.back()) <= eps)
    out.pop_back();
  vertices_ = std::move(out);
}

Polygon convex_hull(std::vector<Vec2> points) {
  if (points.size() < 3) return Polygon(std::move(points));
  std::sort(points.begin(), points.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() < 3) return Polygon(std::move(points));

  std::vector<Vec2> hull(2 * points.size());
  std::size_t k = 0;
  // Lower hull.
  for (const Vec2 p : points) {
    while (k >= 2 && orient(hull[k - 2], hull[k - 1], p) <= 0) --k;
    hull[k++] = p;
  }
  // Upper hull.
  const std::size_t lower = k + 1;
  for (auto it = points.rbegin() + 1; it != points.rend(); ++it) {
    while (k >= lower && orient(hull[k - 2], hull[k - 1], *it) <= 0) --k;
    hull[k++] = *it;
  }
  hull.resize(k - 1);  // Last point equals the first.
  return Polygon(std::move(hull));
}

}  // namespace isomap
