#pragma once

#include <vector>

#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

namespace isomap {

/// Simple polygon stored as a CCW vertex loop (edge i runs from vertex i to
/// vertex (i+1) % size). Convex inputs stay convex under the clip
/// operations; the general operations (area/contains) accept any simple
/// polygon.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices);

  /// Axis-aligned rectangle [x0,x1] x [y0,y1] as a CCW polygon.
  static Polygon rect(double x0, double y0, double x1, double y1);

  const std::vector<Vec2>& vertices() const { return vertices_; }
  std::size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.size() < 3; }
  Vec2 vertex(std::size_t i) const { return vertices_[i]; }
  Segment edge(std::size_t i) const {
    return {vertices_[i], vertices_[(i + 1) % vertices_.size()]};
  }

  /// Signed area; positive for CCW orientation.
  double signed_area() const;
  double area() const;
  Vec2 centroid() const;
  double perimeter() const;

  /// Point-in-polygon by winding/crossing test; boundary points count as
  /// inside (within eps).
  bool contains(Vec2 q, double eps = 1e-9) const;

  /// Sutherland-Hodgman clip against a closed half-plane. Result is the
  /// intersection; may be empty. Correct for convex polygons (the only
  /// callers: Voronoi cells and box clipping).
  Polygon clip(const HalfPlane& hp) const;

  /// Clip against an axis-aligned box.
  Polygon clip_to_rect(double x0, double y0, double x1, double y1) const;

  /// Ensure CCW orientation (reverses in place if CW).
  void make_ccw();

  /// Drop consecutive duplicate vertices (within eps).
  void dedupe(double eps = 1e-9);

 private:
  std::vector<Vec2> vertices_;
};

/// Convex hull (Andrew monotone chain) of a point set, CCW, no duplicate
/// endpoints. Collinear interior points are removed.
Polygon convex_hull(std::vector<Vec2> points);

}  // namespace isomap
