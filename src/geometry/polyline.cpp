#include "geometry/polyline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>

namespace isomap {

double Polyline::length() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < num_segments(); ++i) acc += segment(i).length();
  return acc;
}

std::size_t Polyline::num_segments() const {
  if (points_.size() < 2) return 0;
  return closed_ ? points_.size() : points_.size() - 1;
}

Segment Polyline::segment(std::size_t i) const {
  return {points_[i], points_[(i + 1) % points_.size()]};
}

double Polyline::distance_to(Vec2 q) const {
  if (points_.empty()) return std::numeric_limits<double>::infinity();
  if (points_.size() == 1) return q.distance_to(points_[0]);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < num_segments(); ++i)
    best = std::min(best, point_segment_distance(q, segment(i)));
  return best;
}

std::vector<Vec2> Polyline::resample(double spacing) const {
  if (spacing <= 0.0) throw std::invalid_argument("resample: spacing <= 0");
  std::vector<Vec2> out;
  if (points_.empty()) return out;
  out.push_back(points_[0]);
  double carried = 0.0;
  for (std::size_t i = 0; i < num_segments(); ++i) {
    const Segment s = segment(i);
    const double len = s.length();
    if (len == 0.0) continue;
    double pos = spacing - carried;
    while (pos < len) {
      out.push_back(s.at(pos / len));
      pos += spacing;
    }
    carried = len - (pos - spacing);
  }
  if (!closed_ && points_.size() > 1 &&
      out.back().distance_to(points_.back()) > 1e-12)
    out.push_back(points_.back());
  return out;
}

void Polyline::reverse() { std::reverse(points_.begin(), points_.end()); }

namespace {

struct PointKey {
  long long qx;
  long long qy;
  bool operator<(const PointKey& o) const {
    return qx < o.qx || (qx == o.qx && qy < o.qy);
  }
  bool operator==(const PointKey& o) const { return qx == o.qx && qy == o.qy; }
};

PointKey key_of(Vec2 p, double quantum) {
  return {std::llround(p.x / quantum), std::llround(p.y / quantum)};
}

}  // namespace

std::vector<Polyline> stitch_segments(const std::vector<Segment>& segments,
                                      double tol) {
  if (tol <= 0.0) throw std::invalid_argument("stitch_segments: tol <= 0");
  struct Raw {
    Vec2 a, b;
    bool used = false;
  };
  std::vector<Raw> raw;
  raw.reserve(segments.size());
  for (const auto& s : segments)
    if (s.a.distance_to(s.b) > tol) raw.push_back({s.a, s.b, false});

  std::multimap<PointKey, std::size_t> by_endpoint;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    by_endpoint.emplace(key_of(raw[i].a, tol), i);
    by_endpoint.emplace(key_of(raw[i].b, tol), i);
  }

  auto take_next = [&](Vec2 tail) -> std::optional<Vec2> {
    const PointKey k = key_of(tail, tol);
    // Check the 3x3 block of quantized keys around the tail so endpoints
    // that straddle a quantization boundary still match.
    for (long long dx = -1; dx <= 1; ++dx) {
      for (long long dy = -1; dy <= 1; ++dy) {
        auto [lo, hi] = by_endpoint.equal_range(PointKey{k.qx + dx, k.qy + dy});
        for (auto it = lo; it != hi; ++it) {
          Raw& s = raw[it->second];
          if (s.used) continue;
          if (s.a.distance_to(tail) <= tol) {
            s.used = true;
            return s.b;
          }
          if (s.b.distance_to(tail) <= tol) {
            s.used = true;
            return s.a;
          }
        }
      }
    }
    return std::nullopt;
  };

  std::vector<Polyline> chains;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i].used) continue;
    raw[i].used = true;
    std::vector<Vec2> pts{raw[i].a, raw[i].b};
    while (auto nxt = take_next(pts.back())) pts.push_back(*nxt);
    while (auto nxt = take_next(pts.front())) pts.insert(pts.begin(), *nxt);
    bool closed = false;
    if (pts.size() > 2 && pts.front().distance_to(pts.back()) <= tol) {
      pts.pop_back();
      closed = true;
    }
    chains.emplace_back(std::move(pts), closed);
  }
  return chains;
}

double directed_hausdorff(const std::vector<Polyline>& a,
                          const std::vector<Polyline>& b, double spacing) {
  bool a_has_points = false;
  for (const auto& pl : a) a_has_points |= !pl.empty();
  if (!a_has_points) return 0.0;
  bool b_has_points = false;
  for (const auto& pl : b) b_has_points |= !pl.empty();
  if (!b_has_points) return std::numeric_limits<double>::infinity();

  double worst = 0.0;
  for (const auto& pl : a) {
    for (const Vec2 q : pl.resample(spacing)) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const auto& other : b) nearest = std::min(nearest, other.distance_to(q));
      worst = std::max(worst, nearest);
    }
  }
  return worst;
}

double hausdorff_distance(const std::vector<Polyline>& a,
                          const std::vector<Polyline>& b, double spacing) {
  return std::max(directed_hausdorff(a, b, spacing),
                  directed_hausdorff(b, a, spacing));
}

}  // namespace isomap
