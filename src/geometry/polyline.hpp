#pragma once

#include <vector>

#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

namespace isomap {

/// Open or closed chain of points. Isolines (both ground truth extracted by
/// marching squares and the estimated boundaries produced by the Iso-Map
/// sink) are represented as polylines.
class Polyline {
 public:
  Polyline() = default;
  Polyline(std::vector<Vec2> points, bool closed)
      : points_(std::move(points)), closed_(closed) {}

  const std::vector<Vec2>& points() const { return points_; }
  bool closed() const { return closed_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  void push_back(Vec2 p) { points_.push_back(p); }
  void set_closed(bool closed) { closed_ = closed; }

  double length() const;
  std::size_t num_segments() const;
  Segment segment(std::size_t i) const;

  /// Distance from a point to the polyline (min over segments; for a
  /// single-point polyline, distance to that point).
  double distance_to(Vec2 q) const;

  /// Resample into points spaced ~`spacing` apart along the chain
  /// (includes both endpoints for open chains). Requires spacing > 0.
  std::vector<Vec2> resample(double spacing) const;

  void reverse();

 private:
  std::vector<Vec2> points_;
  bool closed_ = false;
};

/// Stitch an unordered soup of segments into maximal chains by matching
/// endpoints within `tol`. Chains whose two ends meet are marked closed.
/// Zero-length segments are dropped. Shared by marching squares and the
/// Iso-Map boundary extraction.
std::vector<Polyline> stitch_segments(const std::vector<Segment>& segments,
                                      double tol);

/// Directed Hausdorff distance: max over sample points of A of the distance
/// to the nearest polyline in B. `spacing` controls the sampling density on
/// A. Returns +inf if A is non-empty and B is empty, 0 if A is empty.
double directed_hausdorff(const std::vector<Polyline>& a,
                          const std::vector<Polyline>& b, double spacing);

/// Symmetric Hausdorff distance between two polyline sets.
double hausdorff_distance(const std::vector<Polyline>& a,
                          const std::vector<Polyline>& b, double spacing);

}  // namespace isomap
