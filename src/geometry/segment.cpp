#include "geometry/segment.hpp"

#include <algorithm>
#include <cmath>

namespace isomap {

HalfPlane HalfPlane::closer_to(Vec2 a, Vec2 b) {
  // |q-a|^2 <= |q-b|^2  <=>  2(b-a).q <= |b|^2 - |a|^2.
  const Vec2 n = (b - a) * 2.0;
  return HalfPlane{n, b.norm2() - a.norm2()};
}

HalfPlane HalfPlane::against_direction(Vec2 anchor, Vec2 dir) {
  return HalfPlane{dir, dir.dot(anchor)};
}

Vec2 closest_point_on_segment(Vec2 q, const Segment& s) {
  const Vec2 ab = s.b - s.a;
  const double len2 = ab.norm2();
  if (len2 == 0.0) return s.a;
  const double t = std::clamp((q - s.a).dot(ab) / len2, 0.0, 1.0);
  return s.a + ab * t;
}

double point_segment_distance(Vec2 q, const Segment& s) {
  return q.distance_to(closest_point_on_segment(q, s));
}

std::optional<Vec2> segment_intersection(const Segment& s1,
                                         const Segment& s2) {
  const Vec2 r = s1.b - s1.a;
  const Vec2 s = s2.b - s2.a;
  const double denom = r.cross(s);
  const Vec2 qp = s2.a - s1.a;
  constexpr double kEps = 1e-12;
  if (std::abs(denom) < kEps) {
    // Parallel. Check collinear overlap.
    if (std::abs(qp.cross(r)) > kEps) return std::nullopt;
    const double rlen2 = r.norm2();
    if (rlen2 < kEps) {
      // s1 degenerate to a point.
      if (point_segment_distance(s1.a, s2) < kEps) return s1.a;
      return std::nullopt;
    }
    double t0 = qp.dot(r) / rlen2;
    double t1 = t0 + s.dot(r) / rlen2;
    if (t0 > t1) std::swap(t0, t1);
    const double lo = std::max(0.0, t0);
    const double hi = std::min(1.0, t1);
    if (lo > hi + kEps) return std::nullopt;
    return s1.at(std::clamp(lo, 0.0, 1.0));
  }
  const double t = qp.cross(s) / denom;
  const double u = qp.cross(r) / denom;
  if (t < -kEps || t > 1.0 + kEps || u < -kEps || u > 1.0 + kEps)
    return std::nullopt;
  return s1.at(std::clamp(t, 0.0, 1.0));
}

std::optional<Vec2> line_segment_intersection(const Line& line,
                                              const Segment& seg) {
  const double sa = line.side(seg.a);
  const double sb = line.side(seg.b);
  constexpr double kEps = 1e-12;
  if ((sa > kEps && sb > kEps) || (sa < -kEps && sb < -kEps))
    return std::nullopt;
  const double denom = sa - sb;
  if (std::abs(denom) < kEps) {
    // Segment lies (almost) on the line; return its start.
    if (std::abs(sa) < kEps) return seg.a;
    return std::nullopt;
  }
  const double t = sa / denom;
  return seg.at(std::clamp(t, 0.0, 1.0));
}

}  // namespace isomap
