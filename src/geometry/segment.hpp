#pragma once

#include <optional>

#include "geometry/vec2.hpp"

namespace isomap {

/// Closed line segment [a, b].
struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return a.distance_to(b); }
  Vec2 midpoint() const { return (a + b) * 0.5; }
  Vec2 direction() const { return (b - a).normalized(); }

  /// Point at parameter t in [0,1] along the segment.
  Vec2 at(double t) const { return a + (b - a) * t; }
};

/// Infinite line through `point` with direction `dir` (need not be unit).
struct Line {
  Vec2 point;
  Vec2 dir;

  /// Signed distance-like value: >0 if q lies to the left of the line.
  double side(Vec2 q) const { return dir.cross(q - point); }
};

/// Closed half-plane { q : normal . q <= offset }. Used for Voronoi bisector
/// clipping and for the type-1 boundary cut in Iso-Map cells.
struct HalfPlane {
  Vec2 normal;
  double offset = 0.0;

  bool contains(Vec2 q, double eps = 1e-12) const {
    return normal.dot(q) <= offset + eps;
  }
  double signed_excess(Vec2 q) const { return normal.dot(q) - offset; }

  /// Half-plane of points at least as close to `a` as to `b` (perpendicular
  /// bisector clip used by Voronoi cell construction).
  static HalfPlane closer_to(Vec2 a, Vec2 b);
  /// Half-plane of points q with (q - anchor) . dir <= 0.
  static HalfPlane against_direction(Vec2 anchor, Vec2 dir);
};

/// Distance from point q to segment s.
double point_segment_distance(Vec2 q, const Segment& s);

/// Closest point on segment s to q.
Vec2 closest_point_on_segment(Vec2 q, const Segment& s);

/// Proper / touching intersection of two closed segments, if any. For
/// collinear overlapping segments returns one shared point.
std::optional<Vec2> segment_intersection(const Segment& s1, const Segment& s2);

/// Intersection of an infinite line with a closed segment, if any.
std::optional<Vec2> line_segment_intersection(const Line& line,
                                              const Segment& seg);

}  // namespace isomap
