#include "geometry/tile_grid.hpp"

#include <stdexcept>

namespace isomap {

TileGrid::TileGrid(const TileLayout& layout, std::span<const Vec2> points,
                   std::span<const unsigned char> accept)
    : layout_(layout) {
  if (layout.cols < 1 || layout.rows < 1 || layout.tw <= 0.0 ||
      layout.th <= 0.0)
    throw std::invalid_argument("TileGrid: degenerate layout");
  if (!accept.empty() && accept.size() != points.size())
    throw std::invalid_argument("TileGrid: accept mask size mismatch");

  const std::size_t tiles = static_cast<std::size_t>(layout.tile_count());
  offsets_.assign(tiles + 1, 0);

  // Pass 1: per-tile counts (offset by one so the prefix sum lands the
  // running cursor directly in offsets_[t]).
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!accept.empty() && accept[i] == 0) continue;
    const int t = layout_.tile_index(layout_.col_of(points[i].x),
                                     layout_.row_of(points[i].y));
    ++offsets_[static_cast<std::size_t>(t) + 1];
  }
  for (std::size_t t = 1; t <= tiles; ++t) offsets_[t] += offsets_[t - 1];

  // Pass 2: stable fill in ascending point order — the counting sort
  // preserves per-tile insertion order, matching per-tile push_back.
  items_.resize(static_cast<std::size_t>(offsets_[tiles]));
  std::vector<int> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!accept.empty() && accept[i] == 0) continue;
    const int t = layout_.tile_index(layout_.col_of(points[i].x),
                                     layout_.row_of(points[i].y));
    items_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(t)]++)] =
        static_cast<int>(i);
  }
}

}  // namespace isomap
