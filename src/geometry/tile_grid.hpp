#pragma once

#include <span>
#include <vector>

#include "geometry/vec2.hpp"

namespace isomap {

/// Geometry of a uniform tile grid over a rectangle: origin, per-axis
/// tile extents and tile counts. Kept separate from the bucket storage so
/// every spatial structure in the codebase (CommGraph's radio-range hash,
/// PointIndex's ~sqrt(n) query grid) can describe its own tiling exactly
/// — including the historical clamp-into-range coordinate mapping — and
/// share one CSR bucket implementation.
struct TileLayout {
  double x0 = 0.0, y0 = 0.0;  ///< Grid origin (lower-left corner).
  double tw = 1.0, th = 1.0;  ///< Tile width / height.
  int cols = 1, rows = 1;

  /// Column of x, clamped into [0, cols). Matches the int-cast semantics
  /// the pre-tiled structures used, so bucketing is bit-compatible.
  int col_of(double x) const {
    const int c = static_cast<int>((x - x0) / tw);
    return c < 0 ? 0 : (c >= cols ? cols - 1 : c);
  }
  int row_of(double y) const {
    const int r = static_cast<int>((y - y0) / th);
    return r < 0 ? 0 : (r >= rows ? rows - 1 : r);
  }
  int tile_count() const { return cols * rows; }
  int tile_index(int col, int row) const { return row * cols + col; }
};

/// 1-D tile partition of a flat index range [0, n): the analogue of this
/// file's 2-D TileLayout for the protocol's flat node-id-ordered tables.
/// Block b covers [b*block, min(n, (b+1)*block)) — a pure function of
/// (n, block), never of the thread count — so workers that each fill one
/// block's slots, merged serially in block order, reproduce the serial
/// item order bit for bit at any ISOMAP_THREADS. The last block may be
/// short; an empty range has zero blocks.
struct TileBlocks {
  std::size_t n = 0;      ///< Items partitioned.
  std::size_t block = 1;  ///< Items per block (>= 1).

  std::size_t count() const { return block == 0 ? 0 : (n + block - 1) / block; }
  std::size_t begin(std::size_t b) const { return b * block; }
  std::size_t end(std::size_t b) const {
    const std::size_t e = (b + 1) * block;
    return e < n ? e : n;
  }
};

/// CSR-bucketed uniform grid over a fixed point set: one flat item array
/// plus per-tile offsets, instead of a vector-of-vectors with one heap
/// allocation per occupied tile. Within a tile, items keep ascending
/// insertion (= point index) order — exactly the order per-tile push_back
/// produced — so queries that scan tiles observe identical sequences and
/// downstream consumers stay bitwise-identical.
///
/// Construction is two counting passes over the points (O(n + tiles)),
/// touching only the tile each point lands in; neighbourhood queries
/// (CommGraph edge discovery, PointIndex ring searches) then touch only
/// adjacent tiles.
class TileGrid {
 public:
  TileGrid() = default;

  /// Buckets point i at points[i] for every i with accept[i] != 0;
  /// `accept` may be empty to bucket every point.
  TileGrid(const TileLayout& layout, std::span<const Vec2> points,
           std::span<const unsigned char> accept = {});

  const TileLayout& layout() const { return layout_; }

  /// Items of the tile at (col, row), in ascending point-index order.
  std::span<const int> tile(int col, int row) const {
    const auto t = static_cast<std::size_t>(layout_.tile_index(col, row));
    return {items_.data() + offsets_[t], items_.data() + offsets_[t + 1]};
  }

  /// Visit every item in the 3x3 tile block around (col, row) — the
  /// neighbourhood that covers one tile-length of reach in every
  /// direction. Tiles are visited row-major, items in stored order.
  template <typename Fn>
  void for_each_in_block(int col, int row, Fn&& fn) const {
    const int r0 = row > 0 ? row - 1 : 0;
    const int r1 = row + 1 < layout_.rows ? row + 1 : layout_.rows - 1;
    const int c0 = col > 0 ? col - 1 : 0;
    const int c1 = col + 1 < layout_.cols ? col + 1 : layout_.cols - 1;
    for (int r = r0; r <= r1; ++r)
      for (int c = c0; c <= c1; ++c)
        for (int idx : tile(c, r)) fn(idx);
  }

  std::size_t item_count() const { return items_.size(); }

 private:
  TileLayout layout_;
  std::vector<int> offsets_;  ///< tile_count() + 1 entries.
  std::vector<int> items_;
};

}  // namespace isomap
