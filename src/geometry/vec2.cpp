#include "geometry/vec2.hpp"

#include <algorithm>
#include <ostream>

namespace isomap {

double angle_between(Vec2 a, Vec2 b) {
  const double na = a.norm(), nb = b.norm();
  if (na == 0.0 || nb == 0.0) return M_PI;
  const double c = std::clamp(a.dot(b) / (na * nb), -1.0, 1.0);
  return std::acos(c);
}

double orient(Vec2 a, Vec2 b, Vec2 c) { return (b - a).cross(c - a); }

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

}  // namespace isomap
