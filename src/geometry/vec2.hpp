#pragma once

#include <cmath>
#include <iosfwd>

namespace isomap {

/// 2-D vector / point with value semantics. The whole geometry layer works
/// in the paper's normalized field coordinates (unit node density).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product (signed parallelogram area).
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm2()); }
  double distance_to(Vec2 o) const { return (*this - o).norm(); }

  /// Unit vector in the same direction; returns (0,0) for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Counter-clockwise perpendicular.
  constexpr Vec2 perp() const { return {-y, x}; }
  /// Angle in radians, in (-pi, pi].
  double angle() const { return std::atan2(y, x); }
  /// Rotate counter-clockwise by `radians`.
  Vec2 rotated(double radians) const {
    const double c = std::cos(radians), s = std::sin(radians);
    return {x * c - y * s, x * s + y * c};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Smallest absolute angle between two directions, in [0, pi].
/// Returns pi for degenerate (zero) inputs so callers treat them as
/// maximally separated rather than spuriously close.
double angle_between(Vec2 a, Vec2 b);

/// Orientation predicate: >0 if c is left of directed line a->b, <0 right,
/// 0 collinear (within floating-point evaluation).
double orient(Vec2 a, Vec2 b, Vec2 c);

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace isomap
