#include "geometry/voronoi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "geometry/segment.hpp"

namespace isomap {

std::vector<int> VoronoiCell::neighbours() const {
  std::vector<int> out;
  for (int t : edge_tags)
    if (t >= 0) out.push_back(t);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool VoronoiCell::contains(Vec2 q, double eps) const {
  return Polygon(vertices).contains(q, eps);
}

namespace {

struct TaggedLoop {
  std::vector<Vec2> vertices;
  std::vector<int> tags;  // tags[i] tags edge vertices[i] -> vertices[i+1].
};

/// Clip a convex tagged loop by a closed half-plane; the newly created edge
/// (lying on the clip line) gets `new_tag`.
TaggedLoop clip_tagged(const TaggedLoop& in, const HalfPlane& hp,
                       int new_tag) {
  TaggedLoop out;
  const std::size_t n = in.vertices.size();
  if (n < 3) return out;
  out.vertices.reserve(n + 2);
  out.tags.reserve(n + 2);
  constexpr double kEps = 1e-12;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 cur = in.vertices[i];
    const Vec2 nxt = in.vertices[(i + 1) % n];
    const int tag = in.tags[i];
    const double dc = hp.signed_excess(cur);
    const double dn = hp.signed_excess(nxt);
    const bool cur_in = dc <= kEps;
    const bool nxt_in = dn <= kEps;
    if (cur_in && nxt_in) {
      out.vertices.push_back(cur);
      out.tags.push_back(tag);
    } else if (cur_in && !nxt_in) {
      out.vertices.push_back(cur);
      out.tags.push_back(tag);
      const double t = dc / (dc - dn);
      out.vertices.push_back(cur + (nxt - cur) * t);
      out.tags.push_back(new_tag);
    } else if (!cur_in && nxt_in) {
      const double t = dc / (dc - dn);
      out.vertices.push_back(cur + (nxt - cur) * t);
      out.tags.push_back(tag);
    }
  }
  // Remove consecutive (near-)duplicate vertices, merging their edges; the
  // surviving vertex keeps the tag of the *second* edge when the first
  // degenerated to zero length.
  TaggedLoop clean;
  const std::size_t m = out.vertices.size();
  for (std::size_t i = 0; i < m; ++i) {
    const Vec2 v = out.vertices[i];
    if (!clean.vertices.empty() &&
        clean.vertices.back().distance_to(v) <= 1e-9) {
      clean.tags.back() = out.tags[i];
      continue;
    }
    clean.vertices.push_back(v);
    clean.tags.push_back(out.tags[i]);
  }
  while (clean.vertices.size() > 1 &&
         clean.vertices.front().distance_to(clean.vertices.back()) <= 1e-9) {
    clean.vertices.pop_back();
    clean.tags.pop_back();
  }
  if (clean.vertices.size() < 3) return {};
  return clean;
}

TaggedLoop box_loop(double x0, double y0, double x1, double y1) {
  TaggedLoop loop;
  loop.vertices = {{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}};
  loop.tags = {kBoundaryTag, kBoundaryTag, kBoundaryTag, kBoundaryTag};
  return loop;
}

double farthest_vertex2(const TaggedLoop& loop, Vec2 si) {
  double far2 = 0.0;
  for (Vec2 v : loop.vertices) far2 = std::max(far2, (v - si).norm2());
  return far2;
}

/// Feed candidate j (arriving nearest-first) into cell i's clip loop.
/// Returns true when the cell's enumeration is finished: a duplicate site
/// ceded the cell, the remaining bisectors were pruned, or the loop
/// degenerated. Shared verbatim by both construction modes so they stay
/// bitwise-identical.
bool feed_candidate(const std::vector<Vec2>& sites, std::size_t i, int j,
                    TaggedLoop& loop, bool& duplicate) {
  if (static_cast<std::size_t>(j) == i) return false;
  const Vec2 si = sites[i];
  const double dij = sites[static_cast<std::size_t>(j)].distance_to(si);
  if (dij <= 1e-12) {
    // Exact duplicate site: the later-indexed one cedes the cell.
    if (static_cast<std::size_t>(j) < i) {
      duplicate = true;
      return true;
    }
    return false;
  }
  // Prune once the remaining bisectors cannot reach the cell: if
  // |s_j - s_i| / 2 exceeds the farthest cell vertex from s_i, the
  // bisector of (i, j) — and every farther one — lies outside the cell.
  if (dij * dij * 0.25 > farthest_vertex2(loop, si)) return true;
  loop = clip_tagged(loop, HalfPlane::closer_to(si, sites[static_cast<std::size_t>(j)]), j);
  return loop.vertices.size() < 3;
}

}  // namespace

VoronoiDiagram::VoronoiDiagram(std::vector<Vec2> sites, double x0, double y0,
                               double x1, double y1, VoronoiConstruction mode)
    : sites_(std::move(sites)),
      index_(sites_),
      x0_(x0),
      y0_(y0),
      x1_(x1),
      y1_(y1) {
  if (x1_ <= x0_ || y1_ <= y0_)
    throw std::invalid_argument("VoronoiDiagram: empty bounding box");
  cells_.resize(sites_.size());
  if (mode == VoronoiConstruction::kBruteForce)
    build_brute_force();
  else
    build_indexed();
}

void VoronoiDiagram::build_cell(std::size_t i,
                                const std::vector<int>& candidates) {
  TaggedLoop loop = box_loop(x0_, y0_, x1_, y1_);
  bool duplicate = false;
  for (int j : candidates)
    if (feed_candidate(sites_, i, j, loop, duplicate)) break;
  VoronoiCell& cell = cells_[i];
  cell.site = static_cast<int>(i);
  if (!duplicate) {
    cell.vertices = std::move(loop.vertices);
    cell.edge_tags = std::move(loop.tags);
  }
}

void VoronoiDiagram::build_brute_force() {
  // Original construction: for each cell, sort the entire site array by
  // distance and feed it through. O(n^2 log n); kept as the equivalence
  // oracle and the micro_hotpaths baseline.
  const std::size_t n = sites_.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 si = sites_[i];
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double da = (sites_[static_cast<std::size_t>(a)] - si).norm2();
      const double db = (sites_[static_cast<std::size_t>(b)] - si).norm2();
      return da < db || (da == db && a < b);
    });
    build_cell(i, order);
  }
}

void VoronoiDiagram::build_indexed() {
  // Ring-expanding enumeration over the spatial index: candidates arrive
  // in annulus batches of doubling radius, each batch sorted nearest-
  // first, until the pruning cut-off fires. Per cell this touches only
  // the local neighbourhood instead of sorting all n sites.
  const std::size_t n = sites_.size();
  const double diag = std::hypot(x1_ - x0_, y1_ - y0_);
  std::vector<int> batch;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 si = sites_[i];
    TaggedLoop loop = box_loop(x0_, y0_, x1_, y1_);
    bool duplicate = false;
    bool done = false;
    double r_lo = -1.0;  // First batch includes distance-0 duplicates.
    double r = std::max(index_.cell_size(), 1e-9);
    while (!done) {
      batch.clear();
      index_.append_annulus(si, r_lo, r, batch);
      std::sort(batch.begin(), batch.end(), [&](int a, int b) {
        const double da = (sites_[static_cast<std::size_t>(a)] - si).norm2();
        const double db = (sites_[static_cast<std::size_t>(b)] - si).norm2();
        return da < db || (da == db && a < b);
      });
      for (int j : batch) {
        if (feed_candidate(sites_, i, j, loop, duplicate)) {
          done = true;
          break;
        }
      }
      if (done || r >= diag) break;
      // Unseen sites are all farther than r; if even they are pruned,
      // the cell is final without enumerating them.
      if (r * r * 0.25 > farthest_vertex2(loop, si)) break;
      r_lo = r;
      r *= 2.0;
    }
    VoronoiCell& cell = cells_[i];
    cell.site = static_cast<int>(i);
    if (!duplicate) {
      cell.vertices = std::move(loop.vertices);
      cell.edge_tags = std::move(loop.tags);
    }
  }
}

bool VoronoiDiagram::adjacent(int i, int j) const {
  if (i < 0 || j < 0 || static_cast<std::size_t>(i) >= cells_.size() ||
      static_cast<std::size_t>(j) >= cells_.size())
    return false;
  for (int t : cells_[i].edge_tags)
    if (t == j) return true;
  return false;
}

}  // namespace isomap
