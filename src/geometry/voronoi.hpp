#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point_index.hpp"
#include "geometry/polygon.hpp"
#include "geometry/vec2.hpp"

namespace isomap {

/// Edge tag of a Voronoi cell edge: the index of the neighbouring site that
/// generated the edge, or kBoundaryTag for an edge lying on the bounding box.
inline constexpr int kBoundaryTag = -1;

/// A Voronoi cell: CCW convex polygon plus, for each edge (vertex i ->
/// vertex i+1), the tag identifying which neighbouring site's bisector the
/// edge lies on. The tags give the sink cell adjacency for free, which the
/// Iso-Map regulation rules (Rules 1 & 2) need.
struct VoronoiCell {
  int site = -1;                 ///< Index of the generating site.
  std::vector<Vec2> vertices;    ///< CCW loop; empty if the cell degenerated.
  std::vector<int> edge_tags;    ///< edge_tags[i] tags edge i -> i+1.

  bool empty() const { return vertices.size() < 3; }
  Polygon polygon() const { return Polygon(vertices); }
  Segment edge(std::size_t i) const {
    return {vertices[i], vertices[(i + 1) % vertices.size()]};
  }
  std::size_t size() const { return vertices.size(); }
  /// Indices of neighbouring sites (each tag >= 0, deduplicated).
  std::vector<int> neighbours() const;
  bool contains(Vec2 q, double eps = 1e-9) const;
};

/// How per-cell candidate bisectors are enumerated during construction.
///  - kIndexed: expanding-ring enumeration over the spatial grid index —
///    candidates arrive nearest-first straight from the index, so each
///    cell touches O(its neighbourhood) sites and whole-diagram
///    construction is near-linear in the site count.
///  - kBruteForce: the original per-cell full sort of every site by
///    distance, O(n^2 log n) overall. Kept as the equivalence oracle for
///    tests and as the baseline the micro_hotpaths bench measures the
///    indexed path against.
/// Both modes process candidates in identical (distance, index) order and
/// apply identical arithmetic, so they produce bitwise-identical cells.
enum class VoronoiConstruction { kIndexed, kBruteForce };

/// Bounded Voronoi diagram of a site set, clipped to an axis-aligned box.
/// Built by incremental bisector clipping per cell: exact for the site
/// sets the Iso-Map sink sees, with a distance-pruning cut-off (a bisector
/// farther than twice the farthest current cell vertex cannot cut) that
/// ends each cell's enumeration after its local neighbourhood.
class VoronoiDiagram {
 public:
  /// Sites must be distinct; the box must contain all sites. Duplicate
  /// sites are tolerated (the duplicate gets an empty cell).
  VoronoiDiagram(std::vector<Vec2> sites, double x0, double y0, double x1,
                 double y1,
                 VoronoiConstruction mode = VoronoiConstruction::kIndexed);

  const std::vector<Vec2>& sites() const { return sites_; }
  const std::vector<VoronoiCell>& cells() const { return cells_; }
  const VoronoiCell& cell(std::size_t i) const { return cells_[i]; }
  std::size_t size() const { return sites_.size(); }

  /// Index of the site nearest to q (ties broken by lowest index);
  /// grid-index accelerated.
  int nearest_site(Vec2 q) const { return index_.nearest(q); }

  /// True if sites i and j share a Voronoi edge.
  bool adjacent(int i, int j) const;

 private:
  void build_cell(std::size_t i, const std::vector<int>& candidates);
  void build_indexed();
  void build_brute_force();

  std::vector<Vec2> sites_;
  std::vector<VoronoiCell> cells_;
  PointIndex index_;
  double x0_, y0_, x1_, y1_;
};

}  // namespace isomap
