#include "isomap/continuous.hpp"

#include <algorithm>
#include <cmath>

#include "isomap/filter.hpp"
#include "isomap/node_selection.hpp"
#include "isomap/regression.hpp"

namespace isomap {

ContinuousMapper::ContinuousMapper(ContinuousOptions options,
                                   const Deployment& deployment,
                                   const CommGraph& graph,
                                   const RoutingTree& tree)
    : options_(std::move(options)),
      deployment_(&deployment),
      graph_(&graph),
      tree_(&tree),
      isolevels_(options_.base.query.isolevels()) {}

void ContinuousMapper::set_topology(const Deployment& deployment,
                                    const CommGraph& graph,
                                    const RoutingTree& tree) {
  deployment_ = &deployment;
  graph_ = &graph;
  tree_ = &tree;
}

double ContinuousMapper::route_bytes(int from, double bytes,
                                     Ledger& ledger) const {
  const auto path = tree_->path_to_sink(from);
  double total = 0.0;
  for (std::size_t h = 0; h + 1 < path.size(); ++h) {
    ledger.transmit(path[h], path[h + 1], bytes);
    total += bytes;
  }
  return total;
}

RoundResult ContinuousMapper::round(const ScalarField& field_now,
                                    Ledger& ledger) {
  const int n = deployment_->size();
  const ContourQuery& query = options_.base.query;
  ++round_counter_;

  // --- Sense and beacon. ---
  std::vector<double> readings(static_cast<std::size_t>(n), 0.0);
  double beacon_bytes = 0.0;
  for (const auto& node : deployment_->nodes()) {
    if (!node.alive) continue;
    readings[static_cast<std::size_t>(node.id)] = field_now.value(node.pos);
    const auto& neighbours = graph_->neighbours(node.id);
    ledger.broadcast(node.id, neighbours, options_.beacon_bytes);
    beacon_bytes += options_.beacon_bytes;
  }

  // --- Selection (Def. 3.1) on the fresh readings. ---
  std::vector<double> selection_ops;
  const auto selected =
      select_isoline_nodes(*graph_, readings, query, &selection_ops);
  for (int v = 0; v < n; ++v)
    if (graph_->alive(v))
      ledger.compute(v, selection_ops[static_cast<std::size_t>(v)]);

  auto level_index_of = [&](double lambda) {
    for (std::size_t k = 0; k < isolevels_.size(); ++k)
      if (std::abs(isolevels_[k] - lambda) < 1e-9) return static_cast<int>(k);
    return -1;
  };

  RoundResult result{.map = ContourMap(deployment_->bounds(), {})};

  const double refresh_rad = options_.gradient_refresh_deg * M_PI / 180.0;
  std::map<Key, Vec2> now_selected;

  // --- Regression + delta generation for currently selected pairs. ---
  // One regression per distinct node per round (shared across levels).
  std::map<int, Vec2> gradient_cache;
  for (const auto& entry : selected) {
    if (!tree_->reachable(entry.node)) continue;
    const int level = level_index_of(entry.isolevel);
    if (level < 0) continue;

    auto grad_it = gradient_cache.find(entry.node);
    if (grad_it == gradient_cache.end()) {
      std::vector<FieldSample> samples;
      samples.push_back({deployment_->node(entry.node).reported_pos(),
                         readings[static_cast<std::size_t>(entry.node)]});
      for (int nb : graph_->neighbours(entry.node))
        samples.push_back({deployment_->node(nb).reported_pos(),
                           readings[static_cast<std::size_t>(nb)]});
      double ops = 0.0;
      const auto fit = fit_plane(samples, &ops);
      ledger.compute(entry.node, ops);
      if (!fit) continue;
      grad_it =
          gradient_cache.emplace(entry.node, fit->descent_direction()).first;
    }
    const Vec2 gradient = grad_it->second;
    const Key key{entry.node, level};
    now_selected[key] = gradient;

    const auto prev = node_memory_.find(key);
    const bool is_new = prev == node_memory_.end();
    const bool rotated =
        !is_new && angle_between(prev->second, gradient) > refresh_rad;
    // Soft-state keep-alive: refresh unchanged entries before the sink's
    // expiry horizon would drop them.
    bool keepalive = false;
    if (!is_new && !rotated && options_.stale_rounds > 0) {
      const auto sink_it = sink_table_.find(key);
      keepalive = sink_it == sink_table_.end() ||
                  round_counter_ - sink_it->second.last_update >=
                      std::max(1, options_.stale_rounds / 2);
    }
    if (is_new || rotated || keepalive) {
      result.delta_traffic_bytes +=
          route_bytes(entry.node, IsolineReport::kWireBytes, ledger);
      sink_table_[key] = {{entry.isolevel,
                           deployment_->node(entry.node).reported_pos(),
                           gradient, entry.node},
                          round_counter_};
      if (is_new) ++result.adds;
      else if (rotated) ++result.refreshes;
      else ++result.keepalives;
    } else {
      ++result.suppressed;
    }
  }

  // --- Withdrawals for pairs that dropped out of the selection. Only an
  // alive, connected node can actually send one; a dead node's sink entry
  // lingers until soft-state expiry removes it. ---
  for (auto it = node_memory_.begin(); it != node_memory_.end();) {
    if (now_selected.count(it->first)) {
      ++it;
      continue;
    }
    const int node = it->first.first;
    if (tree_->reachable(node) && graph_->alive(node)) {
      result.delta_traffic_bytes +=
          route_bytes(node, options_.withdraw_bytes, ledger);
      sink_table_.erase(it->first);
      ++result.withdrawals;
    }
    it = node_memory_.erase(it);
  }
  node_memory_ = std::move(now_selected);

  // Soft-state expiry: drop sink entries that out-lived the horizon (the
  // reporter died or was partitioned and could not withdraw).
  if (options_.stale_rounds > 0) {
    for (auto it = sink_table_.begin(); it != sink_table_.end();) {
      if (round_counter_ - it->second.last_update >= options_.stale_rounds) {
        node_memory_.erase(it->first);
        it = sink_table_.erase(it);
        ++result.expired;
      } else {
        ++it;
      }
    }
  }

  // --- Sink rebuild: spatial filter, then map construction. ---
  std::vector<IsolineReport> reports;
  reports.reserve(sink_table_.size());
  for (const auto& [key, entry] : sink_table_) reports.push_back(entry.report);
  if (query.enable_filtering) {
    const InNetworkFilter filter = InNetworkFilter::from_query(query);
    reports = filter.filter(std::move(reports));
  }
  result.active_reports = static_cast<int>(sink_table_.size());
  result.beacon_traffic_bytes = beacon_bytes;
  result.map = ContourMapBuilder(deployment_->bounds(),
                                 options_.base.regulation)
                   .build(reports, isolevels_);
  return result;
}

}  // namespace isomap
