#include "isomap/continuous.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "exec/exec.hpp"
#include "isomap/filter.hpp"
#include "isomap/fingerprint.hpp"
#include "isomap/node_selection.hpp"
#include "isomap/regression.hpp"
#include "obs/obs.hpp"

namespace isomap {
namespace {

/// Bit-pattern equality: the incremental engine's notion of "unchanged".
/// Stricter than `==` (distinguishes +0.0 from -0.0), so a cached result
/// is only ever reused when a recomputation would consume the exact same
/// bits.
inline std::uint64_t double_bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}
inline bool bits_equal(double a, double b) {
  return double_bits(a) == double_bits(b);
}

bool report_equal(const IsolineReport& a, const IsolineReport& b) {
  return bits_equal(a.isolevel, b.isolevel) &&
         bits_equal(a.position.x, b.position.x) &&
         bits_equal(a.position.y, b.position.y) &&
         bits_equal(a.gradient.x, b.gradient.x) &&
         bits_equal(a.gradient.y, b.gradient.y) && a.source == b.source;
}

bool report_sets_equal(const std::vector<IsolineReport>& a,
                       const std::vector<IsolineReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!report_equal(a[i], b[i])) return false;
  return true;
}

/// Mirror of node_selection.cpp's per-entry selection trace, replayed for
/// cached selections so a trace is engine-independent event for event.
void trace_selection(obs::TraceSink* sink, int node, double isolevel) {
  if (sink == nullptr) return;
  obs::TraceEvent event;
  event.kind = "note";
  event.phase = obs::kPhaseSelect;
  event.node = node;
  event.isolevel = isolevel;
  sink->emit(event);
}

}  // namespace

ContinuousMapper::ContinuousMapper(ContinuousOptions options,
                                   const Deployment& deployment,
                                   const CommGraph& graph,
                                   const RoutingTree& tree)
    : options_(std::move(options)),
      deployment_(&deployment),
      graph_(&graph),
      tree_(&tree),
      isolevels_(options_.base.query.isolevels()),
      num_levels_(static_cast<int>(isolevels_.size())) {
  ensure_tables();
}

void ContinuousMapper::set_topology(const Deployment& deployment,
                                    const CommGraph& graph,
                                    const RoutingTree& tree) {
  deployment_ = &deployment;
  graph_ = &graph;
  tree_ = &tree;
  ensure_tables();
  // Neighbour sets, liveness and (possibly) bounds changed: drop every
  // cache. The next round re-evaluates everything — exactly the oracle's
  // work — while repriming.
  caches_primed_ = false;
  for (auto& sc : selection_cache_) sc = SelectionCache{};
  for (auto& fc : fit_cache_) fc = FitCache{};
  for (auto& lc : level_cache_) lc = LevelCache{};
  selected_nodes_.clear();
  std::fill(sel_ops_.begin(), sel_ops_.end(), 0.0);
  candidates_total_ = 0;
}

void ContinuousMapper::ensure_tables() {
  const auto n = static_cast<std::size_t>(deployment_->size());
  const std::size_t slots = n * static_cast<std::size_t>(num_levels_);
  if (node_memory_.size() != slots) {
    node_memory_.assign(slots, MemorySlot{});
    now_memory_.assign(slots, MemorySlot{});
    sink_table_.assign(slots, SinkSlot{});
    memory_keys_.clear();
    now_keys_.clear();
    sink_keys_.clear();
    sink_count_ = 0;
  }
  if (selection_cache_.size() != n) {
    selection_cache_.assign(n, SelectionCache{});
    fit_cache_.assign(n, FitCache{});
    prev_readings_.assign(n, 0.0);
    selection_dirty_.assign(n, 1);
    grad_round_.assign(n, -1);
    grad_value_.assign(n, Vec2{});
    selected_nodes_.clear();
    sel_ops_.assign(n, 0.0);
    candidates_total_ = 0;
    rank_cache_.assign(n, {0, 0});
    caches_primed_ = false;
  }
  if (level_cache_.size() != static_cast<std::size_t>(num_levels_))
    level_cache_.assign(static_cast<std::size_t>(num_levels_), LevelCache{});
}

int ContinuousMapper::level_index_of(double lambda) const {
  const auto it =
      std::lower_bound(isolevels_.begin(), isolevels_.end(), lambda - 1e-9);
  if (it != isolevels_.end() && std::abs(*it - lambda) < 1e-9)
    return static_cast<int>(it - isolevels_.begin());
  return -1;
}

double ContinuousMapper::route_bytes(int from, double bytes,
                                     Ledger& ledger) const {
  const auto path = tree_->path_to_sink(from);
  double total = 0.0;
  for (std::size_t h = 0; h + 1 < path.size(); ++h) {
    ledger.transmit(path[h], path[h + 1], bytes);
    total += bytes;
  }
  return total;
}

int ContinuousMapper::mark_dirty(const std::vector<double>& readings) {
  const int n = deployment_->size();
  dirty_list_.clear();
  if (!caches_primed_) {
    std::fill(selection_dirty_.begin(), selection_dirty_.end(), char{1});
    for (auto& fc : fit_cache_) fc.valid = false;
    for (int v = 0; v < n; ++v) {
      rank_cache_[static_cast<std::size_t>(v)] =
          level_rank(isolevels_, readings[static_cast<std::size_t>(v)]);
      if (graph_->alive(v)) dirty_list_.push_back(v);
    }
    return static_cast<int>(dirty_list_.size());
  }
  const double eps = options_.base.query.epsilon();
  std::fill(selection_dirty_.begin(), selection_dirty_.end(), char{0});
  for (int v = 0; v < n; ++v) {
    const auto u = static_cast<std::size_t>(v);
    const double old_v = prev_readings_[u];
    const double new_v = readings[u];
    if (bits_equal(old_v, new_v)) continue;
    // Any bitwise change invalidates the regression fits the reading
    // feeds: its own and every 1-hop neighbour's.
    fit_cache_[u].valid = false;
    for (int nb : graph_->neighbour_span(v))
      fit_cache_[static_cast<std::size_t>(nb)].valid = false;
    // Selection is coarser. Definition 3.1 consumes a reading only
    // through (a) its <,== relations to each level — the crossing
    // predicate, for the node itself and for each neighbour — and
    // (b) the node's own ε-band membership per level. A change that
    // alters neither relation set cannot change any admitted entry,
    // candidate count or modelled op charge.
    const auto new_rank = level_rank(isolevels_, new_v);
    const bool rank_changed = rank_cache_[u] != new_rank;
    rank_cache_[u] = new_rank;
    bool own_matters = rank_changed;
    if (!own_matters) {
      // Candidacy can only flip near the band edges: compare it over the
      // union of both readings' conservative windows (one extra level on
      // each side, matching evaluate_node_selection's widening).
      const double lo_v = std::min(old_v, new_v);
      const double hi_v = std::max(old_v, new_v);
      auto lo = std::lower_bound(isolevels_.begin(), isolevels_.end(),
                                 lo_v - eps);
      auto hi = std::upper_bound(isolevels_.begin(), isolevels_.end(),
                                 hi_v + eps);
      if (lo != isolevels_.begin()) --lo;
      if (hi != isolevels_.end()) ++hi;
      for (auto it = lo; it != hi && !own_matters; ++it)
        own_matters = is_candidate(old_v, *it, eps) !=
                      is_candidate(new_v, *it, eps);
    }
    if (own_matters) selection_dirty_[u] = 1;
    if (rank_changed)
      for (int nb : graph_->neighbour_span(v))
        selection_dirty_[static_cast<std::size_t>(nb)] = 1;
  }
  for (int v = 0; v < n; ++v)
    if (selection_dirty_[static_cast<std::size_t>(v)] && graph_->alive(v))
      dirty_list_.push_back(v);
  return static_cast<int>(dirty_list_.size());
}

void ContinuousMapper::replay_fit_metrics(std::size_t num_samples) {
  obs::MetricsRegistry* const m = obs::metrics();
  if (m == nullptr) return;
  if (obs_slots_.fits == nullptr) {
    obs_slots_.fits = &m->counter_slot("regression.fits");
    obs_slots_.samples = &m->histogram_slot("regression.samples");
  }
  *obs_slots_.fits += 1.0;
  obs_slots_.samples->record(static_cast<double>(num_samples));
}

void ContinuousMapper::replay_degenerate_metric() {
  obs::MetricsRegistry* const m = obs::metrics();
  if (m == nullptr) return;
  if (obs_slots_.degenerate == nullptr)
    obs_slots_.degenerate = &m->counter_slot("regression.degenerate");
  *obs_slots_.degenerate += 1.0;
}

std::optional<Vec2> ContinuousMapper::gradient_for(
    int node, const std::vector<double>& readings, Ledger& ledger) {
  const auto u = static_cast<std::size_t>(node);
  if (grad_round_[u] == round_counter_) return grad_value_[u];

  if (options_.engine == ContinuousEngine::kOracle) {
    std::vector<FieldSample> samples;
    samples.push_back({deployment_->node(node).reported_pos(), readings[u]});
    for (int nb : graph_->neighbours(node))
      samples.push_back({deployment_->node(nb).reported_pos(),
                         readings[static_cast<std::size_t>(nb)]});
    double ops = 0.0;
    const auto fit = fit_plane(samples, &ops);
    ledger.compute(node, ops);
    if (!fit) return std::nullopt;
    grad_round_[u] = round_counter_;
    grad_value_[u] = fit->descent_direction();
    return grad_value_[u];
  }

  FitCache& fc = fit_cache_[u];
  if (!fc.primed) {
    // Sample positions (own first, then neighbours ascending — the
    // oracle's order) and the position block of the sufficient
    // statistics are fixed for this topology; build them once.
    fc.samples.clear();
    fc.samples.push_back(
        {deployment_->node(node).reported_pos(), readings[u]});
    for (int nb : graph_->neighbour_span(node))
      fc.samples.push_back({deployment_->node(nb).reported_pos(),
                            readings[static_cast<std::size_t>(nb)]});
    fc.pos_stats = plane_position_stats(fc.samples);
    fc.primed = true;
    fc.valid = false;
  }
  if (!fc.valid) {
    // A sample reading changed: refresh the values in place and redo
    // only the value block + solve. The cached position block is the
    // bit-exact result of plane_position_stats over these positions, so
    // the fit equals fit_plane over the refreshed samples bit for bit.
    fc.samples[0].value = readings[u];
    std::size_t i = 1;
    for (int nb : graph_->neighbour_span(node))
      fc.samples[i++].value = readings[static_cast<std::size_t>(nb)];
    replay_fit_metrics(fc.samples.size());
    fc.ops = 0.0;
    fc.has_fit = false;
    if (fc.samples.size() < 3) {
      replay_degenerate_metric();
    } else {
      const PlaneValueStats val = plane_value_stats(fc.samples, fc.pos_stats);
      if (const auto fit = solve_plane(fc.pos_stats, val)) {
        fc.has_fit = true;
        fc.gradient = fit->descent_direction();
        fc.ops = fit_plane_ops(fc.samples.size());
      } else {
        replay_degenerate_metric();
      }
    }
    fc.valid = true;
    ledger.compute(node, fc.ops);
  } else {
    // Untouched neighbourhood: replay the oracle's instrumentation and
    // ledger charge for the cached fit. (A degenerate node is replayed
    // per selected entry, matching the oracle's per-entry refit.)
    replay_fit_metrics(fc.samples.size());
    if (!fc.has_fit) replay_degenerate_metric();
    ledger.compute(node, fc.ops);
  }
  if (!fc.has_fit) return std::nullopt;
  grad_round_[u] = round_counter_;
  grad_value_[u] = fc.gradient;
  return grad_value_[u];
}

ContourMap ContinuousMapper::build_map_incremental(
    const std::vector<IsolineReport>& reports) {
  obs::PhaseTimer timer(obs::kPhaseMapGen);
  obs::count("map_gen.reports", static_cast<double>(reports.size()));
  obs::count("map_gen.levels", static_cast<double>(num_levels_));
  const FieldBounds bounds = deployment_->bounds();
  const auto k = static_cast<std::size_t>(num_levels_);

  // Group by level exactly as ContourMapBuilder::build does — but via
  // binary search per report instead of a level x report sweep. Levels
  // are at least one granularity step apart (>> the 1e-9 tolerance), so
  // each report matches at most one level, and per-level report order is
  // the incoming order either way. The grouping vectors are member
  // scratch so their capacity survives across rounds.
  if (level_scratch_.size() != k) level_scratch_.assign(k, {});
  std::vector<std::vector<IsolineReport>>& level_reports = level_scratch_;
  for (auto& group : level_reports) group.clear();
  for (const auto& r : reports) {
    const int li = level_index_of(r.isolevel);
    if (li >= 0) level_reports[static_cast<std::size_t>(li)].push_back(r);
  }

  // Fingerprint each level's post-filter report set; a level whose set
  // is unchanged (fingerprint pre-filter, exact comparison as the
  // authority) reuses its cached region — LevelRegion construction is a
  // pure function of (isolevel, reports, bounds, mode).
  std::vector<std::size_t> dirty;
  std::vector<std::uint64_t> fingerprints(k);
  for (std::size_t li = 0; li < k; ++li) {
    fingerprints[li] = fingerprint_reports(level_reports[li]);
    LevelCache& lc = level_cache_[li];
    if (lc.valid && lc.fingerprint == fingerprints[li] &&
        report_sets_equal(lc.reports, level_reports[li]))
      continue;
    dirty.push_back(li);
  }
  last_fingerprints_ = fingerprints;
  obs::count("continuous.levels_rebuilt", static_cast<double>(dirty.size()));

  // Rebuild dirty levels across the pool: each slot is written by
  // exactly one task, so the result matches the serial loop bit for bit
  // (the exec determinism contract ContourMapBuilder relies on too).
  // Pool dispatch costs more than a couple of small region builds, so a
  // near-clean round stays on this thread. Either path constructs each
  // level independently, so the result is identical.
  std::vector<std::shared_ptr<const LevelRegion>> built(dirty.size());
  const auto build_one = [&](std::size_t i) {
    const std::size_t li = dirty[i];
    built[i] = std::make_shared<const LevelRegion>(
        isolevels_[li], level_reports[li], bounds, options_.base.regulation);
  };
  if (dirty.size() <= 4) {
    for (std::size_t i = 0; i < dirty.size(); ++i) build_one(i);
  } else {
    exec::parallel_for(dirty.size(), build_one);
  }
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const std::size_t li = dirty[i];
    LevelCache& lc = level_cache_[li];
    lc.valid = true;
    lc.fingerprint = fingerprints[li];
    lc.reports = std::move(level_reports[li]);
    lc.region = std::move(built[i]);
  }

  // Assemble by reference: clean levels share the cached region with the
  // returned map (no deep copies of Voronoi cells or boundaries).
  std::vector<std::shared_ptr<const LevelRegion>> regions;
  regions.reserve(k);
  for (std::size_t li = 0; li < k; ++li)
    regions.push_back(level_cache_[li].region);
  return ContourMap(bounds, std::move(regions));
}

RoundResult ContinuousMapper::round(const ScalarField& field_now,
                                    Ledger& ledger) {
  std::vector<double> readings(static_cast<std::size_t>(deployment_->size()),
                               0.0);
  for (const auto& node : deployment_->nodes())
    if (node.alive)
      readings[static_cast<std::size_t>(node.id)] = field_now.value(node.pos);
  return round(readings, ledger);
}

RoundResult ContinuousMapper::round(const std::vector<double>& readings,
                                    Ledger& ledger) {
  const int n = deployment_->size();
  if (static_cast<int>(readings.size()) != n)
    throw std::invalid_argument(
        "ContinuousMapper::round: readings size must equal the deployment");
  const ContourQuery& query = options_.base.query;
  ensure_tables();
  ++round_counter_;
  obs_slots_ = RegressionObsSlots{};  // The registry can change per round.
  const bool incremental = options_.engine == ContinuousEngine::kIncremental;

  // --- Beacon (readings were sensed by the caller). ---
  double beacon_bytes = 0.0;
  {
    const obs::PhaseTimer timer(obs::kPhaseDisseminate);
    beacon_bytes = ledger.broadcast_all(*graph_, options_.beacon_bytes);
  }

  // --- Selection (Def. 3.1) on the fresh readings. ---
  obs::PhaseTimer select_timer(obs::kPhaseSelect);
  std::vector<SelectionEntry> selected;
  // Incremental emission already knows each entry's level index; carrying
  // it parallel to `selected` spares the route loop one binary search per
  // entry. The oracle resolves the index in the route loop as before —
  // both paths land on the identical index for the identical isolevel.
  std::vector<int> selected_levels;
  if (incremental) {
    const int dirty_nodes = mark_dirty(readings);
    obs::count("continuous.dirty_nodes", static_cast<double>(dirty_nodes));
    const double eps = query.epsilon();
    // Re-evaluate Definition 3.1 only at the dirty nodes — across the
    // exec pool over tile blocks of the (ascending) dirty list, since
    // evaluate_node_selection is pure. Each block records its nodes'
    // results plus the concatenated admitted level indices; the serial
    // merge below then updates the persistent selected-node list, the
    // per-node op charges and the candidate total in dirty-list order,
    // exactly as the serial loop did — clean nodes cost nothing here.
    struct DirtyEval {
      double ops = 0.0;
      int candidates = 0;
      std::uint32_t admitted_count = 0;
    };
    struct DirtyBlock {
      std::vector<DirtyEval> evals;  ///< One per dirty node of the block.
      std::vector<int> admitted;     ///< Concatenated admitted indices.
    };
    const TileBlocks dirty_blocks{dirty_list_.size(), 1024};
    std::vector<DirtyBlock> per_block(dirty_blocks.count());
    exec::parallel_for_blocks(
        dirty_blocks, [&](std::size_t b, std::size_t begin, std::size_t end) {
          DirtyBlock& out = per_block[b];
          out.evals.reserve(end - begin);
          thread_local std::vector<int> admitted;
          for (std::size_t i = begin; i < end; ++i) {
            const int v = dirty_list_[i];
            DirtyEval ev;
            if (graph_->alive(v)) {
              const NodeSelectionResult fresh = evaluate_node_selection(
                  *graph_, readings, v, isolevels_, eps, admitted);
              ev.ops = fresh.ops;
              ev.candidates = fresh.candidates;
              ev.admitted_count = static_cast<std::uint32_t>(admitted.size());
              out.admitted.insert(out.admitted.end(), admitted.begin(),
                                  admitted.end());
            }
            out.evals.push_back(ev);
          }
        });
    for (std::size_t b = 0; b < per_block.size(); ++b) {
      const DirtyBlock& blk = per_block[b];
      std::size_t off = 0;
      for (std::size_t j = 0; j < blk.evals.size(); ++j) {
        const int v = dirty_list_[dirty_blocks.begin(b) + j];
        const DirtyEval& ev = blk.evals[j];
        if (!graph_->alive(v)) continue;
        const auto u = static_cast<std::size_t>(v);
        SelectionCache& sc = selection_cache_[u];
        const bool was_selected = !sc.levels.empty();
        candidates_total_ -= sc.candidates;
        sc.levels.assign(blk.admitted.begin() + static_cast<std::ptrdiff_t>(off),
                         blk.admitted.begin() +
                             static_cast<std::ptrdiff_t>(off + ev.admitted_count));
        off += ev.admitted_count;
        sc.ops = ev.ops;
        sc.candidates = ev.candidates;
        sel_ops_[u] = ev.ops;
        candidates_total_ += sc.candidates;
        const bool now_selected = !sc.levels.empty();
        if (now_selected != was_selected) {
          const auto it = std::lower_bound(selected_nodes_.begin(),
                                           selected_nodes_.end(), v);
          if (now_selected)
            selected_nodes_.insert(it, v);
          else
            selected_nodes_.erase(it);
        }
      }
    }
    // Emit this round's selection — ascending (node, level), exactly the
    // order the full per-node sweep would produce.
    obs::TraceSink* const sink = obs::trace();
    for (const int v : selected_nodes_) {
      if (!graph_->alive(v)) continue;
      for (int idx : selection_cache_[static_cast<std::size_t>(v)].levels) {
        const double lambda = isolevels_[static_cast<std::size_t>(idx)];
        selected.push_back({v, lambda});
        selected_levels.push_back(idx);
        trace_selection(sink, v, lambda);
      }
    }
    if (candidates_total_ > 0)
      obs::count("select.candidates", static_cast<double>(candidates_total_));
    ledger.compute_all(*graph_, sel_ops_);
  } else {
    int alive = 0;
    for (int v = 0; v < n; ++v)
      if (graph_->alive(v)) ++alive;
    obs::count("continuous.dirty_nodes", static_cast<double>(alive));
    std::vector<double> selection_ops;
    selected = select_isoline_nodes(*graph_, readings, query, &selection_ops);
    ledger.compute_all(*graph_, selection_ops);
  }

  select_timer.stop();

  RoundResult result{.map = ContourMap(deployment_->bounds(),
                                       std::vector<LevelRegion>{})};
  obs::PhaseTimer route_timer(obs::kPhaseReportRoute);
  const double refresh_rad = options_.gradient_refresh_deg * M_PI / 180.0;
  // now_memory_ still holds the round-before-last entries (the tables are
  // swapped, never scanned clean): clear exactly the occupied slots.
  for (const std::size_t key : now_keys_) now_memory_[key] = MemorySlot{};
  now_keys_.clear();

  // --- Regression + delta generation for currently selected pairs. ---
  // One regression per distinct node per round (shared across levels).
  for (std::size_t si = 0; si < selected.size(); ++si) {
    const auto& entry = selected[si];
    if (!tree_->reachable(entry.node)) continue;
    const int level = incremental ? selected_levels[si]
                                  : level_index_of(entry.isolevel);
    if (level < 0) continue;
    const auto gradient_opt = gradient_for(entry.node, readings, ledger);
    if (!gradient_opt) continue;
    const Vec2 gradient = *gradient_opt;
    const std::size_t key = slot(entry.node, level);
    now_memory_[key] = {true, gradient};
    now_keys_.push_back(key);  // `selected` ascends (node, level) => sorted.

    const MemorySlot prev = node_memory_[key];
    const bool is_new = !prev.present;
    // A bitwise-unchanged nonzero gradient cannot have rotated past any
    // non-negative threshold (angle_between of a vector with itself is
    // clamped to ~1e-8 rad), so skip the acos. Zero vectors fall through:
    // angle_between defines their angle as pi.
    const bool unchanged_dir = !is_new &&
                               bits_equal(prev.gradient.x, gradient.x) &&
                               bits_equal(prev.gradient.y, gradient.y) &&
                               (gradient.x != 0.0 || gradient.y != 0.0);
    const bool rotated =
        !is_new && !unchanged_dir &&
        angle_between(prev.gradient, gradient) > refresh_rad;
    // Soft-state keep-alive: refresh unchanged entries before the sink's
    // expiry horizon would drop them.
    bool keepalive = false;
    if (!is_new && !rotated && options_.stale_rounds > 0) {
      const SinkSlot& sink_slot = sink_table_[key];
      keepalive = !sink_slot.present ||
                  round_counter_ - sink_slot.last_update >=
                      std::max(1, options_.stale_rounds / 2);
    }
    if (is_new || rotated || keepalive) {
      result.delta_traffic_bytes +=
          route_bytes(entry.node, IsolineReport::kWireBytes, ledger);
      if (!sink_table_[key].present) {
        ++sink_count_;
        sink_keys_.insert(
            std::lower_bound(sink_keys_.begin(), sink_keys_.end(), key), key);
      }
      sink_table_[key] = {true,
                          {entry.isolevel,
                           deployment_->node(entry.node).reported_pos(),
                           gradient, entry.node},
                          round_counter_};
      if (is_new) ++result.adds;
      else if (rotated) ++result.refreshes;
      else ++result.keepalives;
    } else {
      ++result.suppressed;
    }
  }

  // --- Withdrawals for pairs that dropped out of the selection. Only an
  // alive, connected node can actually send one; a dead node's sink entry
  // lingers until soft-state expiry removes it. ---
  for (const std::size_t key : memory_keys_) {
    if (!node_memory_[key].present || now_memory_[key].present) continue;
    const int node =
        static_cast<int>(key / static_cast<std::size_t>(num_levels_));
    if (tree_->reachable(node) && graph_->alive(node)) {
      result.delta_traffic_bytes +=
          route_bytes(node, options_.withdraw_bytes, ledger);
      if (sink_table_[key].present) {
        sink_table_[key] = SinkSlot{};
        sink_keys_.erase(
            std::lower_bound(sink_keys_.begin(), sink_keys_.end(), key));
        --sink_count_;
      }
      ++result.withdrawals;
    }
  }
  std::swap(node_memory_, now_memory_);
  std::swap(memory_keys_, now_keys_);

  // Soft-state expiry: drop sink entries that out-lived the horizon (the
  // reporter died or was partitioned and could not withdraw).
  if (options_.stale_rounds > 0) {
    std::size_t kept = 0;
    for (const std::size_t key : sink_keys_) {
      SinkSlot& sink_slot = sink_table_[key];
      if (round_counter_ - sink_slot.last_update >= options_.stale_rounds) {
        node_memory_[key] = MemorySlot{};
        sink_slot = SinkSlot{};
        --sink_count_;
        ++result.expired;
      } else {
        sink_keys_[kept++] = key;
      }
    }
    sink_keys_.resize(kept);
  }

  route_timer.stop();

  // --- Sink rebuild: spatial filter, then map construction. ---
  std::vector<IsolineReport> reports;
  reports.reserve(static_cast<std::size_t>(sink_count_));
  for (const std::size_t key : sink_keys_)
    reports.push_back(sink_table_[key].report);
  if (query.enable_filtering) {
    const obs::PhaseTimer filter_timer(obs::kPhaseFilter);
    const InNetworkFilter filter = InNetworkFilter::from_query(query);
    reports = filter.filter(std::move(reports));
  }
  result.active_reports = sink_count_;
  result.beacon_traffic_bytes = beacon_bytes;
  if (incremental) {
    result.map = build_map_incremental(reports);
    prev_readings_ = std::move(readings);
    caches_primed_ = true;
  } else {
    obs::count("continuous.levels_rebuilt", static_cast<double>(num_levels_));
    // Group-and-fingerprint exactly as build_map_incremental does, so
    // level_fingerprints() is engine-independent. Pure bookkeeping: no
    // obs emission, no effect on the map or the ledger.
    std::vector<std::vector<IsolineReport>> groups(
        static_cast<std::size_t>(num_levels_));
    for (const auto& r : reports) {
      const int li = level_index_of(r.isolevel);
      if (li >= 0) groups[static_cast<std::size_t>(li)].push_back(r);
    }
    last_fingerprints_.resize(groups.size());
    for (std::size_t li = 0; li < groups.size(); ++li)
      last_fingerprints_[li] = fingerprint_reports(groups[li]);
    result.map = ContourMapBuilder(deployment_->bounds(),
                                   options_.base.regulation)
                     .build(reports, isolevels_);
  }
  return result;
}

std::vector<IsolineReport> ContinuousMapper::post_filter_reports() const {
  std::vector<IsolineReport> reports;
  reports.reserve(static_cast<std::size_t>(sink_count_));
  for (const std::size_t key : sink_keys_)
    reports.push_back(sink_table_[key].report);
  const ContourQuery& query = options_.base.query;
  if (query.enable_filtering)
    reports = InNetworkFilter::from_query(query).filter(std::move(reports));
  return reports;
}

std::vector<ContinuousMapper::SinkDumpEntry> ContinuousMapper::sink_dump()
    const {
  std::vector<SinkDumpEntry> out;
  out.reserve(static_cast<std::size_t>(sink_count_));
  for (const std::size_t key : sink_keys_) {
    const SinkSlot& sink_slot = sink_table_[key];
    if (!sink_slot.present) continue;
    out.push_back(
        {static_cast<int>(key / static_cast<std::size_t>(num_levels_)),
         static_cast<int>(key % static_cast<std::size_t>(num_levels_)),
         sink_slot.report, sink_slot.last_update});
  }
  return out;
}

}  // namespace isomap
