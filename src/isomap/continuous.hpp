#pragma once

#include <map>
#include <utility>
#include <vector>

#include "isomap/contour_map.hpp"
#include "isomap/protocol.hpp"

namespace isomap {

/// Options for the continuous-mapping extension.
struct ContinuousOptions {
  IsoMapOptions base;

  /// A still-selected isoline node re-reports only when its estimated
  /// gradient direction rotated by more than this many degrees since its
  /// last report (temporal suppression).
  double gradient_refresh_deg = 15.0;

  /// Bytes of a withdrawal message (level + node position reference).
  double withdraw_bytes = 4.0;

  /// Bytes of the per-round 1-hop value beacon every alive node emits so
  /// its neighbours can evaluate Definition 3.1 each round.
  double beacon_bytes = 2.0;

  /// Soft-state expiry: a sink-table entry not refreshed for this many
  /// rounds is dropped (covers nodes that died without withdrawing).
  /// Surviving suppressed nodes send a keep-alive refresh when their
  /// entry is older than half this horizon. 0 disables expiry (the sink
  /// then trusts withdrawals alone).
  int stale_rounds = 0;
};

/// Per-round outcome of the continuous mapper.
struct RoundResult {
  int adds = 0;        ///< Newly selected (node, level) pairs reported.
  int refreshes = 0;   ///< Re-reports due to gradient rotation.
  int withdrawals = 0; ///< Deselected pairs withdrawn.
  int suppressed = 0;  ///< Still-selected pairs that stayed silent.
  int keepalives = 0;  ///< Soft-state refreshes of unchanged entries.
  int expired = 0;     ///< Sink entries dropped by soft-state expiry.
  int active_reports = 0;            ///< Sink table size after the round.
  double delta_traffic_bytes = 0.0;  ///< Multi-hop add/refresh/withdraw bytes.
  double beacon_traffic_bytes = 0.0; ///< 1-hop beacon bytes.
  ContourMap map;                    ///< Sink map after the round.
};

/// Continuous contour mapping over an evolving field — the natural
/// extension of the paper's one-shot protocol toward its Huanghua
/// deployment goal (continuous siltation monitoring) and the isoline
/// continuous-mapping line of related work it cites.
///
/// Instead of re-running the full protocol every round, nodes keep their
/// last report and transmit *deltas*: a report when they become isoline
/// nodes or when their gradient estimate rotates beyond a threshold, and
/// a small withdrawal when they stop being isoline nodes. The sink keeps
/// a report table, applies the spatial in-network filter at map-build
/// time, and rebuilds the contour map after each round.
///
/// Traffic accounting: delta messages are routed hop by hop over the
/// tree; every alive node additionally beacons its reading once per
/// round to its 1-hop neighbours (needed to evaluate Def. 3.1).
class ContinuousMapper {
 public:
  ContinuousMapper(ContinuousOptions options, const Deployment& deployment,
                   const CommGraph& graph, const RoutingTree& tree);

  /// Run one mapping round against the current field state. Sensing,
  /// selection, regression, delta generation and sink update happen in
  /// order; all node costs are charged to `ledger`.
  RoundResult round(const ScalarField& field_now, Ledger& ledger);

  /// Current number of (node, level) entries at the sink.
  int sink_table_size() const { return static_cast<int>(sink_table_.size()); }

  /// Swap in a rebuilt topology (after node failures). Node memory and
  /// the sink table are preserved; dead nodes' stale entries age out via
  /// soft-state expiry (set ContinuousOptions::stale_rounds) since a dead
  /// node cannot withdraw.
  void set_topology(const Deployment& deployment, const CommGraph& graph,
                    const RoutingTree& tree);

 private:
  using Key = std::pair<int, int>;  ///< (node id, isolevel index).

  struct SinkEntry {
    IsolineReport report;
    int last_update = 0;
  };

  ContinuousOptions options_;
  const Deployment* deployment_;
  const CommGraph* graph_;
  const RoutingTree* tree_;
  std::vector<double> isolevels_;
  int round_counter_ = 0;

  /// Node-side memory: last reported gradient per (node, level).
  std::map<Key, Vec2> node_memory_;
  /// Sink-side report table with soft-state timestamps.
  std::map<Key, SinkEntry> sink_table_;

  double route_bytes(int from, double bytes, Ledger& ledger) const;
};

}  // namespace isomap
