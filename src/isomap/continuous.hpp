#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "isomap/contour_map.hpp"
#include "isomap/protocol.hpp"
#include "isomap/regression.hpp"
#include "obs/metrics.hpp"

namespace isomap {

/// Which round engine drives ContinuousMapper. Both engines produce
/// bitwise-identical outputs (RoundResult, ledger charges, sink table,
/// per-level contours, observability counters) — the incremental engine
/// only skips recomputation whose inputs are provably unchanged, and
/// recomputes everything else with the exact code path the oracle runs.
/// See docs/PERFORMANCE.md ("Incremental continuous mapping").
enum class ContinuousEngine {
  /// Full recompute every round: every node re-evaluates Definition 3.1,
  /// every selected node refits its regression, and every isolevel's
  /// contour region is rebuilt. Retained as the equivalence oracle and
  /// as the baseline bench/ext_continuous measures the incremental
  /// engine against.
  kOracle,
  /// Dirty-set recomputation: per-round cost scales with the reading
  /// delta between rounds, not with the deployment size (the default).
  kIncremental,
};

/// Options for the continuous-mapping extension.
struct ContinuousOptions {
  IsoMapOptions base;

  /// A still-selected isoline node re-reports only when its estimated
  /// gradient direction rotated by more than this many degrees since its
  /// last report (temporal suppression).
  double gradient_refresh_deg = 15.0;

  /// Bytes of a withdrawal message (level + node position reference).
  double withdraw_bytes = 4.0;

  /// Bytes of the per-round 1-hop value beacon every alive node emits so
  /// its neighbours can evaluate Definition 3.1 each round.
  double beacon_bytes = 2.0;

  /// Soft-state expiry: a sink-table entry not refreshed for this many
  /// rounds is dropped (covers nodes that died without withdrawing).
  /// Surviving suppressed nodes send a keep-alive refresh when their
  /// entry is older than half this horizon. 0 disables expiry (the sink
  /// then trusts withdrawals alone).
  int stale_rounds = 0;

  /// Round engine; outputs are engine-independent bit for bit.
  ContinuousEngine engine = ContinuousEngine::kIncremental;
};

/// Per-round outcome of the continuous mapper.
struct RoundResult {
  int adds = 0;        ///< Newly selected (node, level) pairs reported.
  int refreshes = 0;   ///< Re-reports due to gradient rotation.
  int withdrawals = 0; ///< Deselected pairs withdrawn.
  int suppressed = 0;  ///< Still-selected pairs that stayed silent.
  int keepalives = 0;  ///< Soft-state refreshes of unchanged entries.
  int expired = 0;     ///< Sink entries dropped by soft-state expiry.
  int active_reports = 0;            ///< Sink table size after the round.
  double delta_traffic_bytes = 0.0;  ///< Multi-hop add/refresh/withdraw bytes.
  double beacon_traffic_bytes = 0.0; ///< 1-hop beacon bytes.
  ContourMap map;                    ///< Sink map after the round.
};

/// Continuous contour mapping over an evolving field — the natural
/// extension of the paper's one-shot protocol toward its Huanghua
/// deployment goal (continuous siltation monitoring) and the isoline
/// continuous-mapping line of related work it cites.
///
/// Instead of re-running the full protocol every round, nodes keep their
/// last report and transmit *deltas*: a report when they become isoline
/// nodes or when their gradient estimate rotates beyond a threshold, and
/// a small withdrawal when they stop being isoline nodes. The sink keeps
/// a report table, applies the spatial in-network filter at map-build
/// time, and rebuilds the contour map after each round.
///
/// Traffic accounting: delta messages are routed hop by hop over the
/// tree; every alive node additionally beacons its reading once per
/// round to its 1-hop neighbours (needed to evaluate Def. 3.1).
///
/// Simulation cost: with the default incremental engine a round's CPU
/// cost scales with the set of *changed* readings — nodes whose
/// Definition 3.1 inputs are unchanged reuse their cached selection,
/// regressions reuse cached sufficient statistics, and only isolevels
/// whose post-filter report set changed rebuild their contour region
/// (in parallel, under the exec determinism contract). The modelled
/// node costs charged to the ledger are unaffected: a real node still
/// pays for its per-round evaluation, so energy accounting is identical
/// to the full-recompute oracle.
class ContinuousMapper {
 public:
  ContinuousMapper(ContinuousOptions options, const Deployment& deployment,
                   const CommGraph& graph, const RoutingTree& tree);

  /// Run one mapping round against the current field state. Sensing,
  /// selection, regression, delta generation and sink update happen in
  /// order; all node costs are charged to `ledger`.
  RoundResult round(const ScalarField& field_now, Ledger& ledger);

  /// Run one round from pre-sensed per-node readings (indexed by node
  /// id; dead nodes' entries are ignored — pass 0.0). This is the
  /// primitive the field overload wraps after sampling, and the
  /// injection point capsule replay uses to re-feed recorded readings
  /// (see sim/run_capsule.hpp). Size must equal the deployment's.
  RoundResult round(const std::vector<double>& readings, Ledger& ledger);

  /// Current number of (node, level) entries at the sink.
  int sink_table_size() const { return sink_count_; }

  /// Swap in a rebuilt topology (after node failures). Node memory and
  /// the sink table are preserved; dead nodes' stale entries age out via
  /// soft-state expiry (set ContinuousOptions::stale_rounds) since a dead
  /// node cannot withdraw. All incremental caches are invalidated — the
  /// next round re-evaluates every node, exactly like the oracle.
  void set_topology(const Deployment& deployment, const CommGraph& graph,
                    const RoutingTree& tree);

  /// One sink-table entry as dumped by sink_dump().
  struct SinkDumpEntry {
    int node = -1;
    int level = -1;  ///< Isolevel index.
    IsolineReport report;
    int last_update = 0;
  };

  /// Full sink-table dump in (node, level) order — the exact comparison
  /// surface the incremental-vs-oracle equivalence tests diff.
  std::vector<SinkDumpEntry> sink_dump() const;

  /// Per-level round fingerprints: fingerprint_reports() of each
  /// isolevel's post-filter report set as of the last round() call, in
  /// isolevel order (empty before the first round). Engine-independent —
  /// both engines record the identical values — and the exact per-level
  /// cache key the map service builds response keys from: a level whose
  /// fingerprint is unchanged since a cached response was built serves
  /// that response without recomputation (see docs/SERVICE.md).
  const std::vector<std::uint64_t>& level_fingerprints() const {
    return last_fingerprints_;
  }

  /// The current sink table flattened to the post-filter report list, in
  /// the exact (node, level) order and with the exact filter decisions
  /// round() feeds its map build. ContourMapBuilder::build over this list
  /// reproduces the last round's map bit for bit — the service's oracle
  /// mode rebuilds from it and diffs the bytes. Emits no obs phases.
  std::vector<IsolineReport> post_filter_reports() const;

 private:
  /// Flat node-side memory slot: last reported gradient per
  /// (node, level), keyed node * num_levels + level. Flat-vector lex
  /// iteration order matches the former std::map<pair<int,int>> exactly.
  struct MemorySlot {
    bool present = false;
    Vec2 gradient{};
  };

  /// Flat sink-side slot with the soft-state timestamp.
  struct SinkSlot {
    bool present = false;
    IsolineReport report;
    int last_update = 0;
  };

  /// Cached Definition 3.1 outcome for one node: admitted level indices,
  /// modelled op charge and candidate count. Reused verbatim while the
  /// node's selection inputs are provably unchanged.
  struct SelectionCache {
    std::vector<int> levels;
    double ops = 0.0;
    int candidates = 0;
  };

  /// Cached regression state for one node: the static sample positions
  /// (own + 1-hop neighbours) with the position block of the sufficient
  /// statistics (computed once per topology), plus the last fit while no
  /// sample reading has changed.
  struct FitCache {
    bool primed = false;  ///< samples/pos_stats built for this topology.
    bool valid = false;   ///< gradient/ops reflect the current readings.
    bool has_fit = false;
    Vec2 gradient{};
    double ops = 0.0;
    PlanePositionStats pos_stats;
    std::vector<FieldSample> samples;
  };

  /// Cached sink-side contour region for one isolevel, keyed by the
  /// fingerprint (and, authoritatively, the retained copy) of the
  /// level's post-filter report set.
  struct LevelCache {
    bool valid = false;
    std::uint64_t fingerprint = 0;
    std::vector<IsolineReport> reports;
    /// Shared with every ContourMap that reused this level: LevelRegion
    /// is immutable after construction, so clean rounds hand the map a
    /// reference instead of a deep copy.
    std::shared_ptr<const LevelRegion> region;
  };

  std::size_t slot(int node, int level) const {
    return static_cast<std::size_t>(node) *
               static_cast<std::size_t>(num_levels_) +
           static_cast<std::size_t>(level);
  }

  /// Index of `lambda` in isolevels_ (1e-9 tolerance), by binary search
  /// over the ascending level list; -1 when absent.
  int level_index_of(double lambda) const;

  double route_bytes(int from, double bytes, Ledger& ledger) const;

  /// Size the flat tables / caches for the current deployment; clears
  /// all state if the node count changed.
  void ensure_tables();

  /// Incremental phase 1: compute the per-node selection dirty set and
  /// invalidate fit caches from the bitwise reading deltas. Returns the
  /// number of nodes that must re-evaluate Definition 3.1.
  int mark_dirty(const std::vector<double>& readings);

  /// Gradient for a selected node this round (memoised per round), via
  /// the engine-appropriate path. Returns nullopt on a degenerate fit.
  /// Charges the node's fit ops to `ledger` exactly as the oracle does.
  std::optional<Vec2> gradient_for(int node,
                                   const std::vector<double>& readings,
                                   Ledger& ledger);

  /// Replay the oracle's per-fit metric emissions ("regression.fits" +
  /// one "regression.samples" observation, or one
  /// "regression.degenerate" count) through the cached per-round slots.
  void replay_fit_metrics(std::size_t num_samples);
  void replay_degenerate_metric();

  /// Incremental sink phase: group the post-filter reports per level,
  /// fingerprint each group, rebuild only dirty levels (in parallel) and
  /// reuse cached regions for the rest.
  ContourMap build_map_incremental(const std::vector<IsolineReport>& reports);

  ContinuousOptions options_;
  const Deployment* deployment_;
  const CommGraph* graph_;
  const RoutingTree* tree_;
  std::vector<double> isolevels_;
  int num_levels_ = 0;
  int round_counter_ = 0;

  /// Flat (node, level) state tables, plus sorted lists of the occupied
  /// slot keys so per-round bookkeeping walks the (small) active set
  /// instead of scanning all n x L slots. Ascending key order equals the
  /// flat-scan order, so report extraction, withdrawal and expiry emit
  /// in exactly the order the plain table scans would.
  std::vector<MemorySlot> node_memory_;
  std::vector<SinkSlot> sink_table_;
  std::vector<std::size_t> memory_keys_;  ///< Occupied node_memory_ slots.
  std::vector<std::size_t> sink_keys_;    ///< Occupied sink_table_ slots.
  int sink_count_ = 0;
  /// Per-level fingerprints of the last round's post-filter report sets
  /// (see level_fingerprints()).
  std::vector<std::uint64_t> last_fingerprints_;

  /// Incremental caches. caches_primed_ is false after construction and
  /// set_topology; the first round then evaluates every node (exactly
  /// the oracle's work) while populating the caches.
  bool caches_primed_ = false;
  std::vector<double> prev_readings_;
  std::vector<SelectionCache> selection_cache_;
  std::vector<FitCache> fit_cache_;
  std::vector<LevelCache> level_cache_;

  /// Persistent selection aggregates so a clean round emits its selected
  /// set in O(|selected|) instead of rescanning every node: the sorted
  /// list of nodes with admitted levels, the per-node op charges (fed to
  /// Ledger::compute_all) and the summed candidate count. Maintained at
  /// dirty-node re-evaluation; reset with the other caches.
  std::vector<int> selected_nodes_;
  std::vector<double> sel_ops_;
  long long candidates_total_ = 0;

  /// Cached level_rank of each node's previous reading, so mark_dirty
  /// ranks only the new value. Valid whenever caches_primed_ is true.
  std::vector<std::pair<int, int>> rank_cache_;

  /// Per-round lazily resolved metric slots for the regression replay —
  /// one map lookup per round instead of one per selected node. Reset at
  /// the top of every round; resolved on first use so counters appear in
  /// the registry exactly when the oracle's per-fit emission would have
  /// created them.
  struct RegressionObsSlots {
    double* fits = nullptr;
    obs::Histogram* samples = nullptr;
    double* degenerate = nullptr;
  };
  RegressionObsSlots obs_slots_;

  /// Per-round scratch (members to avoid per-round allocation).
  std::vector<char> selection_dirty_;
  std::vector<int> dirty_list_;  ///< Alive dirty nodes, ascending.
  std::vector<MemorySlot> now_memory_;
  std::vector<std::size_t> now_keys_;  ///< Slots written this round.
  std::vector<int> grad_round_;   ///< Per-node round stamp of grad_value_.
  std::vector<Vec2> grad_value_;  ///< Per-round gradient memo.
  /// Per-level report grouping scratch for build_map_incremental.
  std::vector<std::vector<IsolineReport>> level_scratch_;
};

}  // namespace isomap
