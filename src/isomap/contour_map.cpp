#include "isomap/contour_map.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include <optional>

#include "exec/exec.hpp"
#include "geometry/segment.hpp"
#include "obs/obs.hpp"

namespace isomap {
namespace {

/// The type-1 boundary of cell i: the infinite line through the
/// isoposition perpendicular to the gradient direction.
Line type1_line(Vec2 position, Vec2 unit_dir) {
  return Line{position, unit_dir.perp()};
}

/// Intersection of two type-1 lines; nullopt when (nearly) parallel.
std::optional<Vec2> line_line_intersection(const Line& l1, const Line& l2) {
  const double denom = l1.dir.cross(l2.dir);
  if (std::abs(denom) < 1e-12) return std::nullopt;
  const double t = (l2.point - l1.point).cross(l2.dir) / denom;
  return l1.point + l1.dir * t;
}

constexpr double kTinyArea = 1e-9;

}  // namespace

LevelRegion::LevelRegion(double isolevel, std::vector<IsolineReport> reports,
                         FieldBounds bounds, RegulationMode mode)
    : isolevel_(isolevel),
      reports_(std::move(reports)),
      bounds_(bounds),
      mode_(mode),
      voronoi_(
          [&] {
            std::vector<Vec2> sites;
            sites.reserve(reports_.size());
            for (const auto& r : reports_) sites.push_back(r.position);
            return sites;
          }(),
          bounds.x0, bounds.y0, bounds.x1, bounds.y1) {
  unit_dirs_.reserve(reports_.size());
  for (const auto& r : reports_) unit_dirs_.push_back(r.gradient.normalized());
  build_pieces(mode);
  build_piece_boxes();
  build_boundaries();
}

void LevelRegion::build_piece_boxes() {
  constexpr double kContainsEps = 1e-9;  // Tolerance used by contains().
  piece_boxes_.resize(pieces_.size());
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    piece_boxes_[i].reserve(pieces_[i].size());
    for (const Polygon& piece : pieces_[i]) {
      PieceBox box{std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()};
      for (std::size_t v = 0; v < piece.size(); ++v) {
        const Vec2 p = piece.vertex(v);
        box.x0 = std::min(box.x0, p.x);
        box.y0 = std::min(box.y0, p.y);
        box.x1 = std::max(box.x1, p.x);
        box.y1 = std::max(box.y1, p.y);
      }
      box.x0 -= 2.0 * kContainsEps;
      box.y0 -= 2.0 * kContainsEps;
      box.x1 += 2.0 * kContainsEps;
      box.y1 += 2.0 * kContainsEps;
      piece_boxes_[i].push_back(box);
    }
  }
}

void LevelRegion::build_pieces(RegulationMode mode) {
  const std::size_t n = reports_.size();
  pieces_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VoronoiCell& cell = voronoi_.cell(i);
    if (cell.empty()) continue;
    const Polygon cell_poly = cell.polygon();
    const Vec2 di = unit_dirs_[i];
    if (di == Vec2{}) {
      // Degenerate gradient: no orientation information; keep the whole
      // cell as inner (the node itself sits on the isoline).
      pieces_[i].push_back(cell_poly);
      continue;
    }
    const Vec2 pi = reports_[i].position;
    const HalfPlane hi = HalfPlane::against_direction(pi, di);
    Polygon inner = cell_poly.clip(hi);

    if (mode == RegulationMode::kRules) {
      const Line li = type1_line(pi, di);
      for (int j : cell.neighbours()) {
        const auto ju = static_cast<std::size_t>(j);
        const Vec2 dj = unit_dirs_[ju];
        if (dj == Vec2{}) continue;
        // Only regulate against neighbours with broadly consistent
        // orientation; opposing gradients indicate the far side of a thin
        // region, where prolonging lines across would be wrong.
        if (angle_between(di, dj) >= M_PI / 2.0) continue;
        const Line lj = type1_line(reports_[ju].position, dj);
        const auto x = line_line_intersection(li, lj);
        if (!x) continue;
        // The junction X (where the prolonged type-1 boundaries meet) must
        // lie within this cell for the corner replacement to act here; the
        // symmetric case (X in the neighbour's cell) is handled when the
        // neighbour's cell is processed.
        if (!cell_poly.contains(*x, 1e-9)) continue;
        const HalfPlane hj =
            HalfPlane::against_direction(reports_[ju].position, dj);

        // Locate the type-2 step on the shared Voronoi edge: A is where
        // our cut meets the shared edge, B where the neighbour's cut does.
        // The midpoint M of the step tells pinnacle from concavity:
        //  - M inside H_i but outside H_j: our inner part juts out past
        //    the neighbour's boundary (internal angle in (180, 270) deg) —
        //    Rule 1 removes the pinnacle by clipping with H_j.
        //  - M outside H_i but inside H_j: a concave pocket (internal
        //    angle in (90, 180) deg) — Rule 2 fills it with the convex
        //    piece cell * H_j * complement(H_i).
        for (std::size_t e = 0; e < cell.size(); ++e) {
          if (cell.edge_tags[e] != j) continue;
          const Segment shared = cell.edge(e);
          const auto a = line_segment_intersection(li, shared);
          const auto b = line_segment_intersection(lj, shared);
          if (!a || !b) continue;
          const Vec2 m = (*a + *b) * 0.5;
          const bool in_i = hi.contains(m, 1e-9);
          const bool in_j = hj.contains(m, 1e-9);
          if (in_i && !in_j) {
            inner = inner.clip(hj);  // Rule 1: shave the pinnacle.
          } else if (!in_i && in_j) {
            const HalfPlane hi_complement{-hi.normal, -hi.offset};
            Polygon fill = cell_poly.clip(hj).clip(hi_complement);
            if (fill.area() > kTinyArea)
              pieces_[i].push_back(std::move(fill));  // Rule 2: fill.
          }
        }
      }
    }
    if (inner.area() > kTinyArea)
      pieces_[i].insert(pieces_[i].begin(), std::move(inner));
  }
}

bool LevelRegion::contains(Vec2 q) const {
  if (reports_.empty()) return false;
  if (mode_ == RegulationMode::kBlended) return contains_blended(q);
  return contains_rules(q);
}

bool LevelRegion::contains_rules(Vec2 q) const {
  const int site = voronoi_.nearest_site(q);
  if (site < 0) return false;
  const auto& pieces = pieces_[static_cast<std::size_t>(site)];
  const auto& boxes = piece_boxes_[static_cast<std::size_t>(site)];
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    // Inflated-box rejection is exact (see PieceBox): skipping a piece
    // here never changes the answer the polygon walk would have given.
    const PieceBox& b = boxes[i];
    if (q.x < b.x0 || q.x > b.x1 || q.y < b.y0 || q.y > b.y1) continue;
    if (pieces[i].contains(q, 1e-9)) return true;
  }
  return false;
}

void LevelRegion::contains_batch(std::span<const Vec2> qs,
                                 std::span<unsigned char> out) const {
  if (reports_.empty()) {
    std::fill(out.begin(), out.end(), static_cast<unsigned char>(0));
    return;
  }
  if (mode_ == RegulationMode::kBlended) {
    for (std::size_t k = 0; k < qs.size(); ++k)
      out[k] = contains_blended(qs[k]) ? 1 : 0;
    return;
  }
  for (std::size_t k = 0; k < qs.size(); ++k) {
    const Vec2 q = qs[k];
    unsigned char hit = 0;
    const int site = voronoi_.nearest_site(q);
    if (site >= 0) {
      const auto& pieces = pieces_[static_cast<std::size_t>(site)];
      const auto& boxes = piece_boxes_[static_cast<std::size_t>(site)];
      for (std::size_t i = 0; i < pieces.size(); ++i) {
        // Same exact inflated-box predicate as contains_rules, evaluated
        // with bitwise & so all four bounds compare without intermediate
        // branches — one test per piece instead of up to four.
        const PieceBox& b = boxes[i];
        const bool in_box =
            static_cast<int>(q.x >= b.x0) & static_cast<int>(q.x <= b.x1) &
            static_cast<int>(q.y >= b.y0) & static_cast<int>(q.y <= b.y1);
        if (in_box && pieces[i].contains(q, 1e-9)) {
          hit = 1;
          break;
        }
      }
    }
    out[k] = hit;
  }
}

bool LevelRegion::contains_blended(Vec2 q) const {
  // Inverse-square-distance blend of the two nearest reports' signed
  // half-plane tests; reduces to the plain test with one report.
  int best = -1, second = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  double second_d2 = best_d2;
  for (std::size_t i = 0; i < reports_.size(); ++i) {
    const double d2 = (reports_[i].position - q).norm2();
    if (d2 < best_d2) {
      second = best;
      second_d2 = best_d2;
      best = static_cast<int>(i);
      best_d2 = d2;
    } else if (d2 < second_d2) {
      second = static_cast<int>(i);
      second_d2 = d2;
    }
  }
  if (best < 0) return false;
  const auto signed_side = [&](int idx) {
    const auto iu = static_cast<std::size_t>(idx);
    return (q - reports_[iu].position).dot(unit_dirs_[iu]);
  };
  if (best_d2 < 1e-18 || second < 0) return signed_side(best) <= 0.0;
  const double wb = 1.0 / best_d2;
  const double ws = 1.0 / second_d2;
  return (wb * signed_side(best) + ws * signed_side(second)) / (wb + ws) <=
         0.0;
}

void LevelRegion::build_boundaries() {
  // A piece edge belongs to the region boundary iff stepping slightly
  // outward across it leaves the region; edges on the field border are
  // excluded (they are artifacts of the bounding box, not isolines).
  const double span = std::max(bounds_.width(), bounds_.height());
  const double delta = 1e-5 * span;
  const double border_tol = 1e-7 * span;
  std::vector<Segment> segments;

  auto on_field_border = [&](Vec2 a, Vec2 b) {
    auto near_edge = [&](double va, double vb, double edge) {
      return std::abs(va - edge) <= border_tol &&
             std::abs(vb - edge) <= border_tol;
    };
    return near_edge(a.x, b.x, bounds_.x0) || near_edge(a.x, b.x, bounds_.x1) ||
           near_edge(a.y, b.y, bounds_.y0) || near_edge(a.y, b.y, bounds_.y1);
  };

  for (const auto& cell_pieces : pieces_) {
    for (const auto& piece : cell_pieces) {
      Polygon poly = piece;
      poly.make_ccw();
      for (std::size_t e = 0; e < poly.size(); ++e) {
        const Segment seg = poly.edge(e);
        if (seg.length() <= border_tol) continue;
        if (on_field_border(seg.a, seg.b)) continue;
        // Outward normal of a CCW polygon edge points right of a->b.
        const Vec2 outward = -(seg.b - seg.a).normalized().perp();
        const Vec2 probe = seg.midpoint() + outward * delta;
        if (!contains(probe)) segments.push_back(seg);
      }
    }
  }
  boundaries_ = stitch_segments(segments, 1e-6 * span);
}

ContourMap::ContourMap(FieldBounds bounds, std::vector<LevelRegion> regions)
    : bounds_(bounds) {
  regions_.reserve(regions.size());
  for (auto& region : regions)
    regions_.push_back(
        std::make_shared<const LevelRegion>(std::move(region)));
}

ContourMap::ContourMap(FieldBounds bounds,
                       std::vector<std::shared_ptr<const LevelRegion>> regions)
    : bounds_(bounds), regions_(std::move(regions)) {}

void ContourMap::level_index_batch(std::span<const Vec2> qs,
                                   std::span<int> out) const {
  const std::size_t m = qs.size();
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(m), 0);
  // Active-point sieve over the level stack: a point leaves the sieve at
  // the first supported region that rejects it (the scalar walk's break).
  // pending[i] counts transparent empty levels seen since the point's
  // last supported containment, exactly mirroring the scalar counter.
  std::vector<std::size_t> active(m);
  for (std::size_t i = 0; i < m; ++i) active[i] = i;
  std::vector<int> pending(m, 0);
  std::vector<Vec2> pts(m);
  std::vector<unsigned char> inside(m);
  for (const auto& region : regions_) {
    if (active.empty()) break;
    if (!region->has_reports()) {
      for (const std::size_t i : active) ++pending[i];
      continue;
    }
    pts.resize(active.size());
    inside.resize(active.size());
    for (std::size_t a = 0; a < active.size(); ++a) pts[a] = qs[active[a]];
    region->contains_batch({pts.data(), active.size()},
                           {inside.data(), active.size()});
    std::size_t kept = 0;
    for (std::size_t a = 0; a < active.size(); ++a) {
      const std::size_t i = active[a];
      if (!inside[a]) continue;  // Scalar break: the point is finished.
      out[i] += pending[i] + 1;
      pending[i] = 0;
      active[kept++] = i;
    }
    active.resize(kept);
  }
}

int ContourMap::level_index(Vec2 q) const {
  // Walk the stack from the lowest isolevel up. A level with no reports
  // is *transparent*: no isoline of that level crossed the field, so it
  // does not partition it; by nesting, membership in any higher
  // (supported) region implies membership in the empty level below, so
  // empty levels count only once a higher region confirms the point.
  int level = 0;
  int pending_empty = 0;
  for (const auto& region : regions_) {
    if (!region->has_reports()) {
      ++pending_empty;
      continue;
    }
    if (!region->contains(q)) break;
    level += pending_empty + 1;
    pending_empty = 0;
  }
  return level;
}

StreamingSinkBuilder::StreamingSinkBuilder(FieldBounds bounds,
                                           std::vector<double> isolevels,
                                           RegulationMode mode)
    : bounds_(bounds), mode_(mode), isolevels_(std::move(isolevels)) {
  level_reports_.resize(isolevels_.size());
  sorted_levels_.reserve(isolevels_.size());
  for (std::size_t li = 0; li < isolevels_.size(); ++li)
    if (!std::isnan(isolevels_[li]))
      sorted_levels_.push_back(static_cast<int>(li));
  std::sort(sorted_levels_.begin(), sorted_levels_.end(), [&](int a, int b) {
    return isolevels_[static_cast<std::size_t>(a)] <
           isolevels_[static_cast<std::size_t>(b)];
  });
}

void StreamingSinkBuilder::consume(const IsolineReport& report) {
  // The batch builder matched with |r.isolevel - level| < 1e-9; locate
  // the candidate window [report.isolevel - tol, ...) by binary search
  // and apply that exact predicate to each candidate, so membership is
  // decided by the same comparison on the same doubles. Appending in
  // consume order reproduces the per-level report order of the old
  // level-by-level scan (both are report order within each level).
  constexpr double kLevelTol = 1e-9;
  if (std::isnan(report.isolevel)) return;
  const auto begin = std::lower_bound(
      sorted_levels_.begin(), sorted_levels_.end(),
      report.isolevel - kLevelTol, [&](int li, double v) {
        return isolevels_[static_cast<std::size_t>(li)] < v;
      });
  for (auto it = begin; it != sorted_levels_.end(); ++it) {
    const double level = isolevels_[static_cast<std::size_t>(*it)];
    if (!(level - report.isolevel < kLevelTol)) break;
    if (std::abs(report.isolevel - level) < kLevelTol) {
      level_reports_[static_cast<std::size_t>(*it)].push_back(report);
      ++buffered_;
    }
  }
}

ContourMap StreamingSinkBuilder::finish() {
  // Each level's Voronoi/regulation construction is independent; build
  // them across the pool (each slot written by exactly one task, so the
  // result is identical to the serial loop).
  const std::size_t k = isolevels_.size();
  std::vector<std::optional<LevelRegion>> slots(k);
  exec::parallel_for(k, [&](std::size_t li) {
    slots[li].emplace(isolevels_[li], std::move(level_reports_[li]), bounds_,
                      mode_);
  });
  buffered_ = 0;
  std::vector<LevelRegion> regions;
  regions.reserve(k);
  for (auto& slot : slots) regions.push_back(std::move(*slot));
  return ContourMap(bounds_, std::move(regions));
}

ContourMapBuilder::ContourMapBuilder(FieldBounds bounds, RegulationMode mode)
    : bounds_(bounds), mode_(mode) {}

ContourMap ContourMapBuilder::build(const std::vector<IsolineReport>& reports,
                                    const std::vector<double>& isolevels) const {
  // Sink-side construction: wall time per level is the observable; no
  // ledger charge (the sink is a powered host).
  obs::PhaseTimer timer(obs::kPhaseMapGen);
  obs::count("map_gen.reports", static_cast<double>(reports.size()));
  obs::count("map_gen.levels", static_cast<double>(isolevels.size()));
  StreamingSinkBuilder streaming(bounds_, isolevels, mode_);
  for (const auto& r : reports) streaming.consume(r);
  return streaming.finish();
}

}  // namespace isomap
