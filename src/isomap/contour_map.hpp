#pragma once

#include <memory>
#include <vector>

#include "field/scalar_field.hpp"
#include "geometry/polygon.hpp"
#include "geometry/polyline.hpp"
#include "geometry/voronoi.hpp"
#include "isomap/report.hpp"

namespace isomap {

/// How the sink regulates the raw Voronoi/type-1 approximation (Fig. 8e):
///  - kNone:    raw per-cell construction (type-1 cuts + type-2 cell-border
///              complements), no smoothing — Fig. 8d.
///  - kRules:   the paper's Rules 1 & 2 — type-1 boundaries are prolonged
///              to meet the adjacent cell's type-1 boundary, shaving
///              pinnacles and filling concavities (the default).
///  - kBlended: ablation alternative — inverse-distance-weighted blend of
///              the two nearest reports' half-plane tests (smooth
///              continuous boundary; not in the paper).
enum class RegulationMode { kNone, kRules, kBlended };

/// The contour region of a single isolevel as reconstructed at the sink:
/// the Voronoi diagram of the reported isopositions plus, per cell, the
/// convex pieces making up the region (the inner part plus any Rule-2
/// concave fills).
class LevelRegion {
 public:
  LevelRegion(double isolevel, std::vector<IsolineReport> reports,
              FieldBounds bounds, RegulationMode mode);

  double isolevel() const { return isolevel_; }
  const std::vector<IsolineReport>& reports() const { return reports_; }
  const VoronoiDiagram& voronoi() const { return voronoi_; }
  bool has_reports() const { return !reports_.empty(); }

  /// All convex pieces of the region within the cell of site i.
  const std::vector<Polygon>& cell_pieces(int i) const {
    return pieces_[static_cast<std::size_t>(i)];
  }

  /// True if q lies in the reconstructed contour region.
  bool contains(Vec2 q) const;

  /// Boundary chains of the region, excluding portions on the field
  /// border; these are the estimated isolines compared against the ground
  /// truth in the paper's Fig. 12 Hausdorff metric.
  const std::vector<Polyline>& boundaries() const { return boundaries_; }

 private:
  bool contains_rules(Vec2 q) const;
  bool contains_blended(Vec2 q) const;
  void build_pieces(RegulationMode mode);
  void build_boundaries();

  double isolevel_;
  std::vector<IsolineReport> reports_;
  FieldBounds bounds_;
  RegulationMode mode_;
  VoronoiDiagram voronoi_;
  std::vector<Vec2> unit_dirs_;  ///< Normalized descent directions.
  std::vector<std::vector<Polygon>> pieces_;
  std::vector<Polyline> boundaries_;
};

/// A full multi-level contour map (Section 3.4): level regions stacked
/// recursively from the lowest isolevel up, each clipped to its
/// predecessors.
class ContourMap {
 public:
  ContourMap(FieldBounds bounds, std::vector<LevelRegion> regions);

  /// Shared-region construction: levels reused from a cache (the
  /// continuous engine's clean isolevels) are referenced, not copied. A
  /// LevelRegion is immutable after construction, so sharing is safe.
  ContourMap(FieldBounds bounds,
             std::vector<std::shared_ptr<const LevelRegion>> regions);

  const FieldBounds& bounds() const { return bounds_; }
  int level_count() const { return static_cast<int>(regions_.size()); }
  const LevelRegion& region(int k) const {
    return *regions_[static_cast<std::size_t>(k)];
  }

  /// Number of nested regions containing q: 0 means q is below the first
  /// isolevel, level_count() means q is inside the highest region. The
  /// recursive restriction rule of Section 3.4 is applied: a point only
  /// counts as inside level k if it is inside all lower levels too.
  /// Levels with no reports are transparent (no isoline of that level
  /// crossed the field): they count exactly when a higher, supported
  /// level contains q.
  int level_index(Vec2 q) const;

  /// Estimated isolines of level k (empty when the level had no reports).
  const std::vector<Polyline>& isolines(int k) const {
    return regions_[static_cast<std::size_t>(k)]->boundaries();
  }

 private:
  FieldBounds bounds_;
  std::vector<std::shared_ptr<const LevelRegion>> regions_;
};

/// Builds ContourMaps from sink-side report sets.
class ContourMapBuilder {
 public:
  explicit ContourMapBuilder(FieldBounds bounds,
                             RegulationMode mode = RegulationMode::kRules);

  /// Group `reports` by isolevel (one LevelRegion per entry of
  /// `isolevels`, ascending) and construct the stacked map.
  ContourMap build(const std::vector<IsolineReport>& reports,
                   const std::vector<double>& isolevels) const;

 private:
  FieldBounds bounds_;
  RegulationMode mode_;
};

}  // namespace isomap
