#pragma once

#include <memory>
#include <span>
#include <vector>

#include "field/scalar_field.hpp"
#include "geometry/polygon.hpp"
#include "geometry/polyline.hpp"
#include "geometry/voronoi.hpp"
#include "isomap/report.hpp"

namespace isomap {

/// How the sink regulates the raw Voronoi/type-1 approximation (Fig. 8e):
///  - kNone:    raw per-cell construction (type-1 cuts + type-2 cell-border
///              complements), no smoothing — Fig. 8d.
///  - kRules:   the paper's Rules 1 & 2 — type-1 boundaries are prolonged
///              to meet the adjacent cell's type-1 boundary, shaving
///              pinnacles and filling concavities (the default).
///  - kBlended: ablation alternative — inverse-distance-weighted blend of
///              the two nearest reports' half-plane tests (smooth
///              continuous boundary; not in the paper).
enum class RegulationMode { kNone, kRules, kBlended };

/// The contour region of a single isolevel as reconstructed at the sink:
/// the Voronoi diagram of the reported isopositions plus, per cell, the
/// convex pieces making up the region (the inner part plus any Rule-2
/// concave fills).
class LevelRegion {
 public:
  LevelRegion(double isolevel, std::vector<IsolineReport> reports,
              FieldBounds bounds, RegulationMode mode);

  double isolevel() const { return isolevel_; }
  const std::vector<IsolineReport>& reports() const { return reports_; }
  const VoronoiDiagram& voronoi() const { return voronoi_; }
  bool has_reports() const { return !reports_.empty(); }

  /// All convex pieces of the region within the cell of site i.
  const std::vector<Polygon>& cell_pieces(int i) const {
    return pieces_[static_cast<std::size_t>(i)];
  }

  /// True if q lies in the reconstructed contour region.
  bool contains(Vec2 q) const;

  /// Batch membership: out[i] = contains(qs[i]) for every i, with the
  /// per-piece inflated-box pre-reject evaluated branch-free (the four
  /// comparisons folded bitwise instead of short-circuited) so the hot
  /// rasterization loop takes one well-predicted branch per piece. The
  /// per-point decision sequence is identical to contains(), so the
  /// output bytes match the scalar oracle bit for bit.
  void contains_batch(std::span<const Vec2> qs,
                      std::span<unsigned char> out) const;

  /// Boundary chains of the region, excluding portions on the field
  /// border; these are the estimated isolines compared against the ground
  /// truth in the paper's Fig. 12 Hausdorff metric.
  const std::vector<Polyline>& boundaries() const { return boundaries_; }

 private:
  /// Axis-aligned bounding box of one piece, inflated by twice the
  /// containment tolerance: a query point outside the inflated box is
  /// farther than the tolerance from every point of the piece, so the
  /// exact Polygon::contains test is guaranteed to reject it. Lets the
  /// point-in-region hot loop skip the per-edge polygon walk for most
  /// pieces with four comparisons.
  struct PieceBox {
    double x0, y0, x1, y1;
  };

  bool contains_rules(Vec2 q) const;
  bool contains_blended(Vec2 q) const;
  void build_pieces(RegulationMode mode);
  void build_piece_boxes();
  void build_boundaries();

  double isolevel_;
  std::vector<IsolineReport> reports_;
  FieldBounds bounds_;
  RegulationMode mode_;
  VoronoiDiagram voronoi_;
  std::vector<Vec2> unit_dirs_;  ///< Normalized descent directions.
  std::vector<std::vector<Polygon>> pieces_;
  std::vector<std::vector<PieceBox>> piece_boxes_;  ///< Parallel to pieces_.
  std::vector<Polyline> boundaries_;
};

/// A full multi-level contour map (Section 3.4): level regions stacked
/// recursively from the lowest isolevel up, each clipped to its
/// predecessors.
class ContourMap {
 public:
  ContourMap(FieldBounds bounds, std::vector<LevelRegion> regions);

  /// Shared-region construction: levels reused from a cache (the
  /// continuous engine's clean isolevels) are referenced, not copied. A
  /// LevelRegion is immutable after construction, so sharing is safe.
  ContourMap(FieldBounds bounds,
             std::vector<std::shared_ptr<const LevelRegion>> regions);

  const FieldBounds& bounds() const { return bounds_; }
  int level_count() const { return static_cast<int>(regions_.size()); }
  const LevelRegion& region(int k) const {
    return *regions_[static_cast<std::size_t>(k)];
  }

  /// Number of nested regions containing q: 0 means q is below the first
  /// isolevel, level_count() means q is inside the highest region. The
  /// recursive restriction rule of Section 3.4 is applied: a point only
  /// counts as inside level k if it is inside all lower levels too.
  /// Levels with no reports are transparent (no isoline of that level
  /// crossed the field): they count exactly when a higher, supported
  /// level contains q.
  int level_index(Vec2 q) const;

  /// Batch variant: out[i] = level_index(qs[i]) for every i. Walks the
  /// level stack once per *batch* instead of once per point, narrowing an
  /// active-point list as lower levels reject points, and resolves each
  /// level's memberships through LevelRegion::contains_batch. Replicates
  /// level_index's early-break and transparent-empty-level bookkeeping
  /// per point exactly, so every output equals the scalar call's.
  void level_index_batch(std::span<const Vec2> qs, std::span<int> out) const;

  /// Estimated isolines of level k (empty when the level had no reports).
  const std::vector<Polyline>& isolines(int k) const {
    return regions_[static_cast<std::size_t>(k)]->boundaries();
  }

 private:
  FieldBounds bounds_;
  std::vector<std::shared_ptr<const LevelRegion>> regions_;
};

/// Streaming sink-side map construction: reports are consumed one at a
/// time into per-level buckets, and finish() assembles the stacked map
/// from the buckets. The sink never needs the full report set *and* a
/// per-level regrouping to coexist — its live memory is bounded by the
/// delivered reports (O(sqrt(n) * levels)), which is what keeps a
/// million-node round's sink footprint flat.
///
/// Identity contract: a report lands in exactly the buckets the batch
/// builder's per-level scan (|report.isolevel - level| < 1e-9) put it in,
/// in the same per-level order, so finish() builds bit-identical regions.
class StreamingSinkBuilder {
 public:
  StreamingSinkBuilder(FieldBounds bounds, std::vector<double> isolevels,
                       RegulationMode mode = RegulationMode::kRules);

  /// Bucket one report into every isolevel within the matching tolerance
  /// (located by binary search over the sorted level view; the exact
  /// batch-builder predicate decides membership).
  void consume(const IsolineReport& report);

  /// Reports currently buffered across all levels (a report matching m
  /// levels counts m times) — the sink's live memory driver.
  std::size_t buffered_reports() const { return buffered_; }

  /// Build the stacked map from the buckets (one LevelRegion per level,
  /// constructed across the exec pool). Consumes the buckets.
  ContourMap finish();

 private:
  FieldBounds bounds_;
  RegulationMode mode_;
  std::vector<double> isolevels_;
  /// Level indices ordered by ascending isolevel (NaN levels excluded —
  /// they can never match), so consume() binary-searches instead of
  /// scanning every level per report.
  std::vector<int> sorted_levels_;
  std::vector<std::vector<IsolineReport>> level_reports_;
  std::size_t buffered_ = 0;
};

/// Builds ContourMaps from sink-side report sets. A thin batch facade
/// over StreamingSinkBuilder: build() streams the reports through it and
/// finishes the map.
class ContourMapBuilder {
 public:
  explicit ContourMapBuilder(FieldBounds bounds,
                             RegulationMode mode = RegulationMode::kRules);

  /// Group `reports` by isolevel (one LevelRegion per entry of
  /// `isolevels`, ascending) and construct the stacked map.
  ContourMap build(const std::vector<IsolineReport>& reports,
                   const std::vector<double>& isolevels) const;

 private:
  FieldBounds bounds_;
  RegulationMode mode_;
};

}  // namespace isomap
