#include "isomap/filter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "isomap/round_arena.hpp"
#include "obs/node_telemetry.hpp"
#include "obs/obs.hpp"

namespace isomap {

InNetworkFilter::InNetworkFilter(double angular_deg, double distance)
    : angular_rad_(angular_deg * M_PI / 180.0), distance_(distance) {
  if (angular_deg < 0.0 || distance < 0.0)
    throw std::invalid_argument("InNetworkFilter: negative threshold");
}

bool InNetworkFilter::redundant(const IsolineReport& a,
                                const IsolineReport& b) const {
  if (a.isolevel != b.isolevel) return false;
  if (a.position.distance_to(b.position) >= distance_) return false;
  return angle_between(a.gradient, b.gradient) < angular_rad_;
}

template <typename Alloc>
void InNetworkFilter::merge(std::vector<IsolineReport, Alloc>& kept,
                            std::span<const IsolineReport> incoming,
                            double* ops, int at_node) const {
  // Resolve the observation context once per merge, not per comparison.
  obs::TraceSink* const sink = obs::trace();
  obs::NodeTelemetry* const tel = obs::telemetry();

  // redundant() never crosses isolevels, so only same-level kept reports
  // can drop an incoming one: bucketing kept by exact level skips the
  // cross-level comparisons the plain scan burns. Decisions, drop order
  // and the charged op count are identical to the full scan — a drop at
  // global index g costs g + 1 scanned comparisons, a keep costs
  // kept.size(), exactly what the linear walk would have charged.
  struct Bucket {
    double isolevel;
    std::vector<std::size_t> members;  ///< Indices into kept, ascending.
  };
  std::vector<Bucket> buckets;
  // Buckets are located through a (level, bucket-index) list kept sorted
  // by operator<, so a lookup is one binary search instead of a walk over
  // every distinct level. Identity stays `==`: < treats -0.0 and 0.0 as
  // one equivalence class exactly like ==, and a NaN level — unordered,
  // never == anything — is left bucketless, matching the unreachable
  // bucket the linear scan used to append for it.
  std::vector<std::pair<double, std::size_t>> index;
  const auto bucket_of = [&](double isolevel) -> Bucket* {
    const auto it = std::lower_bound(
        index.begin(), index.end(), isolevel,
        [](const std::pair<double, std::size_t>& e, double v) {
          return e.first < v;
        });
    if (it == index.end() || it->first != isolevel) return nullptr;
    return &buckets[it->second];
  };
  const auto add_bucket = [&](double isolevel) -> Bucket* {
    buckets.push_back({isolevel, {}});
    if (!std::isnan(isolevel)) {
      const auto it = std::lower_bound(
          index.begin(), index.end(), isolevel,
          [](const std::pair<double, std::size_t>& e, double v) {
            return e.first < v;
          });
      index.insert(it, {isolevel, buckets.size() - 1});
    }
    return &buckets.back();
  };
  for (std::size_t i = 0; i < kept.size(); ++i) {
    Bucket* b = bucket_of(kept[i].isolevel);
    if (b == nullptr) b = add_bucket(kept[i].isolevel);
    b->members.push_back(i);
  }

  std::size_t dropped = 0;
  for (const auto& report : incoming) {
    Bucket* bucket = bucket_of(report.isolevel);
    bool drop = false;
    if (bucket != nullptr) {
      for (const std::size_t idx : bucket->members) {
        if (redundant(kept[idx], report)) {
          drop = true;
          if (ops) *ops += kOpsPerComparison * static_cast<double>(idx + 1);
          break;
        }
      }
    }
    if (!drop && ops)
      *ops += kOpsPerComparison * static_cast<double>(kept.size());
    if (drop) {
      ++dropped;
      if (tel != nullptr && report.source >= 0)
        tel->count_filtered(report.source);
      if (sink != nullptr) {
        obs::TraceEvent event;
        event.kind = "drop";
        event.phase = obs::kPhaseFilterDrop;
        event.node = at_node;
        event.peer = report.source;
        event.report = report.id;
        event.isolevel = report.isolevel;
        sink->emit(event);
      }
      continue;
    }
    kept.push_back(report);
    if (bucket == nullptr) bucket = add_bucket(report.isolevel);
    bucket->members.push_back(kept.size() - 1);
  }
  if (dropped > 0) obs::count("filter.dropped", static_cast<double>(dropped));
}

template void InNetworkFilter::merge(std::vector<IsolineReport>& kept,
                                     std::span<const IsolineReport> incoming,
                                     double* ops, int at_node) const;
template void InNetworkFilter::merge(
    std::vector<IsolineReport, ArenaAlloc<IsolineReport>>& kept,
    std::span<const IsolineReport> incoming, double* ops, int at_node) const;

std::vector<IsolineReport> InNetworkFilter::filter(
    std::vector<IsolineReport> reports, double* ops) const {
  std::vector<IsolineReport> kept;
  kept.reserve(reports.size());
  merge(kept, reports, ops);
  return kept;
}

}  // namespace isomap
