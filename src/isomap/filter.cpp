#include "isomap/filter.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace isomap {

InNetworkFilter::InNetworkFilter(double angular_deg, double distance)
    : angular_rad_(angular_deg * M_PI / 180.0), distance_(distance) {
  if (angular_deg < 0.0 || distance < 0.0)
    throw std::invalid_argument("InNetworkFilter: negative threshold");
}

bool InNetworkFilter::redundant(const IsolineReport& a,
                                const IsolineReport& b) const {
  if (a.isolevel != b.isolevel) return false;
  if (a.position.distance_to(b.position) >= distance_) return false;
  return angle_between(a.gradient, b.gradient) < angular_rad_;
}

void InNetworkFilter::merge(std::vector<IsolineReport>& kept,
                            const std::vector<IsolineReport>& incoming,
                            double* ops, int at_node) const {
  // Resolve the observation context once per merge, not per comparison.
  obs::TraceSink* const sink = obs::trace();
  std::size_t dropped = 0;
  for (const auto& report : incoming) {
    bool drop = false;
    for (const auto& existing : kept) {
      if (ops) *ops += kOpsPerComparison;
      if (redundant(existing, report)) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++dropped;
      if (sink != nullptr) {
        obs::TraceEvent event;
        event.kind = "drop";
        event.phase = obs::kPhaseFilterDrop;
        event.node = at_node;
        event.peer = report.source;
        event.isolevel = report.isolevel;
        sink->emit(event);
      }
      continue;
    }
    kept.push_back(report);
  }
  if (dropped > 0) obs::count("filter.dropped", static_cast<double>(dropped));
}

std::vector<IsolineReport> InNetworkFilter::filter(
    std::vector<IsolineReport> reports, double* ops) const {
  std::vector<IsolineReport> kept;
  kept.reserve(reports.size());
  merge(kept, reports, ops);
  return kept;
}

}  // namespace isomap
