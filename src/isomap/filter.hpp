#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "isomap/query.hpp"
#include "isomap/report.hpp"

namespace isomap {

/// The parameterized in-network filter of Section 3.5. Two reports of the
/// same isolevel are *redundant* when both their angular separation s_a
/// (angle between the gradient directions) and distance separation s_d
/// (distance between positions) fall below the thresholds; the filter then
/// drops one of the pair. Intermediate nodes apply the filter recursively
/// to the report sets flowing through them.
class InNetworkFilter {
 public:
  /// Thresholds: `angular_deg` in degrees, `distance` in field units.
  InNetworkFilter(double angular_deg, double distance);

  static InNetworkFilter from_query(const ContourQuery& query) {
    return InNetworkFilter(query.angular_separation_deg,
                           query.distance_separation);
  }

  double angular_threshold_rad() const { return angular_rad_; }
  double distance_threshold() const { return distance_; }

  /// True when the pair is redundant under the thresholds. Reports of
  /// different isolevels are never redundant.
  bool redundant(const IsolineReport& a, const IsolineReport& b) const;

  /// Merge a batch of incoming reports into `kept`, dropping redundant
  /// ones. Earlier-kept reports win ties (the paper drops "one of the
  /// two"). `ops` (if non-null) accumulates the comparison cost charged to
  /// the filtering node — each pairwise comparison is a handful of
  /// arithmetic operations, O(N_rep^2) network-wide (Section 4.2).
  ///
  /// `at_node` (>= 0) identifies the filtering node for observability:
  /// when an obs::TraceSink is active, every dropped report is emitted as
  /// a per-hop "drop" event carrying the node, the dropped report's
  /// source and its isolevel — the event-by-event view of Fig. 13.
  ///
  /// Templated over the kept vector's allocator so the protocol's
  /// arena-backed convergecast buffers (see round_arena.hpp) filter in
  /// place; instantiated in filter.cpp for std::allocator and ArenaAlloc.
  template <typename Alloc>
  void merge(std::vector<IsolineReport, Alloc>& kept,
             std::span<const IsolineReport> incoming, double* ops = nullptr,
             int at_node = -1) const;

  void merge(std::vector<IsolineReport>& kept,
             std::initializer_list<IsolineReport> incoming,
             double* ops = nullptr, int at_node = -1) const {
    merge(kept,
          std::span<const IsolineReport>(incoming.begin(), incoming.size()),
          ops, at_node);
  }

  /// Filter a whole set in one pass (order-dependent, first-wins).
  std::vector<IsolineReport> filter(std::vector<IsolineReport> reports,
                                    double* ops = nullptr) const;

  /// Arithmetic cost charged per pairwise comparison.
  static constexpr double kOpsPerComparison = 16.0;

 private:
  double angular_rad_;
  double distance_;
};

}  // namespace isomap
