#include "isomap/fingerprint.hpp"

#include <bit>

namespace isomap {

std::uint64_t fingerprint_reports(const std::vector<IsolineReport>& reports) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    h = (h ^ x) * 0x2545f4914f6cdd1dull;
  };
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  mix(reports.size());
  for (const auto& r : reports) {
    mix(bits(r.isolevel));
    mix(bits(r.position.x));
    mix(bits(r.position.y));
    mix(bits(r.gradient.x));
    mix(bits(r.gradient.y));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.source)));
  }
  return h;
}

}  // namespace isomap
