#pragma once

#include <cstdint>
#include <vector>

#include "isomap/report.hpp"

namespace isomap {

/// Word-at-a-time hash over the wire-relevant fields of a report set —
/// the per-level round fingerprint of the continuous engine's sink phase,
/// and the cache key the map service builds response keys from (see
/// docs/SERVICE.md "Cache-key semantics").
///
/// The mixer is a splitmix64-style avalanche per 64-bit field: cheap,
/// well-spread, and a pure function of the report bits (bit-pattern
/// equality, so +0.0 and -0.0 hash differently — matching the incremental
/// engine's "unchanged" notion). It is NOT stable across versions and
/// carries the usual 64-bit collision odds; consumers that need certainty
/// back it with an exact comparison (the incremental engine retains the
/// report copy; the service offers an oracle mode that rebuilds and
/// diffs).
std::uint64_t fingerprint_reports(const std::vector<IsolineReport>& reports);

}  // namespace isomap
