#include "isomap/node_selection.hpp"

#include <algorithm>
#include <cmath>

#include "exec/exec.hpp"
#include "obs/obs.hpp"

namespace isomap {
namespace {

/// Per-entry observability: one "note" event per (node, isolevel) the
/// self-selection admits, so a trace shows exactly which nodes joined
/// which isoline (the raw material of Fig. 9's report-density view).
void trace_selection(obs::TraceSink* sink, int node, double isolevel) {
  if (sink == nullptr) return;
  obs::TraceEvent event;
  event.kind = "note";
  event.phase = obs::kPhaseSelect;
  event.node = node;
  event.isolevel = isolevel;
  sink->emit(event);
}

/// Tile-block size of the parallel selection sweep. Per-node work is
/// O(levels + deg), so blocks this size amortise chunk handout while a
/// 10^6-node sweep still splits into ~500 blocks of parallel slack.
constexpr std::size_t kSelectTileBlock = 2048;

/// One tile block's selection output, filled by a pool worker. Entries
/// are in ascending node order within the block; blocks concatenated in
/// block order reproduce the serial sweep's entry order exactly.
struct SelectionBlock {
  std::vector<SelectionEntry> entries;
  std::size_t candidates = 0;
};

/// Shared parallel driver for both selection variants: evaluate(node,
/// out_entries) must be pure (no obs, no shared writes — it runs on pool
/// workers) and return the node's modelled ops; ops_per_node slots are
/// disjoint per node. The serial tail merges in block order: per-entry
/// trace events, the candidate total and the final entry vector come out
/// identical to the old single-thread sweep at any thread count.
template <typename EvaluateFn>
std::vector<SelectionEntry> select_over_blocks(
    const CommGraph& graph, std::vector<double>* ops_per_node,
    const EvaluateFn& evaluate) {
  const auto n = static_cast<std::size_t>(graph.size());
  if (ops_per_node) ops_per_node->assign(n, 0.0);

  const TileBlocks blocks{n, kSelectTileBlock};
  std::vector<SelectionBlock> per_block(blocks.count());
  exec::parallel_for_blocks(
      blocks, [&](std::size_t b, std::size_t begin, std::size_t end) {
        SelectionBlock& out = per_block[b];
        for (std::size_t u = begin; u < end; ++u) {
          const int node = static_cast<int>(u);
          if (!graph.alive(node)) continue;
          double ops = 0.0;
          out.candidates += evaluate(node, out.entries, ops);
          if (ops_per_node) (*ops_per_node)[u] = ops;
        }
      });

  std::size_t total = 0;
  for (const SelectionBlock& blk : per_block) total += blk.entries.size();
  std::vector<SelectionEntry> selected;
  selected.reserve(total);
  obs::TraceSink* const sink = obs::trace();
  std::size_t candidates = 0;
  for (const SelectionBlock& blk : per_block) {
    candidates += blk.candidates;
    for (const SelectionEntry& e : blk.entries) {
      selected.push_back(e);
      trace_selection(sink, e.node, e.isolevel);
    }
  }
  if (candidates > 0)
    obs::count("select.candidates", static_cast<double>(candidates));
  return selected;
}

}  // namespace

bool is_candidate(double reading, double isolevel, double epsilon) {
  return std::abs(reading - isolevel) <= epsilon;
}

std::pair<int, int> level_rank(const std::vector<double>& levels, double v) {
  const auto lb = std::lower_bound(levels.begin(), levels.end(), v);
  const auto ub = std::upper_bound(levels.begin(), levels.end(), v);
  return {static_cast<int>(lb - levels.begin()),
          static_cast<int>(ub - levels.begin())};
}

NodeSelectionResult evaluate_node_selection(const CommGraph& graph,
                                            const std::vector<double>& readings,
                                            int node,
                                            const std::vector<double>& levels,
                                            double epsilon,
                                            std::vector<int>& admitted) {
  admitted.clear();
  NodeSelectionResult result;
  const double v = readings[static_cast<std::size_t>(node)];
  // The modelled charge covers the full per-level candidate scan a real
  // node performs; the banded window below is a simulator shortcut that
  // provably visits every candidate level (see the header comment).
  result.ops = static_cast<double>(levels.size());
  auto lo = std::lower_bound(levels.begin(), levels.end(), v - epsilon);
  auto hi = std::upper_bound(levels.begin(), levels.end(), v + epsilon);
  if (lo != levels.begin()) --lo;
  if (hi != levels.end()) ++hi;
  const auto neighbours = graph.neighbour_span(node);
  for (auto it = lo; it != hi; ++it) {
    const double lambda = *it;
    if (!is_candidate(v, lambda, epsilon)) continue;
    ++result.candidates;
    // Check the crossing condition against 1-hop neighbours.
    bool crossing = false;
    for (int nb : neighbours) {
      result.ops += 2.0;
      const double nv = readings[static_cast<std::size_t>(nb)];
      if ((v < lambda && lambda < nv) || (nv < lambda && lambda < v)) {
        crossing = true;
        break;
      }
    }
    if (crossing) admitted.push_back(static_cast<int>(it - levels.begin()));
  }
  return result;
}

bool is_isoline_node(double reading,
                     const std::vector<double>& neighbour_readings,
                     double isolevel, double epsilon) {
  if (!is_candidate(reading, isolevel, epsilon)) return false;
  for (double nv : neighbour_readings) {
    const bool crossing = (reading < isolevel && isolevel < nv) ||
                          (nv < isolevel && isolevel < reading);
    if (crossing) return true;
  }
  return false;
}

std::vector<SelectionEntry> select_isoline_nodes_adaptive(
    const CommGraph& graph, const Deployment& deployment,
    const std::vector<double>& readings, const ContourQuery& query,
    double strip_width, std::vector<double>* ops_per_node) {
  const auto levels = query.isolevels();
  return select_over_blocks(
      graph, ops_per_node,
      [&](int node, std::vector<SelectionEntry>& entries,
          double& out_ops) -> std::size_t {
        const double v = readings[static_cast<std::size_t>(node)];
        const Vec2 pos = deployment.node(node).pos;

        // Local slope estimate from the steepest 1-hop difference.
        double slope = 0.0;
        double ops = 0.0;
        for (int nb : graph.neighbour_span(node)) {
          ops += 4.0;
          const double dist = pos.distance_to(deployment.node(nb).pos);
          if (dist <= 1e-9) continue;
          slope = std::max(
              slope,
              std::abs(readings[static_cast<std::size_t>(nb)] - v) / dist);
        }
        const double eps = slope > 0.0 ? 0.5 * strip_width * slope
                                       : query.epsilon();

        ops += static_cast<double>(levels.size());
        std::size_t candidates = 0;
        for (double lambda : levels) {
          if (!is_candidate(v, lambda, eps)) continue;
          ++candidates;
          bool crossing = false;
          for (int nb : graph.neighbour_span(node)) {
            ops += 2.0;
            const double nv = readings[static_cast<std::size_t>(nb)];
            if ((v < lambda && lambda < nv) || (nv < lambda && lambda < v)) {
              crossing = true;
              break;
            }
          }
          if (crossing) entries.push_back({node, lambda});
        }
        out_ops = ops;
        return candidates;
      });
}

std::vector<SelectionEntry> select_isoline_nodes(
    const CommGraph& graph, const std::vector<double>& readings,
    const ContourQuery& query, std::vector<double>* ops_per_node) {
  const auto levels = query.isolevels();
  const double eps = query.epsilon();
  // One admitted-index scratch per block, not per node: the driver calls
  // the evaluator from a single worker per block, but different blocks
  // run concurrently, so the scratch must live inside the closure's
  // per-call frame. thread_local keeps it allocation-free across nodes
  // while staying private to each pool thread.
  return select_over_blocks(
      graph, ops_per_node,
      [&](int node, std::vector<SelectionEntry>& entries,
          double& out_ops) -> std::size_t {
        thread_local std::vector<int> admitted;
        const NodeSelectionResult result = evaluate_node_selection(
            graph, readings, node, levels, eps, admitted);
        for (int idx : admitted)
          entries.push_back({node, levels[static_cast<std::size_t>(idx)]});
        out_ops = result.ops;
        return static_cast<std::size_t>(result.candidates);
      });
}

}  // namespace isomap
