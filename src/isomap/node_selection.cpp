#include "isomap/node_selection.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace isomap {
namespace {

/// Per-entry observability: one "note" event per (node, isolevel) the
/// self-selection admits, so a trace shows exactly which nodes joined
/// which isoline (the raw material of Fig. 9's report-density view).
void trace_selection(obs::TraceSink* sink, int node, double isolevel) {
  if (sink == nullptr) return;
  obs::TraceEvent event;
  event.kind = "note";
  event.phase = obs::kPhaseSelect;
  event.node = node;
  event.isolevel = isolevel;
  sink->emit(event);
}

}  // namespace

bool is_candidate(double reading, double isolevel, double epsilon) {
  return std::abs(reading - isolevel) <= epsilon;
}

bool is_isoline_node(double reading,
                     const std::vector<double>& neighbour_readings,
                     double isolevel, double epsilon) {
  if (!is_candidate(reading, isolevel, epsilon)) return false;
  for (double nv : neighbour_readings) {
    const bool crossing = (reading < isolevel && isolevel < nv) ||
                          (nv < isolevel && isolevel < reading);
    if (crossing) return true;
  }
  return false;
}

std::vector<SelectionEntry> select_isoline_nodes_adaptive(
    const CommGraph& graph, const Deployment& deployment,
    const std::vector<double>& readings, const ContourQuery& query,
    double strip_width, std::vector<double>* ops_per_node) {
  const auto levels = query.isolevels();
  std::vector<SelectionEntry> selected;
  obs::TraceSink* const sink = obs::trace();
  std::size_t candidates = 0;
  if (ops_per_node)
    ops_per_node->assign(static_cast<std::size_t>(graph.size()), 0.0);

  for (int node = 0; node < graph.size(); ++node) {
    if (!graph.alive(node)) continue;
    const double v = readings[static_cast<std::size_t>(node)];
    const Vec2 pos = deployment.node(node).pos;

    // Local slope estimate from the steepest 1-hop difference.
    double slope = 0.0;
    double ops = 0.0;
    for (int nb : graph.neighbours(node)) {
      ops += 4.0;
      const double dist = pos.distance_to(deployment.node(nb).pos);
      if (dist <= 1e-9) continue;
      slope = std::max(
          slope,
          std::abs(readings[static_cast<std::size_t>(nb)] - v) / dist);
    }
    const double eps = slope > 0.0 ? 0.5 * strip_width * slope
                                   : query.epsilon();

    ops += static_cast<double>(levels.size());
    for (double lambda : levels) {
      if (!is_candidate(v, lambda, eps)) continue;
      ++candidates;
      bool crossing = false;
      for (int nb : graph.neighbours(node)) {
        ops += 2.0;
        const double nv = readings[static_cast<std::size_t>(nb)];
        if ((v < lambda && lambda < nv) || (nv < lambda && lambda < v)) {
          crossing = true;
          break;
        }
      }
      if (crossing) {
        selected.push_back({node, lambda});
        trace_selection(sink, node, lambda);
      }
    }
    if (ops_per_node) (*ops_per_node)[static_cast<std::size_t>(node)] = ops;
  }
  if (candidates > 0)
    obs::count("select.candidates", static_cast<double>(candidates));
  return selected;
}

std::vector<SelectionEntry> select_isoline_nodes(
    const CommGraph& graph, const std::vector<double>& readings,
    const ContourQuery& query, std::vector<double>* ops_per_node) {
  const auto levels = query.isolevels();
  const double eps = query.epsilon();
  std::vector<SelectionEntry> selected;
  obs::TraceSink* const sink = obs::trace();
  std::size_t candidates = 0;

  if (ops_per_node)
    ops_per_node->assign(static_cast<std::size_t>(graph.size()), 0.0);

  for (int node = 0; node < graph.size(); ++node) {
    if (!graph.alive(node)) continue;
    const double v = readings[static_cast<std::size_t>(node)];
    double ops = static_cast<double>(levels.size());  // Candidate scans.
    for (double lambda : levels) {
      if (!is_candidate(v, lambda, eps)) continue;
      ++candidates;
      // Check the crossing condition against 1-hop neighbours.
      bool crossing = false;
      for (int nb : graph.neighbours(node)) {
        ops += 2.0;
        const double nv = readings[static_cast<std::size_t>(nb)];
        if ((v < lambda && lambda < nv) || (nv < lambda && lambda < v)) {
          crossing = true;
          break;
        }
      }
      if (crossing) {
        selected.push_back({node, lambda});
        trace_selection(sink, node, lambda);
      }
    }
    if (ops_per_node) (*ops_per_node)[static_cast<std::size_t>(node)] = ops;
  }
  if (candidates > 0)
    obs::count("select.candidates", static_cast<double>(candidates));
  return selected;
}

}  // namespace isomap
