#include "isomap/node_selection.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace isomap {
namespace {

/// Per-entry observability: one "note" event per (node, isolevel) the
/// self-selection admits, so a trace shows exactly which nodes joined
/// which isoline (the raw material of Fig. 9's report-density view).
void trace_selection(obs::TraceSink* sink, int node, double isolevel) {
  if (sink == nullptr) return;
  obs::TraceEvent event;
  event.kind = "note";
  event.phase = obs::kPhaseSelect;
  event.node = node;
  event.isolevel = isolevel;
  sink->emit(event);
}

}  // namespace

bool is_candidate(double reading, double isolevel, double epsilon) {
  return std::abs(reading - isolevel) <= epsilon;
}

std::pair<int, int> level_rank(const std::vector<double>& levels, double v) {
  const auto lb = std::lower_bound(levels.begin(), levels.end(), v);
  const auto ub = std::upper_bound(levels.begin(), levels.end(), v);
  return {static_cast<int>(lb - levels.begin()),
          static_cast<int>(ub - levels.begin())};
}

NodeSelectionResult evaluate_node_selection(const CommGraph& graph,
                                            const std::vector<double>& readings,
                                            int node,
                                            const std::vector<double>& levels,
                                            double epsilon,
                                            std::vector<int>& admitted) {
  admitted.clear();
  NodeSelectionResult result;
  const double v = readings[static_cast<std::size_t>(node)];
  // The modelled charge covers the full per-level candidate scan a real
  // node performs; the banded window below is a simulator shortcut that
  // provably visits every candidate level (see the header comment).
  result.ops = static_cast<double>(levels.size());
  auto lo = std::lower_bound(levels.begin(), levels.end(), v - epsilon);
  auto hi = std::upper_bound(levels.begin(), levels.end(), v + epsilon);
  if (lo != levels.begin()) --lo;
  if (hi != levels.end()) ++hi;
  const auto neighbours = graph.neighbour_span(node);
  for (auto it = lo; it != hi; ++it) {
    const double lambda = *it;
    if (!is_candidate(v, lambda, epsilon)) continue;
    ++result.candidates;
    // Check the crossing condition against 1-hop neighbours.
    bool crossing = false;
    for (int nb : neighbours) {
      result.ops += 2.0;
      const double nv = readings[static_cast<std::size_t>(nb)];
      if ((v < lambda && lambda < nv) || (nv < lambda && lambda < v)) {
        crossing = true;
        break;
      }
    }
    if (crossing) admitted.push_back(static_cast<int>(it - levels.begin()));
  }
  return result;
}

bool is_isoline_node(double reading,
                     const std::vector<double>& neighbour_readings,
                     double isolevel, double epsilon) {
  if (!is_candidate(reading, isolevel, epsilon)) return false;
  for (double nv : neighbour_readings) {
    const bool crossing = (reading < isolevel && isolevel < nv) ||
                          (nv < isolevel && isolevel < reading);
    if (crossing) return true;
  }
  return false;
}

std::vector<SelectionEntry> select_isoline_nodes_adaptive(
    const CommGraph& graph, const Deployment& deployment,
    const std::vector<double>& readings, const ContourQuery& query,
    double strip_width, std::vector<double>* ops_per_node) {
  const auto levels = query.isolevels();
  std::vector<SelectionEntry> selected;
  obs::TraceSink* const sink = obs::trace();
  std::size_t candidates = 0;
  if (ops_per_node)
    ops_per_node->assign(static_cast<std::size_t>(graph.size()), 0.0);

  for (int node = 0; node < graph.size(); ++node) {
    if (!graph.alive(node)) continue;
    const double v = readings[static_cast<std::size_t>(node)];
    const Vec2 pos = deployment.node(node).pos;

    // Local slope estimate from the steepest 1-hop difference.
    double slope = 0.0;
    double ops = 0.0;
    for (int nb : graph.neighbour_span(node)) {
      ops += 4.0;
      const double dist = pos.distance_to(deployment.node(nb).pos);
      if (dist <= 1e-9) continue;
      slope = std::max(
          slope,
          std::abs(readings[static_cast<std::size_t>(nb)] - v) / dist);
    }
    const double eps = slope > 0.0 ? 0.5 * strip_width * slope
                                   : query.epsilon();

    ops += static_cast<double>(levels.size());
    for (double lambda : levels) {
      if (!is_candidate(v, lambda, eps)) continue;
      ++candidates;
      bool crossing = false;
      for (int nb : graph.neighbour_span(node)) {
        ops += 2.0;
        const double nv = readings[static_cast<std::size_t>(nb)];
        if ((v < lambda && lambda < nv) || (nv < lambda && lambda < v)) {
          crossing = true;
          break;
        }
      }
      if (crossing) {
        selected.push_back({node, lambda});
        trace_selection(sink, node, lambda);
      }
    }
    if (ops_per_node) (*ops_per_node)[static_cast<std::size_t>(node)] = ops;
  }
  if (candidates > 0)
    obs::count("select.candidates", static_cast<double>(candidates));
  return selected;
}

std::vector<SelectionEntry> select_isoline_nodes(
    const CommGraph& graph, const std::vector<double>& readings,
    const ContourQuery& query, std::vector<double>* ops_per_node) {
  const auto levels = query.isolevels();
  const double eps = query.epsilon();
  std::vector<SelectionEntry> selected;
  obs::TraceSink* const sink = obs::trace();
  std::size_t candidates = 0;

  if (ops_per_node)
    ops_per_node->assign(static_cast<std::size_t>(graph.size()), 0.0);

  std::vector<int> admitted;
  for (int node = 0; node < graph.size(); ++node) {
    if (!graph.alive(node)) continue;
    const NodeSelectionResult result =
        evaluate_node_selection(graph, readings, node, levels, eps, admitted);
    candidates += static_cast<std::size_t>(result.candidates);
    for (int idx : admitted) {
      const double lambda = levels[static_cast<std::size_t>(idx)];
      selected.push_back({node, lambda});
      trace_selection(sink, node, lambda);
    }
    if (ops_per_node)
      (*ops_per_node)[static_cast<std::size_t>(node)] = result.ops;
  }
  if (candidates > 0)
    obs::count("select.candidates", static_cast<double>(candidates));
  return selected;
}

}  // namespace isomap
