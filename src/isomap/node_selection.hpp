#pragma once

#include <utility>
#include <vector>

#include "isomap/query.hpp"
#include "net/comm_graph.hpp"
#include "net/deployment.hpp"

namespace isomap {

/// Outcome of the distributed isoline-node self-selection (Definition 3.1)
/// for one node and one isolevel.
struct SelectionEntry {
  int node = -1;
  double isolevel = 0.0;
};

/// Runs the two-step self-selection of Definition 3.1 over all alive nodes
/// given their sensed `readings` (indexed by node id):
///
///  1. A node is a *candidate* for isolevel lambda when its reading lies in
///     the border region [lambda - eps, lambda + eps].
///  2. A candidate becomes an *isoline node* when some alive neighbour q
///     has lambda strictly between the two readings.
///
/// Both steps use only the node's own reading and its 1-hop neighbours'
/// readings, so the per-node cost is O(levels + deg) — the constant
/// overhead the paper claims. `ops` (per node, if non-null) is charged
/// accordingly.
std::vector<SelectionEntry> select_isoline_nodes(
    const CommGraph& graph, const std::vector<double>& readings,
    const ContourQuery& query, std::vector<double>* ops_per_node = nullptr);

/// Adaptive-epsilon variant (extension; see DESIGN.md): instead of the
/// fixed border half-width epsilon = 0.05 T, each node sizes its border
/// region from the *local slope* so the spatial width of the selected
/// strip is ~`strip_width` everywhere:
///
///   epsilon_i = 0.5 * strip_width * max_j |v_i - v_j| / dist(i, j)
///
/// (maximum over 1-hop neighbours; falls back to the query epsilon when
/// the neighbourhood is flat). A steep area no longer under-selects and a
/// flat area no longer floods the border region — the trade the paper's
/// Section 5 epsilon discussion gestures at, automated. The crossing
/// condition (Def. 3.1 part 2) is unchanged. Adds O(deg) ops per node.
std::vector<SelectionEntry> select_isoline_nodes_adaptive(
    const CommGraph& graph, const Deployment& deployment,
    const std::vector<double>& readings, const ContourQuery& query,
    double strip_width, std::vector<double>* ops_per_node = nullptr);

/// Modelled cost and candidate count of one node's Definition 3.1
/// evaluation (the admitted level indices go to a caller-owned vector).
struct NodeSelectionResult {
  double ops = 0.0;    ///< Modelled arithmetic charge for the node.
  int candidates = 0;  ///< Levels whose ε-band contains the reading.
};

/// Evaluate Definition 3.1 for one node against every level: `admitted`
/// receives the indices (into `levels`, ascending) the node self-selects
/// for. Shared by select_isoline_nodes and the continuous mapper's
/// incremental engine, so both produce identical entries, ops and
/// candidate counts by construction.
///
/// `levels` must be ascending (ContourQuery::isolevels() is). The level
/// loop runs over a banded candidate window located by binary search and
/// widened by one level per side; |reading - λ| <= ε stays the deciding
/// comparison for every level in the window, and the widening means a
/// borderline band-edge comparison can never be missed — the comparison
/// and the window arithmetic only disagree within rounding error of the
/// band edge, while any level outside the widened window sits a full
/// granularity beyond it. The admitted set, candidate count and modelled
/// ops are therefore exactly those of the full level scan.
NodeSelectionResult evaluate_node_selection(const CommGraph& graph,
                                            const std::vector<double>& readings,
                                            int node,
                                            const std::vector<double>& levels,
                                            double epsilon,
                                            std::vector<int>& admitted);

/// Relation signature of a reading against the ascending level list:
/// (#levels < v, #levels <= v). Two readings with equal signatures
/// compare identically (<, ==, >) against every level — exactly the
/// predicates Definition 3.1's crossing test uses — so swapping one for
/// the other cannot change any neighbour's selection outcome. The
/// incremental continuous engine uses this to decide whether a changed
/// reading can affect Definition 3.1 at all.
std::pair<int, int> level_rank(const std::vector<double>& levels, double v);

/// Candidate test for a single node/level (step 1 only); exposed for tests.
bool is_candidate(double reading, double isolevel, double epsilon);

/// Full isoline-node test for one node/level given neighbour readings.
bool is_isoline_node(double reading, const std::vector<double>& neighbour_readings,
                     double isolevel, double epsilon);

}  // namespace isomap
