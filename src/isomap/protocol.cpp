#include "isomap/protocol.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/exec.hpp"
#include "isomap/regression.hpp"
#include "isomap/round_arena.hpp"
#include "net/channel.hpp"
#include "obs/node_telemetry.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace isomap {

IsoMapProtocol::IsoMapProtocol(IsoMapOptions options)
    : options_(std::move(options)) {}

IsoMapResult IsoMapProtocol::run(const std::vector<double>& readings,
                                 const Deployment& deployment,
                                 const CommGraph& graph,
                                 const RoutingTree& tree,
                                 Ledger& ledger) const {
  const int n = deployment.size();
  if (readings.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("IsoMapProtocol: readings size != node count");
  const ContourQuery& query = options_.query;

  double dissemination_bytes = 0.0;
  if (options_.account_query_dissemination) {
    const obs::PhaseTimer timer(obs::kPhaseDisseminate);
    // The sink floods the query down the tree: one transmission per edge.
    for (int v = 0; v < n; ++v) {
      if (!tree.reachable(v) || v == tree.sink()) continue;
      ledger.transmit(tree.parent(v), v, IsoMapOptions::kQueryBytes);
      dissemination_bytes += IsoMapOptions::kQueryBytes;
    }
  }

  // --- Step 1: distributed isoline-node self-selection (Def. 3.1). ---
  obs::PhaseTimer select_timer(obs::kPhaseSelect);
  std::vector<double> selection_ops;
  const std::vector<SelectionEntry> selected =
      options_.adaptive_epsilon
          ? select_isoline_nodes_adaptive(graph, deployment, readings, query,
                                          graph.radio_range(),
                                          &selection_ops)
          : select_isoline_nodes(graph, readings, query, &selection_ops);
  for (int v = 0; v < n; ++v)
    if (graph.alive(v)) ledger.compute(v, selection_ops[static_cast<std::size_t>(v)]);
  select_timer.stop();

  // --- Step 2: local measurement and report generation (Section 3.3). ---
  // Each distinct isoline node performs one neighbourhood exchange and one
  // regression, shared across all isolevels it matched. Per-node state is
  // kept in flat node-indexed tables (no tree maps): selection emits
  // entries grouped by node, so first-appearance dedup via a flag array
  // yields the same distinct-node order the old std::map walk produced.
  std::vector<Vec2> descent(static_cast<std::size_t>(n));
  std::vector<unsigned char> is_isoline(static_cast<std::size_t>(n), 0);
  std::vector<int> distinct_nodes;
  for (const auto& entry : selected) {
    auto& flag = is_isoline[static_cast<std::size_t>(entry.node)];
    if (flag) continue;
    flag = 1;
    distinct_nodes.push_back(entry.node);
  }

  obs::count("select.entries", static_cast<double>(selected.size()));
  obs::count("select.distinct_nodes",
             static_cast<double>(distinct_nodes.size()));

  obs::PhaseTimer fit_timer(obs::kPhaseGradientFit);
  double measurement_bytes = 0.0;
  std::vector<bool> has_gradient(static_cast<std::size_t>(n), false);
  // Tile-parallel gradient fits. Workers fill one slot per distinct node
  // — the k-hop scope (thread-safe: epoch-stamped thread_local scratch in
  // CommGraph), the sample count and the pure SoA fit — touching nothing
  // shared. Everything order-sensitive (Ledger charges with their cost
  // trace events, the regression metrics, the output tables) happens in
  // the serial merge below, walking slots in distinct-node order, which
  // is exactly the sequence the serial loop emitted: charges first, then
  // fit metrics, then the unconditional compute charge.
  struct FitSlot {
    std::vector<std::pair<int, int>> scope;  ///< (neighbour, hop distance).
    Vec2 descent{};
    std::size_t samples = 0;
    bool has_fit = false;
  };
  std::vector<FitSlot> slots(distinct_nodes.size());
  // Fits are few (O(sqrt(n) * levels)) and each costs O(scope), so small
  // blocks keep all workers fed.
  const TileBlocks fit_blocks{distinct_nodes.size(), 64};
  exec::parallel_for_blocks(
      fit_blocks, [&](std::size_t, std::size_t begin, std::size_t end) {
        // SoA sample scratch reused across this block's isoline nodes:
        // the regression reads unit-stride coordinate/value arrays, and
        // the arrays keep their capacity across fits.
        std::vector<double> sample_xs, sample_ys, sample_vs;
        for (std::size_t i = begin; i < end; ++i) {
          const int node = distinct_nodes[i];
          FitSlot& slot = slots[i];
          slot.scope =
              graph.k_hop_neighbours_with_distance(node, query.regression_hops);

          // Regression runs on the positions the nodes *believe* (their
          // localization output); the sensed values come from the physical
          // positions.
          sample_xs.clear();
          sample_ys.clear();
          sample_vs.clear();
          sample_xs.reserve(slot.scope.size() + 1);
          sample_ys.reserve(slot.scope.size() + 1);
          sample_vs.reserve(slot.scope.size() + 1);
          const auto push_sample = [&](int v) {
            const Vec2 p = deployment.node(v).reported_pos();
            sample_xs.push_back(p.x);
            sample_ys.push_back(p.y);
            sample_vs.push_back(readings[static_cast<std::size_t>(v)]);
          };
          push_sample(node);
          for (const auto& [nb, dist] : slot.scope) push_sample(nb);

          slot.samples = sample_xs.size();
          if (const auto fit = fit_plane_soa(sample_xs, sample_ys, sample_vs)) {
            slot.has_fit = true;
            slot.descent = fit->descent_direction();
          }
        }
      });

  for (std::size_t i = 0; i < distinct_nodes.size(); ++i) {
    const int node = distinct_nodes[i];
    const FitSlot& slot = slots[i];

    // Traffic: one probe broadcast heard by the 1-hop neighbours (k-hop
    // scopes rebroadcast it hop by hop), then one <value, position> reply
    // per scoped neighbour, relayed over its hop distance back to the
    // isoline node.
    if (options_.account_local_measurement) {
      ledger.broadcast(node, graph.neighbours(node),
                       IsoMapOptions::kProbeBytes);
      measurement_bytes += IsoMapOptions::kProbeBytes;
      for (const auto& [nb, dist] : slot.scope) {
        const double reply = IsoMapOptions::kSampleTupleBytes * dist;
        ledger.transmit(nb, node, reply);
        measurement_bytes += reply;
      }
    }

    record_fit_metrics(slot.samples);
    if (!slot.has_fit) record_degenerate_fit();
    ledger.compute(node, slot.has_fit ? fit_plane_ops(slot.samples) : 0.0);
    if (slot.has_fit) {
      descent[static_cast<std::size_t>(node)] = slot.descent;
      has_gradient[static_cast<std::size_t>(node)] = true;
    }
  }
  fit_timer.stop();

  // --- Step 3: convergecast with in-network filtering (Section 3.5). ---
  obs::PhaseTimer route_timer(obs::kPhaseReportRoute);
  // Flight-recorder context, resolved once per run: the per-node telemetry
  // table gets report counters and hop distances, the trace sink gets one
  // "span" event per report hop (keyed by the report's causal id) so the
  // full source->relays->sink path reconstructs from the JSONL trace.
  obs::NodeTelemetry* const tel = obs::telemetry();
  obs::TraceSink* const span_sink = obs::trace();
  // Per-node convergecast buffers live in a per-round arena: the outer
  // table is one flat vector, and every inner report vector bump-allocates
  // from the arena instead of hitting the heap once per node.
  RoundArena arena;
  using ReportVec = std::vector<IsolineReport, ArenaAlloc<IsolineReport>>;
  std::vector<ReportVec> buffer(static_cast<std::size_t>(n),
                                ReportVec(ArenaAlloc<IsolineReport>(arena)));
  int generated = 0;
  for (const auto& entry : selected) {
    if (!has_gradient[static_cast<std::size_t>(entry.node)]) continue;
    if (!tree.reachable(entry.node)) continue;
    auto& slot = buffer[static_cast<std::size_t>(entry.node)];
    slot.push_back({entry.isolevel, deployment.node(entry.node).reported_pos(),
                    descent[static_cast<std::size_t>(entry.node)], entry.node});
    slot.back().id = generated;
    if (tel != nullptr) tel->count_generated(entry.node);
    if (span_sink != nullptr) {
      obs::TraceEvent event;
      event.kind = "span";
      event.phase = obs::current_phase();
      event.node = entry.node;
      event.report = generated;
      event.hop = 0;
      event.isolevel = entry.isolevel;
      span_sink->emit(event);
    }
    ++generated;
  }

  const InNetworkFilter filter = InNetworkFilter::from_query(query);
  Channel channel =
      Channel::make(options_.link_loss, options_.link_retries,
                    options_.link_seed, options_.link_burst,
                    options_.link_impair, options_.link_arq);
  // With the impairment pipeline active, accumulate each report's summed
  // per-hop ARQ completion time (indexed by the report's causal id) so
  // end-to-end latency is measured, not synthetic.
  const bool impaired = channel.impaired();
  std::vector<double> latency_by_id;
  if (impaired)
    latency_by_id.assign(static_cast<std::size_t>(generated), 0.0);

  // Mid-run fault machinery. With faults active the convergecast works on
  // a private copy of the routing tree so the repair can rewire it; the
  // injector advances along convergecast progress and kills nodes on
  // schedule. With no faults the injector is empty and the loop below
  // reduces to the classic single leaves-first pass over the static tree.
  FaultInjector injector(options_.fault.active()
                             ? make_fault_plan(options_.fault, deployment,
                                               tree.sink())
                             : FaultPlan(),
                         deployment, tree.sink());
  const bool faults = !injector.plan_empty();
  std::optional<RoutingTree> healed;
  if (faults) healed.emplace(tree);
  const RoutingTree& route = faults ? *healed : tree;

  // Seed the telemetry hop map from the convergecast tree; repair() will
  // refresh it whenever the tree rewires mid-run.
  if (tel != nullptr)
    for (int v = 0; v < n; ++v) tel->set_hops(v, route.level(v));

  // One "loss" trace event per dead report. Channel losses name the next
  // hop in `peer`; crash losses leave it -1 (the report died in place).
  const auto emit_loss = [&](const IsolineReport& r, int at, int next_hop) {
    if (span_sink == nullptr) return;
    obs::TraceEvent event;
    event.kind = "loss";
    event.phase = obs::current_phase();
    event.node = at;
    event.peer = next_hop;
    event.report = r.id;
    event.hop = r.hops;
    event.isolevel = r.isolevel;
    span_sink->emit(event);
  };

  int lost_crash = 0;
  int lost_channel = 0;
  int filtered = 0;
  int repairs = 0;
  double repair_bytes = 0.0;

  // Fire every fault event due at `progress`: reports buffered at a dying
  // node die with it, then (when self-healing) the tree repairs itself —
  // orphans beacon and re-attach, charged to the ledger under their own
  // phase so repair energy is separable from report routing.
  // Returns how many orphans the repair re-attached so the convergecast
  // loop can schedule another epoch for their stranded reports even when
  // nothing else moved this epoch.
  const auto apply_faults = [&](double progress) -> int {
    if (!faults) return 0;
    const std::vector<int> died = injector.advance(progress);
    if (died.empty()) return 0;
    for (int c : died) {
      auto& stranded = buffer[static_cast<std::size_t>(c)];
      for (const auto& r : stranded) {
        if (tel != nullptr) tel->count_lost_crash(r.source);
        emit_loss(r, c, -1);
      }
      lost_crash += static_cast<int>(stranded.size());
      stranded.clear();
    }
    if (!options_.fault.self_healing) return 0;
    const obs::PhaseTimer repair_timer(obs::kPhaseRepair);
    const RoutingTree::RepairReport rep =
        healed->repair(graph, injector.alive_mask(), &ledger);
    repairs += rep.reattached;
    repair_bytes += rep.bytes;
    return rep.reattached;
  };

  double report_bytes = 0.0;
  TransmissionLog transmission_log;
  std::vector<double> level_bottleneck(
      static_cast<std::size_t>(route.depth()) + 1, 0.0);

  // Convergecast epochs. One leaves-first pass delivers everything on a
  // static tree; after a repair, reports re-routed through an
  // already-visited node wait for the next epoch (their new ancestors'
  // TDMA slots have passed), so epochs repeat until no report moves.
  // Every parent is strictly one level below its child — in the repaired
  // tree too — so each epoch moves every surviving report at least one
  // level down and the loop terminates within `depth` epochs.
  const double total_units =
      static_cast<double>(std::max(1, route.reachable_count() - 1));
  double units_done = 0.0;
  bool moved = true;
  int epochs = 0;
  while (moved && epochs <= n) {
    moved = false;
    ++epochs;
    const std::vector<int> order = route.post_order();  // Copy: repair
                                                        // rewrites it.
    for (int u : order) {
      if (u == route.sink()) continue;
      if (faults) {
        // A repair may re-attach orphans holding reports; give them an
        // epoch even if no other buffer moves in this one.
        if (apply_faults(std::min(1.0, units_done / total_units)) > 0)
          moved = true;
        units_done += 1.0;
        if (!injector.alive(u)) continue;  // Died; buffer already lost.
      }
      auto& outgoing = buffer[static_cast<std::size_t>(u)];
      if (outgoing.empty()) continue;
      if (!route.reachable(u)) continue;  // Orphan: swept after the loop.
      const int p = route.parent(u);
      if (faults && !injector.alive(p)) {
        // Dead next-hop and no repair (self-healing off): the node keeps
        // retrying into silence and the whole batch is stranded.
        for (const auto& r : outgoing) {
          if (tel != nullptr) tel->count_lost_crash(r.source);
          emit_loss(r, u, -1);
        }
        lost_crash += static_cast<int>(outgoing.size());
        outgoing.clear();
        moved = true;
        continue;
      }
      const double bytes = static_cast<double>(outgoing.size()) *
                               IsolineReport::kWireBytes +
                           options_.header_bytes;
      const auto lvl = static_cast<std::size_t>(route.level(u));
      if (lvl >= level_bottleneck.size()) level_bottleneck.resize(lvl + 1, 0.0);
      level_bottleneck[lvl] = std::max(level_bottleneck[lvl], bytes);
      const Channel::Transfer transfer = channel.transfer(u, p, bytes, ledger);
      report_bytes += bytes;
      if (options_.record_transmissions)
        transmission_log.push_back({u, p, bytes, route.level(u)});
      if (transfer.delivered) {
        // Advance each report one hop before handing the batch on, so the
        // copies the filter keeps in the parent's inbox already carry the
        // incremented hop count. Relay credit goes to the forwarding node
        // (not the source re-sending its own report at hop 1).
        for (auto& r : outgoing) {
          ++r.hops;
          if (impaired)
            latency_by_id[static_cast<std::size_t>(r.id)] +=
                transfer.latency_s;
          if (tel != nullptr && r.source != u) tel->count_relayed(u);
          if (span_sink != nullptr) {
            obs::TraceEvent event;
            event.kind = "span";
            event.phase = obs::current_phase();
            event.node = u;
            event.peer = p;
            event.report = r.id;
            event.hop = r.hops;
            event.isolevel = r.isolevel;
            event.latency_s = impaired ? transfer.latency_s : -1.0;
            span_sink->emit(event);
          }
        }
        auto& inbox = buffer[static_cast<std::size_t>(p)];
        if (query.enable_filtering) {
          // The per-hop filter work is its own phase nested inside the
          // convergecast: its compute charges (and per-report drop events)
          // are attributed to filtering, not routing.
          const obs::PhaseTimer filter_timer(obs::kPhaseFilter);
          const std::size_t kept_before = inbox.size();
          double ops = 0.0;
          filter.merge(inbox, outgoing, &ops, p);
          ledger.compute(p, ops);
          filtered += static_cast<int>(outgoing.size() -
                                       (inbox.size() - kept_before));
        } else {
          inbox.insert(inbox.end(), outgoing.begin(), outgoing.end());
        }
      } else {
        for (const auto& r : outgoing) {
          if (tel != nullptr) tel->count_lost_channel(r.source);
          emit_loss(r, u, p);
        }
        lost_channel += static_cast<int>(outgoing.size());
      }
      outgoing.clear();
      moved = true;
    }
  }
  // Fire any faults scheduled after the last report hop, then account
  // every report still stuck at a non-sink node (orphans the repair could
  // not re-attach): nothing is dropped silently.
  apply_faults(1.0);
  for (int v = 0; v < n; ++v) {
    if (v == route.sink()) continue;
    auto& stuck = buffer[static_cast<std::size_t>(v)];
    for (const auto& r : stuck) {
      if (tel != nullptr) tel->count_lost_crash(r.source);
      emit_loss(r, v, -1);
    }
    lost_crash += static_cast<int>(stuck.size());
    stuck.clear();
  }
  route_timer.stop();
  obs::count("reports.generated", generated);
  if (filtered > 0) obs::count("reports.filtered", filtered);
  if (lost_channel > 0) obs::count("reports.lost_channel", lost_channel);
  if (lost_crash > 0) obs::count("reports.lost_crash", lost_crash);
  if (repairs > 0) obs::count("route.repairs", repairs);
  if (repair_bytes > 0.0) obs::count("route.repair_bytes", repair_bytes);

  // Copy the sink's slot out of the arena (O(sqrt(n) * levels) reports)
  // before the arena dies with this scope.
  const ReportVec& sink_slot = buffer[static_cast<std::size_t>(route.sink())];
  std::vector<IsolineReport> sink_reports(sink_slot.begin(), sink_slot.end());
  if (tel != nullptr)
    for (const auto& r : sink_reports) tel->count_delivered(r.source);
  obs::count("reports.delivered", static_cast<double>(sink_reports.size()));
  ContourMap map = ContourMapBuilder(deployment.bounds(), options_.regulation)
                       .build(sink_reports, query.isolevels());
  IsoMapResult result{.sink_reports = std::move(sink_reports),
                      .map = std::move(map),
                      .transmissions = std::move(transmission_log)};
  result.isoline_node_count = static_cast<int>(distinct_nodes.size());
  result.generated_reports = generated;
  result.delivered_reports = static_cast<int>(result.sink_reports.size());
  result.filtered_reports = filtered;
  result.lost_channel_reports = lost_channel;
  result.lost_crash_reports = lost_crash;
  result.crashed_nodes = injector.crash_count();
  result.route_repairs = repairs;
  result.repair_traffic_bytes = repair_bytes;
  result.report_traffic_bytes = report_bytes;
  result.measurement_traffic_bytes = measurement_bytes;
  result.dissemination_traffic_bytes = dissemination_bytes;
  for (double slot : level_bottleneck) result.bottleneck_bytes += slot;
  if (impaired && !result.sink_reports.empty()) {
    double first = 0.0, last = 0.0, sum = 0.0;
    bool any = false;
    for (const auto& r : result.sink_reports) {
      const double lat = latency_by_id[static_cast<std::size_t>(r.id)];
      if (!any) {
        first = last = lat;
        any = true;
      } else {
        first = std::min(first, lat);
        last = std::max(last, lat);
      }
      sum += lat;
    }
    result.e2e_first_latency_s = first;
    result.e2e_last_latency_s = last;
    result.e2e_mean_latency_s =
        sum / static_cast<double>(result.sink_reports.size());
    obs::gauge("latency.e2e_first_s", result.e2e_first_latency_s);
    obs::gauge("latency.e2e_last_s", result.e2e_last_latency_s);
    obs::gauge("latency.e2e_mean_s", result.e2e_mean_latency_s);
  }
  return result;
}

}  // namespace isomap
