#include "isomap/protocol.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "isomap/regression.hpp"
#include "net/channel.hpp"
#include "obs/obs.hpp"

namespace isomap {

IsoMapProtocol::IsoMapProtocol(IsoMapOptions options)
    : options_(std::move(options)) {}

IsoMapResult IsoMapProtocol::run(const std::vector<double>& readings,
                                 const Deployment& deployment,
                                 const CommGraph& graph,
                                 const RoutingTree& tree,
                                 Ledger& ledger) const {
  const int n = deployment.size();
  if (readings.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("IsoMapProtocol: readings size != node count");
  const ContourQuery& query = options_.query;

  double dissemination_bytes = 0.0;
  if (options_.account_query_dissemination) {
    const obs::PhaseTimer timer(obs::kPhaseDisseminate);
    // The sink floods the query down the tree: one transmission per edge.
    for (int v = 0; v < n; ++v) {
      if (!tree.reachable(v) || v == tree.sink()) continue;
      ledger.transmit(tree.parent(v), v, IsoMapOptions::kQueryBytes);
      dissemination_bytes += IsoMapOptions::kQueryBytes;
    }
  }

  // --- Step 1: distributed isoline-node self-selection (Def. 3.1). ---
  obs::PhaseTimer select_timer(obs::kPhaseSelect);
  std::vector<double> selection_ops;
  const std::vector<SelectionEntry> selected =
      options_.adaptive_epsilon
          ? select_isoline_nodes_adaptive(graph, deployment, readings, query,
                                          graph.radio_range(),
                                          &selection_ops)
          : select_isoline_nodes(graph, readings, query, &selection_ops);
  for (int v = 0; v < n; ++v)
    if (graph.alive(v)) ledger.compute(v, selection_ops[static_cast<std::size_t>(v)]);
  select_timer.stop();

  // --- Step 2: local measurement and report generation (Section 3.3). ---
  // Each distinct isoline node performs one neighbourhood exchange and one
  // regression, shared across all isolevels it matched.
  std::map<int, Vec2> descent_by_node;
  std::vector<int> distinct_nodes;
  for (const auto& entry : selected) {
    if (descent_by_node.count(entry.node)) continue;
    descent_by_node[entry.node] = Vec2{};
    distinct_nodes.push_back(entry.node);
  }

  obs::count("select.entries", static_cast<double>(selected.size()));
  obs::count("select.distinct_nodes",
             static_cast<double>(distinct_nodes.size()));

  obs::PhaseTimer fit_timer(obs::kPhaseGradientFit);
  double measurement_bytes = 0.0;
  std::vector<bool> has_gradient(static_cast<std::size_t>(n), false);
  for (int node : distinct_nodes) {
    const std::vector<std::pair<int, int>> scope =
        graph.k_hop_neighbours_with_distance(node, query.regression_hops);

    // Traffic: one probe broadcast heard by the 1-hop neighbours (k-hop
    // scopes rebroadcast it hop by hop), then one <value, position> reply
    // per scoped neighbour, relayed over its hop distance back to the
    // isoline node.
    if (options_.account_local_measurement) {
      ledger.broadcast(node, graph.neighbours(node),
                       IsoMapOptions::kProbeBytes);
      measurement_bytes += IsoMapOptions::kProbeBytes;
      for (const auto& [nb, dist] : scope) {
        const double reply = IsoMapOptions::kSampleTupleBytes * dist;
        ledger.transmit(nb, node, reply);
        measurement_bytes += reply;
      }
    }

    // Regression runs on the positions the nodes *believe* (their
    // localization output); the sensed values come from the physical
    // positions.
    std::vector<FieldSample> samples;
    samples.reserve(scope.size() + 1);
    samples.push_back({deployment.node(node).reported_pos(),
                       readings[static_cast<std::size_t>(node)]});
    for (const auto& [nb, dist] : scope) {
      samples.push_back({deployment.node(nb).reported_pos(),
                         readings[static_cast<std::size_t>(nb)]});
    }

    double ops = 0.0;
    const auto fit = fit_plane(samples, &ops);
    ledger.compute(node, ops);
    if (fit) {
      descent_by_node[node] = fit->descent_direction();
      has_gradient[static_cast<std::size_t>(node)] = true;
    }
  }
  fit_timer.stop();

  // --- Step 3: convergecast with in-network filtering (Section 3.5). ---
  obs::PhaseTimer route_timer(obs::kPhaseReportRoute);
  std::vector<std::vector<IsolineReport>> buffer(static_cast<std::size_t>(n));
  int generated = 0;
  for (const auto& entry : selected) {
    if (!has_gradient[static_cast<std::size_t>(entry.node)]) continue;
    if (!tree.reachable(entry.node)) continue;
    buffer[static_cast<std::size_t>(entry.node)].push_back(
        {entry.isolevel, deployment.node(entry.node).reported_pos(),
         descent_by_node[entry.node], entry.node});
    ++generated;
  }

  const InNetworkFilter filter = InNetworkFilter::from_query(query);
  Channel channel =
      options_.link_loss > 0.0
          ? Channel(options_.link_loss, options_.link_retries,
                    Rng(options_.link_seed))
          : Channel();
  double report_bytes = 0.0;
  TransmissionLog transmission_log;
  std::vector<double> level_bottleneck(
      static_cast<std::size_t>(tree.depth()) + 1, 0.0);
  for (int u : tree.post_order()) {
    if (u == tree.sink()) continue;
    auto& outgoing = buffer[static_cast<std::size_t>(u)];
    if (outgoing.empty()) continue;
    const int p = tree.parent(u);
    const double bytes = static_cast<double>(outgoing.size()) *
                             IsolineReport::kWireBytes +
                         options_.header_bytes;
    auto& slot = level_bottleneck[static_cast<std::size_t>(tree.level(u))];
    slot = std::max(slot, bytes);
    const bool delivered = channel.send(u, p, bytes, ledger);
    report_bytes += bytes;
    if (options_.record_transmissions)
      transmission_log.push_back({u, p, bytes, tree.level(u)});
    if (delivered) {
      auto& inbox = buffer[static_cast<std::size_t>(p)];
      if (query.enable_filtering) {
        // The per-hop filter work is its own phase nested inside the
        // convergecast: its compute charges (and per-report drop events)
        // are attributed to filtering, not routing.
        const obs::PhaseTimer filter_timer(obs::kPhaseFilter);
        double ops = 0.0;
        filter.merge(inbox, outgoing, &ops, p);
        ledger.compute(p, ops);
      } else {
        inbox.insert(inbox.end(), outgoing.begin(), outgoing.end());
      }
    }
    outgoing.clear();
  }
  route_timer.stop();
  obs::count("reports.generated", generated);

  std::vector<IsolineReport> sink_reports =
      std::move(buffer[static_cast<std::size_t>(tree.sink())]);
  obs::count("reports.delivered", static_cast<double>(sink_reports.size()));
  ContourMap map = ContourMapBuilder(deployment.bounds(), options_.regulation)
                       .build(sink_reports, query.isolevels());
  IsoMapResult result{std::move(sink_reports), std::move(map), 0, 0, 0, 0.0, 0.0, 0.0, 0.0, {}};
  result.isoline_node_count = static_cast<int>(distinct_nodes.size());
  result.generated_reports = generated;
  result.delivered_reports = static_cast<int>(result.sink_reports.size());
  result.report_traffic_bytes = report_bytes;
  result.measurement_traffic_bytes = measurement_bytes;
  result.dissemination_traffic_bytes = dissemination_bytes;
  for (double slot : level_bottleneck) result.bottleneck_bytes += slot;
  result.transmissions = std::move(transmission_log);
  return result;
}

}  // namespace isomap
