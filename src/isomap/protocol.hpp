#pragma once

#include <optional>
#include <vector>

#include "energy/mica2.hpp"
#include "fault/fault.hpp"
#include "isomap/contour_map.hpp"
#include "isomap/filter.hpp"
#include "isomap/node_selection.hpp"
#include "isomap/query.hpp"
#include "isomap/report.hpp"
#include "net/channel.hpp"
#include "net/deployment.hpp"
#include "net/ledger.hpp"
#include "net/routing_tree.hpp"
#include "net/transmission_log.hpp"

namespace isomap {

/// Protocol configuration beyond the query itself.
struct IsoMapOptions {
  ContourQuery query;
  RegulationMode regulation = RegulationMode::kRules;

  /// Charge the local-measurement exchange (the isoline node's probe and
  /// its neighbours' <value, position> replies) to the ledger. The paper's
  /// traffic figures count report traffic; local exchanges are tracked
  /// separately in IsoMapResult and only added to the ledger when enabled.
  bool account_local_measurement = true;

  /// Charge the initial query flood down the routing tree. Off by default:
  /// the dissemination cost is common to every protocol compared in the
  /// paper and cancels out of the figures.
  bool account_query_dissemination = false;

  /// Per-message header bytes added to each report batch transmission.
  /// The paper charges parameter bytes only, so the default is 0.
  double header_bytes = 0.0;

  /// Link layer for the report convergecast. The paper assumes perfect
  /// links (loss 0); setting link_loss > 0 enables the ARQ channel model
  /// of net/channel.hpp — a dropped batch loses all reports it carried.
  double link_loss = 0.0;
  int link_retries = 3;
  std::uint64_t link_seed = 0xC0FFEEULL;

  /// Bursty (Gilbert–Elliott) channel mode: when set it replaces the
  /// i.i.d. link_loss model for the convergecast (link_retries and
  /// link_seed still apply).
  std::optional<GilbertElliottParams> link_burst;

  /// Link impairment pipeline (latency/jitter/dup/reorder/corrupt) with
  /// sliding-window ARQ, layered on the loss model above. When unset the
  /// channel is instantaneous and the run is bit-identical to the
  /// pre-impairment behavior; when set each convergecast batch is framed
  /// and delivered in virtual time, and IsoMapResult gains measured
  /// end-to-end report latency. See net/impairment.hpp + net/arq.hpp and
  /// docs/ROBUSTNESS.md.
  std::optional<ImpairmentConfig> link_impair;
  ArqConfig link_arq;

  /// Mid-run fault injection (node crashes, region blackouts) and the
  /// self-healing repair switch; inactive by default. See fault/fault.hpp
  /// and docs/ROBUSTNESS.md.
  FaultConfig fault;

  /// Record every convergecast transmission in IsoMapResult::transmissions
  /// (for MAC-layer replay studies).
  bool record_transmissions = false;

  /// Use the adaptive border region (extension): each node sizes epsilon
  /// from its local slope so the selected strip is ~one radio range wide
  /// everywhere. See select_isoline_nodes_adaptive.
  bool adaptive_epsilon = false;

  static constexpr double kQueryBytes = 8.0;        ///< lambda_lo/hi, T, eps.
  static constexpr double kProbeBytes = 2.0;        ///< Neighbourhood probe.
  static constexpr double kSampleTupleBytes = 6.0;  ///< <value, x, y> reply.
};

/// Everything a protocol run produces at / about the sink.
struct IsoMapResult {
  std::vector<IsolineReport> sink_reports;  ///< After in-network filtering.
  ContourMap map;                           ///< Built at the sink.

  int isoline_node_count = 0;   ///< Distinct nodes selected (any level).
  int generated_reports = 0;    ///< Reports created at isoline nodes.
  int delivered_reports = 0;    ///< Reports surviving to the sink.

  /// Loss accounting. Every generated report ends in exactly one bucket:
  ///   generated = delivered + filtered + lost_channel + lost_crash
  /// `filtered` are deliberate in-network filter merges (Section 3.5);
  /// `lost_channel` died in the channel after exhausting ARQ retries;
  /// `lost_crash` were stranded by node crashes (buffered at a node when
  /// it died, or held by an orphan the repair could not re-attach).
  int filtered_reports = 0;
  int lost_channel_reports = 0;
  int lost_crash_reports = 0;

  int crashed_nodes = 0;        ///< Nodes that died mid-run.
  int route_repairs = 0;        ///< Orphans re-attached by self-healing.
  double repair_traffic_bytes = 0.0;  ///< Repair beacon + ack bytes.

  double report_traffic_bytes = 0.0;       ///< Hop-by-hop report bytes.
  double measurement_traffic_bytes = 0.0;  ///< Local-exchange bytes.
  double dissemination_traffic_bytes = 0.0;

  /// TDMA convergecast bottleneck: the sum over tree levels of the
  /// largest single-node transmission at that level (Section 3.1: "nodes
  /// in different levels forward packets during different time slots", so
  /// each level's slot must fit its busiest node). Divide by the radio
  /// rate for the collection latency.
  double bottleneck_bytes = 0.0;

  /// Collection latency in seconds at `kbps` (default: MICA2's CC1000).
  double latency_s(double kbps = 38.4) const {
    return bottleneck_bytes * 8.0 / (kbps * 1000.0);
  }

  /// Measured end-to-end report latency over the impaired link pipeline:
  /// per delivered report, the sum of per-hop ARQ virtual completion
  /// times along its path. first/last are the fastest/slowest delivered
  /// report; `e2e_last_latency_s` is when the sink's map input is
  /// complete — the map latency. All exactly 0.0 when link_impair is
  /// unset (delivery is instantaneous by assumption).
  double e2e_first_latency_s = 0.0;
  double e2e_last_latency_s = 0.0;
  double e2e_mean_latency_s = 0.0;

  /// Convergecast transmissions (only when
  /// IsoMapOptions::record_transmissions is set).
  TransmissionLog transmissions;
};

/// End-to-end trace-driven simulation of Iso-Map (Section 3): query
/// dissemination, isoline-node self-selection, local regression
/// measurement, in-network-filtered convergecast, and sink-side map
/// construction. All node costs are charged to the caller's Ledger; the
/// sink's map construction is not charged (the sink is a powered host).
class IsoMapProtocol {
 public:
  explicit IsoMapProtocol(IsoMapOptions options);

  const IsoMapOptions& options() const { return options_; }

  /// `readings` holds each node's sensed value, indexed by node id (only
  /// alive nodes are read) — the same trace-driven interface the baseline
  /// protocols use, so measurement noise injected by the scenario reaches
  /// every protocol identically.
  IsoMapResult run(const std::vector<double>& readings,
                   const Deployment& deployment, const CommGraph& graph,
                   const RoutingTree& tree, Ledger& ledger) const;

 private:
  IsoMapOptions options_;
};

}  // namespace isomap
