#pragma once

#include <stdexcept>
#include <vector>

namespace isomap {

/// A contour-mapping query as disseminated by the sink (Section 3.2): the
/// data space [lambda_lo, lambda_hi], the granularity T, and the tunable
/// protocol parameters. Isolevels are lambda_i = lambda_lo + i*T within
/// the data space.
struct ContourQuery {
  double lambda_lo = 0.0;   ///< Lower end of the queried data space.
  double lambda_hi = 1.0;   ///< Upper end of the queried data space.
  double granularity = 0.1; ///< T: spacing between consecutive isolevels.

  /// Border-region half-width as a fraction of T (epsilon = fraction * T).
  /// The paper's default is 0.05.
  double epsilon_fraction = 0.05;

  /// In-network filter thresholds (Section 3.5): drop one of two reports
  /// when their gradient directions differ by less than
  /// `angular_separation_deg` AND their positions are closer than
  /// `distance_separation`. The paper's evaluation uses 30 deg / 4 units.
  double angular_separation_deg = 30.0;
  double distance_separation = 4.0;
  bool enable_filtering = true;

  /// Neighbourhood scope (hops) for the local regression (Section 3.3).
  int regression_hops = 1;

  double epsilon() const { return epsilon_fraction * granularity; }

  /// The isolevels lambda_i = lambda_lo + i*T that fall inside
  /// [lambda_lo, lambda_hi], in ascending order. The first level sits at
  /// lambda_lo + T (a level equal to the space minimum outlines the whole
  /// field and carries no information).
  std::vector<double> isolevels() const {
    if (granularity <= 0.0)
      throw std::invalid_argument("ContourQuery: granularity must be > 0");
    std::vector<double> levels;
    for (double v = lambda_lo + granularity; v <= lambda_hi + 1e-12;
         v += granularity)
      levels.push_back(v);
    return levels;
  }
};

}  // namespace isomap
