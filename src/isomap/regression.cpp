#include "isomap/regression.hpp"

#include <cmath>

#include "obs/obs.hpp"

namespace isomap {

bool solve3x3(double a[3][3], double b[3], double x[3]) {
  int perm[3] = {0, 1, 2};
  // Forward elimination with partial pivoting.
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r)
      if (std::abs(a[perm[r]][col]) > std::abs(a[perm[pivot]][col])) pivot = r;
    std::swap(perm[col], perm[pivot]);
    const double diag = a[perm[col]][col];
    if (std::abs(diag) < 1e-12) return false;
    for (int r = col + 1; r < 3; ++r) {
      const double factor = a[perm[r]][col] / diag;
      a[perm[r]][col] = 0.0;
      for (int c = col + 1; c < 3; ++c) a[perm[r]][c] -= factor * a[perm[col]][c];
      b[perm[r]] -= factor * b[perm[col]];
    }
  }
  // Back substitution.
  for (int row = 2; row >= 0; --row) {
    double acc = b[perm[row]];
    for (int c = row + 1; c < 3; ++c) acc -= a[perm[row]][c] * x[c];
    x[row] = acc / a[perm[row]][row];
  }
  return true;
}

PlanePositionStats plane_position_stats(
    const std::vector<FieldSample>& samples) {
  // Centre the coordinates on the sample mean for numerical stability
  // (the fitted gradient is translation-invariant; c0 is shifted back in
  // solve_plane). Each sum accumulates its own addend sequence in sample
  // order, so splitting position and value accumulation into separate
  // loops leaves every individual sum — and hence the fit — bit-for-bit
  // what the original single-loop accumulation produced.
  PlanePositionStats stats;
  stats.n = samples.size();
  for (const auto& s : samples) stats.mean += s.pos;
  if (stats.n > 0) stats.mean *= 1.0 / static_cast<double>(stats.n);
  for (const auto& s : samples) {
    const double x = s.pos.x - stats.mean.x;
    const double y = s.pos.y - stats.mean.y;
    stats.sx += x;
    stats.sy += y;
    stats.sxx += x * x;
    stats.sxy += x * y;
    stats.syy += y * y;
  }
  return stats;
}

PlanePositionStats plane_position_stats(std::span<const double> xs,
                                        std::span<const double> ys) {
  PlanePositionStats stats;
  stats.n = xs.size();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    stats.mean.x += xs[i];
    stats.mean.y += ys[i];
  }
  if (stats.n > 0) stats.mean *= 1.0 / static_cast<double>(stats.n);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i] - stats.mean.x;
    const double y = ys[i] - stats.mean.y;
    stats.sx += x;
    stats.sy += y;
    stats.sxx += x * x;
    stats.sxy += x * y;
    stats.syy += y * y;
  }
  return stats;
}

PlaneValueStats plane_value_stats(const std::vector<FieldSample>& samples,
                                  const PlanePositionStats& pos) {
  PlaneValueStats stats;
  for (const auto& s : samples) stats.mean_v += s.value;
  if (pos.n > 0) stats.mean_v *= 1.0 / static_cast<double>(pos.n);
  for (const auto& s : samples) {
    const double x = s.pos.x - pos.mean.x;
    const double y = s.pos.y - pos.mean.y;
    const double v = s.value - stats.mean_v;
    stats.sv += v;
    stats.sxv += x * v;
    stats.syv += y * v;
  }
  return stats;
}

PlaneValueStats plane_value_stats(std::span<const double> xs,
                                  std::span<const double> ys,
                                  std::span<const double> vs,
                                  const PlanePositionStats& pos) {
  PlaneValueStats stats;
  for (std::size_t i = 0; i < vs.size(); ++i) stats.mean_v += vs[i];
  if (pos.n > 0) stats.mean_v *= 1.0 / static_cast<double>(pos.n);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const double x = xs[i] - pos.mean.x;
    const double y = ys[i] - pos.mean.y;
    const double v = vs[i] - stats.mean_v;
    stats.sv += v;
    stats.sxv += x * v;
    stats.syv += y * v;
  }
  return stats;
}

PlaneStats plane_stats_batch(std::span<const double> xs,
                             std::span<const double> ys,
                             std::span<const double> vs) {
  PlaneStats s;
  const std::size_t n = xs.size();
  s.pos.n = n;
  const double* const x = xs.data();
  const double* const y = ys.data();
  const double* const v = vs.data();
  double mx = 0.0, my = 0.0, mv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
    mv += v[i];
  }
  if (n > 0) {
    const double inv = 1.0 / static_cast<double>(n);
    mx *= inv;
    my *= inv;
    mv *= inv;
  }
  s.pos.mean = {mx, my};
  s.val.mean_v = mv;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  double sv = 0.0, sxv = 0.0, syv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    const double dv = v[i] - mv;
    sx += dx;
    sy += dy;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
    sv += dv;
    sxv += dx * dv;
    syv += dy * dv;
  }
  s.pos.sx = sx;
  s.pos.sy = sy;
  s.pos.sxx = sxx;
  s.pos.sxy = sxy;
  s.pos.syy = syy;
  s.val.sv = sv;
  s.val.sxv = sxv;
  s.val.syv = syv;
  return s;
}

std::optional<PlaneFit> fit_plane_soa(std::span<const double> xs,
                                      std::span<const double> ys,
                                      std::span<const double> vs) {
  if (xs.size() < 3) return std::nullopt;
  const PlaneStats stats = plane_stats_batch(xs, ys, vs);
  return solve_plane(stats.pos, stats.val);
}

void record_fit_metrics(std::size_t n_samples) {
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->add("regression.fits");
    m->observe("regression.samples", static_cast<double>(n_samples));
  }
}

void record_degenerate_fit() { obs::count("regression.degenerate"); }

std::optional<PlaneFit> solve_plane(const PlanePositionStats& pos,
                                    const PlaneValueStats& val) {
  if (pos.n < 3) return std::nullopt;
  const auto n = static_cast<double>(pos.n);
  double a[3][3] = {{n, pos.sx, pos.sy},
                    {pos.sx, pos.sxx, pos.sxy},
                    {pos.sy, pos.sxy, pos.syy}};
  double b[3] = {val.sv, val.sxv, val.syv};
  double w[3];
  if (!solve3x3(a, b, w)) return std::nullopt;

  PlaneFit fit;
  fit.c1 = w[1];
  fit.c2 = w[2];
  // Un-centre the intercept: v = mean_v + w0 + c1 (x - mx) + c2 (y - my).
  fit.c0 = val.mean_v + w[0] - fit.c1 * pos.mean.x - fit.c2 * pos.mean.y;
  return fit;
}

std::optional<PlaneFit> fit_plane(const std::vector<FieldSample>& samples,
                                  double* ops) {
  // Scope-size and degeneracy metrics for the RunSummary (one registry
  // probe per fit; inert without an active obs scope).
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->add("regression.fits");
    m->observe("regression.samples", static_cast<double>(samples.size()));
  }
  if (samples.size() < 3) {
    obs::count("regression.degenerate");
    return std::nullopt;
  }

  const PlanePositionStats pos = plane_position_stats(samples);
  const PlaneValueStats val = plane_value_stats(samples, pos);
  const auto fit = solve_plane(pos, val);
  if (!fit) {
    obs::count("regression.degenerate");
    return std::nullopt;
  }
  if (ops) *ops += fit_plane_ops(samples.size());
  return fit;
}

std::optional<PlaneFit> fit_plane(std::span<const double> xs,
                                  std::span<const double> ys,
                                  std::span<const double> vs,
                                  double* ops) {
  record_fit_metrics(xs.size());
  if (xs.size() < 3) {
    record_degenerate_fit();
    return std::nullopt;
  }
  // The fused batch kernel computes the identical sufficient statistics
  // to the split plane_position_stats/plane_value_stats pair (see its
  // header comment), so swapping it in changes no output bit.
  const auto fit = fit_plane_soa(xs, ys, vs);
  if (!fit) {
    record_degenerate_fit();
    return std::nullopt;
  }
  if (ops) *ops += fit_plane_ops(xs.size());
  return fit;
}

}  // namespace isomap
