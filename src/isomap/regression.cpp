#include "isomap/regression.hpp"

#include <cmath>

#include "obs/obs.hpp"

namespace isomap {

bool solve3x3(double a[3][3], double b[3], double x[3]) {
  int perm[3] = {0, 1, 2};
  // Forward elimination with partial pivoting.
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r)
      if (std::abs(a[perm[r]][col]) > std::abs(a[perm[pivot]][col])) pivot = r;
    std::swap(perm[col], perm[pivot]);
    const double diag = a[perm[col]][col];
    if (std::abs(diag) < 1e-12) return false;
    for (int r = col + 1; r < 3; ++r) {
      const double factor = a[perm[r]][col] / diag;
      a[perm[r]][col] = 0.0;
      for (int c = col + 1; c < 3; ++c) a[perm[r]][c] -= factor * a[perm[col]][c];
      b[perm[r]] -= factor * b[perm[col]];
    }
  }
  // Back substitution.
  for (int row = 2; row >= 0; --row) {
    double acc = b[perm[row]];
    for (int c = row + 1; c < 3; ++c) acc -= a[perm[row]][c] * x[c];
    x[row] = acc / a[perm[row]][row];
  }
  return true;
}

std::optional<PlaneFit> fit_plane(const std::vector<FieldSample>& samples,
                                  double* ops) {
  // Scope-size and degeneracy metrics for the RunSummary (one registry
  // probe per fit; inert without an active obs scope).
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->add("regression.fits");
    m->observe("regression.samples", static_cast<double>(samples.size()));
  }
  if (samples.size() < 3) {
    obs::count("regression.degenerate");
    return std::nullopt;
  }

  // Accumulate the normal-equation sums of Eq. 2. Centre the coordinates
  // on the sample mean for numerical stability (the fitted gradient is
  // translation-invariant; c0 is shifted back afterwards).
  Vec2 mean{};
  double mean_v = 0.0;
  for (const auto& s : samples) {
    mean += s.pos;
    mean_v += s.value;
  }
  const double inv_n = 1.0 / static_cast<double>(samples.size());
  mean *= inv_n;
  mean_v *= inv_n;

  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  double sv = 0.0, sxv = 0.0, syv = 0.0;
  for (const auto& s : samples) {
    const double x = s.pos.x - mean.x;
    const double y = s.pos.y - mean.y;
    const double v = s.value - mean_v;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    sv += v;
    sxv += x * v;
    syv += y * v;
  }

  const auto n = static_cast<double>(samples.size());
  double a[3][3] = {{n, sx, sy}, {sx, sxx, sxy}, {sy, sxy, syy}};
  double b[3] = {sv, sxv, syv};
  double w[3];
  if (!solve3x3(a, b, w)) {
    obs::count("regression.degenerate");
    return std::nullopt;
  }

  PlaneFit fit;
  fit.c1 = w[1];
  fit.c2 = w[2];
  // Un-centre the intercept: v = mean_v + w0 + c1 (x - mx) + c2 (y - my).
  fit.c0 = mean_v + w[0] - fit.c1 * mean.x - fit.c2 * mean.y;

  if (ops) {
    // ~12 multiply-adds per sample for the sums plus a constant ~40 for
    // the 3x3 solve — the O(deg) cost quoted in Section 4.2.
    *ops += 12.0 * n + 40.0;
  }
  return fit;
}

}  // namespace isomap
