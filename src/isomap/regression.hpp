#pragma once

#include <optional>
#include <vector>

#include "geometry/vec2.hpp"

namespace isomap {

/// A (position, value) sample used in the local regression.
struct FieldSample {
  Vec2 pos{};
  double value = 0.0;
};

/// Result of the local linear fit v = c0 + c1*x + c2*y.
struct PlaneFit {
  double c0 = 0.0;
  double c1 = 0.0;
  double c2 = 0.0;

  double value_at(Vec2 p) const { return c0 + c1 * p.x + c2 * p.y; }
  /// Gradient of the fitted plane.
  Vec2 gradient() const { return {c1, c2}; }
  /// The paper's reported direction d = -(c1, c2) (Eq. 3): steepest
  /// descent, approximating the isoline normal pointing downhill.
  Vec2 descent_direction() const { return {-c1, -c2}; }
};

/// Least-squares plane fit through the samples by solving the 3x3 normal
/// equations A w = b of Eq. 2 (Section 3.3). Returns nullopt when the
/// samples are degenerate (fewer than 3, or collinear positions), in which
/// case no gradient estimate exists.
///
/// `ops` (if non-null) is incremented with the arithmetic-operation count,
/// which the protocol charges to the node's compute ledger — this is the
/// O(deg) per-isoline-node cost of Section 4.2.
std::optional<PlaneFit> fit_plane(const std::vector<FieldSample>& samples,
                                  double* ops = nullptr);

/// Solve a 3x3 linear system in-place by Gaussian elimination with partial
/// pivoting. Returns false if singular. Exposed for testing.
bool solve3x3(double a[3][3], double b[3], double x[3]);

}  // namespace isomap
