#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"

namespace isomap {

/// A (position, value) sample used in the local regression.
struct FieldSample {
  Vec2 pos{};
  double value = 0.0;
};

/// Result of the local linear fit v = c0 + c1*x + c2*y.
struct PlaneFit {
  double c0 = 0.0;
  double c1 = 0.0;
  double c2 = 0.0;

  double value_at(Vec2 p) const { return c0 + c1 * p.x + c2 * p.y; }
  /// Gradient of the fitted plane.
  Vec2 gradient() const { return {c1, c2}; }
  /// The paper's reported direction d = -(c1, c2) (Eq. 3): steepest
  /// descent, approximating the isoline normal pointing downhill.
  Vec2 descent_direction() const { return {-c1, -c2}; }
};

/// Position block of the centred sufficient statistics behind fit_plane
/// (the normal-equation sums of Eq. 2): sample count, mean position, and
/// the centred position sums. A sensor's own and its neighbours'
/// positions never change between continuous-mapping rounds, so this
/// block is computed once per node and reused verbatim — recomputing it
/// from the same positions in the same order yields the same bits, which
/// is what makes the cached path bitwise-identical to a fresh fit.
struct PlanePositionStats {
  std::size_t n = 0;   ///< Sample count.
  Vec2 mean{};         ///< Mean sample position.
  double sx = 0.0, sy = 0.0;               ///< Centred first-order sums.
  double sxx = 0.0, sxy = 0.0, syy = 0.0;  ///< Centred second-order sums.
};

/// Value block of the sufficient statistics: mean reading and the centred
/// value sums. Depends on every sample's reading (the centring couples
/// them through mean_v), so it is recomputed — in O(n) with ~half the
/// arithmetic of a full fit — whenever any reading in the sample set
/// changed.
struct PlaneValueStats {
  double mean_v = 0.0;
  double sv = 0.0, sxv = 0.0, syv = 0.0;
};

/// Accumulate the position block over `samples` in order.
PlanePositionStats plane_position_stats(const std::vector<FieldSample>& samples);

/// SoA variant: positions given as parallel coordinate arrays. Each
/// accumulator adds the same addends in the same order as the AoS loop
/// (vectorization happens across the independent sum chains and via unit-
/// stride loads, never by reassociating within a chain), so the stats —
/// and any fit solved from them — are bit-identical to the AoS path.
PlanePositionStats plane_position_stats(std::span<const double> xs,
                                        std::span<const double> ys);

/// Accumulate the value block over `samples` in order, centring positions
/// on `pos.mean`. The samples must be the ones `pos` was built from.
PlaneValueStats plane_value_stats(const std::vector<FieldSample>& samples,
                                  const PlanePositionStats& pos);

/// SoA variant of plane_value_stats; bit-identical (see above).
PlaneValueStats plane_value_stats(std::span<const double> xs,
                                  std::span<const double> ys,
                                  std::span<const double> vs,
                                  const PlanePositionStats& pos);

/// Both sufficient-statistic blocks of one fit, computed together.
struct PlaneStats {
  PlanePositionStats pos;
  PlaneValueStats val;
};

/// Fused batch kernel: both blocks in two passes over the three arrays
/// (one for the means, one for the centred sums) instead of the four the
/// split plane_position_stats + plane_value_stats path makes. Every
/// accumulator chain still adds its own addend sequence in sample order —
/// fusing interleaves *independent* chains, never reassociates within one
/// — so each sum, and any fit solved from the blocks, is bit-identical to
/// the split kernels. The loops are branch-free over raw contiguous
/// arrays (no size checks inside, no indirect calls), which is what lets
/// the compiler vectorize across the chains.
PlaneStats plane_stats_batch(std::span<const double> xs,
                             std::span<const double> ys,
                             std::span<const double> vs);

/// Pure SoA fit: plane_stats_batch + solve_plane, nothing else — no
/// observability emission, no ops accounting, safe to call from exec pool
/// workers. The parallel node phase fits with this and replays the
/// instrumented fit_plane's metrics and ledger charge in its ordered
/// merge via record_fit_metrics / record_degenerate_fit + fit_plane_ops.
std::optional<PlaneFit> fit_plane_soa(std::span<const double> xs,
                                      std::span<const double> ys,
                                      std::span<const double> vs);

/// The metric emissions of one fit_plane call, exposed so a serial merge
/// can replay them for fits computed on pool workers: record_fit_metrics
/// first (fit count + scope-size observation), then record_degenerate_fit
/// iff the fit failed — the exact order the instrumented path emits.
void record_fit_metrics(std::size_t n_samples);
void record_degenerate_fit();

/// Solve the 3x3 normal equations assembled from the two blocks. Returns
/// nullopt on degeneracy (fewer than 3 samples, or collinear positions).
/// Pure arithmetic: no observability emission, no ops accounting — use
/// fit_plane for the fully instrumented single-shot path.
std::optional<PlaneFit> solve_plane(const PlanePositionStats& pos,
                                    const PlaneValueStats& val);

/// Arithmetic-operation charge of one plane fit over n samples: ~12
/// multiply-adds per sample for the sums plus a constant ~40 for the 3x3
/// solve — the O(deg) cost quoted in Section 4.2. The charge is a
/// function of the sample count only, so a cached fit replays it exactly.
inline double fit_plane_ops(std::size_t n_samples) {
  return 12.0 * static_cast<double>(n_samples) + 40.0;
}

/// Least-squares plane fit through the samples by solving the 3x3 normal
/// equations A w = b of Eq. 2 (Section 3.3). Returns nullopt when the
/// samples are degenerate (fewer than 3, or collinear positions), in which
/// case no gradient estimate exists. Implemented as
/// plane_position_stats + plane_value_stats + solve_plane, so callers
/// holding a cached position block reproduce this function bit for bit.
///
/// `ops` (if non-null) is incremented with the arithmetic-operation count,
/// which the protocol charges to the node's compute ledger — this is the
/// O(deg) per-isoline-node cost of Section 4.2.
std::optional<PlaneFit> fit_plane(const std::vector<FieldSample>& samples,
                                  double* ops = nullptr);

/// SoA variant of fit_plane over parallel coordinate/value arrays (the
/// protocol's gradient-fit hot loop streams neighbour samples into flat
/// scratch arrays and fits from them without building FieldSample
/// structs). Same observability emission, same ops charge, bit-identical
/// result to the AoS overload on the same sample sequence.
std::optional<PlaneFit> fit_plane(std::span<const double> xs,
                                  std::span<const double> ys,
                                  std::span<const double> vs,
                                  double* ops = nullptr);

/// Solve a 3x3 linear system in-place by Gaussian elimination with partial
/// pivoting. Returns false if singular. Exposed for testing.
bool solve3x3(double a[3][3], double b[3], double x[3]);

}  // namespace isomap
