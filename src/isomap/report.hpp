#pragma once

#include "geometry/vec2.hpp"

namespace isomap {

/// The 3-tuple report an isoline node sends to the sink (Section 3.3):
/// r = <isolevel, position, gradient direction>. `source` identifies the
/// reporting node for bookkeeping (it is not transmitted).
struct IsolineReport {
  double isolevel = 0.0;
  Vec2 position{};
  Vec2 gradient{};  ///< d = -grad(f): direction of steepest value decrease.
  int source = -1;
  /// Observation-only fields — not transmitted, not counted in kWireBytes,
  /// and excluded from capsule serialization / report diffing. `id` is the
  /// per-run causal id carried by "span"/"loss"/"drop" trace events so a
  /// report's full hop path reconstructs from the trace; `hops` counts the
  /// tree edges the report has traversed so far.
  long long id = -1;
  int hops = 0;

  /// Wire size in bytes. The paper's evaluation charges two bytes per
  /// parameter (value, x, y, dx, dy) -> 10 bytes per report.
  static constexpr double kWireBytes = 10.0;
};

}  // namespace isomap
