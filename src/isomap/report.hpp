#pragma once

#include "geometry/vec2.hpp"

namespace isomap {

/// The 3-tuple report an isoline node sends to the sink (Section 3.3):
/// r = <isolevel, position, gradient direction>. `source` identifies the
/// reporting node for bookkeeping (it is not transmitted).
struct IsolineReport {
  double isolevel = 0.0;
  Vec2 position{};
  Vec2 gradient{};  ///< d = -grad(f): direction of steepest value decrease.
  int source = -1;

  /// Wire size in bytes. The paper's evaluation charges two bytes per
  /// parameter (value, x, y, dx, dy) -> 10 bytes per report.
  static constexpr double kWireBytes = 10.0;
};

}  // namespace isomap
