#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace isomap {

/// Monotonic bump allocator scoped to one protocol round. The convergecast
/// buffers one report vector per node; with per-node heap vectors a 10^6-node
/// round pays a million small allocations (and their 16-byte headers) just to
/// hold a few thousand reports. The arena hands out memory from large blocks
/// with a pointer bump, never frees individual allocations, and releases
/// everything at once when destroyed (or rewound with reset() between rounds).
///
/// Not thread-safe: one arena belongs to one round on one thread, which is
/// exactly how the protocol runs (trials parallelize *across* rounds).
class RoundArena {
 public:
  explicit RoundArena(std::size_t block_bytes = std::size_t{1} << 16)
      : block_bytes_(block_bytes) {}

  RoundArena(const RoundArena&) = delete;
  RoundArena& operator=(const RoundArena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    for (;;) {
      if (current_ < blocks_.size()) {
        const std::size_t offset = align_up(used_, align);
        if (offset + bytes <= blocks_[current_].size) {
          used_ = offset + bytes;
          return blocks_[current_].data.get() + offset;
        }
      }
      if (current_ + 1 < blocks_.size()) {
        // Recycled block from before the last reset(); a block too small
        // for this request is skipped and retried on the next one.
        ++current_;
        used_ = 0;
        continue;
      }
      const std::size_t size = std::max(block_bytes_, bytes + align);
      blocks_.push_back({std::make_unique<std::byte[]>(size), size});
      current_ = blocks_.size() - 1;
      used_ = 0;
    }
  }

  /// Rewind to empty, keeping the blocks for reuse by the next round.
  /// Everything previously allocated becomes invalid.
  void reset() {
    current_ = 0;
    used_ = 0;
  }

  /// Total bytes held across all blocks (reserved, not necessarily used).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size;
  };

  static std::size_t align_up(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;
  std::size_t used_ = 0;
};

/// STL allocator over a RoundArena. deallocate() is a no-op — memory comes
/// back only at arena reset/destruction — so containers using it must not
/// outlive the arena.
template <typename T>
class ArenaAlloc {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  explicit ArenaAlloc(RoundArena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAlloc(const ArenaAlloc<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  RoundArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAlloc& a, const ArenaAlloc& b) {
    return a.arena_ == b.arena_;
  }

 private:
  RoundArena* arena_;
};

}  // namespace isomap
