#include "mac/contention.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "geometry/point_index.hpp"

namespace isomap {
namespace {

/// One pending sender within a level phase.
struct PendingFrame {
  int from;
  int to;
  int frames_left;
  int attempts = 0;
};

}  // namespace

MacStats replay_with_contention(const TransmissionLog& log,
                                const Deployment& deployment,
                                const CommGraph& graph,
                                const MacOptions& options, Rng& rng) {
  MacStats stats;
  if (log.empty()) return stats;

  // Spatial index over all node positions for interference queries.
  std::vector<Vec2> positions;
  positions.reserve(static_cast<std::size_t>(deployment.size()));
  for (const auto& node : deployment.nodes()) positions.push_back(node.pos);
  const PointIndex index(positions);
  const double interference_radius =
      graph.radio_range() * options.interference_factor;

  // Group transmissions by sender level, deepest first (TAG order).
  std::map<int, std::vector<PendingFrame>, std::greater<int>> levels;
  for (const auto& t : log) {
    const int frames = std::max(
        1, static_cast<int>(std::ceil(t.bytes / options.frame_bytes)));
    levels[t.sender_level].push_back({t.from, t.to, frames, 0});
    stats.frames_offered += frames;
  }

  for (auto& [level, pending] : levels) {
    (void)level;
    while (!pending.empty()) {
      ++stats.slots_used;
      // Which pending senders transmit this slot?
      std::vector<std::size_t> transmitting;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (rng.bernoulli(options.tx_probability)) transmitting.push_back(i);
      }
      if (transmitting.empty()) continue;

      // Success test per transmission: no other transmitter within
      // interference range of the receiver.
      std::vector<bool> success(transmitting.size(), true);
      for (std::size_t a = 0; a < transmitting.size(); ++a) {
        const PendingFrame& frame = pending[transmitting[a]];
        const Vec2 rx = positions[static_cast<std::size_t>(frame.to)];
        for (std::size_t b = 0; b < transmitting.size(); ++b) {
          if (a == b) continue;
          const PendingFrame& other = pending[transmitting[b]];
          const Vec2 tx = positions[static_cast<std::size_t>(other.from)];
          if (rx.distance_to(tx) <= interference_radius) {
            success[a] = false;
            break;
          }
        }
      }

      // Apply results; erase finished/dropped senders (back to front so
      // indices stay valid).
      std::vector<std::size_t> to_erase;
      for (std::size_t a = 0; a < transmitting.size(); ++a) {
        PendingFrame& frame = pending[transmitting[a]];
        ++frame.attempts;
        if (success[a]) {
          ++stats.frames_delivered;
          --frame.frames_left;
          frame.attempts = 0;
          if (frame.frames_left == 0) to_erase.push_back(transmitting[a]);
        } else {
          ++stats.collisions;
          stats.airtime_wasted_bytes += options.frame_bytes;
          if (frame.attempts >= options.max_slot_attempts) {
            stats.frames_dropped += frame.frames_left;
            to_erase.push_back(transmitting[a]);
          }
        }
      }
      std::sort(to_erase.begin(), to_erase.end(), std::greater<>());
      for (std::size_t idx : to_erase)
        pending.erase(pending.begin() + static_cast<long>(idx));
    }
  }
  return stats;
}

}  // namespace isomap
