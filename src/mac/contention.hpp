#pragma once

#include <vector>

#include "net/comm_graph.hpp"
#include "net/transmission_log.hpp"
#include "util/rng.hpp"

namespace isomap {

/// Slotted-CSMA contention replay — a MAC-layer substrate in the spirit
/// of the B-MAC / Z-MAC schemes the paper cites (Section 3.1: "MAC layer
/// reliability ... can be easily added into this framework").
///
/// The protocols' idealized model gives every sender a clean slot; this
/// module replays a recorded TransmissionLog through a contention model
/// to quantify what the ideal numbers hide:
///
///  - Time is slotted; each slot carries one fixed-size frame.
///  - Senders whose routing-tree level is scheduled contend per slot
///    with probability `tx_probability` (p-persistent CSMA inside the
///    level's TDMA phase, as Z-MAC does between owners and stealers).
///  - A frame is received iff exactly zero *other* contenders transmit
///    within interference range of the receiver in that slot (collisions
///    destroy all overlapping frames at that receiver).
///  - A transmission is dropped after `max_slot_attempts` losses.
struct MacOptions {
  double frame_bytes = 32.0;       ///< Frame payload per slot.
  double tx_probability = 0.25;    ///< Per-slot transmit probability.
  int max_slot_attempts = 40;      ///< Attempts before giving up.
  /// Interference radius as a multiple of the communication radius (the
  /// standard two-ray assumption of interference reaching further than
  /// decodability).
  double interference_factor = 1.5;
  double slot_seconds = 32.0 * 8.0 / 38400.0;  ///< One frame at 38.4 kbps.
};

struct MacStats {
  long long frames_offered = 0;   ///< Frames the log required.
  long long frames_delivered = 0;
  long long frames_dropped = 0;   ///< Gave up after max attempts.
  long long collisions = 0;       ///< Slot-level collision events.
  long long slots_used = 0;       ///< Slots until the level drained.
  double airtime_wasted_bytes = 0.0;  ///< Bytes burned in collided frames.

  double delivery_ratio() const {
    return frames_offered
               ? static_cast<double>(frames_delivered) / frames_offered
               : 1.0;
  }
  double duration_s(const MacOptions& options) const {
    return slots_used * options.slot_seconds;
  }
};

/// Replay a transmission log level by level (deepest first, the TAG
/// schedule): all transmissions with the same sender_level contend with
/// each other; levels execute sequentially. Positions/interference come
/// from `graph` and the deployment behind it.
MacStats replay_with_contention(const TransmissionLog& log,
                                const Deployment& deployment,
                                const CommGraph& graph,
                                const MacOptions& options, Rng& rng);

}  // namespace isomap
