#include "net/arq.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/node_telemetry.hpp"
#include "obs/obs.hpp"

namespace isomap {

void ArqConfig::validate() const {
  if (window < 1)
    throw std::invalid_argument("ArqConfig: window must be >= 1");
  if (!(frame_payload_bytes > 0.0))
    throw std::invalid_argument("ArqConfig: frame_payload_bytes must be > 0");
  if (!(timeout_s > 0.0))
    throw std::invalid_argument("ArqConfig: timeout_s must be > 0");
  if (!(backoff_factor >= 1.0))
    throw std::invalid_argument("ArqConfig: backoff_factor must be >= 1");
  if (!(max_timeout_s >= timeout_s))
    throw std::invalid_argument("ArqConfig: max_timeout_s must be >= timeout_s");
  if (max_frame_attempts < 1)
    throw std::invalid_argument("ArqConfig: max_frame_attempts must be >= 1");
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    table[i] = c;
  }
  return table;
}

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFFu));
  out.push_back(static_cast<char>((v >> 8) & 0xFFu));
  out.push_back(static_cast<char>((v >> 16) & 0xFFu));
  out.push_back(static_cast<char>((v >> 24) & 0xFFu));
}

std::uint32_t get_u32_le(std::string_view bytes, std::size_t at) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 3]))
          << 24);
}

constexpr std::size_t kHeader = 9;    // kind u8 + seq u32 + len u32
constexpr std::size_t kChecksum = 4;  // crc u32

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (char ch : bytes)
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string encode_frame(const ArqFrame& frame) {
  std::string out;
  out.reserve(kHeader + frame.payload.size() + kChecksum);
  out.push_back(static_cast<char>(frame.kind));
  put_u32_le(out, frame.seq);
  put_u32_le(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  put_u32_le(out, crc32(out));
  return out;
}

DecodedFrame decode_frame(std::string_view bytes) {
  DecodedFrame decoded;
  if (bytes.size() < kHeader + kChecksum) return decoded;  // kMalformed
  const std::uint32_t len = get_u32_le(bytes, 5);
  if (bytes.size() != kHeader + static_cast<std::size_t>(len) + kChecksum)
    return decoded;
  const std::uint32_t carried = get_u32_le(bytes, bytes.size() - kChecksum);
  if (crc32(bytes.substr(0, bytes.size() - kChecksum)) != carried) {
    decoded.status = FrameStatus::kChecksumMismatch;
    return decoded;
  }
  const auto kind = static_cast<unsigned char>(bytes[0]);
  if (kind != static_cast<unsigned char>(FrameKind::kData) &&
      kind != static_cast<unsigned char>(FrameKind::kAck))
    return decoded;
  decoded.status = FrameStatus::kOk;
  decoded.frame.kind = static_cast<FrameKind>(kind);
  decoded.frame.seq = get_u32_le(bytes, 1);
  decoded.frame.payload = std::string(bytes.substr(kHeader, len));
  return decoded;
}

namespace {

// Event kinds inside the per-transfer virtual-time queue.
constexpr int kDataArrive = 0;
constexpr int kAckArrive = 1;
constexpr int kTimeout = 2;

// Deterministic filler so corrupted payloads flip real bits.
std::string frame_payload(std::uint32_t seq, std::size_t len) {
  std::string payload(len, '\0');
  for (std::size_t j = 0; j < len; ++j)
    payload[j] = static_cast<char>((seq * 131u + j * 29u + 7u) & 0xFFu);
  return payload;
}

}  // namespace

ArqTransferStats run_arq_transfer(int from, int to, double bytes,
                                  const ImpairmentConfig& impair,
                                  const ArqConfig& arq, Rng& rng,
                                  const std::function<bool()>& frame_lost,
                                  Ledger& ledger) {
  if (!(bytes >= 0.0))
    throw std::invalid_argument("run_arq_transfer: bytes must be >= 0");

  ArqTransferStats stats;
  const int nframes = std::max(
      1, static_cast<int>(std::ceil(bytes / arq.frame_payload_bytes)));
  stats.frames = nframes;

  obs::NodeTelemetry* const telemetry = obs::telemetry();
  LinkEventQueue queue;
  double now = 0.0;

  // Sender state (selective-repeat window, retransmit-base-on-timeout).
  int base = 0;
  int next = 0;
  std::vector<int> attempts(static_cast<std::size_t>(nframes), 0);
  bool gave_up = false;
  double timeout = arq.timeout_s;
  std::uint64_t timer_gen = 0;

  // Receiver state.
  std::vector<char> received(static_cast<std::size_t>(nframes), 0);
  int expected = 0;
  double complete_time = -1.0;

  // One physical frame copy through the impairment pipeline: the sender
  // pays airtime unconditionally; a copy that survives the loss chain is
  // scheduled for arrival (possibly delayed, reordered, corrupted or
  // heard twice).
  const auto send_physical = [&](const std::string& wire, int arrive_kind) {
    const double wire_bytes = static_cast<double>(wire.size());
    const int sender = arrive_kind == kDataArrive ? from : to;
    ledger.transmit_lost(sender, wire_bytes);
    if (frame_lost()) return;
    int copies = 1;
    if (rng.bernoulli(impair.dup_prob)) ++copies;
    for (int c = 0; c < copies; ++c) {
      const FrameFate fate = draw_frame_fate(impair, rng);
      std::string delivered = wire;
      if (fate.corrupt) {
        const std::size_t pos = rng.uniform_int(delivered.size());
        const auto mask =
            static_cast<unsigned char>(1 + rng.uniform_int(255));
        delivered[pos] = static_cast<char>(
            static_cast<unsigned char>(delivered[pos]) ^ mask);
      }
      queue.push(now + fate.delay_s, arrive_kind, 0, 0, std::move(delivered));
    }
  };

  const auto send_data = [&](int i) {
    if (attempts[static_cast<std::size_t>(i)] >= arq.max_frame_attempts) {
      gave_up = true;
      return;
    }
    ++attempts[static_cast<std::size_t>(i)];
    ++stats.data_tx;
    if (attempts[static_cast<std::size_t>(i)] > 1) {
      ++stats.retransmissions;
      obs::count("channel.retries");
      if (telemetry != nullptr) telemetry->add_retry(from);
    }
    const double offset =
        static_cast<double>(i) * arq.frame_payload_bytes;
    const std::size_t len = static_cast<std::size_t>(
        std::ceil(std::min(arq.frame_payload_bytes, bytes - offset)));
    ArqFrame frame;
    frame.kind = FrameKind::kData;
    frame.seq = static_cast<std::uint32_t>(i);
    frame.payload = frame_payload(frame.seq, len);
    send_physical(encode_frame(frame), kDataArrive);
  };

  const auto send_ack = [&](int ackno) {
    ++stats.acks_tx;
    obs::count("channel.acks");
    ArqFrame frame;
    frame.kind = FrameKind::kAck;
    frame.seq = static_cast<std::uint32_t>(ackno);
    send_physical(encode_frame(frame), kAckArrive);
  };

  const auto schedule_timer = [&] {
    ++timer_gen;
    queue.push(now + timeout, kTimeout, 0, timer_gen, std::string());
  };

  const auto fill_window = [&] {
    while (!gave_up && next < nframes && next < base + arq.window)
      send_data(next++);
  };

  fill_window();
  if (!gave_up) schedule_timer();

  while (base < nframes && !gave_up && !queue.empty()) {
    const LinkEvent event = queue.pop();
    now = event.time;
    switch (event.kind) {
      case kDataArrive: {
        ledger.receive(to, static_cast<double>(event.bytes.size()));
        const DecodedFrame decoded = decode_frame(event.bytes);
        if (decoded.status != FrameStatus::kOk ||
            decoded.frame.kind != FrameKind::kData ||
            decoded.frame.seq >= static_cast<std::uint32_t>(nframes)) {
          ++stats.corrupt_rx;
          obs::count("channel.corrupt_rx");
          if (telemetry != nullptr) telemetry->add_corrupt_rx(to);
          break;
        }
        const auto s = static_cast<std::size_t>(decoded.frame.seq);
        if (received[s]) {
          // Duplicate suppression: count it, re-ack, deliver nothing.
          ++stats.dup_rx;
          obs::count("channel.dup_rx");
          if (telemetry != nullptr) telemetry->add_dup_rx(to);
          send_ack(expected);
          break;
        }
        received[s] = 1;
        while (expected < nframes &&
               received[static_cast<std::size_t>(expected)])
          ++expected;
        if (expected == nframes && complete_time < 0.0) complete_time = now;
        send_ack(expected);
        break;
      }
      case kAckArrive: {
        ledger.receive(from, static_cast<double>(event.bytes.size()));
        const DecodedFrame decoded = decode_frame(event.bytes);
        if (decoded.status != FrameStatus::kOk ||
            decoded.frame.kind != FrameKind::kAck ||
            decoded.frame.seq > static_cast<std::uint32_t>(nframes)) {
          ++stats.corrupt_rx;
          obs::count("channel.corrupt_rx");
          if (telemetry != nullptr) telemetry->add_corrupt_rx(from);
          break;
        }
        const int ackno = static_cast<int>(decoded.frame.seq);
        if (ackno > base) {
          base = ackno;
          timeout = arq.timeout_s;  // Fresh progress resets the backoff.
          fill_window();
          if (base < nframes && !gave_up) schedule_timer();
        }
        break;
      }
      case kTimeout: {
        if (event.generation != timer_gen) break;  // Superseded timer.
        if (base >= nframes) break;
        ++stats.timeouts;
        obs::count("channel.arq_timeouts");
        if (telemetry != nullptr) telemetry->add_arq_timeout(from);
        timeout = std::min(timeout * arq.backoff_factor, arq.max_timeout_s);
        send_data(base);
        if (!gave_up) schedule_timer();
        break;
      }
      default:
        break;
    }
  }

  stats.delivered = base >= nframes;
  stats.latency_s = stats.delivered ? complete_time : now;
  return stats;
}

}  // namespace isomap
