#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "net/impairment.hpp"
#include "net/ledger.hpp"
#include "util/rng.hpp"

namespace isomap {

/// Sliding-window ARQ knobs. A logical batch of `bytes` (one convergecast
/// hop) is split into data frames of `frame_payload_bytes`; the sender
/// keeps up to `window` frames in flight, retransmits the window base on
/// timeout with exponential backoff, and gives up on a frame after
/// `max_frame_attempts` physical transmissions (the whole batch then
/// counts as lost — the caller charges it to `lost_channel`).
struct ArqConfig {
  int window = 8;                    ///< Frames in flight (>= 1).
  double frame_payload_bytes = 32.0; ///< Payload bytes per data frame.
  double timeout_s = 0.05;           ///< Initial retransmission timeout.
  double backoff_factor = 2.0;       ///< Timeout multiplier per timeout.
  double max_timeout_s = 1.0;        ///< Backoff ceiling.
  int max_frame_attempts = 8;        ///< Physical tries per frame (>= 1).

  /// Wire overhead per frame: kind (1) + seq (4) + payload length (4).
  static constexpr double kHeaderBytes = 9.0;
  /// Trailing CRC32 over header + payload.
  static constexpr double kChecksumBytes = 4.0;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

enum class FrameKind : std::uint8_t { kData = 0, kAck = 1 };

/// Decode outcome. Anything other than kOk means the frame is discarded
/// (charged as received bytes but never delivered): kMalformed for
/// truncated/overlong buffers or unknown kinds, kChecksumMismatch when
/// the CRC32 disagrees with the carried bytes.
enum class FrameStatus { kOk, kMalformed, kChecksumMismatch };

struct ArqFrame {
  FrameKind kind = FrameKind::kData;
  std::uint32_t seq = 0;  ///< Data: frame index. Ack: cumulative ack number.
  std::string payload;
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the per-frame
/// checksum. crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view bytes);

/// Wire format (little-endian): [kind u8][seq u32][len u32][payload][crc u32]
/// where crc covers everything before it.
std::string encode_frame(const ArqFrame& frame);

struct DecodedFrame {
  FrameStatus status = FrameStatus::kMalformed;
  ArqFrame frame;
};

/// Decodes untrusted bytes. Never throws and never crashes; any
/// single-bit (or wider) corruption of a valid frame yields a non-kOk
/// status — see arq_test's byte-flip fuzz cases.
DecodedFrame decode_frame(std::string_view bytes);

/// Outcome + accounting of one simulated batch transfer.
struct ArqTransferStats {
  bool delivered = false;
  double latency_s = 0.0;        ///< Virtual time when the receiver
                                 ///< completed the batch (delivered only).
  long long frames = 0;          ///< Distinct data frames in the batch.
  long long data_tx = 0;         ///< Physical data-frame transmissions.
  long long retransmissions = 0; ///< data_tx beyond first attempts.
  long long timeouts = 0;        ///< Retransmission timer expiries.
  long long acks_tx = 0;         ///< Physical ACK transmissions.
  long long dup_rx = 0;          ///< Duplicate data frames at receiver.
  long long corrupt_rx = 0;      ///< Checksum failures (either side).
};

/// Runs one batch of `bytes` from `from` to `to` through the impairment
/// pipeline under sliding-window ARQ, in virtual time. `frame_lost()` is
/// consulted once per physical frame (data and ACK) and is expected to
/// advance the caller's loss chain (Gilbert–Elliott or iid); all other
/// randomness (jitter/reorder/corrupt/dup draws) comes from `rng`.
///
/// Energy is charged to `ledger` as it happens: the sender pays airtime
/// for every physical frame at send time (`transmit_lost` — tx-only, the
/// rx half cannot be bundled because arrival is time-shifted and the
/// frame may never arrive), the receiver pays `receive` for every frame
/// copy that reaches it, duplicates and corrupt frames included. obs
/// counters (`channel.dup_rx` / `channel.corrupt_rx` /
/// `channel.arq_timeouts` / `channel.retries`) and the matching
/// NodeTelemetry lanes are bumped at the same points.
ArqTransferStats run_arq_transfer(int from, int to, double bytes,
                                  const ImpairmentConfig& impair,
                                  const ArqConfig& arq, Rng& rng,
                                  const std::function<bool()>& frame_lost,
                                  Ledger& ledger);

}  // namespace isomap
