#include "net/channel.hpp"

#include <cmath>
#include <stdexcept>

namespace isomap {

Channel::Channel() : rng_(0) {}

Channel::Channel(double loss_probability, int max_retries, Rng rng)
    : loss_probability_(loss_probability),
      max_retries_(max_retries),
      rng_(rng) {
  if (loss_probability < 0.0 || loss_probability >= 1.0)
    throw std::invalid_argument("Channel: loss_probability must be in [0,1)");
  if (max_retries < 0)
    throw std::invalid_argument("Channel: max_retries must be >= 0");
}

bool Channel::send(int from, int to, double bytes, Ledger& ledger) {
  if (perfect()) {
    ++attempts_;
    ledger.transmit(from, to, bytes);
    return true;
  }
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    ++attempts_;
    if (rng_.bernoulli(loss_probability_)) {
      // Lost attempt: sender still burned the airtime; receiver decoded
      // nothing useful.
      ledger.transmit_lost(from, bytes);
      continue;
    }
    ledger.transmit(from, to, bytes);
    return true;
  }
  ++drops_;
  return false;
}

double Channel::delivery_probability() const {
  if (perfect()) return 1.0;
  return 1.0 - std::pow(loss_probability_, max_retries_ + 1);
}

}  // namespace isomap
