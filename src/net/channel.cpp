#include "net/channel.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/node_telemetry.hpp"
#include "obs/obs.hpp"

namespace isomap {

Channel::Channel() : rng_(0) {}

Channel::Channel(double loss_probability, int max_retries, Rng rng)
    : loss_probability_(loss_probability),
      max_retries_(max_retries),
      rng_(rng) {
  if (loss_probability < 0.0 || loss_probability >= 1.0)
    throw std::invalid_argument("Channel: loss_probability must be in [0,1)");
  if (max_retries < 0)
    throw std::invalid_argument("Channel: max_retries must be >= 0");
}

Channel::Channel(const GilbertElliottParams& params, int max_retries, Rng rng)
    : max_retries_(max_retries), burst_(params), rng_(rng) {
  if (params.p_enter_burst < 0.0 || params.p_enter_burst > 1.0)
    throw std::invalid_argument("Channel: p_enter_burst must be in [0,1]");
  if (params.p_exit_burst <= 0.0 || params.p_exit_burst > 1.0)
    throw std::invalid_argument("Channel: p_exit_burst must be in (0,1]");
  if (params.loss_good < 0.0 || params.loss_good >= 1.0)
    throw std::invalid_argument("Channel: loss_good must be in [0,1)");
  if (params.loss_bad < 0.0 || params.loss_bad > 1.0)
    throw std::invalid_argument("Channel: loss_bad must be in [0,1]");
  if (max_retries < 0)
    throw std::invalid_argument("Channel: max_retries must be >= 0");
}

Channel Channel::make(double loss, int max_retries, std::uint64_t seed,
                      const std::optional<GilbertElliottParams>& burst) {
  if (burst) return Channel(*burst, max_retries, Rng(seed));
  if (loss > 0.0) return Channel(loss, max_retries, Rng(seed));
  return Channel();
}

Channel Channel::make(double loss, int max_retries, std::uint64_t seed,
                      const std::optional<GilbertElliottParams>& burst,
                      const std::optional<ImpairmentConfig>& impair,
                      const ArqConfig& arq) {
  Channel channel = make(loss, max_retries, seed, burst);
  if (impair) {
    impair->validate();
    arq.validate();
    channel.impair_ = impair;
    channel.arq_ = arq;
    // An impaired perfect channel still runs the ARQ engine (jitter,
    // dups, corruption exist without loss), so it needs a live Rng.
    channel.rng_ = Rng(seed);
  }
  return channel;
}

double Channel::attempt_loss() {
  if (!burst_) return loss_probability_;
  const double loss = in_burst_ ? burst_->loss_bad : burst_->loss_good;
  // Advance the two-state chain once per attempt.
  if (in_burst_) {
    if (rng_.bernoulli(burst_->p_exit_burst)) in_burst_ = false;
  } else {
    if (rng_.bernoulli(burst_->p_enter_burst)) in_burst_ = true;
  }
  return loss;
}

bool Channel::send(int from, int to, double bytes, Ledger& ledger) {
  if (perfect()) {
    ++attempts_;
    ledger.transmit(from, to, bytes);
    return true;
  }
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    ++attempts_;
    if (attempt > 0) {
      ++retries_;
      obs::count("channel.retries");
      if (obs::NodeTelemetry* t = obs::telemetry()) t->add_retry(from);
    }
    if (rng_.bernoulli(attempt_loss())) {
      // Lost attempt: sender still burned the airtime; receiver decoded
      // nothing useful.
      ledger.transmit_lost(from, bytes);
      continue;
    }
    ledger.transmit(from, to, bytes);
    return true;
  }
  ++drops_;
  obs::count("channel.drops");
  if (obs::NodeTelemetry* t = obs::telemetry()) t->add_drop(from);
  return false;
}

Channel::Transfer Channel::transfer(int from, int to, double bytes,
                                    Ledger& ledger) {
  if (!impair_) return {send(from, to, bytes, ledger), 0.0};
  const ArqTransferStats stats = run_arq_transfer(
      from, to, bytes, *impair_, arq_, rng_,
      [this] { return rng_.bernoulli(attempt_loss()); }, ledger);
  attempts_ += stats.data_tx;
  retries_ += stats.retransmissions;
  dup_rx_ += stats.dup_rx;
  corrupt_rx_ += stats.corrupt_rx;
  arq_timeouts_ += stats.timeouts;
  acks_ += stats.acks_tx;
  if (!stats.delivered) {
    ++drops_;
    obs::count("channel.drops");
    if (obs::NodeTelemetry* t = obs::telemetry()) t->add_drop(from);
  }
  return {stats.delivered, stats.latency_s};
}

double Channel::delivery_probability() const {
  if (perfect()) return 1.0;
  if (!burst_)
    return 1.0 - std::pow(loss_probability_, max_retries_ + 1);
  // Exact Gilbert–Elliott computation: march the chain forward from the
  // channel's current state, carrying the joint probability of ("every
  // attempt so far was lost", chain state). attempt_loss() reads the loss
  // of the current state and then advances the chain, so each step first
  // applies the state's loss, then the transition.
  double fail_good = in_burst_ ? 0.0 : 1.0;  // all-lost & chain in good
  double fail_bad = in_burst_ ? 1.0 : 0.0;   // all-lost & chain in bad
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    const double lost_from_good = fail_good * burst_->loss_good;
    const double lost_from_bad = fail_bad * burst_->loss_bad;
    fail_good = lost_from_good * (1.0 - burst_->p_enter_burst) +
                lost_from_bad * burst_->p_exit_burst;
    fail_bad = lost_from_good * burst_->p_enter_burst +
               lost_from_bad * (1.0 - burst_->p_exit_burst);
  }
  return 1.0 - (fail_good + fail_bad);
}

}  // namespace isomap
