#pragma once

#include "net/ledger.hpp"
#include "util/rng.hpp"

namespace isomap {

/// Link-layer model. The paper assumes a perfect link layer ("data
/// delivery is guaranteed through performance-based routing dynamics and
/// MAC layer retransmissions", Section 5); this class makes that
/// assumption explicit and optionally relaxes it: each hop transmission
/// is lost independently with `loss_probability`, and ARQ retries up to
/// `max_retries` times (B-MAC/Z-MAC style, the MAC schemes the paper
/// cites). Every attempt — including failed ones — is charged to the
/// ledger: the sender pays TX for each try, the receiver pays RX only
/// for the try it successfully decodes.
class Channel {
 public:
  /// Perfect channel: every send succeeds on the first try.
  Channel();

  /// Lossy channel with ARQ. loss_probability in [0, 1);
  /// max_retries >= 0 extra attempts after the first.
  Channel(double loss_probability, int max_retries, Rng rng);

  /// Deliver `bytes` one hop from `from` to `to`, charging the ledger per
  /// attempt. Returns false when every attempt was lost (the message is
  /// dropped).
  bool send(int from, int to, double bytes, Ledger& ledger);

  bool perfect() const { return loss_probability_ <= 0.0; }
  double loss_probability() const { return loss_probability_; }
  int max_retries() const { return max_retries_; }

  /// Cumulative statistics since construction.
  long long attempts() const { return attempts_; }
  long long drops() const { return drops_; }
  /// Expected per-hop delivery probability for these parameters.
  double delivery_probability() const;

 private:
  double loss_probability_ = 0.0;
  int max_retries_ = 0;
  Rng rng_;
  long long attempts_ = 0;
  long long drops_ = 0;
};

}  // namespace isomap
