#pragma once

#include <cstdint>
#include <optional>

#include "net/arq.hpp"
#include "net/impairment.hpp"
#include "net/ledger.hpp"
#include "util/rng.hpp"

namespace isomap {

/// Two-state bursty loss model (Gilbert–Elliott). The channel alternates
/// between a "good" state with loss `loss_good` and a "bad" (burst) state
/// with loss `loss_bad`; after every attempt it enters a burst with
/// probability `p_enter_burst` (from good) or leaves it with probability
/// `p_exit_burst` (from bad). This models the correlated outages —
/// interference, storms, passing ships — that i.i.d. loss cannot: during
/// a burst ARQ retries are nearly useless because consecutive attempts
/// fail together.
struct GilbertElliottParams {
  double p_enter_burst = 0.02;
  double p_exit_burst = 0.25;
  double loss_good = 0.0;
  double loss_bad = 0.8;

  /// Stationary probability of being in the burst state.
  double stationary_bad() const {
    const double denom = p_enter_burst + p_exit_burst;
    return denom > 0.0 ? p_enter_burst / denom : 0.0;
  }
  /// Long-run average per-attempt loss probability.
  double mean_loss() const {
    const double pi_bad = stationary_bad();
    return pi_bad * loss_bad + (1.0 - pi_bad) * loss_good;
  }
};

/// Link-layer model. The paper assumes a perfect link layer ("data
/// delivery is guaranteed through performance-based routing dynamics and
/// MAC layer retransmissions", Section 5); this class makes that
/// assumption explicit and optionally relaxes it, in two modes:
///  - i.i.d.: each hop transmission is lost independently with
///    `loss_probability`;
///  - bursty: losses follow a Gilbert–Elliott two-state chain (above).
/// ARQ retries up to `max_retries` times (B-MAC/Z-MAC style, the MAC
/// schemes the paper cites). Every attempt — including failed ones — is
/// charged to the ledger: the sender pays TX for each try, the receiver
/// pays RX only for the try it successfully decodes. Retransmissions and
/// final drops bump the "channel.retries" / "channel.drops" obs counters
/// so link-layer overhead is visible per run and per phase.
class Channel {
 public:
  /// Perfect channel: every send succeeds on the first try.
  Channel();

  /// Lossy i.i.d. channel with ARQ. loss_probability in [0, 1);
  /// max_retries >= 0 extra attempts after the first.
  Channel(double loss_probability, int max_retries, Rng rng);

  /// Bursty Gilbert–Elliott channel with ARQ. Requires probabilities in
  /// [0, 1], p_exit_burst > 0 (bursts must be able to end), loss_good in
  /// [0, 1) and loss_bad in [0, 1]. The chain starts in the good state.
  Channel(const GilbertElliottParams& params, int max_retries, Rng rng);

  /// Build whichever channel the flattened option fields describe: bursty
  /// when `burst` is set, i.i.d. when loss > 0, perfect otherwise. The
  /// one construction path every protocol option struct funnels through.
  static Channel make(double loss, int max_retries, std::uint64_t seed,
                      const std::optional<GilbertElliottParams>& burst);

  /// As above, additionally layering the impairment pipeline + ARQ on top
  /// of the loss chain when `impair` is set. `arq` validates on use.
  static Channel make(double loss, int max_retries, std::uint64_t seed,
                      const std::optional<GilbertElliottParams>& burst,
                      const std::optional<ImpairmentConfig>& impair,
                      const ArqConfig& arq = {});

  /// Deliver `bytes` one hop from `from` to `to`, charging the ledger per
  /// attempt. Returns false when every attempt was lost (the message is
  /// dropped). Ignores the impairment pipeline — the instantaneous
  /// compatibility path; use transfer() to exercise impairments.
  bool send(int from, int to, double bytes, Ledger& ledger);

  /// Outcome of one hop transfer: whether the batch arrived, and how much
  /// virtual link time it took (0 on the unimpaired path, where delivery
  /// is instantaneous by assumption).
  struct Transfer {
    bool delivered = true;
    double latency_s = 0.0;
  };

  /// Deliver `bytes` one hop. Without an ImpairmentConfig this is exactly
  /// send() — bit-for-bit, same Rng draws, same ledger charges — so
  /// perfect and plain-lossy channels reproduce the pre-impairment
  /// behavior. With one, the batch is framed and run through the
  /// sliding-window ARQ engine over the impaired link (see net/arq.hpp),
  /// reusing this channel's loss chain for per-frame losses.
  Transfer transfer(int from, int to, double bytes, Ledger& ledger);

  bool bursty() const { return burst_.has_value(); }
  bool perfect() const { return !bursty() && loss_probability_ <= 0.0; }
  double loss_probability() const { return loss_probability_; }
  int max_retries() const { return max_retries_; }
  const std::optional<GilbertElliottParams>& burst_params() const {
    return burst_;
  }
  /// Currently in the Gilbert–Elliott burst state (always false i.i.d.).
  bool in_burst() const { return in_burst_; }

  /// Impairment pipeline active (transfer() runs the ARQ engine).
  bool impaired() const { return impair_.has_value(); }
  const std::optional<ImpairmentConfig>& impairment() const {
    return impair_;
  }
  const ArqConfig& arq() const { return arq_; }

  /// Cumulative statistics since construction.
  long long attempts() const { return attempts_; }
  long long retries() const { return retries_; }
  long long drops() const { return drops_; }
  long long dup_rx() const { return dup_rx_; }
  long long corrupt_rx() const { return corrupt_rx_; }
  long long arq_timeouts() const { return arq_timeouts_; }
  long long acks() const { return acks_; }
  /// Expected probability that a send() delivers within max_retries + 1
  /// attempts. Exact in every mode: i.i.d. is the closed form
  /// 1 - loss^(max_retries+1); bursty runs the Gilbert–Elliott chain
  /// forward from the channel's *current* state, tracking the joint
  /// distribution of (all attempts lost so far, chain state) — this
  /// captures the within-batch correlation that makes retries during a
  /// burst nearly useless, which the old stationary-mean approximation
  /// ignored.
  double delivery_probability() const;

 private:
  double attempt_loss();

  double loss_probability_ = 0.0;
  int max_retries_ = 0;
  std::optional<GilbertElliottParams> burst_;
  bool in_burst_ = false;
  std::optional<ImpairmentConfig> impair_;
  ArqConfig arq_;
  Rng rng_;
  long long attempts_ = 0;
  long long retries_ = 0;
  long long drops_ = 0;
  long long dup_rx_ = 0;
  long long corrupt_rx_ = 0;
  long long arq_timeouts_ = 0;
  long long acks_ = 0;
};

}  // namespace isomap
