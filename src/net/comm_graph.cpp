#include "net/comm_graph.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <stdexcept>

#include "geometry/tile_grid.hpp"

namespace isomap {

CommGraph::CommGraph(const Deployment& deployment, double radio_range)
    : radio_range_(radio_range) {
  if (radio_range <= 0.0)
    throw std::invalid_argument("CommGraph: radio_range must be positive");
  const auto& nodes = deployment.nodes();
  const std::size_t n = nodes.size();
  alive_.resize(n);
  std::vector<Vec2> pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    alive_[i] = nodes[i].alive ? 1 : 0;
    pos[i] = nodes[i].pos;
  }

  // Tile grid keyed by the radio range (tile extent >= range, so a 3x3
  // tile block covers every node within range). Tiles hold CSR-bucketed
  // alive-node indices; dead nodes are never bucketed.
  const FieldBounds b = deployment.bounds();
  const int cols =
      std::max(1, static_cast<int>(std::floor(b.width() / radio_range)));
  const int rows =
      std::max(1, static_cast<int>(std::floor(b.height() / radio_range)));
  const TileGrid grid(TileLayout{b.x0, b.y0, b.width() / cols,
                                 b.height() / rows, cols, rows},
                      pos, alive_);
  const TileLayout& layout = grid.layout();

  // Adjacency is built straight into CSR form with two passes over the
  // tile blocks: count each node's degree, prefix-sum the offsets, then
  // fill and sort each node's slice ascending. The sorted slice is
  // uniquely determined by the neighbour *set*, so the edge array is
  // bit-identical to the old per-node push_back + sort construction.
  const double range2 = radio_range * radio_range;
  csr_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive_[i]) continue;
    const Vec2 p = pos[i];
    int count = 0;
    grid.for_each_in_block(
        layout.col_of(p.x), layout.row_of(p.y), [&](int j) {
          if (j == static_cast<int>(i)) return;
          if ((pos[static_cast<std::size_t>(j)] - p).norm2() <= range2)
            ++count;
        });
    csr_offsets_[i + 1] = count;
  }
  for (std::size_t i = 1; i <= n; ++i) csr_offsets_[i] += csr_offsets_[i - 1];
  csr_edges_.resize(static_cast<std::size_t>(csr_offsets_[n]));
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive_[i]) continue;
    const Vec2 p = pos[i];
    int* slice = csr_edges_.data() + csr_offsets_[i];
    int count = 0;
    grid.for_each_in_block(
        layout.col_of(p.x), layout.row_of(p.y), [&](int j) {
          if (j == static_cast<int>(i)) return;
          if ((pos[static_cast<std::size_t>(j)] - p).norm2() <= range2)
            slice[count++] = j;
        });
    std::sort(slice, slice + count);
  }
}

double CommGraph::average_degree() const {
  long long total = 0;
  long long alive_count = 0;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (!alive_[i]) continue;
    ++alive_count;
    total += static_cast<long long>(degree(static_cast<int>(i)));
  }
  return alive_count ? static_cast<double>(total) / static_cast<double>(alive_count) : 0.0;
}

std::vector<int> CommGraph::k_hop_neighbours(int i, int k) const {
  std::vector<int> out;
  for (const auto& [node, dist] : k_hop_neighbours_with_distance(i, k))
    out.push_back(node);
  return out;
}

std::vector<std::pair<int, int>> CommGraph::k_hop_neighbours_with_distance(
    int i, int k) const {
  std::vector<std::pair<int, int>> out;
  if (i < 0 || static_cast<std::size_t>(i) >= alive_.size() ||
      !alive_[static_cast<std::size_t>(i)] || k <= 0)
    return out;
  // Epoch-stamped scratch reused across calls: the protocol runs one BFS
  // per isoline node, and a fresh O(n) dist vector per call dominated the
  // gradient-fit phase. The scratch is thread_local so concurrent bench
  // trials sharing a graph never race; stale stamps from other (smaller)
  // graphs can never equal a fresh epoch.
  struct Scratch {
    std::vector<std::uint32_t> stamp;  // Visited iff stamp[v] == epoch.
    std::vector<int> hop;
    std::vector<int> queue;            // Flat FIFO: head index + push_back.
    std::uint32_t epoch = 0;
  };
  thread_local Scratch s;
  const std::size_t n = alive_.size();
  if (s.stamp.size() < n) {
    s.stamp.resize(n, 0);
    s.hop.resize(n, 0);
  }
  if (++s.epoch == 0) {
    std::fill(s.stamp.begin(), s.stamp.end(), 0);
    s.epoch = 1;
  }
  s.queue.clear();
  s.stamp[static_cast<std::size_t>(i)] = s.epoch;
  s.hop[static_cast<std::size_t>(i)] = 0;
  s.queue.push_back(i);
  for (std::size_t head = 0; head < s.queue.size(); ++head) {
    const int u = s.queue[head];
    if (s.hop[static_cast<std::size_t>(u)] >= k) continue;
    for (int v : neighbour_span(u)) {
      if (s.stamp[static_cast<std::size_t>(v)] == s.epoch) continue;
      s.stamp[static_cast<std::size_t>(v)] = s.epoch;
      s.hop[static_cast<std::size_t>(v)] = s.hop[static_cast<std::size_t>(u)] + 1;
      out.emplace_back(v, s.hop[static_cast<std::size_t>(v)]);
      s.queue.push_back(v);
    }
  }
  return out;
}

bool CommGraph::is_connected() const {
  int start = -1;
  int alive_count = 0;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) {
      ++alive_count;
      if (start == -1) start = static_cast<int>(i);
    }
  }
  if (alive_count <= 1) return true;
  std::vector<bool> seen(alive_.size(), false);
  std::queue<int> queue;
  seen[static_cast<std::size_t>(start)] = true;
  queue.push(start);
  int reached = 1;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (int v : neighbour_span(u)) {
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = true;
      ++reached;
      queue.push(v);
    }
  }
  return reached == alive_count;
}

}  // namespace isomap
