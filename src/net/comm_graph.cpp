#include "net/comm_graph.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <stdexcept>

namespace isomap {

CommGraph::CommGraph(const Deployment& deployment, double radio_range)
    : radio_range_(radio_range) {
  if (radio_range <= 0.0)
    throw std::invalid_argument("CommGraph: radio_range must be positive");
  const auto& nodes = deployment.nodes();
  const std::size_t n = nodes.size();
  adjacency_.resize(n);
  alive_.resize(n);
  for (std::size_t i = 0; i < n; ++i) alive_[i] = nodes[i].alive;

  // Spatial hash with cell size = radio range; each node only checks the
  // 3x3 cell block around it.
  const FieldBounds b = deployment.bounds();
  const int cols =
      std::max(1, static_cast<int>(std::floor(b.width() / radio_range)));
  const int rows =
      std::max(1, static_cast<int>(std::floor(b.height() / radio_range)));
  const double cw = b.width() / cols;
  const double ch = b.height() / rows;
  auto cell_of = [&](Vec2 p) {
    int c = static_cast<int>((p.x - b.x0) / cw);
    int r = static_cast<int>((p.y - b.y0) / ch);
    c = std::clamp(c, 0, cols - 1);
    r = std::clamp(r, 0, rows - 1);
    return r * cols + c;
  };
  std::vector<std::vector<int>> buckets(static_cast<std::size_t>(cols) * rows);
  for (const auto& node : nodes)
    if (node.alive) buckets[static_cast<std::size_t>(cell_of(node.pos))].push_back(node.id);

  const double range2 = radio_range * radio_range;
  for (const auto& node : nodes) {
    if (!node.alive) continue;
    const int c0 = std::clamp(
        static_cast<int>((node.pos.x - b.x0) / cw), 0, cols - 1);
    const int r0 = std::clamp(
        static_cast<int>((node.pos.y - b.y0) / ch), 0, rows - 1);
    for (int dr = -1; dr <= 1; ++dr) {
      for (int dc = -1; dc <= 1; ++dc) {
        const int r = r0 + dr;
        const int c = c0 + dc;
        if (r < 0 || r >= rows || c < 0 || c >= cols) continue;
        for (int j : buckets[static_cast<std::size_t>(r) * cols + c]) {
          if (j == node.id) continue;
          if ((nodes[static_cast<std::size_t>(j)].pos - node.pos).norm2() <=
              range2)
            adjacency_[static_cast<std::size_t>(node.id)].push_back(j);
        }
      }
    }
    auto& adj = adjacency_[static_cast<std::size_t>(node.id)];
    std::sort(adj.begin(), adj.end());
  }

  csr_offsets_.resize(n + 1, 0);
  std::size_t total_edges = 0;
  for (std::size_t i = 0; i < n; ++i) total_edges += adjacency_[i].size();
  csr_edges_.reserve(total_edges);
  for (std::size_t i = 0; i < n; ++i) {
    csr_offsets_[i] = static_cast<int>(csr_edges_.size());
    csr_edges_.insert(csr_edges_.end(), adjacency_[i].begin(),
                      adjacency_[i].end());
  }
  csr_offsets_[n] = static_cast<int>(csr_edges_.size());
}

double CommGraph::average_degree() const {
  long long total = 0;
  long long alive_count = 0;
  for (std::size_t i = 0; i < adjacency_.size(); ++i) {
    if (!alive_[i]) continue;
    ++alive_count;
    total += static_cast<long long>(adjacency_[i].size());
  }
  return alive_count ? static_cast<double>(total) / static_cast<double>(alive_count) : 0.0;
}

std::vector<int> CommGraph::k_hop_neighbours(int i, int k) const {
  std::vector<int> out;
  for (const auto& [node, dist] : k_hop_neighbours_with_distance(i, k))
    out.push_back(node);
  return out;
}

std::vector<std::pair<int, int>> CommGraph::k_hop_neighbours_with_distance(
    int i, int k) const {
  std::vector<std::pair<int, int>> out;
  if (i < 0 || static_cast<std::size_t>(i) >= adjacency_.size() ||
      !alive_[static_cast<std::size_t>(i)] || k <= 0)
    return out;
  // Epoch-stamped scratch reused across calls: the protocol runs one BFS
  // per isoline node, and a fresh O(n) dist vector per call dominated the
  // gradient-fit phase. The scratch is thread_local so concurrent bench
  // trials sharing a graph never race; stale stamps from other (smaller)
  // graphs can never equal a fresh epoch.
  struct Scratch {
    std::vector<std::uint32_t> stamp;  // Visited iff stamp[v] == epoch.
    std::vector<int> hop;
    std::vector<int> queue;            // Flat FIFO: head index + push_back.
    std::uint32_t epoch = 0;
  };
  thread_local Scratch s;
  const std::size_t n = adjacency_.size();
  if (s.stamp.size() < n) {
    s.stamp.resize(n, 0);
    s.hop.resize(n, 0);
  }
  if (++s.epoch == 0) {
    std::fill(s.stamp.begin(), s.stamp.end(), 0);
    s.epoch = 1;
  }
  s.queue.clear();
  s.stamp[static_cast<std::size_t>(i)] = s.epoch;
  s.hop[static_cast<std::size_t>(i)] = 0;
  s.queue.push_back(i);
  for (std::size_t head = 0; head < s.queue.size(); ++head) {
    const int u = s.queue[head];
    if (s.hop[static_cast<std::size_t>(u)] >= k) continue;
    for (int v : neighbour_span(u)) {
      if (s.stamp[static_cast<std::size_t>(v)] == s.epoch) continue;
      s.stamp[static_cast<std::size_t>(v)] = s.epoch;
      s.hop[static_cast<std::size_t>(v)] = s.hop[static_cast<std::size_t>(u)] + 1;
      out.emplace_back(v, s.hop[static_cast<std::size_t>(v)]);
      s.queue.push_back(v);
    }
  }
  return out;
}

bool CommGraph::is_connected() const {
  int start = -1;
  int alive_count = 0;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) {
      ++alive_count;
      if (start == -1) start = static_cast<int>(i);
    }
  }
  if (alive_count <= 1) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::queue<int> queue;
  seen[static_cast<std::size_t>(start)] = true;
  queue.push(start);
  int reached = 1;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = true;
      ++reached;
      queue.push(v);
    }
  }
  return reached == alive_count;
}

}  // namespace isomap
