#pragma once

#include <utility>
#include <vector>

#include "net/deployment.hpp"

namespace isomap {

/// Unit-disc communication graph over the alive nodes of a deployment:
/// two alive nodes are neighbours iff their distance is <= radio_range.
/// Built with a uniform spatial hash so construction is O(n) for the
/// unit-density deployments the paper simulates.
class CommGraph {
 public:
  CommGraph(const Deployment& deployment, double radio_range);

  double radio_range() const { return radio_range_; }
  int size() const { return static_cast<int>(adjacency_.size()); }

  /// Neighbour ids of node i (empty for dead nodes).
  const std::vector<int>& neighbours(int i) const {
    return adjacency_[static_cast<std::size_t>(i)];
  }

  int degree(int i) const {
    return static_cast<int>(adjacency_[static_cast<std::size_t>(i)].size());
  }

  /// Mean degree over alive nodes (0 if none).
  double average_degree() const;

  /// Nodes within k hops of i, excluding i itself (BFS over alive nodes).
  std::vector<int> k_hop_neighbours(int i, int k) const;

  /// As k_hop_neighbours, but each entry carries its hop distance from i.
  std::vector<std::pair<int, int>> k_hop_neighbours_with_distance(int i,
                                                                  int k) const;

  /// True if all alive nodes are mutually reachable.
  bool is_connected() const;

  bool alive(int i) const { return alive_[static_cast<std::size_t>(i)]; }

 private:
  double radio_range_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<bool> alive_;
};

}  // namespace isomap
