#pragma once

#include <span>
#include <utility>
#include <vector>

#include "net/deployment.hpp"

namespace isomap {

/// Unit-disc communication graph over the alive nodes of a deployment:
/// two alive nodes are neighbours iff their distance is <= radio_range.
/// Built with a uniform tile grid keyed by the radio range (cell size >=
/// range), so edge discovery touches only the 3x3 tile block around each
/// node and construction is O(n) for the unit-density deployments the
/// paper simulates.
///
/// Adjacency is stored directly in CSR form: one flat edge array plus
/// per-node offsets, with neighbour ids ascending within each node's
/// slice. There is no per-node vector-of-vectors mirror — at 10^6 nodes
/// the million tiny heap allocations and 24-byte vector headers were the
/// dominant construction cost, and the flat layout is what the selection
/// and regression hot loops want to stream over anyway.
class CommGraph {
 public:
  CommGraph(const Deployment& deployment, double radio_range);

  double radio_range() const { return radio_range_; }
  int size() const { return static_cast<int>(alive_.size()); }

  /// Neighbour ids of node i, ascending (empty for dead nodes). A view
  /// into the shared CSR edge array; invalidated only by destroying the
  /// graph (the graph is immutable after construction).
  std::span<const int> neighbours(int i) const { return neighbour_span(i); }

  /// CSR view of node i's neighbour list: a contiguous slice of one flat
  /// edge array shared by the whole graph. The flat layout keeps the
  /// per-node selection and regression loops on one cache-friendly array.
  std::span<const int> neighbour_span(int i) const {
    const auto u = static_cast<std::size_t>(i);
    return {csr_edges_.data() + csr_offsets_[u],
            csr_edges_.data() + csr_offsets_[u + 1]};
  }

  /// CSR arrays: offsets_[i]..offsets_[i+1] indexes node i's slice of the
  /// flat edge array (offsets has size() + 1 entries).
  const std::vector<int>& csr_offsets() const { return csr_offsets_; }
  const std::vector<int>& csr_edges() const { return csr_edges_; }

  int degree(int i) const {
    const auto u = static_cast<std::size_t>(i);
    return csr_offsets_[u + 1] - csr_offsets_[u];
  }

  /// Mean degree over alive nodes (0 if none).
  double average_degree() const;

  /// Nodes within k hops of i, excluding i itself (BFS over alive nodes).
  std::vector<int> k_hop_neighbours(int i, int k) const;

  /// As k_hop_neighbours, but each entry carries its hop distance from i.
  std::vector<std::pair<int, int>> k_hop_neighbours_with_distance(int i,
                                                                  int k) const;

  /// True if all alive nodes are mutually reachable.
  bool is_connected() const;

  bool alive(int i) const { return alive_[static_cast<std::size_t>(i)] != 0; }

 private:
  double radio_range_;
  /// CSR adjacency: csr_edges_ concatenates the per-node neighbour lists
  /// in node order; csr_offsets_[i] is node i's start.
  std::vector<int> csr_offsets_;
  std::vector<int> csr_edges_;
  std::vector<unsigned char> alive_;
};

}  // namespace isomap
