#include "net/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace isomap {

Deployment::Deployment(FieldBounds bounds, std::vector<Node> nodes)
    : bounds_(bounds), nodes_(std::move(nodes)) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].id != static_cast<int>(i))
      throw std::invalid_argument("Deployment: node ids must be 0..n-1");
  }
}

Deployment Deployment::uniform_random(FieldBounds bounds, int n, Rng& rng) {
  if (n <= 0) throw std::invalid_argument("Deployment: n must be positive");
  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes.push_back({i,
                     {rng.uniform(bounds.x0, bounds.x1),
                      rng.uniform(bounds.y0, bounds.y1)},
                     true,
                     std::nullopt});
  }
  return Deployment(bounds, std::move(nodes));
}

Deployment Deployment::grid(FieldBounds bounds, int n) {
  if (n <= 0) throw std::invalid_argument("Deployment: n must be positive");
  const int cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  const int rows = (n + cols - 1) / cols;
  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  const double cw = bounds.width() / cols;
  const double ch = bounds.height() / rows;
  int id = 0;
  for (int r = 0; r < rows && id < n; ++r) {
    for (int c = 0; c < cols && id < n; ++c) {
      nodes.push_back({id,
                       {bounds.x0 + (c + 0.5) * cw, bounds.y0 + (r + 0.5) * ch},
                       true,
                       std::nullopt});
      ++id;
    }
  }
  return Deployment(bounds, std::move(nodes));
}

int Deployment::alive_count() const {
  int count = 0;
  for (const auto& node : nodes_) count += node.alive ? 1 : 0;
  return count;
}

double Deployment::density() const {
  const double area = bounds_.width() * bounds_.height();
  return area > 0.0 ? static_cast<double>(nodes_.size()) / area : 0.0;
}

void Deployment::fail_random(double fraction, Rng& rng) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  std::vector<int> alive_ids;
  for (const auto& node : nodes_)
    if (node.alive) alive_ids.push_back(node.id);
  const auto to_fail = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(alive_ids.size())));
  // Partial Fisher-Yates: pick `to_fail` distinct victims.
  for (std::size_t i = 0; i < to_fail && i < alive_ids.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_int(alive_ids.size() - i));
    std::swap(alive_ids[i], alive_ids[j]);
    nodes_[static_cast<std::size_t>(alive_ids[i])].alive = false;
  }
}

void Deployment::revive_all() {
  for (auto& node : nodes_) node.alive = true;
}

int Deployment::nearest_alive(Vec2 p) const {
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const auto& node : nodes_) {
    if (!node.alive) continue;
    const double d2 = (node.pos - p).norm2();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = node.id;
    }
  }
  return best;
}

}  // namespace isomap
