#pragma once

#include <optional>
#include <vector>

#include "field/scalar_field.hpp"
#include "util/rng.hpp"

namespace isomap {

/// One sensor node. Position is fixed at deployment; `alive` toggles under
/// failure injection (a dead node neither senses, reports, nor routes).
///
/// `believed` models imperfect localization (the paper obtains positions
/// "either from attached localization devices such as a GPS receiver or
/// by one of existing algorithms", Section 3.3): it is the position the
/// node *reports* and uses in computations, while `pos` is the physical
/// truth that governs sensing and radio connectivity. Unset means exact
/// localization.
struct Node {
  int id = -1;
  Vec2 pos{};
  bool alive = true;
  std::optional<Vec2> believed;

  Vec2 reported_pos() const { return believed.value_or(pos); }
};

/// A set of sensor nodes placed over a bounded field. The paper deploys
/// n nodes over a sqrt(n) x sqrt(n) normalized field (density 1) either
/// uniformly at random (Iso-Map's native mode) or on a regular grid (what
/// TinyDB-style protocols require).
class Deployment {
 public:
  Deployment(FieldBounds bounds, std::vector<Node> nodes);

  /// n nodes i.i.d. uniform over the bounds.
  static Deployment uniform_random(FieldBounds bounds, int n, Rng& rng);

  /// n nodes on the most-square grid covering the bounds (rows*cols >= n is
  /// rounded so exactly floor(sqrt(n))^2-like layouts come out even;
  /// callers pass perfect squares in the paper's experiments). Cells are
  /// centred, matching TinyDB's one-node-per-grid-cell model.
  static Deployment grid(FieldBounds bounds, int n);

  const FieldBounds& bounds() const { return bounds_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  std::vector<Node>& nodes() { return nodes_; }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  int size() const { return static_cast<int>(nodes_.size()); }
  int alive_count() const;

  /// Nodes per unit area, counting all (alive or dead) nodes.
  double density() const;

  /// Mark a random `fraction` of currently-alive nodes as failed.
  void fail_random(double fraction, Rng& rng);

  /// Restore all nodes to alive.
  void revive_all();

  /// Id of the alive node nearest to `p` (the sink attachment point);
  /// -1 if no node is alive.
  int nearest_alive(Vec2 p) const;

 private:
  FieldBounds bounds_;
  std::vector<Node> nodes_;
};

}  // namespace isomap
