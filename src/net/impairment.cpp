#include "net/impairment.hpp"

#include <stdexcept>
#include <utility>

namespace isomap {

namespace {

void check_prob(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(std::string("ImpairmentConfig: ") + what +
                                " must be in [0, 1]");
}

void check_delay(double s, const char* what) {
  if (!(s >= 0.0))
    throw std::invalid_argument(std::string("ImpairmentConfig: ") + what +
                                " must be >= 0");
}

}  // namespace

void ImpairmentConfig::validate() const {
  check_delay(latency_s, "latency_s");
  check_delay(jitter_s, "jitter_s");
  check_delay(reorder_extra_s, "reorder_extra_s");
  check_prob(dup_prob, "dup_prob");
  check_prob(reorder_prob, "reorder_prob");
  check_prob(corrupt_prob, "corrupt_prob");
}

FrameFate draw_frame_fate(const ImpairmentConfig& config, Rng& rng) {
  FrameFate fate;
  fate.delay_s = config.latency_s + rng.uniform() * config.jitter_s;
  if (rng.bernoulli(config.reorder_prob))
    fate.delay_s += config.reorder_extra_s;
  fate.corrupt = rng.bernoulli(config.corrupt_prob);
  return fate;
}

std::uint64_t LinkEventQueue::push(double time, int kind,
                                   std::uint32_t frame_seq,
                                   std::uint64_t generation,
                                   std::string bytes) {
  LinkEvent event;
  event.time = time;
  event.order = next_order_++;
  event.kind = kind;
  event.frame_seq = frame_seq;
  event.generation = generation;
  event.bytes = std::move(bytes);
  const std::uint64_t order = event.order;
  heap_.push(std::move(event));
  return order;
}

LinkEvent LinkEventQueue::pop() {
  LinkEvent event = heap_.top();
  heap_.pop();
  return event;
}

}  // namespace isomap
