#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace isomap {

/// Per-link impairment knobs (SNIPPETS-style latency/jitter/dup/reorder/
/// corrupt injection). The paper's link layer is instantaneous and
/// faithful; enabling any of these relaxes that: every frame copy that
/// survives the loss chain is delayed by `latency_s` plus a uniform
/// jitter draw, may be held back further (reordering), may arrive twice
/// (duplication), and may arrive with flipped payload bits (corruption —
/// caught by the ARQ frame checksum, never silently mis-delivered).
/// All draws come from the owning Channel's seeded Rng, so an impaired
/// run is exactly as reproducible as a lossy one.
struct ImpairmentConfig {
  double latency_s = 0.005;       ///< Fixed per-frame link delay.
  double jitter_s = 0.0;          ///< Uniform extra delay in [0, jitter_s).
  double dup_prob = 0.0;          ///< P(frame heard twice at the receiver).
  double reorder_prob = 0.0;      ///< P(frame held back reorder_extra_s).
  double reorder_extra_s = 0.02;  ///< Hold-back delay for reordered frames.
  double corrupt_prob = 0.0;      ///< P(payload corrupted in flight).

  /// Throws std::invalid_argument on out-of-range values (negative
  /// delays, probabilities outside [0, 1]).
  void validate() const;
};

/// One impairment draw for one physical frame copy: how long the link
/// holds it and whether its payload arrives damaged. Exactly three Rng
/// draws (jitter, reorder, corrupt) in that order, regardless of the
/// config values, so the consumed stream shape is config-independent.
struct FrameFate {
  double delay_s = 0.0;
  bool corrupt = false;
};
FrameFate draw_frame_fate(const ImpairmentConfig& config, Rng& rng);

/// One scheduled link event: a frame copy arriving (or a timer firing)
/// at virtual time `time`. `kind`, `frame_seq` and `generation` are
/// opaque to the queue — the ARQ engine defines them.
struct LinkEvent {
  double time = 0.0;
  std::uint64_t order = 0;  ///< Scheduling sequence number (tie-break).
  int kind = 0;
  std::uint32_t frame_seq = 0;
  std::uint64_t generation = 0;
  std::string bytes;  ///< Wire frame for arrival events.
};

/// Deterministic virtual-time event queue keyed by (deliver_time, order):
/// events at equal times pop in the order they were pushed, so two runs
/// with the same seed replay the same interleaving bit for bit — the
/// property the golden `impaired_arq` capsule pins across compilers.
class LinkEventQueue {
 public:
  /// Schedule an event; returns its tie-break order number.
  std::uint64_t push(double time, int kind, std::uint32_t frame_seq,
                     std::uint64_t generation, std::string bytes);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  LinkEvent pop();

 private:
  struct Later {
    bool operator()(const LinkEvent& a, const LinkEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.order > b.order;
    }
  };
  std::priority_queue<LinkEvent, std::vector<LinkEvent>, Later> heap_;
  std::uint64_t next_order_ = 0;
};

}  // namespace isomap
