#include "net/ledger.hpp"

#include <algorithm>
#include <stdexcept>

namespace isomap {

Ledger::Ledger(int num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("Ledger: negative size");
  tx_bytes_.assign(static_cast<std::size_t>(num_nodes), 0.0);
  rx_bytes_.assign(static_cast<std::size_t>(num_nodes), 0.0);
  ops_.assign(static_cast<std::size_t>(num_nodes), 0.0);
}

void Ledger::transmit(int from, int to, double bytes) {
  tx_bytes_.at(static_cast<std::size_t>(from)) += bytes;
  rx_bytes_.at(static_cast<std::size_t>(to)) += bytes;
}

void Ledger::broadcast(int from, const std::vector<int>& receivers,
                       double bytes) {
  tx_bytes_.at(static_cast<std::size_t>(from)) += bytes;
  for (int r : receivers) rx_bytes_.at(static_cast<std::size_t>(r)) += bytes;
}

void Ledger::transmit_lost(int from, double bytes) {
  tx_bytes_.at(static_cast<std::size_t>(from)) += bytes;
}

void Ledger::compute(int node, double ops) {
  ops_.at(static_cast<std::size_t>(node)) += ops;
}

double Ledger::total_tx_bytes() const {
  double total = 0.0;
  for (double b : tx_bytes_) total += b;
  return total;
}

double Ledger::total_rx_bytes() const {
  double total = 0.0;
  for (double b : rx_bytes_) total += b;
  return total;
}

double Ledger::total_ops() const {
  double total = 0.0;
  for (double o : ops_) total += o;
  return total;
}

double Ledger::mean_ops() const {
  return ops_.empty() ? 0.0 : total_ops() / static_cast<double>(ops_.size());
}

double Ledger::max_ops() const {
  double best = 0.0;
  for (double o : ops_) best = std::max(best, o);
  return best;
}

void Ledger::merge(const Ledger& other) {
  if (other.size() != size()) throw std::invalid_argument("Ledger size mismatch");
  for (std::size_t i = 0; i < tx_bytes_.size(); ++i) {
    tx_bytes_[i] += other.tx_bytes_[i];
    rx_bytes_[i] += other.rx_bytes_[i];
    ops_[i] += other.ops_[i];
  }
}

}  // namespace isomap
