#include "net/ledger.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "net/comm_graph.hpp"
#include "obs/node_telemetry.hpp"
#include "obs/obs.hpp"

namespace isomap {

Ledger::Ledger(int num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("Ledger: negative size");
  tx_bytes_.assign(static_cast<std::size_t>(num_nodes), 0.0);
  rx_bytes_.assign(static_cast<std::size_t>(num_nodes), 0.0);
  ops_.assign(static_cast<std::size_t>(num_nodes), 0.0);
}

void Ledger::check_node(int node, const char* what) const {
  if (node < 0 || node >= size())
    throw std::out_of_range(std::string("Ledger::") + what + ": node " +
                            std::to_string(node) + " outside [0, " +
                            std::to_string(size()) + ")");
}

void Ledger::check_amount(double amount, const char* what) {
  if (!(amount >= 0.0) || !std::isfinite(amount))
    throw std::invalid_argument(std::string("Ledger::") + what +
                                ": amount must be finite and >= 0, got " +
                                std::to_string(amount));
}

void Ledger::transmit(int from, int to, double bytes) {
  check_node(from, "transmit");
  check_node(to, "transmit");
  check_amount(bytes, "transmit");
  tx_bytes_[static_cast<std::size_t>(from)] += bytes;
  rx_bytes_[static_cast<std::size_t>(to)] += bytes;
  // Telemetry charges mirror the array writes above in the same order
  // with the same amounts, so the per-node table reconciles bit-for-bit.
  if (obs::NodeTelemetry* t = obs::telemetry()) {
    const char* phase = obs::current_phase();
    t->charge_tx(from, bytes, phase);
    t->charge_rx(to, bytes, phase);
  }
  if (obs::TraceSink* sink = obs::trace()) {
    obs::TraceEvent event;
    event.phase = obs::current_phase();
    event.node = from;
    event.peer = to;
    event.tx_bytes = bytes;
    event.rx_bytes = bytes;
    sink->emit(event);
  }
}

void Ledger::broadcast(int from, std::span<const int> receivers,
                       double bytes) {
  check_node(from, "broadcast");
  check_amount(bytes, "broadcast");
  for (int r : receivers) check_node(r, "broadcast");
  tx_bytes_[static_cast<std::size_t>(from)] += bytes;
  for (int r : receivers) rx_bytes_[static_cast<std::size_t>(r)] += bytes;
  if (obs::NodeTelemetry* t = obs::telemetry()) {
    const char* phase = obs::current_phase();
    t->charge_tx(from, bytes, phase);
    for (int r : receivers) t->charge_rx(r, bytes, phase);
  }
  if (obs::TraceSink* sink = obs::trace()) {
    obs::TraceEvent event;
    event.phase = obs::current_phase();
    event.node = from;
    event.tx_bytes = bytes;
    event.rx_bytes = bytes * static_cast<double>(receivers.size());
    sink->emit(event);
  }
}

void Ledger::transmit_lost(int from, double bytes) {
  check_node(from, "transmit_lost");
  check_amount(bytes, "transmit_lost");
  tx_bytes_[static_cast<std::size_t>(from)] += bytes;
  if (obs::NodeTelemetry* t = obs::telemetry())
    t->charge_tx(from, bytes, obs::current_phase());
  if (obs::TraceSink* sink = obs::trace()) {
    obs::TraceEvent event;
    event.phase = obs::current_phase();
    event.node = from;
    event.tx_bytes = bytes;
    sink->emit(event);
  }
}

void Ledger::receive(int to, double bytes) {
  check_node(to, "receive");
  check_amount(bytes, "receive");
  rx_bytes_[static_cast<std::size_t>(to)] += bytes;
  if (obs::NodeTelemetry* t = obs::telemetry())
    t->charge_rx(to, bytes, obs::current_phase());
  if (obs::TraceSink* sink = obs::trace()) {
    obs::TraceEvent event;
    event.phase = obs::current_phase();
    event.node = to;
    event.rx_bytes = bytes;
    sink->emit(event);
  }
}

double Ledger::broadcast_all(const CommGraph& graph, double bytes) {
  if (graph.size() != size())
    throw std::invalid_argument("Ledger::broadcast_all: graph size mismatch");
  check_amount(bytes, "broadcast_all");
  obs::TraceSink* const sink = obs::trace();
  obs::NodeTelemetry* const telemetry = obs::telemetry();
  const char* const phase =
      telemetry != nullptr ? obs::current_phase() : nullptr;
  double total = 0.0;
  for (int v = 0; v < graph.size(); ++v) {
    if (!graph.alive(v)) continue;
    // Adjacency is alive-only and fixed after construction, so node v
    // receives exactly one beacon per listed neighbour: charge rx as one
    // degree product instead of walking every edge. O(n) per round, not
    // O(n + E).
    const double rx = bytes * static_cast<double>(graph.degree(v));
    tx_bytes_[static_cast<std::size_t>(v)] += bytes;
    rx_bytes_[static_cast<std::size_t>(v)] += rx;
    total += bytes;
    if (telemetry != nullptr) {
      telemetry->charge_tx(v, bytes, phase);
      telemetry->charge_rx(v, rx, phase);
    }
    if (sink != nullptr) {
      obs::TraceEvent event;
      event.phase = obs::current_phase();
      event.node = v;
      event.tx_bytes = bytes;
      event.rx_bytes = rx;
      sink->emit(event);
    }
  }
  return total;
}

void Ledger::compute_all(const CommGraph& graph,
                         const std::vector<double>& ops) {
  if (graph.size() != size())
    throw std::invalid_argument("Ledger::compute_all: graph size mismatch");
  if (ops.size() < static_cast<std::size_t>(size()))
    throw std::invalid_argument("Ledger::compute_all: ops vector too short");
  obs::TraceSink* const sink = obs::trace();
  obs::NodeTelemetry* const telemetry = obs::telemetry();
  for (int v = 0; v < graph.size(); ++v) {
    if (!graph.alive(v)) continue;
    const double amount = ops[static_cast<std::size_t>(v)];
    check_amount(amount, "compute_all");
    ops_[static_cast<std::size_t>(v)] += amount;
    if (telemetry != nullptr) telemetry->charge_ops(v, amount);
    if (sink != nullptr) {
      obs::TraceEvent event;
      event.phase = obs::current_phase();
      event.node = v;
      event.ops = amount;
      sink->emit(event);
    }
  }
}

void Ledger::compute(int node, double ops) {
  check_node(node, "compute");
  check_amount(ops, "compute");
  ops_[static_cast<std::size_t>(node)] += ops;
  if (obs::NodeTelemetry* t = obs::telemetry()) t->charge_ops(node, ops);
  if (obs::TraceSink* sink = obs::trace()) {
    obs::TraceEvent event;
    event.phase = obs::current_phase();
    event.node = node;
    event.ops = ops;
    sink->emit(event);
  }
}

double Ledger::total_tx_bytes() const {
  double total = 0.0;
  for (double b : tx_bytes_) total += b;
  return total;
}

double Ledger::total_rx_bytes() const {
  double total = 0.0;
  for (double b : rx_bytes_) total += b;
  return total;
}

double Ledger::total_ops() const {
  double total = 0.0;
  for (double o : ops_) total += o;
  return total;
}

double Ledger::mean_ops() const {
  return ops_.empty() ? 0.0 : total_ops() / static_cast<double>(ops_.size());
}

double Ledger::max_ops() const {
  double best = 0.0;
  for (double o : ops_) best = std::max(best, o);
  return best;
}

void Ledger::merge(const Ledger& other) {
  // Aggregation of already-accounted ledgers (e.g. multi-round lifetime
  // studies): no trace events and no telemetry charges here — both were
  // posted when the costs were incurred, and re-posting would double
  // count.
  if (other.size() != size()) throw std::invalid_argument("Ledger size mismatch");
  for (std::size_t i = 0; i < tx_bytes_.size(); ++i) {
    tx_bytes_[i] += other.tx_bytes_[i];
    rx_bytes_[i] += other.rx_bytes_[i];
    ops_[i] += other.ops_[i];
  }
}

}  // namespace isomap
