#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace isomap {

class CommGraph;

/// Per-node accounting of communication (bytes transmitted/received per
/// hop) and computation (arithmetic operations). Every protocol run —
/// Iso-Map and all baselines — charges its costs here so Figs. 14-16 read
/// off one uniform ledger, which the energy model then converts to Joules.
///
/// Every charge is validated (node ids in range, amounts finite and
/// non-negative — std::out_of_range / std::invalid_argument otherwise)
/// and, when an obs::TraceSink is active on this thread, mirrored as a
/// "cost" trace event tagged with the current obs phase. Because the
/// events are emitted at the charge site, summing a trace's cost events
/// reconciles with the ledger totals by construction.
class Ledger {
 public:
  explicit Ledger(int num_nodes);

  int size() const { return static_cast<int>(tx_bytes_.size()); }

  /// One-hop transmission of `bytes` from node `from` to node `to`.
  void transmit(int from, int to, double bytes);

  /// Local broadcast: the sender pays one transmission of `bytes`; every
  /// listed receiver pays one reception of `bytes`.
  void broadcast(int from, std::span<const int> receivers, double bytes);
  void broadcast(int from, std::initializer_list<int> receivers,
                 double bytes) {
    broadcast(from, std::span<const int>(receivers.begin(), receivers.size()),
              bytes);
  }

  /// A transmission that was lost in the channel: the sender pays the
  /// airtime, nobody receives anything.
  void transmit_lost(int from, double bytes);

  /// Reception of `bytes` at node `to` whose transmission was charged
  /// separately. Used by the impaired link pipeline, where delivery is
  /// time-shifted: the sender's airtime is charged at send time (via
  /// transmit_lost — the frame may still be lost, duplicated or
  /// corrupted in flight) and each frame copy that actually reaches the
  /// receiver is charged here at arrival time.
  void receive(int to, double bytes);

  /// Charge `ops` arithmetic operations to node `node`.
  void compute(int node, double ops);

  /// One beacon of `bytes` from every alive node of `graph` to all its
  /// neighbours. The graph's adjacency is alive-only and immutable, so
  /// node v's reception charge is posted as one `bytes * degree(v)`
  /// product rather than per edge — O(n) per call, with the same trace
  /// events (one per sender, rx_bytes = bytes * degree) as the per-edge
  /// walk. For integer byte sizes (every charge in this codebase) the
  /// accumulated totals are bit-identical to per-edge accumulation; a
  /// non-representable bytes * degree may differ from an edge-at-a-time
  /// sum in the last ulp. Returns the total bytes transmitted,
  /// accumulated one beacon at a time.
  double broadcast_all(const CommGraph& graph, double bytes);

  /// Charge ops[v] arithmetic operations to every alive node v of
  /// `graph` in id order; identical to per-node compute() calls.
  void compute_all(const CommGraph& graph, const std::vector<double>& ops);

  double tx_bytes(int node) const { return tx_bytes_[static_cast<std::size_t>(node)]; }
  double rx_bytes(int node) const { return rx_bytes_[static_cast<std::size_t>(node)]; }
  double ops(int node) const { return ops_[static_cast<std::size_t>(node)]; }

  double total_tx_bytes() const;
  double total_rx_bytes() const;
  double total_ops() const;

  /// Mean ops per node (over all nodes in the ledger).
  double mean_ops() const;
  double max_ops() const;

  void merge(const Ledger& other);

 private:
  void check_node(int node, const char* what) const;
  static void check_amount(double amount, const char* what);

  std::vector<double> tx_bytes_;
  std::vector<double> rx_bytes_;
  std::vector<double> ops_;
};

}  // namespace isomap
