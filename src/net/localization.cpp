#include "net/localization.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace isomap {
namespace {

/// BFS hop counts from `source` over alive nodes; -1 where unreachable.
std::vector<int> hop_counts(const CommGraph& graph, int source) {
  std::vector<int> dist(static_cast<std::size_t>(graph.size()), -1);
  std::queue<int> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (int v : graph.neighbours(u)) {
      if (dist[static_cast<std::size_t>(v)] != -1) continue;
      dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
      queue.push(v);
    }
  }
  return dist;
}

/// Least-squares trilateration: minimize sum_i (|p - a_i| - d_i)^2 by
/// Gauss-Newton from the hop-weighted anchor centroid.
Vec2 trilaterate(const std::vector<Vec2>& anchors,
                 const std::vector<double>& distances, int iterations) {
  Vec2 p{};
  double weight_total = 0.0;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    const double w = 1.0 / std::max(distances[i], 1e-6);
    p += anchors[i] * w;
    weight_total += w;
  }
  if (weight_total > 0.0) p = p / weight_total;

  for (int iter = 0; iter < iterations; ++iter) {
    // Normal equations for the linearized residuals r_i = |p-a_i| - d_i
    // with Jacobian row u_i = (p - a_i)/|p - a_i|.
    double jtj[2][2] = {{0, 0}, {0, 0}};
    double jtr[2] = {0, 0};
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      const Vec2 delta = p - anchors[i];
      const double norm = std::max(delta.norm(), 1e-9);
      const Vec2 u = delta / norm;
      const double r = norm - distances[i];
      jtj[0][0] += u.x * u.x;
      jtj[0][1] += u.x * u.y;
      jtj[1][0] += u.y * u.x;
      jtj[1][1] += u.y * u.y;
      jtr[0] += u.x * r;
      jtr[1] += u.y * r;
    }
    // Levenberg damping keeps the 2x2 solve well-posed for collinear
    // anchor geometries.
    const double damping = 1e-6;
    jtj[0][0] += damping;
    jtj[1][1] += damping;
    const double det = jtj[0][0] * jtj[1][1] - jtj[0][1] * jtj[1][0];
    if (std::abs(det) < 1e-12) break;
    const double dx = (jtj[1][1] * jtr[0] - jtj[0][1] * jtr[1]) / det;
    const double dy = (jtj[0][0] * jtr[1] - jtj[1][0] * jtr[0]) / det;
    p -= Vec2{dx, dy};
    if (std::hypot(dx, dy) < 1e-9) break;
  }
  return p;
}

}  // namespace

DvHopResult dv_hop_localize(const Deployment& deployment,
                            const CommGraph& graph,
                            const DvHopOptions& options, Rng& rng,
                            Ledger& ledger) {
  DvHopResult result;
  const int n = deployment.size();
  result.estimated.resize(static_cast<std::size_t>(n));
  result.error.assign(static_cast<std::size_t>(n), -1.0);
  for (const auto& node : deployment.nodes())
    result.estimated[static_cast<std::size_t>(node.id)] = node.pos;

  // --- Anchor election. ---
  std::vector<int> alive;
  for (const auto& node : deployment.nodes())
    if (node.alive) alive.push_back(node.id);
  if (alive.empty()) return result;
  const int want = std::max(
      options.min_anchors,
      static_cast<int>(options.anchor_fraction * static_cast<double>(alive.size())));
  for (std::size_t i = 0;
       i < alive.size() && static_cast<int>(result.anchors.size()) < want;
       ++i) {
    const std::size_t j = i + static_cast<std::size_t>(
                                  rng.uniform_int(alive.size() - i));
    std::swap(alive[i], alive[j]);
    result.anchors.push_back(alive[i]);
  }

  // --- Phase 1: every anchor floods; all nodes learn hop counts. Each
  // alive node rebroadcasts every anchor's flood once. ---
  std::vector<std::vector<int>> hops;
  hops.reserve(result.anchors.size());
  for (int anchor : result.anchors) {
    hops.push_back(hop_counts(graph, anchor));
    for (const auto& node : deployment.nodes()) {
      if (!node.alive) continue;
      if (hops.back()[static_cast<std::size_t>(node.id)] < 0) continue;
      ledger.broadcast(node.id, graph.neighbours(node.id),
                       options.flood_bytes);
      result.flood_traffic_bytes += options.flood_bytes;
    }
  }

  // --- Phase 2: per-anchor average hop length from anchor-to-anchor
  // ground truth, then a second flood (charged as one more round). ---
  std::vector<double> hop_length(result.anchors.size(), 0.0);
  for (std::size_t a = 0; a < result.anchors.size(); ++a) {
    double dist_sum = 0.0;
    int hop_sum = 0;
    const Vec2 pa = deployment.node(result.anchors[a]).pos;
    for (std::size_t b = 0; b < result.anchors.size(); ++b) {
      if (a == b) continue;
      const int h = hops[a][static_cast<std::size_t>(result.anchors[b])];
      if (h <= 0) continue;
      dist_sum += pa.distance_to(deployment.node(result.anchors[b]).pos);
      hop_sum += h;
    }
    hop_length[a] = hop_sum > 0 ? dist_sum / hop_sum : 1.0;
    for (const auto& node : deployment.nodes()) {
      if (!node.alive) continue;
      if (hops[a][static_cast<std::size_t>(node.id)] < 0) continue;
      ledger.broadcast(node.id, graph.neighbours(node.id),
                       options.flood_bytes);
      result.flood_traffic_bytes += options.flood_bytes;
    }
  }

  // --- Phase 3: trilateration at every non-anchor node. ---
  std::vector<bool> is_anchor(static_cast<std::size_t>(n), false);
  for (int anchor : result.anchors)
    is_anchor[static_cast<std::size_t>(anchor)] = true;

  double err_sum = 0.0;
  int err_count = 0;
  for (const auto& node : deployment.nodes()) {
    if (!node.alive || is_anchor[static_cast<std::size_t>(node.id)]) continue;
    std::vector<Vec2> anchor_pos;
    std::vector<double> anchor_dist;
    int nearest_hops = std::numeric_limits<int>::max();
    std::size_t nearest_anchor = 0;
    for (std::size_t a = 0; a < result.anchors.size(); ++a) {
      const int h = hops[a][static_cast<std::size_t>(node.id)];
      if (h < 0) continue;
      if (h < nearest_hops) {
        nearest_hops = h;
        nearest_anchor = a;
      }
    }
    if (nearest_hops == std::numeric_limits<int>::max()) continue;
    // DV-Hop uses the nearest anchor's hop length for all conversions.
    const double hop_len = hop_length[nearest_anchor];
    for (std::size_t a = 0; a < result.anchors.size(); ++a) {
      const int h = hops[a][static_cast<std::size_t>(node.id)];
      if (h < 0) continue;
      anchor_pos.push_back(deployment.node(result.anchors[a]).pos);
      anchor_dist.push_back(h * hop_len);
    }
    if (anchor_pos.size() < 3) continue;
    const Vec2 estimate = deployment.bounds().clamp(
        trilaterate(anchor_pos, anchor_dist, options.solver_iterations));
    result.estimated[static_cast<std::size_t>(node.id)] = estimate;
    const double err = estimate.distance_to(node.pos);
    result.error[static_cast<std::size_t>(node.id)] = err;
    err_sum += err;
    ++err_count;
    result.max_error = std::max(result.max_error, err);
  }
  result.mean_error = err_count ? err_sum / err_count : 0.0;
  return result;
}

void apply_localization(Deployment& deployment, const DvHopResult& result) {
  std::vector<bool> is_anchor(static_cast<std::size_t>(deployment.size()),
                              false);
  for (int anchor : result.anchors)
    is_anchor[static_cast<std::size_t>(anchor)] = true;
  for (auto& node : deployment.nodes()) {
    if (!node.alive || is_anchor[static_cast<std::size_t>(node.id)]) continue;
    node.believed = result.estimated[static_cast<std::size_t>(node.id)];
  }
}

}  // namespace isomap
