#pragma once

#include <vector>

#include "net/comm_graph.hpp"
#include "net/deployment.hpp"
#include "net/ledger.hpp"
#include "util/rng.hpp"

namespace isomap {

/// DV-Hop localization (Niculescu & Nath) — one of the "existing
/// algorithms" the paper's Section 3.3 relies on for node positions when
/// GPS receivers are not attached. A small fraction of *anchor* nodes
/// know their position (GPS buoys); every other node estimates its
/// position from hop counts to the anchors:
///
///  1. Each anchor floods the network; every node learns its hop count
///     to every anchor.
///  2. Each anchor computes its *average hop length* from the known
///     anchor-to-anchor distances and hop counts, and floods it.
///  3. Each node converts hop counts into distance estimates using the
///     nearest anchor's hop length and trilaterates (least squares).
///
/// The result plugs into Node::believed, making Iso-Map's localization
/// error an emergent property of the network rather than injected noise.
struct DvHopOptions {
  double anchor_fraction = 0.04;  ///< Fraction of alive nodes with GPS.
  int min_anchors = 4;
  /// Bytes of one flood message (anchor id + position/hop-size + hops).
  double flood_bytes = 8.0;
  /// Gauss-Newton refinement iterations for the position solve.
  int solver_iterations = 16;
};

struct DvHopResult {
  std::vector<int> anchors;  ///< Node ids selected as anchors.
  /// Estimated positions, indexed by node id (anchors report their true
  /// position; unreachable/dead nodes keep their prior).
  std::vector<Vec2> estimated;
  /// Localization error per node (distance estimate-truth), -1 for
  /// anchors/dead nodes.
  std::vector<double> error;
  double mean_error = 0.0;
  double max_error = 0.0;
  double flood_traffic_bytes = 0.0;
};

/// Run DV-Hop over the alive nodes of `deployment`; flood traffic is
/// charged to `ledger` (every node rebroadcasts each anchor flood once).
DvHopResult dv_hop_localize(const Deployment& deployment,
                            const CommGraph& graph,
                            const DvHopOptions& options, Rng& rng,
                            Ledger& ledger);

/// Write the estimated positions into the deployment's `believed` fields
/// (non-anchor alive nodes only).
void apply_localization(Deployment& deployment, const DvHopResult& result);

}  // namespace isomap
