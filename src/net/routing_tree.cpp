#include "net/routing_tree.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace isomap {

RoutingTree::RoutingTree(const CommGraph& graph, int sink_id)
    : sink_(sink_id) {
  const std::size_t n = static_cast<std::size_t>(graph.size());
  if (sink_id < 0 || static_cast<std::size_t>(sink_id) >= n ||
      !graph.alive(sink_id))
    throw std::invalid_argument("RoutingTree: invalid or dead sink");

  parent_.assign(n, -1);
  level_.assign(n, -1);
  children_.assign(n, {});

  std::queue<int> queue;
  level_[static_cast<std::size_t>(sink_id)] = 0;
  queue.push(sink_id);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (int v : graph.neighbours(u)) {
      if (level_[static_cast<std::size_t>(v)] != -1) continue;
      level_[static_cast<std::size_t>(v)] = level_[static_cast<std::size_t>(u)] + 1;
      parent_[static_cast<std::size_t>(v)] = u;
      children_[static_cast<std::size_t>(u)].push_back(v);
      queue.push(v);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (level_[i] < 0) continue;
    ++reachable_count_;
    depth_ = std::max(depth_, level_[i]);
    post_order_.push_back(static_cast<int>(i));
  }
  std::sort(post_order_.begin(), post_order_.end(), [this](int a, int b) {
    return level_[static_cast<std::size_t>(a)] > level_[static_cast<std::size_t>(b)];
  });
}

std::vector<int> RoutingTree::path_to_sink(int i) const {
  std::vector<int> path;
  if (i < 0 || static_cast<std::size_t>(i) >= level_.size() ||
      level_[static_cast<std::size_t>(i)] < 0)
    return path;
  for (int u = i; u != -1; u = parent_[static_cast<std::size_t>(u)])
    path.push_back(u);
  return path;
}

}  // namespace isomap
