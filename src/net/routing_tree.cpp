#include "net/routing_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/node_telemetry.hpp"
#include "obs/obs.hpp"

namespace isomap {

RoutingTree::RoutingTree(const CommGraph& graph, int sink_id)
    : sink_(sink_id) {
  const std::size_t n = static_cast<std::size_t>(graph.size());
  if (sink_id < 0 || static_cast<std::size_t>(sink_id) >= n ||
      !graph.alive(sink_id))
    throw std::invalid_argument("RoutingTree: invalid or dead sink");

  parent_.assign(n, -1);
  level_.assign(n, -1);
  children_.assign(n, {});

  // Level-synchronous BFS over a frontier kept in ascending id order:
  // a node discovered by several frontier members gets the lowest-id one
  // as its parent (CommGraph adjacency is sorted, frontier is sorted, and
  // the first discoverer wins), making parent selection deterministic.
  std::vector<int> frontier{sink_id};
  level_[static_cast<std::size_t>(sink_id)] = 0;
  while (!frontier.empty()) {
    std::vector<int> next;
    for (int u : frontier) {
      for (int v : graph.neighbours(u)) {
        if (level_[static_cast<std::size_t>(v)] != -1) continue;
        level_[static_cast<std::size_t>(v)] =
            level_[static_cast<std::size_t>(u)] + 1;
        parent_[static_cast<std::size_t>(v)] = u;
        children_[static_cast<std::size_t>(u)].push_back(v);
        next.push_back(v);
      }
    }
    std::sort(next.begin(), next.end());
    frontier = std::move(next);
  }

  rebuild_order();
}

void RoutingTree::rebuild_order() {
  post_order_.clear();
  depth_ = 0;
  reachable_count_ = 0;
  for (std::size_t i = 0; i < level_.size(); ++i) {
    if (level_[i] < 0) continue;
    ++reachable_count_;
    depth_ = std::max(depth_, level_[i]);
    post_order_.push_back(static_cast<int>(i));
  }
  // Leaves first; ascending id within a level for platform-independent
  // convergecast ordering.
  std::sort(post_order_.begin(), post_order_.end(), [this](int a, int b) {
    const int la = level_[static_cast<std::size_t>(a)];
    const int lb = level_[static_cast<std::size_t>(b)];
    return la != lb ? la > lb : a < b;
  });
}

std::vector<int> RoutingTree::path_to_sink(int i) const {
  std::vector<int> path;
  if (i < 0 || static_cast<std::size_t>(i) >= level_.size() ||
      level_[static_cast<std::size_t>(i)] < 0)
    return path;
  for (int u = i; u != -1; u = parent_[static_cast<std::size_t>(u)])
    path.push_back(u);
  return path;
}

RoutingTree::RepairReport RoutingTree::repair(const CommGraph& graph,
                                              const std::vector<char>& alive,
                                              Ledger* ledger) {
  const std::size_t n = level_.size();
  if (alive.size() != n)
    throw std::invalid_argument("RoutingTree::repair: alive mask size");
  if (!alive[static_cast<std::size_t>(sink_)])
    throw std::invalid_argument("RoutingTree::repair: sink is dead");

  RepairReport report;

  // Detach every dead node still in the tree, together with its whole
  // subtree: once the parent link is gone, every descendant's path to the
  // sink is broken and its level is stale.
  std::vector<int> detach_roots;
  for (std::size_t i = 0; i < n; ++i) {
    if (level_[i] >= 0 && !alive[i]) detach_roots.push_back(static_cast<int>(i));
  }
  if (detach_roots.empty()) return report;

  std::vector<int> orphans;  // Alive detached nodes, by detach order.
  std::vector<int> stack;
  for (int root : detach_roots) {
    if (level_[static_cast<std::size_t>(root)] < 0) continue;  // Already done.
    // Unlink the subtree root from its surviving parent.
    const int p = parent_[static_cast<std::size_t>(root)];
    if (p >= 0) {
      auto& siblings = children_[static_cast<std::size_t>(p)];
      siblings.erase(std::remove(siblings.begin(), siblings.end(), root),
                     siblings.end());
    }
    stack.assign(1, root);
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      level_[static_cast<std::size_t>(u)] = -1;
      parent_[static_cast<std::size_t>(u)] = -1;
      for (int c : children_[static_cast<std::size_t>(u)]) stack.push_back(c);
      children_[static_cast<std::size_t>(u)].clear();
      if (alive[static_cast<std::size_t>(u)]) orphans.push_back(u);
    }
  }
  std::sort(orphans.begin(), orphans.end());
  report.orphaned = static_cast<int>(orphans.size());

  // Every orphan announces itself once with a repair beacon heard by its
  // alive neighbours (paid whether or not the repair succeeds).
  if (ledger != nullptr) {
    std::vector<int> hearers;
    for (int o : orphans) {
      hearers.clear();
      for (int nb : graph.neighbours(o))
        if (alive[static_cast<std::size_t>(nb)]) hearers.push_back(nb);
      ledger->broadcast(o, hearers, kRepairBeaconBytes);
    }
  }
  report.bytes += kRepairBeaconBytes * static_cast<double>(orphans.size());

  // Re-attachment in beacon waves: in each wave every still-detached
  // orphan looks for its best alive, already-attached neighbour (lowest
  // level, then lowest id); all attachments of a wave are applied
  // together, so an orphan can attach through a neighbour repaired in an
  // *earlier* wave but not the current one. Waves repeat until no orphan
  // makes progress; the rest are unreachable.
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<std::pair<int, int>> joins;  // (orphan, new parent).
    for (int o : orphans) {
      if (level_[static_cast<std::size_t>(o)] >= 0) continue;  // Done.
      int best = -1;
      int best_level = -1;
      for (int nb : graph.neighbours(o)) {
        if (!alive[static_cast<std::size_t>(nb)]) continue;
        const int lvl = level_[static_cast<std::size_t>(nb)];
        if (lvl < 0) continue;  // Detached or never reachable.
        if (best == -1 || lvl < best_level || (lvl == best_level && nb < best)) {
          best = nb;
          best_level = lvl;
        }
      }
      if (best >= 0) joins.emplace_back(o, best);
    }
    for (const auto& [o, p] : joins) {
      parent_[static_cast<std::size_t>(o)] = p;
      level_[static_cast<std::size_t>(o)] =
          level_[static_cast<std::size_t>(p)] + 1;
      children_[static_cast<std::size_t>(p)].push_back(o);
      if (ledger != nullptr) ledger->transmit(p, o, kRepairAckBytes);
      report.bytes += kRepairAckBytes;
      ++report.reattached;
      progress = true;
    }
  }
  report.unreachable = report.orphaned - report.reattached;

  rebuild_order();
  if (obs::NodeTelemetry* t = obs::telemetry()) {
    const int n = static_cast<int>(level_.size());
    for (int v = 0; v < n; ++v)
      t->set_hops(v, level_[static_cast<std::size_t>(v)]);
  }
  return report;
}

}  // namespace isomap
