#pragma once

#include <vector>

#include "net/comm_graph.hpp"
#include "net/ledger.hpp"

namespace isomap {

/// TAG-style spanning tree rooted at the sink, built by BFS over the
/// communication graph: each node's level is its hop count from the sink
/// and its parent is one level lower (Madden et al., OSDI'02 — the routing
/// substrate the paper assumes in Section 3.1).
///
/// Construction is fully deterministic: the BFS is level-synchronous with
/// each frontier processed in ascending node-id order, so a node with
/// several minimum-level neighbours always picks the lowest-id one as its
/// parent. Repairs (below) follow the same tie-break, which keeps fault
/// runs reproducible across platforms and standard-library
/// implementations.
class RoutingTree {
 public:
  RoutingTree(const CommGraph& graph, int sink_id);

  int sink() const { return sink_; }

  /// Parent id, or -1 for the sink and for unreachable/dead nodes.
  int parent(int i) const { return parent_[static_cast<std::size_t>(i)]; }

  /// Hop distance from the sink; -1 if unreachable.
  int level(int i) const { return level_[static_cast<std::size_t>(i)]; }

  bool reachable(int i) const { return level_[static_cast<std::size_t>(i)] >= 0; }

  const std::vector<int>& children(int i) const {
    return children_[static_cast<std::size_t>(i)];
  }

  /// Maximum level over reachable nodes (the network diameter from the
  /// sink's perspective).
  int depth() const { return depth_; }

  /// Count of reachable nodes (including the sink).
  int reachable_count() const { return reachable_count_; }

  /// Reachable node ids ordered by decreasing level (leaves first,
  /// ascending id within a level); this is the order in which the
  /// convergecast / in-network filtering pass processes nodes.
  const std::vector<int>& post_order() const { return post_order_; }

  /// Hop path from node i to the sink (starting at i, ending at sink);
  /// empty if unreachable (or i is out of range).
  std::vector<int> path_to_sink(int i) const;

  /// Outcome of one self-healing pass.
  struct RepairReport {
    int orphaned = 0;     ///< Alive nodes detached by the crash(es).
    int reattached = 0;   ///< Orphans that found a new parent.
    int unreachable = 0;  ///< Orphans left without any route to the sink.
    double bytes = 0.0;   ///< Repair-beacon + ack bytes charged.
  };

  /// Bytes of one repair beacon broadcast (an orphan announcing it needs
  /// a parent) and of the chosen parent's acknowledgement.
  static constexpr double kRepairBeaconBytes = 4.0;
  static constexpr double kRepairAckBytes = 2.0;

  /// Self-heal after node deaths. `alive[id]` gives the authoritative
  /// liveness (size must match the graph); any tree node now dead is
  /// removed and its subtree detached. Each detached alive node
  /// broadcasts one repair beacon to its alive neighbours and re-attaches
  /// to the lowest-level already-attached alive neighbour (ties broken by
  /// lowest id), which answers with an ack; re-attachment proceeds in
  /// beacon waves so an orphan may attach through a just-repaired
  /// neighbour. Orphans with no surviving route stay unreachable
  /// (level -1). All charges go to `ledger` when non-null. The sink must
  /// still be alive.
  RepairReport repair(const CommGraph& graph, const std::vector<char>& alive,
                      Ledger* ledger = nullptr);

 private:
  void rebuild_order();

  int sink_;
  std::vector<int> parent_;
  std::vector<int> level_;
  std::vector<std::vector<int>> children_;
  std::vector<int> post_order_;
  int depth_ = 0;
  int reachable_count_ = 0;
};

}  // namespace isomap
