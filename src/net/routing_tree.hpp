#pragma once

#include <vector>

#include "net/comm_graph.hpp"

namespace isomap {

/// TAG-style spanning tree rooted at the sink, built by BFS over the
/// communication graph: each node's level is its hop count from the sink
/// and its parent is one level lower (Madden et al., OSDI'02 — the routing
/// substrate the paper assumes in Section 3.1).
class RoutingTree {
 public:
  RoutingTree(const CommGraph& graph, int sink_id);

  int sink() const { return sink_; }

  /// Parent id, or -1 for the sink and for unreachable/dead nodes.
  int parent(int i) const { return parent_[static_cast<std::size_t>(i)]; }

  /// Hop distance from the sink; -1 if unreachable.
  int level(int i) const { return level_[static_cast<std::size_t>(i)]; }

  bool reachable(int i) const { return level_[static_cast<std::size_t>(i)] >= 0; }

  const std::vector<int>& children(int i) const {
    return children_[static_cast<std::size_t>(i)];
  }

  /// Maximum level over reachable nodes (the network diameter from the
  /// sink's perspective).
  int depth() const { return depth_; }

  /// Count of reachable nodes (including the sink).
  int reachable_count() const { return reachable_count_; }

  /// Reachable node ids ordered by decreasing level (leaves first); this is
  /// the order in which the convergecast / in-network filtering pass
  /// processes nodes.
  const std::vector<int>& post_order() const { return post_order_; }

  /// Hop path from node i to the sink (starting at i, ending at sink);
  /// empty if unreachable.
  std::vector<int> path_to_sink(int i) const;

 private:
  int sink_;
  std::vector<int> parent_;
  std::vector<int> level_;
  std::vector<std::vector<int>> children_;
  std::vector<int> post_order_;
  int depth_ = 0;
  int reachable_count_ = 0;
};

}  // namespace isomap
