#pragma once

#include <vector>

namespace isomap {

/// One link-layer transmission attempt recorded by a protocol run: the
/// raw material for MAC-layer studies (contention, scheduling) that want
/// to replay a protocol's traffic pattern without re-running it.
struct Transmission {
  int from = -1;
  int to = -1;
  double bytes = 0.0;
  /// Routing-tree level of the sender at send time; transmissions of the
  /// same level share a TDMA slot group (TAG scheduling).
  int sender_level = 0;
};

using TransmissionLog = std::vector<Transmission>;

}  // namespace isomap
