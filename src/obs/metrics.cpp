#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace isomap::obs {

JsonValue HistogramSnapshot::to_json() const {
  JsonValue v = JsonValue::object();
  v["count"] = JsonValue(count);
  v["min"] = JsonValue(min);
  v["max"] = JsonValue(max);
  v["mean"] = JsonValue(mean);
  v["sum"] = JsonValue(sum);
  v["p50"] = JsonValue(p50);
  v["p95"] = JsonValue(p95);
  return v;
}

HistogramSnapshot summarize_samples(std::vector<double> samples) {
  HistogramSnapshot s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  for (double x : samples) s.sum += x;
  s.mean = s.sum / static_cast<double>(s.count);
  const auto quantile = [&](double q) {
    const double idx = q * static_cast<double>(s.count - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, s.count - 1);
    const double frac = idx - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  return s;
}

double MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSnapshot Histogram::snapshot() const {
  // Within capacity the reservoir IS the full sample set: delegate to
  // the historical retain-all path so every field (including the
  // sorted-order sum) is bit-identical to what it always was.
  HistogramSnapshot s = summarize_samples(samples_);
  if (count_ <= kReservoirCapacity) return s;
  // Beyond capacity: count/min/max/sum come from the exact running
  // accumulators; the quantiles are reservoir estimates.
  s.count = count_;
  s.min = min_;
  s.max = max_;
  s.sum = sum_;
  s.mean = sum_ / static_cast<double>(count_);
  return s;
}

HistogramSnapshot MetricsRegistry::histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return {};
  return it->second.snapshot();
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::histogram_snapshots()
    const {
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) out[name] = hist.snapshot();
  return out;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

JsonValue MetricsRegistry::to_json() const {
  JsonValue v = JsonValue::object();
  JsonValue& counters = v["counters"];
  counters = JsonValue::object();
  for (const auto& [name, value] : counters_) counters[name] = JsonValue(value);
  JsonValue& gauges = v["gauges"];
  gauges = JsonValue::object();
  for (const auto& [name, value] : gauges_) gauges[name] = JsonValue(value);
  JsonValue& hists = v["histograms"];
  hists = JsonValue::object();
  for (const auto& [name, hist] : histograms_)
    hists[name] = hist.snapshot().to_json();
  return v;
}

}  // namespace isomap::obs
