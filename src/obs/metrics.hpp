#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace isomap::obs {

/// Summary of a histogram's samples at snapshot time.
struct HistogramSnapshot {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;

  JsonValue to_json() const;
};

/// Named counters, gauges and histograms for one protocol run (or any
/// other scope the caller chooses). Not thread-safe: a registry belongs
/// to the run that owns it, matching the simulator's single-threaded
/// execution model. Lookup is by string name; instrumentation sites are
/// expected to be outside per-sample inner loops (charge aggregates, not
/// individual arithmetic ops).
class MetricsRegistry {
 public:
  /// Monotonic counter: accumulate `delta` (default 1).
  void add(const std::string& name, double delta = 1.0) {
    counters_[name] += delta;
  }

  /// Gauge: last-write-wins value.
  void set(const std::string& name, double value) { gauges_[name] = value; }

  /// Histogram: record one sample (samples are retained until snapshot).
  void observe(const std::string& name, double value) {
    histograms_[name].push_back(value);
  }

  /// Stable references to a counter's / histogram's storage, for hot
  /// loops that would otherwise pay a map lookup per emission. std::map
  /// nodes never move, so the reference stays valid for the registry's
  /// lifetime. Looking a slot up creates it (counter 0 / empty
  /// histogram), exactly as add()/observe() would.
  double& counter_slot(const std::string& name) { return counters_[name]; }
  std::vector<double>& histogram_slot(const std::string& name) {
    return histograms_[name];
  }

  double counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  /// Snapshot of one histogram (zeros when absent).
  HistogramSnapshot histogram(const std::string& name) const;

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  std::map<std::string, HistogramSnapshot> histogram_snapshots() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  JsonValue to_json() const;

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::vector<double>> histograms_;
};

/// Compute a snapshot from raw samples (exposed for tests).
HistogramSnapshot summarize_samples(std::vector<double> samples);

}  // namespace isomap::obs
