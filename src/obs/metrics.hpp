#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace isomap::obs {

/// Summary of a histogram's samples at snapshot time.
struct HistogramSnapshot {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;

  JsonValue to_json() const;
};

/// Bounded-memory histogram: the first kReservoirCapacity samples are
/// retained verbatim; beyond that, Vitter's algorithm R (driven by a
/// fixed-seed splitmix64, so runs are deterministic) keeps a uniform
/// reservoir for the quantiles while count/min/max/sum stay exact from
/// running accumulators. Multi-thousand-round soak runs therefore hold
/// at most kReservoirCapacity doubles per histogram. While the sample
/// count is within capacity, snapshot() is bit-identical to the
/// historical retain-all summary (including its sum-over-sorted-samples
/// accumulation order), which the golden capsule corpus pins.
class Histogram {
 public:
  static constexpr std::size_t kReservoirCapacity = 4096;

  void record(double value) {
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
    if (samples_.size() < kReservoirCapacity) {
      samples_.push_back(value);
      return;
    }
    // Algorithm R: sample i (0-based) replaces a random slot with
    // probability capacity / (i + 1).
    const std::uint64_t j = next_random() % count_;
    if (j < kReservoirCapacity) samples_[static_cast<std::size_t>(j)] = value;
  }

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  HistogramSnapshot snapshot() const;

 private:
  std::uint64_t next_random() {
    // splitmix64 with a fixed seed: deterministic across runs/platforms.
    std::uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::vector<double> samples_;  ///< Reservoir (exact while within capacity).
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;  ///< Exact running sum, insertion order.
  std::uint64_t rng_state_ = 0x150C0DE5EEDULL;
};

/// Named counters, gauges and histograms for one protocol run (or any
/// other scope the caller chooses). Not thread-safe: a registry belongs
/// to the run that owns it, matching the simulator's single-threaded
/// execution model. Lookup is by string name; instrumentation sites are
/// expected to be outside per-sample inner loops (charge aggregates, not
/// individual arithmetic ops).
class MetricsRegistry {
 public:
  /// Monotonic counter: accumulate `delta` (default 1).
  void add(const std::string& name, double delta = 1.0) {
    counters_[name] += delta;
  }

  /// Gauge: last-write-wins value.
  void set(const std::string& name, double value) { gauges_[name] = value; }

  /// Histogram: record one sample (bounded reservoir — see Histogram).
  void observe(const std::string& name, double value) {
    histograms_[name].record(value);
  }

  /// Stable references to a counter's / histogram's storage, for hot
  /// loops that would otherwise pay a map lookup per emission. std::map
  /// nodes never move, so the reference stays valid for the registry's
  /// lifetime. Looking a slot up creates it (counter 0 / empty
  /// histogram), exactly as add()/observe() would.
  double& counter_slot(const std::string& name) { return counters_[name]; }
  Histogram& histogram_slot(const std::string& name) {
    return histograms_[name];
  }

  double counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  /// Snapshot of one histogram (zeros when absent).
  HistogramSnapshot histogram(const std::string& name) const;

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  std::map<std::string, HistogramSnapshot> histogram_snapshots() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  JsonValue to_json() const;

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Compute a snapshot from raw samples (exposed for tests).
HistogramSnapshot summarize_samples(std::vector<double> samples);

}  // namespace isomap::obs
