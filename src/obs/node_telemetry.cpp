#include "obs/node_telemetry.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace isomap::obs {

JsonValue TelemetryEnergyModel::to_json() const {
  JsonValue v = JsonValue::object();
  v["tx_j_per_byte"] = JsonValue(tx_j_per_byte);
  v["rx_j_per_byte"] = JsonValue(rx_j_per_byte);
  v["j_per_op"] = JsonValue(j_per_op);
  return v;
}

namespace {

JsonValue array_of(const std::vector<double>& values) {
  JsonValue v = JsonValue::array();
  for (double x : values) v.push_back(JsonValue(x));
  return v;
}

JsonValue array_of(const std::vector<int>& values) {
  JsonValue v = JsonValue::array();
  for (int x : values) v.push_back(JsonValue(x));
  return v;
}

JsonValue array_of(const std::vector<long long>& values) {
  JsonValue v = JsonValue::array();
  for (long long x : values) v.push_back(JsonValue(static_cast<double>(x)));
  return v;
}

}  // namespace

JsonValue NodeTelemetrySnapshot::to_json() const {
  JsonValue v = JsonValue::object();
  v["nodes"] = JsonValue(size());
  JsonValue& per_node = v["per_node"];
  per_node = JsonValue::object();
  per_node["tx_bytes"] = array_of(tx_bytes);
  per_node["rx_bytes"] = array_of(rx_bytes);
  per_node["ops"] = array_of(ops);
  per_node["hops"] = array_of(hops);
  per_node["generated"] = array_of(generated);
  per_node["delivered"] = array_of(delivered);
  per_node["filtered"] = array_of(filtered);
  per_node["lost_channel"] = array_of(lost_channel);
  per_node["lost_crash"] = array_of(lost_crash);
  per_node["relayed"] = array_of(relayed);
  per_node["retries"] = array_of(retries);
  per_node["drops"] = array_of(drops);
  per_node["dup_rx"] = array_of(dup_rx);
  per_node["corrupt_rx"] = array_of(corrupt_rx);
  per_node["arq_timeouts"] = array_of(arq_timeouts);
  JsonValue& lanes = v["per_phase"];
  lanes = JsonValue::object();
  for (const PhaseLane& lane : phases) {
    JsonValue entry = JsonValue::object();
    entry["tx_bytes"] = array_of(lane.tx_bytes);
    entry["rx_bytes"] = array_of(lane.rx_bytes);
    lanes[lane.phase] = std::move(entry);
  }
  v["energy_model"] = energy.to_json();
  return v;
}

JsonValue NodeTelemetrySummary::to_json() const {
  JsonValue v = JsonValue::object();
  v["nodes"] = JsonValue(nodes);
  v["active_nodes"] = JsonValue(active_nodes);
  JsonValue& hot = v["hotspots"];
  hot = JsonValue::array();
  for (int id : hotspots) hot.push_back(JsonValue(id));
  v["max_tx_bytes"] = JsonValue(max_tx_bytes);
  v["mean_tx_bytes"] = JsonValue(mean_tx_bytes);
  v["energy_gini"] = JsonValue(energy_gini);
  v["energy_max_over_mean"] = JsonValue(energy_max_over_mean);
  v["max_hops"] = JsonValue(max_hops);
  return v;
}

NodeTelemetry::NodeTelemetry(int num_nodes) {
  if (num_nodes < 0)
    throw std::invalid_argument("NodeTelemetry: negative size");
  const auto n = static_cast<std::size_t>(num_nodes);
  tx_bytes_.assign(n, 0.0);
  rx_bytes_.assign(n, 0.0);
  ops_.assign(n, 0.0);
  hops_.assign(n, -1);
  generated_.assign(n, 0);
  delivered_.assign(n, 0);
  filtered_.assign(n, 0);
  lost_channel_.assign(n, 0);
  lost_crash_.assign(n, 0);
  relayed_.assign(n, 0);
  retries_.assign(n, 0);
  drops_.assign(n, 0);
  dup_rx_.assign(n, 0);
  corrupt_rx_.assign(n, 0);
  arq_timeouts_.assign(n, 0);
}

NodeTelemetry::Lane& NodeTelemetry::lane_slow(const char* phase) {
  for (const auto& l : lanes_) {
    if (std::strcmp(l->name.c_str(), phase) == 0) {
      // Same label text reached through a different pointer (e.g. a
      // string literal duplicated across translation units): re-key the
      // cache on the pointer we are now seeing.
      l->key = phase;
      cached_ = l.get();
      return *l;
    }
  }
  auto fresh = std::make_unique<Lane>();
  fresh->key = phase;
  fresh->name = phase;
  fresh->tx.assign(tx_bytes_.size(), 0.0);
  fresh->rx.assign(tx_bytes_.size(), 0.0);
  lanes_.push_back(std::move(fresh));
  cached_ = lanes_.back().get();
  return *cached_;
}

const std::vector<double>* NodeTelemetry::phase_tx(
    const std::string& phase) const {
  for (const auto& l : lanes_)
    if (l->name == phase) return &l->tx;
  return nullptr;
}

const std::vector<double>* NodeTelemetry::phase_rx(
    const std::string& phase) const {
  for (const auto& l : lanes_)
    if (l->name == phase) return &l->rx;
  return nullptr;
}

std::vector<std::string> NodeTelemetry::phase_names() const {
  std::vector<std::string> names;
  names.reserve(lanes_.size());
  for (const auto& l : lanes_) names.push_back(l->name);
  std::sort(names.begin(), names.end());
  return names;
}

double NodeTelemetry::total_tx_bytes() const {
  double total = 0.0;
  for (double b : tx_bytes_) total += b;
  return total;
}

double NodeTelemetry::total_rx_bytes() const {
  double total = 0.0;
  for (double b : rx_bytes_) total += b;
  return total;
}

double NodeTelemetry::total_ops() const {
  double total = 0.0;
  for (double o : ops_) total += o;
  return total;
}

NodeTelemetrySnapshot NodeTelemetry::snapshot() const {
  NodeTelemetrySnapshot s;
  s.tx_bytes = tx_bytes_;
  s.rx_bytes = rx_bytes_;
  s.ops = ops_;
  s.hops = hops_;
  s.generated = generated_;
  s.delivered = delivered_;
  s.filtered = filtered_;
  s.lost_channel = lost_channel_;
  s.lost_crash = lost_crash_;
  s.relayed = relayed_;
  s.retries = retries_;
  s.drops = drops_;
  s.dup_rx = dup_rx_;
  s.corrupt_rx = corrupt_rx_;
  s.arq_timeouts = arq_timeouts_;
  s.energy = energy;
  s.phases.reserve(lanes_.size());
  for (const auto& l : lanes_)
    s.phases.push_back({l->name, l->tx, l->rx});
  std::sort(s.phases.begin(), s.phases.end(),
            [](const NodeTelemetrySnapshot::PhaseLane& a,
               const NodeTelemetrySnapshot::PhaseLane& b) {
              return a.phase < b.phase;
            });
  return s;
}

NodeTelemetrySummary NodeTelemetry::summarize(std::size_t top_k) const {
  NodeTelemetrySummary s;
  s.nodes = size();
  if (s.nodes == 0) return s;
  std::vector<double> energy_by_node(tx_bytes_.size());
  double tx_sum = 0.0;
  for (int v = 0; v < size(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    energy_by_node[i] = energy_j(v);
    tx_sum += tx_bytes_[i];
    s.max_tx_bytes = std::max(s.max_tx_bytes, tx_bytes_[i]);
    if (tx_bytes_[i] > 0.0 || rx_bytes_[i] > 0.0 || ops_[i] > 0.0)
      ++s.active_nodes;
    s.max_hops = std::max(s.max_hops, hops_[i]);
  }
  s.mean_tx_bytes = tx_sum / static_cast<double>(s.nodes);

  // Hotspots: top-k node ids by energy (stable: ties break on lower id).
  std::vector<int> ids(tx_bytes_.size());
  for (int v = 0; v < size(); ++v) ids[static_cast<std::size_t>(v)] = v;
  const std::size_t k = std::min(top_k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(k),
                    ids.end(), [&](int a, int b) {
                      const double ea = energy_by_node[static_cast<std::size_t>(a)];
                      const double eb = energy_by_node[static_cast<std::size_t>(b)];
                      if (ea != eb) return ea > eb;
                      return a < b;
                    });
  s.hotspots.assign(ids.begin(), ids.begin() + static_cast<long>(k));

  // Gini coefficient and max/mean of per-node energy.
  std::vector<double> sorted = energy_by_node;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0, weighted = 0.0, max_e = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    weighted += static_cast<double>(i + 1) * sorted[i];
    max_e = std::max(max_e, sorted[i]);
  }
  const auto n = static_cast<double>(sorted.size());
  if (total > 0.0) {
    s.energy_gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
    s.energy_max_over_mean = max_e / (total / n);
  }
  return s;
}

}  // namespace isomap::obs
