#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace isomap::obs {

/// Energy coefficients used to convert per-node byte/op counts into
/// Joules. Defaults mirror energy/Mica2Model (CC1000 at 38.4 kbps,
/// 42 mW tx / 29 mW rx, ATmega128 at 242 MIPS/W); they are carried here
/// as plain numbers because obs sits below the energy layer in the
/// library graph.
struct TelemetryEnergyModel {
  double tx_j_per_byte = 42.0e-3 * 8.0 / 38.4e3;
  double rx_j_per_byte = 29.0e-3 * 8.0 / 38.4e3;
  double j_per_op = 1.0 / 242.0e6;

  double energy_j(double tx_bytes, double rx_bytes, double ops) const {
    return tx_bytes * tx_j_per_byte + rx_bytes * rx_j_per_byte +
           ops * j_per_op;
  }
  JsonValue to_json() const;
};

/// Value snapshot of a NodeTelemetry table: the dense per-node arrays,
/// flattened for storage (run capsules) and export (isomap_replay
/// --telemetry). Per-phase tx/rx lanes are sorted by phase name.
struct NodeTelemetrySnapshot {
  std::vector<double> tx_bytes;
  std::vector<double> rx_bytes;
  std::vector<double> ops;
  std::vector<int> hops;  ///< Hops to sink; -1 = unknown/unreachable.
  std::vector<long long> generated;
  std::vector<long long> delivered;
  std::vector<long long> filtered;
  std::vector<long long> lost_channel;
  std::vector<long long> lost_crash;
  std::vector<long long> relayed;
  std::vector<long long> retries;
  std::vector<long long> drops;
  // Impaired-link lanes (empty in snapshots decoded from pre-impairment
  // capsules; all-zero when the run used a plain channel).
  std::vector<long long> dup_rx;
  std::vector<long long> corrupt_rx;
  std::vector<long long> arq_timeouts;

  struct PhaseLane {
    std::string phase;
    std::vector<double> tx_bytes;
    std::vector<double> rx_bytes;
  };
  std::vector<PhaseLane> phases;

  TelemetryEnergyModel energy;

  int size() const { return static_cast<int>(tx_bytes.size()); }
  JsonValue to_json() const;
};

/// Compressed balance statistics for a RunSummary's `node_telemetry`
/// block: who the hotspots are and how evenly traffic/energy landed.
struct NodeTelemetrySummary {
  int nodes = 0;
  int active_nodes = 0;        ///< Nodes with any charge at all.
  std::vector<int> hotspots;   ///< Top node ids by energy, descending.
  double max_tx_bytes = 0.0;
  double mean_tx_bytes = 0.0;
  double energy_gini = 0.0;          ///< 0 = perfectly balanced.
  double energy_max_over_mean = 0.0; ///< Max-min balance ratio.
  int max_hops = 0;

  JsonValue to_json() const;
};

/// Dense, index-addressed per-node flight recorder. Charged at the
/// instrumentation choke points (Ledger, Channel, RoutingTree::repair,
/// InNetworkFilter, IsoMapProtocol) when installed in the thread's
/// obs::Context; every charge is an O(1) array write, so the table stays
/// viable at million-node scale. Charges are posted in exactly the order
/// (and with exactly the amounts) the Ledger posts its own per-node
/// arrays, so per-node sums reconcile bit-for-bit with Ledger totals —
/// the invariant `isomap_inspect --reconcile` enforces.
///
/// Not thread-safe: like MetricsRegistry, a table belongs to the serial
/// protocol path of the run that owns it (exec workers run under an
/// empty obs::Context and never touch it).
class NodeTelemetry {
 public:
  explicit NodeTelemetry(int num_nodes);

  int size() const { return static_cast<int>(tx_bytes_.size()); }

  // --- O(1) charge hooks --------------------------------------------
  void charge_tx(int node, double bytes, const char* phase) {
    tx_bytes_[static_cast<std::size_t>(node)] += bytes;
    lane(phase).tx[static_cast<std::size_t>(node)] += bytes;
  }
  void charge_rx(int node, double bytes, const char* phase) {
    rx_bytes_[static_cast<std::size_t>(node)] += bytes;
    lane(phase).rx[static_cast<std::size_t>(node)] += bytes;
  }
  void charge_ops(int node, double ops) {
    ops_[static_cast<std::size_t>(node)] += ops;
  }
  void add_retry(int node) { ++retries_[static_cast<std::size_t>(node)]; }
  void add_drop(int node) { ++drops_[static_cast<std::size_t>(node)]; }
  void add_dup_rx(int node) { ++dup_rx_[static_cast<std::size_t>(node)]; }
  void add_corrupt_rx(int node) {
    ++corrupt_rx_[static_cast<std::size_t>(node)];
  }
  void add_arq_timeout(int node) {
    ++arq_timeouts_[static_cast<std::size_t>(node)];
  }
  void count_generated(int node) {
    ++generated_[static_cast<std::size_t>(node)];
  }
  void count_delivered(int node) {
    ++delivered_[static_cast<std::size_t>(node)];
  }
  void count_filtered(int node) {
    ++filtered_[static_cast<std::size_t>(node)];
  }
  void count_lost_channel(int node) {
    ++lost_channel_[static_cast<std::size_t>(node)];
  }
  void count_lost_crash(int node) {
    ++lost_crash_[static_cast<std::size_t>(node)];
  }
  void count_relayed(int node) {
    ++relayed_[static_cast<std::size_t>(node)];
  }
  void set_hops(int node, int hops) {
    hops_[static_cast<std::size_t>(node)] = hops;
  }

  // --- Accessors ----------------------------------------------------
  double tx_bytes(int node) const {
    return tx_bytes_[static_cast<std::size_t>(node)];
  }
  double rx_bytes(int node) const {
    return rx_bytes_[static_cast<std::size_t>(node)];
  }
  double ops(int node) const { return ops_[static_cast<std::size_t>(node)]; }
  int hops(int node) const { return hops_[static_cast<std::size_t>(node)]; }
  long long generated(int node) const {
    return generated_[static_cast<std::size_t>(node)];
  }
  long long delivered(int node) const {
    return delivered_[static_cast<std::size_t>(node)];
  }
  long long filtered(int node) const {
    return filtered_[static_cast<std::size_t>(node)];
  }
  long long lost_channel(int node) const {
    return lost_channel_[static_cast<std::size_t>(node)];
  }
  long long lost_crash(int node) const {
    return lost_crash_[static_cast<std::size_t>(node)];
  }
  long long relayed(int node) const {
    return relayed_[static_cast<std::size_t>(node)];
  }
  long long retries(int node) const {
    return retries_[static_cast<std::size_t>(node)];
  }
  long long drops(int node) const {
    return drops_[static_cast<std::size_t>(node)];
  }
  long long dup_rx(int node) const {
    return dup_rx_[static_cast<std::size_t>(node)];
  }
  long long corrupt_rx(int node) const {
    return corrupt_rx_[static_cast<std::size_t>(node)];
  }
  long long arq_timeouts(int node) const {
    return arq_timeouts_[static_cast<std::size_t>(node)];
  }

  /// Per-phase tx/rx lane for `phase` (nullptr when that phase never
  /// charged anything).
  const std::vector<double>* phase_tx(const std::string& phase) const;
  const std::vector<double>* phase_rx(const std::string& phase) const;
  std::vector<std::string> phase_names() const;

  /// Energy (J) charged to `node` under the table's coefficients.
  double energy_j(int node) const {
    const auto i = static_cast<std::size_t>(node);
    return energy.energy_j(tx_bytes_[i], rx_bytes_[i], ops_[i]);
  }

  double total_tx_bytes() const;
  double total_rx_bytes() const;
  double total_ops() const;

  NodeTelemetrySnapshot snapshot() const;
  NodeTelemetrySummary summarize(std::size_t top_k = 5) const;

  TelemetryEnergyModel energy;

 private:
  /// One per-phase charge lane. Lanes are keyed by phase label; lookup
  /// is one pointer compare on the cached last label (phase changes are
  /// rare relative to charges), falling back to a strcmp scan only when
  /// the label pointer changes. unique_ptr keeps lane addresses stable
  /// across appends so the cache never dangles.
  struct Lane {
    const char* key;
    std::string name;
    std::vector<double> tx;
    std::vector<double> rx;
  };
  Lane& lane(const char* phase) {
    if (cached_ != nullptr && cached_->key == phase) return *cached_;
    return lane_slow(phase);
  }
  Lane& lane_slow(const char* phase);

  std::vector<double> tx_bytes_;
  std::vector<double> rx_bytes_;
  std::vector<double> ops_;
  std::vector<int> hops_;
  std::vector<long long> generated_;
  std::vector<long long> delivered_;
  std::vector<long long> filtered_;
  std::vector<long long> lost_channel_;
  std::vector<long long> lost_crash_;
  std::vector<long long> relayed_;
  std::vector<long long> retries_;
  std::vector<long long> drops_;
  std::vector<long long> dup_rx_;
  std::vector<long long> corrupt_rx_;
  std::vector<long long> arq_timeouts_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  Lane* cached_ = nullptr;
};

}  // namespace isomap::obs
