#include "obs/obs.hpp"

#include <string>

namespace isomap::obs {

Context& context() {
  thread_local Context ctx;
  return ctx;
}

ObsScope::ObsScope(MetricsRegistry* metrics, TraceSink* trace)
    : ObsScope(metrics, trace, nullptr) {}

ObsScope::ObsScope(MetricsRegistry* metrics, TraceSink* trace,
                   NodeTelemetry* telemetry)
    : saved_(context()) {
  Context& ctx = context();
  ctx.metrics = metrics;
  ctx.trace = trace;
  ctx.telemetry = telemetry;
  ctx.phase = nullptr;
}

ObsScope::~ObsScope() { context() = saved_; }

PhaseTimer::PhaseTimer(const char* phase) {
  Context& ctx = context();
  if (ctx.metrics == nullptr && ctx.trace == nullptr &&
      ctx.telemetry == nullptr)
    return;
  armed_ = true;
  phase_ = phase;
  prev_phase_ = ctx.phase;
  ctx.phase = phase;
  start_ = std::chrono::steady_clock::now();
}

double PhaseTimer::stop() {
  if (!armed_) return 0.0;
  armed_ = false;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  Context& ctx = context();
  ctx.phase = prev_phase_;
  if (ctx.metrics != nullptr) {
    // One histogram per phase label: repeated timers (e.g. one filter
    // merge per convergecast hop) aggregate into count/p50/p95.
    ctx.metrics->observe("phase." + std::string(phase_) + ".seconds", elapsed);
  }
  if (ctx.trace != nullptr) {
    TraceEvent event;
    event.kind = "phase";
    event.phase = phase_;
    event.wall_s = elapsed;
    ctx.trace->emit(event);
  }
  return elapsed;
}

PhaseTimer::~PhaseTimer() { stop(); }

}  // namespace isomap::obs
