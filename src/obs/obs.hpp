#pragma once

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace isomap::obs {

class NodeTelemetry;  // obs/node_telemetry.hpp

/// The active observation context for the current thread. Instrumentation
/// sites throughout the stack read it through the inline helpers below;
/// with no scope installed every hook is a single thread-local pointer
/// read plus a branch — the "near-zero overhead when disabled" contract
/// the microbenchmarks hold the subsystem to.
struct Context {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;
  NodeTelemetry* telemetry = nullptr;  ///< Per-node flight recorder.
  const char* phase = nullptr;  ///< Innermost active PhaseTimer's label.
};

Context& context();

inline MetricsRegistry* metrics() { return context().metrics; }
inline TraceSink* trace() { return context().trace; }
inline NodeTelemetry* telemetry() { return context().telemetry; }
inline bool active() {
  const Context& c = context();
  return c.metrics != nullptr || c.trace != nullptr ||
         c.telemetry != nullptr;
}
inline const char* current_phase() {
  const char* p = context().phase;
  return p ? p : "unphased";
}

/// Counter/gauge/histogram helpers that no-op without a registry.
inline void count(const char* name, double delta = 1.0) {
  if (MetricsRegistry* m = context().metrics) m->add(name, delta);
}
inline void gauge(const char* name, double value) {
  if (MetricsRegistry* m = context().metrics) m->set(name, value);
}
inline void observe(const char* name, double value) {
  if (MetricsRegistry* m = context().metrics) m->observe(name, value);
}
/// Emit a trace event (no-op without a sink).
inline void emit(const TraceEvent& event) {
  if (TraceSink* t = context().trace) t->emit(event);
}

/// RAII installer: makes `metrics`/`trace` (and optionally a
/// NodeTelemetry table) the current context for this thread, restoring
/// the previous context (scopes nest) on destruction.
class ObsScope {
 public:
  ObsScope(MetricsRegistry* metrics, TraceSink* trace);
  ObsScope(MetricsRegistry* metrics, TraceSink* trace,
           NodeTelemetry* telemetry);
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;
  ~ObsScope();

 private:
  Context saved_;
};

/// RAII phase marker + wall timer. While alive, ledger charges made on
/// this thread are trace-tagged with `phase`; on destruction (or stop())
/// the elapsed wall time is recorded into the histogram
/// "phase.<phase>.seconds" and a "phase" trace event is emitted. Timers
/// nest: the innermost label wins, and the outer phase is restored when
/// the inner timer ends. Constructed with no active context, the timer
/// is fully inert.
class PhaseTimer {
 public:
  explicit PhaseTimer(const char* phase);
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer();

  /// End the phase now; returns elapsed seconds (0 when inert). Safe to
  /// call once; destruction after stop() does nothing further.
  double stop();

 private:
  const char* phase_ = nullptr;
  const char* prev_phase_ = nullptr;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_{};
};

/// Standard phase labels (Section 3's pipeline stages). Free-form labels
/// are allowed everywhere; these constants keep spellings consistent
/// between the instrumentation and trace_summary.
inline constexpr const char* kPhaseDisseminate = "disseminate";
inline constexpr const char* kPhaseSelect = "select";
inline constexpr const char* kPhaseGradientFit = "gradient_fit";
inline constexpr const char* kPhaseReportRoute = "report_route";
inline constexpr const char* kPhaseRepair = "route_repair";
inline constexpr const char* kPhaseFilter = "filter";
inline constexpr const char* kPhaseFilterDrop = "filter_drop";
inline constexpr const char* kPhaseMapGen = "map_gen";
inline constexpr const char* kPhaseAggregate = "aggregate";
inline constexpr const char* kPhaseSuppress = "suppress";
/// Service-layer phases (src/serve): one shard's virtual-time mapping
/// round, and a query-response body build on a cache miss.
inline constexpr const char* kPhaseTick = "tick";
inline constexpr const char* kPhaseServe = "serve";

}  // namespace isomap::obs
