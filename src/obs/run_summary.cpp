#include "obs/run_summary.hpp"

namespace isomap::obs {

JsonValue LedgerTotals::to_json() const {
  JsonValue v = JsonValue::object();
  v["nodes"] = JsonValue(nodes);
  v["tx_bytes"] = JsonValue(tx_bytes);
  v["rx_bytes"] = JsonValue(rx_bytes);
  v["ops"] = JsonValue(ops);
  v["mean_ops"] = JsonValue(mean_ops);
  v["max_ops"] = JsonValue(max_ops);
  return v;
}

JsonValue FaultTotals::to_json() const {
  JsonValue v = JsonValue::object();
  v["crashes"] = JsonValue(crashes);
  v["route_repairs"] = JsonValue(route_repairs);
  v["repair_bytes"] = JsonValue(repair_bytes);
  v["reports_lost_crash"] = JsonValue(reports_lost_crash);
  v["reports_lost_channel"] = JsonValue(reports_lost_channel);
  return v;
}

double RunSummary::phase_seconds(const std::string& phase) const {
  const auto it = phases.find(phase);
  return it == phases.end() ? 0.0 : it->second.sum;
}

JsonValue RunSummary::to_json() const {
  JsonValue v = JsonValue::object();
  v["protocol"] = JsonValue(protocol);
  v["wall_s"] = JsonValue(wall_s);
  v["ledger"] = ledger.to_json();
  v["faults"] = faults.to_json();
  JsonValue& ph = v["phases"];
  ph = JsonValue::object();
  for (const auto& [name, snap] : phases) ph[name] = snap.to_json();
  JsonValue& cnt = v["counters"];
  cnt = JsonValue::object();
  for (const auto& [name, value] : counters) cnt[name] = JsonValue(value);
  JsonValue& gg = v["gauges"];
  gg = JsonValue::object();
  for (const auto& [name, value] : gauges) gg[name] = JsonValue(value);
  JsonValue& hs = v["histograms"];
  hs = JsonValue::object();
  for (const auto& [name, snap] : histograms) hs[name] = snap.to_json();
  if (node_telemetry) v["node_telemetry"] = node_telemetry->to_json();
  if (peak_rss_bytes > 0.0) v["peak_rss_bytes"] = JsonValue(peak_rss_bytes);
  v["trace_events"] = JsonValue(trace_events);
  return v;
}

RunSummary make_run_summary(std::string protocol,
                            const MetricsRegistry& registry,
                            const LedgerTotals& ledger, double wall_s,
                            std::size_t trace_events,
                            const NodeTelemetry* telemetry) {
  RunSummary summary;
  summary.protocol = std::move(protocol);
  summary.wall_s = wall_s;
  summary.ledger = ledger;
  summary.counters = registry.counters();
  summary.gauges = registry.gauges();
  summary.trace_events = trace_events;
  const auto counter = [&](const char* name) {
    const auto it = summary.counters.find(name);
    return it == summary.counters.end() ? 0.0 : it->second;
  };
  summary.faults.crashes = counter("fault.crashes");
  summary.faults.route_repairs = counter("route.repairs");
  summary.faults.repair_bytes = counter("route.repair_bytes");
  summary.faults.reports_lost_crash = counter("reports.lost_crash");
  summary.faults.reports_lost_channel = counter("reports.lost_channel");
  static constexpr const char kPrefix[] = "phase.";
  static constexpr const char kSuffix[] = ".seconds";
  for (auto& [name, snap] : registry.histogram_snapshots()) {
    const std::size_t prefix_len = sizeof kPrefix - 1;
    const std::size_t suffix_len = sizeof kSuffix - 1;
    if (name.size() > prefix_len + suffix_len &&
        name.compare(0, prefix_len, kPrefix) == 0 &&
        name.compare(name.size() - suffix_len, suffix_len, kSuffix) == 0) {
      summary.phases[name.substr(prefix_len,
                                 name.size() - prefix_len - suffix_len)] =
          snap;
    } else {
      summary.histograms[name] = snap;
    }
  }
  if (telemetry != nullptr && telemetry->size() > 0)
    summary.node_telemetry = telemetry->summarize();
  return summary;
}

}  // namespace isomap::obs
