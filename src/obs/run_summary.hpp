#pragma once

#include <map>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "obs/node_telemetry.hpp"

namespace isomap::obs {

/// Flat copy of a run's Ledger totals. Kept as plain numbers (rather
/// than a Ledger reference) so the obs library stays below the net layer
/// in the dependency graph — net/Ledger itself links against obs to emit
/// cost events.
struct LedgerTotals {
  int nodes = 0;
  double tx_bytes = 0.0;
  double rx_bytes = 0.0;
  double ops = 0.0;
  double mean_ops = 0.0;
  double max_ops = 0.0;

  JsonValue to_json() const;
};

/// Flat copy of a run's fault / degradation counters (zero on fault-free
/// runs): how many nodes crashed mid-run, how the routing tree repaired
/// itself, what the repair cost, and where the lost reports went. Derived
/// from the "fault.*" / "route.*" / "reports.lost_*" counters so the
/// degradation story reads off the summary without string lookups.
struct FaultTotals {
  double crashes = 0.0;
  double route_repairs = 0.0;
  double repair_bytes = 0.0;
  double reports_lost_crash = 0.0;
  double reports_lost_channel = 0.0;

  bool any() const {
    return crashes > 0 || route_repairs > 0 || repair_bytes > 0 ||
           reports_lost_crash > 0 || reports_lost_channel > 0;
  }
  JsonValue to_json() const;
};

/// Everything one protocol run reports about itself: total wall time,
/// per-phase timing histograms (count / sum / p50 / p95 / max seconds),
/// the ledger breakdown and a full metric snapshot. Every *Run bundle
/// returned by sim/runners carries one; to_json() is the machine-readable
/// form benches write as BENCH_*.json.
struct RunSummary {
  std::string protocol;
  double wall_s = 0.0;
  LedgerTotals ledger;
  FaultTotals faults;
  /// Phase label -> timing summary (seconds), from the PhaseTimer
  /// histograms ("phase.<label>.seconds").
  std::map<std::string, HistogramSnapshot> phases;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  /// Non-phase histograms (e.g. regression sample counts).
  std::map<std::string, HistogramSnapshot> histograms;
  std::size_t trace_events = 0;  ///< 0 when tracing was disabled.
  /// Spatial balance block (hotspot ids, energy Gini, max hops) — only
  /// present when the run carried a NodeTelemetry table.
  std::optional<NodeTelemetrySummary> node_telemetry;
  /// Process peak resident-set size (bytes) sampled when the run summary
  /// was assembled; 0 when unavailable or not sampled. Machine-dependent
  /// like wall_s: emitted in to_json() only when positive and zeroed by
  /// capsule normalization, so replay identity is untouched.
  double peak_rss_bytes = 0.0;

  /// Sum of one phase's recorded seconds (0 when the phase never ran).
  double phase_seconds(const std::string& phase) const;

  JsonValue to_json() const;
};

/// Assemble a summary from a run's registry. Histograms named
/// "phase.<label>.seconds" become `phases[<label>]`; everything else is
/// copied verbatim. When `telemetry` is given, its summarize() fills the
/// summary's node_telemetry block.
RunSummary make_run_summary(std::string protocol,
                            const MetricsRegistry& registry,
                            const LedgerTotals& ledger, double wall_s,
                            std::size_t trace_events = 0,
                            const NodeTelemetry* telemetry = nullptr);

}  // namespace isomap::obs
