#include "obs/trace.hpp"

namespace isomap::obs {

TraceSink::TraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {}

TraceSink::TraceSink(std::ostream& out) : out_(&out) {}

void TraceSink::flush() {
  if (out_) out_->flush();
}

void TraceSink::emit(const TraceEvent& event) {
  if (!out_) return;
  line_.clear();
  line_ += "{\"kind\":";
  json_escape(line_, event.kind);
  line_ += ",\"phase\":";
  json_escape(line_, event.phase);
  if (event.node >= 0) {
    line_ += ",\"node\":";
    line_ += json_number(event.node);
  }
  if (event.peer >= 0) {
    line_ += ",\"peer\":";
    line_ += json_number(event.peer);
  }
  if (event.report >= 0) {
    line_ += ",\"report\":";
    line_ += json_number(static_cast<double>(event.report));
  }
  if (event.hop >= 0) {
    line_ += ",\"hop\":";
    line_ += json_number(event.hop);
  }
  if (event.isolevel != TraceEvent::kNoLevel) {
    line_ += ",\"isolevel\":";
    line_ += json_number(event.isolevel);
  }
  if (event.tx_bytes != 0.0) {
    line_ += ",\"tx_bytes\":";
    line_ += json_number(event.tx_bytes);
  }
  if (event.rx_bytes != 0.0) {
    line_ += ",\"rx_bytes\":";
    line_ += json_number(event.rx_bytes);
  }
  if (event.ops != 0.0) {
    line_ += ",\"ops\":";
    line_ += json_number(event.ops);
  }
  if (event.wall_s >= 0.0) {
    line_ += ",\"wall_s\":";
    line_ += json_number(event.wall_s);
  }
  if (event.latency_s >= 0.0) {
    line_ += ",\"latency_s\":";
    line_ += json_number(event.latency_s);
  }
  line_ += "}\n";
  out_->write(line_.data(), static_cast<std::streamsize>(line_.size()));
  ++events_;
}

}  // namespace isomap::obs
