#pragma once

#include <cstddef>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "util/json.hpp"

namespace isomap::obs {

/// One structured trace record. Kinds:
///  - "cost":  a ledger charge (tx/rx bytes, ops) attributed to the phase
///             that was active when it was made — summing cost events over
///             a trace reconciles exactly with the run's Ledger totals.
///  - "drop":  an in-network filter drop: `node` is the filtering node,
///             `peer` the dropped report's source, `isolevel` its level,
///             `report` the dropped report's causal id.
///  - "span":  one hop of a report's path: `report` is the causal id
///             assigned at generation, `hop` the path length so far
///             (0 = the generation event at the source), `node` the
///             sender and `peer` the receiver for transit hops. A
///             report's full source→relays→sink path reconstructs by
///             ordering its span events by `hop`.
///  - "loss":  a report that died in flight: `report` its causal id,
///             `node` where it was lost (`peer` the unreachable next hop
///             for channel losses; -1 for crash losses).
///  - "phase": a phase completion with its wall time (`wall_s`).
///  - "note":  anything else (protocol milestones).
/// Unused fields keep their defaults and are omitted from the JSONL line.
struct TraceEvent {
  const char* kind = "cost";
  const char* phase = "";
  int node = -1;     ///< Acting node (sender / filterer / computer).
  int peer = -1;     ///< Counterpart (receiver / dropped source).
  long long report = -1;  ///< Per-report causal id; < 0 = not a span.
  int hop = -1;      ///< Hop index along a report's path; < 0 = unset.
  double isolevel = kNoLevel;
  double tx_bytes = 0.0;
  double rx_bytes = 0.0;
  double ops = 0.0;
  double wall_s = -1.0;  ///< Wall time in seconds; < 0 = not measured.
  double latency_s = -1.0;  ///< Virtual link latency of a span's hop over
                            ///< the impaired pipeline; < 0 = not measured.

  static constexpr double kNoLevel = -1e300;
};

/// Append-only JSONL sink: one compact JSON object per event, one event
/// per line. Construct over a file path or any ostream (tests use a
/// stringstream). Writing is buffered by the underlying stream; call
/// flush() or destroy the sink before reading the file back.
class TraceSink {
 public:
  /// Opens `path` for writing (truncates). ok() reports open failure.
  explicit TraceSink(const std::string& path);
  /// Write to a caller-owned stream (kept by reference).
  explicit TraceSink(std::ostream& out);

  bool ok() const { return out_ != nullptr && out_->good(); }
  std::size_t events() const { return events_; }
  void flush();

  void emit(const TraceEvent& event);

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_ = nullptr;
  std::size_t events_ = 0;
  std::string line_;  ///< Reused serialization buffer.
};

}  // namespace isomap::obs
