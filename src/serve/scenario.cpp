#include "serve/scenario.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "util/json.hpp"

namespace isomap::serve {
namespace {

std::string kind_name(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "a bool";
    case JsonValue::Kind::kNumber: return "a number";
    case JsonValue::Kind::kString: return "a string";
    case JsonValue::Kind::kArray: return "an array";
    case JsonValue::Kind::kObject: return "an object";
  }
  return "unknown";
}

const JsonValue& expect_object(const JsonValue& v, const std::string& path) {
  if (!v.is_object())
    throw ScenarioError(path, "must be an object, got " + kind_name(v));
  return v;
}

/// Reject keys outside the allowed set — typos fail loudly instead of
/// silently running a different experiment than the author wrote.
void reject_unknown_keys(const JsonValue& obj,
                         std::initializer_list<const char*> allowed,
                         const std::string& path) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed)
      if (key == a) {
        ok = true;
        break;
      }
    if (!ok) throw ScenarioError(path + "." + key, "unknown key");
  }
}

double get_number(const JsonValue& obj, const char* key, double lo, double hi,
                  double def, const std::string& path, bool required = false) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) throw ScenarioError(path + "." + key, "required key missing");
    return def;
  }
  if (!v->is_number())
    throw ScenarioError(path + "." + key,
                        "must be a number, got " + kind_name(*v));
  const double d = v->as_number();
  if (!(d >= lo && d <= hi)) {
    std::ostringstream os;
    os << "value " << d << " out of range [" << lo << ", " << hi << "]";
    throw ScenarioError(path + "." + key, os.str());
  }
  return d;
}

long long get_int(const JsonValue& obj, const char* key, long long lo,
                  long long hi, long long def, const std::string& path,
                  bool required = false) {
  const double d = get_number(obj, key, static_cast<double>(lo),
                              static_cast<double>(hi),
                              static_cast<double>(def), path, required);
  if (d != std::floor(d))
    throw ScenarioError(path + "." + std::string(key), "must be an integer");
  return static_cast<long long>(d);
}

std::string get_string(const JsonValue& obj, const char* key,
                       const std::string& def, const std::string& path,
                       bool required = false) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) throw ScenarioError(path + "." + key, "required key missing");
    return def;
  }
  if (!v->is_string())
    throw ScenarioError(path + "." + key,
                        "must be a string, got " + kind_name(*v));
  return v->as_string();
}

bool get_bool(const JsonValue& obj, const char* key, bool def,
              const std::string& path) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return def;
  if (!v->is_bool())
    throw ScenarioError(path + "." + key,
                        "must be a bool, got " + kind_name(*v));
  return v->as_bool();
}

FieldKind parse_field(const std::string& s, const std::string& path,
                      bool allow_random) {
  if (s == "harbor") return FieldKind::kHarbor;
  if (s == "silted") return FieldKind::kSilted;
  if (s == "multi_basin") return FieldKind::kMultiBasin;
  if (s == "sloped") return FieldKind::kSloped;
  if (s == "random") {
    if (allow_random) return FieldKind::kRandom;
    throw ScenarioError(path,
                        "\"random\" needs a seeded generator and cannot be a "
                        "drift target");
  }
  throw ScenarioError(
      path, "\"" + s +
                "\" is not a field kind (harbor|silted|multi_basin|random|"
                "sloped)");
}

const char* field_name(FieldKind kind) {
  switch (kind) {
    case FieldKind::kHarbor: return "harbor";
    case FieldKind::kSilted: return "silted";
    case FieldKind::kMultiBasin: return "multi_basin";
    case FieldKind::kRandom: return "random";
    case FieldKind::kSloped: return "sloped";
  }
  return "?";
}

DeploymentSpec parse_deployment(const JsonValue& v, const std::string& path) {
  expect_object(v, path);
  reject_unknown_keys(v,
                      {"name", "nodes", "field_side", "field", "drift_target",
                       "drift_per_round", "seed", "num_levels", "stale_rounds",
                       "engine", "failure_fraction", "grid"},
                      path);
  DeploymentSpec d;
  d.name = get_string(v, "name", "", path, /*required=*/true);
  if (d.name.empty() || d.name.size() > 64)
    throw ScenarioError(path + ".name", "must be 1..64 characters");
  d.nodes = static_cast<int>(get_int(v, "nodes", 16, 1000000, 400, path));
  d.field_side = get_number(v, "field_side", 4.0, 2000.0, 20.0, path);
  d.field = parse_field(get_string(v, "field", "harbor", path), path + ".field",
                        /*allow_random=*/true);
  d.drift_target =
      parse_field(get_string(v, "drift_target", "silted", path),
                  path + ".drift_target", /*allow_random=*/false);
  d.drift_per_round = get_number(v, "drift_per_round", 0.0, 1.0, 0.0, path);
  d.seed = static_cast<std::uint64_t>(
      get_int(v, "seed", 0, (1LL << 53), 1, path));
  d.num_levels = static_cast<int>(get_int(v, "num_levels", 1, 16, 4, path));
  d.stale_rounds =
      static_cast<int>(get_int(v, "stale_rounds", 0, 100000, 0, path));
  const std::string engine = get_string(v, "engine", "incremental", path);
  if (engine == "incremental")
    d.engine = ContinuousEngine::kIncremental;
  else if (engine == "oracle")
    d.engine = ContinuousEngine::kOracle;
  else
    throw ScenarioError(path + ".engine",
                        "\"" + engine + "\" is not incremental|oracle");
  d.failure_fraction =
      get_number(v, "failure_fraction", 0.0, 0.9, 0.0, path);
  d.grid = get_bool(v, "grid", false, path);
  return d;
}

QueryMixSpec parse_query_mix(const JsonValue& v, const std::string& path) {
  expect_object(v, path);
  reject_unknown_keys(v, {"queries_per_tick", "subset_fraction", "seed"},
                      path);
  QueryMixSpec q;
  q.queries_per_tick =
      static_cast<int>(get_int(v, "queries_per_tick", 0, 1000000, 16, path));
  q.subset_fraction = get_number(v, "subset_fraction", 0.0, 1.0, 0.5, path);
  q.seed =
      static_cast<std::uint64_t>(get_int(v, "seed", 0, (1LL << 53), 1, path));
  return q;
}

}  // namespace

ScenarioConfig DeploymentSpec::to_config() const {
  ScenarioConfig config;
  config.num_nodes = nodes;
  config.field_side = field_side;
  config.field = field;
  config.seed = seed;
  config.grid_deployment = grid;
  config.failure_fraction = failure_fraction;
  return config;
}

ServiceScenario parse_service_scenario(std::string_view text) {
  const auto doc = JsonValue::parse(text);
  if (!doc) throw ScenarioError("$", "not a valid JSON document");
  expect_object(*doc, "$");
  reject_unknown_keys(*doc,
                      {"schema", "name", "rounds", "oracle_check_every",
                       "cache_capacity", "deployments", "query_mix"},
                      "$");
  const long long schema =
      get_int(*doc, "schema", 1, 1, 0, "$", /*required=*/true);
  (void)schema;  // Range pin [1, 1] is the whole check.

  ServiceScenario sc;
  sc.name = get_string(*doc, "name", "", "$", /*required=*/true);
  if (sc.name.empty() || sc.name.size() > 64)
    throw ScenarioError("$.name", "must be 1..64 characters");
  sc.rounds = static_cast<int>(
      get_int(*doc, "rounds", 1, 1000000, 0, "$", /*required=*/true));
  sc.oracle_check_every =
      static_cast<int>(get_int(*doc, "oracle_check_every", 0, 1000000, 0, "$"));
  sc.cache_capacity =
      static_cast<int>(get_int(*doc, "cache_capacity", 1, 1048576, 4096, "$"));

  const JsonValue* deployments = doc->find("deployments");
  if (deployments == nullptr)
    throw ScenarioError("$.deployments", "required key missing");
  if (!deployments->is_array())
    throw ScenarioError("$.deployments", "must be an array, got " +
                                             kind_name(*deployments));
  if (deployments->size() == 0 || deployments->size() > 64)
    throw ScenarioError("$.deployments", "must hold 1..64 deployments");
  std::set<std::string> names;
  for (std::size_t i = 0; i < deployments->size(); ++i) {
    const std::string path = "$.deployments[" + std::to_string(i) + "]";
    DeploymentSpec d = parse_deployment(deployments->at(i), path);
    if (!names.insert(d.name).second)
      throw ScenarioError(path + ".name",
                          "duplicate deployment name \"" + d.name + "\"");
    sc.deployments.push_back(std::move(d));
  }

  if (const JsonValue* mix = doc->find("query_mix"))
    sc.query_mix = parse_query_mix(*mix, "$.query_mix");
  return sc;
}

ServiceScenario load_service_scenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError("$", "cannot read scenario file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_service_scenario(buf.str());
}

std::string describe(const ServiceScenario& sc) {
  std::ostringstream os;
  os << "scenario \"" << sc.name << "\": " << sc.deployments.size()
     << " deployment(s), " << sc.rounds << " round(s), "
     << sc.query_mix.queries_per_tick << " queries/tick"
     << " (subset_fraction " << sc.query_mix.subset_fraction << ")"
     << ", cache capacity " << sc.cache_capacity;
  if (sc.oracle_check_every > 0)
    os << ", oracle check every " << sc.oracle_check_every << " queries";
  os << "\n";
  for (const DeploymentSpec& d : sc.deployments) {
    os << "  - " << d.name << ": " << d.nodes << " nodes on "
       << d.field_side << "x" << d.field_side << " " << field_name(d.field)
       << ", " << d.num_levels << " levels, "
       << (d.engine == ContinuousEngine::kIncremental ? "incremental"
                                                      : "oracle")
       << " engine";
    if (d.drift_per_round > 0.0)
      os << ", drift " << d.drift_per_round << "/round -> "
         << field_name(d.drift_target);
    if (d.failure_fraction > 0.0)
      os << ", " << d.failure_fraction * 100.0 << "% failed";
    os << "\n";
  }
  return os.str();
}

}  // namespace isomap::serve
