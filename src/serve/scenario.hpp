#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "isomap/continuous.hpp"
#include "sim/scenario.hpp"

namespace isomap::serve {

/// Typed validation error for service scenarios. `where()` is the JSON
/// path of the offending value ("$" is the document root, then
/// "$.deployments[2].nodes" style). Thrown — never a crash — for any
/// malformed input: syntax errors, wrong types, unknown keys,
/// out-of-range values. The scenario fuzz tests (and the ASan CI lane)
/// hold the parser to exactly this contract on arbitrary bytes.
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(std::string where, const std::string& what)
      : std::runtime_error(where + ": " + what), where_(std::move(where)) {}
  const std::string& where() const { return where_; }

 private:
  std::string where_;
};

/// One hosted deployment (a service shard): a make_scenario() deployment
/// plus the continuous-mapping knobs and a deterministic field-drift
/// schedule that generates its per-round readings.
struct DeploymentSpec {
  std::string name;
  int nodes = 400;
  double field_side = 20.0;
  FieldKind field = FieldKind::kHarbor;
  /// Drift endpoint: readings blend field -> drift_target with a
  /// triangular (ping-pong) schedule of `drift_per_round` alpha per
  /// round, so long soaks keep producing reading deltas. 0 freezes the
  /// field (every round after the first is a pure cache workload).
  FieldKind drift_target = FieldKind::kSilted;
  double drift_per_round = 0.0;
  std::uint64_t seed = 1;
  int num_levels = 4;
  int stale_rounds = 0;
  ContinuousEngine engine = ContinuousEngine::kIncremental;
  double failure_fraction = 0.0;
  bool grid = false;

  ScenarioConfig to_config() const;
};

/// The synthetic query workload the service generates each tick.
struct QueryMixSpec {
  int queries_per_tick = 16;
  /// Fraction of queries asking a random proper isolevel subset (the
  /// rest ask the full level set). Subsets fragment the cache key space,
  /// lowering the hit rate.
  double subset_fraction = 0.5;
  std::uint64_t seed = 1;
};

/// A validated service scenario: everything `isomap_serve run` needs to
/// drive a deterministic multi-deployment soak. See docs/SERVICE.md for
/// the JSON schema reference.
struct ServiceScenario {
  std::string name;
  int rounds = 10;
  /// 0 = off; k = every k-th query is adversarially re-built from a
  /// fresh ContourMapBuilder pass and byte-compared with the served
  /// response (exit code 4 on any mismatch).
  int oracle_check_every = 0;
  int cache_capacity = 4096;
  std::vector<DeploymentSpec> deployments;
  QueryMixSpec query_mix;
};

/// Strict parse + validation of a scenario document. Throws ScenarioError
/// on any defect; never crashes on arbitrary input.
ServiceScenario parse_service_scenario(std::string_view text);

/// Read `path` and parse it. Unreadable files throw ScenarioError too
/// (an absent scenario is an invalid scenario, exit code 3).
ServiceScenario load_service_scenario(const std::string& path);

/// One-line-per-shard human summary printed by `isomap_serve validate`.
std::string describe(const ServiceScenario& scenario);

}  // namespace isomap::serve
