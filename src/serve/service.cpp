#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "exec/exec.hpp"
#include "field/bathymetry.hpp"
#include "field/blended_field.hpp"
#include "field/gaussian_field.hpp"
#include "isomap/continuous.hpp"
#include "obs/obs.hpp"
#include "obs/run_summary.hpp"
#include "serve/wire.hpp"
#include "sim/run_capsule.hpp"
#include "sim/runners.hpp"
#include "util/rng.hpp"

namespace isomap::serve {
namespace {

double micros_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::shared_ptr<const ScalarField> make_drift_field(const DeploymentSpec& spec,
                                                    const FieldBounds& bounds) {
  if (spec.drift_per_round <= 0.0) return nullptr;
  switch (spec.drift_target) {
    case FieldKind::kHarbor:
      return std::make_shared<GaussianField>(harbor_bathymetry(bounds));
    case FieldKind::kSilted:
      return std::make_shared<GaussianField>(silted_harbor_bathymetry(bounds));
    case FieldKind::kMultiBasin:
      return std::make_shared<GaussianField>(multi_basin_bathymetry(bounds));
    case FieldKind::kSloped:
      return std::make_shared<GaussianField>(sloped_seabed_bathymetry(bounds));
    case FieldKind::kRandom:
      break;  // Rejected by the validator (no seeded drift targets).
  }
  return nullptr;
}

ContinuousOptions make_continuous_options(const DeploymentSpec& spec,
                                          const Scenario& scenario) {
  ContinuousOptions options;
  options.base = isomap_options(scenario, spec.num_levels);
  options.stale_rounds = spec.stale_rounds;
  options.engine = spec.engine;
  return options;
}

}  // namespace

/// One hosted deployment. Members are declared in dependency order (the
/// Rebuilt pattern): the mapper holds pointers into the shard's own
/// deployment/graph/tree, so a Shard is heap-pinned (unique_ptr in the
/// service) and never relocated after construction. Two construction
/// paths share the struct: a field-driven shard generated from a
/// DeploymentSpec (readings sampled from a drifting field each tick) and
/// a capsule-driven shard rebuilt from a recorded continuous run
/// (readings scripted from the capsule's stored rounds).
struct IsoMapService::Shard {
  std::string name;
  ScenarioConfig config;      ///< Provenance for capsule export.
  double radio_range = 0.0;
  double drift_per_round = 0.0;
  std::shared_ptr<const ScalarField> base_field;   ///< Null = scripted.
  std::shared_ptr<const ScalarField> drift_field;  ///< Null = frozen field.
  ContinuousOptions options;
  std::vector<double> isolevels;
  Deployment deployment;
  CommGraph graph;
  RoutingTree tree;
  ContinuousMapper mapper;
  Ledger ledger;
  obs::MetricsRegistry metrics;
  std::optional<RoundResult> last;    ///< Set by every tick().
  std::vector<double> readings;       ///< Per-round sampling scratch.
  std::vector<std::vector<double>> scripted;  ///< Capsule-driven rounds.
  std::vector<std::vector<double>> recorded_rounds;  ///< Capsule export.

  explicit Shard(const DeploymentSpec& s)
      : Shard(s, make_scenario(s.to_config())) {}

  /// Field-driven shard. Takes the freshly built Scenario by value and
  /// moves its deployment/graph/tree into place (both are value types
  /// with no back-references; the mapper binds to the members, never to
  /// the moved-from temporaries). `options` is initialized before the
  /// moves — declaration order guarantees it still sees the intact
  /// scenario.
  Shard(const DeploymentSpec& s, Scenario&& sc)
      : name(s.name),
        config(sc.config),
        radio_range(sc.config.effective_radio_range()),
        drift_per_round(s.drift_per_round),
        base_field(sc.field_storage),
        drift_field(make_drift_field(s, sc.field.bounds())),
        options(make_continuous_options(s, sc)),
        isolevels(options.base.query.isolevels()),
        deployment(std::move(sc.deployment)),
        graph(std::move(sc.graph)),
        tree(std::move(sc.tree)),
        mapper(options, deployment, graph, tree),
        ledger(deployment.size()) {}

  /// Capsule-driven shard: deployment snapshot materialized, graph/tree
  /// re-derived from radio_range + sink exactly as capsule::replay does.
  Shard(std::string shard_name, const capsule::RunCapsule& c)
      : name(std::move(shard_name)),
        config(c.config),
        radio_range(c.radio_range),
        options(c.continuous),
        isolevels(options.base.query.isolevels()),
        deployment(c.deployment.materialize()),
        graph(deployment, c.radio_range),
        tree(graph, c.sink),
        mapper(options, deployment, graph, tree),
        ledger(deployment.size()),
        scripted(c.rounds) {}

  /// Sample this shard's readings for round `round_index` (1-based). A
  /// scripted shard replays its capsule's recorded rounds (clamped to
  /// the last one). A field-driven shard's drift alpha follows a
  /// triangular ping-pong schedule so arbitrarily long soaks keep
  /// producing reading deltas instead of saturating at the drift target.
  void sample_readings(int round_index) {
    if (!scripted.empty()) {
      const std::size_t r =
          std::min(static_cast<std::size_t>(round_index - 1),
                   scripted.size() - 1);
      readings = scripted[r];
      return;
    }
    readings.assign(static_cast<std::size_t>(deployment.size()), 0.0);
    const double phase =
        drift_per_round * static_cast<double>(round_index - 1);
    const double m = std::fmod(phase, 2.0);
    const double alpha = 1.0 - std::abs(1.0 - m);
    const ScalarField* field = base_field.get();
    std::optional<BlendedField> blended;
    if (drift_field != nullptr && alpha > 0.0) {
      blended.emplace(*base_field, *drift_field, alpha);
      field = &*blended;
    }
    for (const auto& node : deployment.nodes()) {
      if (!node.alive) continue;
      readings[static_cast<std::size_t>(node.id)] = field->value(node.pos);
    }
  }
};

IsoMapService::IsoMapService(ServiceScenario scenario)
    : scenario_(std::move(scenario)) {
  shards_.reserve(scenario_.deployments.size());
  for (const DeploymentSpec& d : scenario_.deployments)
    shards_.push_back(std::make_unique<Shard>(d));
}

IsoMapService::~IsoMapService() = default;

const std::string& IsoMapService::shard_name(int shard) const {
  return shards_[static_cast<std::size_t>(shard)]->name;
}

int IsoMapService::find_shard(const std::string& name) const {
  for (std::size_t i = 0; i < shards_.size(); ++i)
    if (shards_[i]->name == name) return static_cast<int>(i);
  return -1;
}

int IsoMapService::attach_capsule_shard(const std::string& name,
                                        const capsule::RunCapsule& capsule) {
  if (rounds_done_ > 0)
    throw std::logic_error(
        "IsoMapService::attach_capsule_shard: service already ticked");
  if (capsule.kind != capsule::RunKind::kContinuous)
    throw std::invalid_argument(
        "IsoMapService::attach_capsule_shard: capsule is not a continuous "
        "run");
  if (capsule.rounds.empty())
    throw std::invalid_argument(
        "IsoMapService::attach_capsule_shard: capsule holds no readings "
        "rounds");
  if (find_shard(name) >= 0)
    throw std::invalid_argument(
        "IsoMapService::attach_capsule_shard: duplicate shard name \"" +
        name + "\"");
  shards_.push_back(std::make_unique<Shard>(name, capsule));
  return shard_count() - 1;
}

int IsoMapService::num_levels(int shard) const {
  return static_cast<int>(
      shards_[static_cast<std::size_t>(shard)]->isolevels.size());
}

void IsoMapService::tick() {
  const int round = ++rounds_done_;
  // Shards are independent; the per-shard ObsScope installed inside the
  // body makes every emission (metrics, phase timers, ledger trace tags)
  // thread-local, so the advance is bitwise thread-count-independent.
  exec::parallel_for(shards_.size(), [&](std::size_t i) {
    Shard& s = *shards_[i];
    const obs::ObsScope scope(&s.metrics, nullptr);
    obs::PhaseTimer timer(obs::kPhaseTick);
    obs::count("serve.rounds");
    s.sample_readings(round);
    if (static_cast<int>(s.recorded_rounds.size()) < kCapsuleRoundsCap)
      s.recorded_rounds.push_back(s.readings);
    s.last.emplace(s.mapper.round(s.readings, s.ledger));
  });
}

bool IsoMapService::normalize_levels(QueryRequest& request) const {
  if (request.shard < 0 || request.shard >= shard_count()) return false;
  std::vector<int>& levels = request.levels;
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  if (levels.empty()) return false;
  return levels.front() >= 0 && levels.back() < num_levels(request.shard);
}

std::vector<QueryRequest> IsoMapService::mix_for_tick() const {
  const QueryMixSpec& mix = scenario_.query_mix;
  std::vector<QueryRequest> out;
  out.reserve(static_cast<std::size_t>(mix.queries_per_tick));
  // Stateless per-tick stream: the mix for tick t is a pure function of
  // (mix seed, t), independent of how many batches were served before.
  Rng rng(mix.seed ^
          (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(rounds_done_)));
  for (int q = 0; q < mix.queries_per_tick; ++q) {
    QueryRequest r;
    r.shard = static_cast<int>(
        rng.uniform_int(static_cast<std::uint64_t>(shard_count())));
    const int n = num_levels(r.shard);
    if (rng.bernoulli(mix.subset_fraction)) {
      for (int k = 0; k < n; ++k)
        if (rng.bernoulli(0.5)) r.levels.push_back(k);
      if (r.levels.empty())
        r.levels.push_back(
            static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(n))));
    } else {
      r.levels.resize(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) r.levels[static_cast<std::size_t>(k)] = k;
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::string IsoMapService::cache_key(const QueryRequest& request) const {
  const Shard& s = *shards_[static_cast<std::size_t>(request.shard)];
  const std::vector<std::uint64_t>& fps = s.mapper.level_fingerprints();
  std::string key = s.name;
  key += '|';
  for (const int k : request.levels) {
    key += std::to_string(k);
    key += ',';
  }
  key += '|';
  char buf[20];
  for (const int k : request.levels) {
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      fps[static_cast<std::size_t>(k)]));
    key += buf;
    key += ',';
  }
  return key;
}

std::shared_ptr<const std::string> IsoMapService::build_body(
    const QueryRequest& request) const {
  const Shard& s = *shards_[static_cast<std::size_t>(request.shard)];
  return std::make_shared<const std::string>(serialize_response(
      s.name, wire_levels_from_map(s.last->map, request.levels)));
}

void IsoMapService::cache_insert(std::string key,
                                 std::shared_ptr<const std::string> body) {
  if (!cache_.emplace(key, std::move(body)).second) return;
  cache_fifo_.push_back(std::move(key));
  while (cache_.size() > static_cast<std::size_t>(scenario_.cache_capacity)) {
    cache_.erase(cache_fifo_.front());
    cache_fifo_.pop_front();
  }
}

std::vector<QueryResponse> IsoMapService::serve_batch(
    const std::vector<QueryRequest>& batch) {
  if (rounds_done_ == 0)
    throw std::logic_error(
        "IsoMapService::serve_batch: no round ticked yet (fingerprints "
        "undefined)");
  std::vector<QueryResponse> out(batch.size());
  std::vector<std::string> keys(batch.size());

  // Phase 1 (serial): cache lookups; deduplicate the misses in
  // first-appearance order.
  std::unordered_map<std::string, std::size_t> miss_of_key;
  std::vector<std::size_t> miss_query;  ///< Representative query per build.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    keys[i] = cache_key(batch[i]);
    const auto it = cache_.find(keys[i]);
    if (it != cache_.end()) {
      out[i].cache_hit = true;
      out[i].body = it->second;
      out[i].latency_us = micros_since(t0);
    } else if (miss_of_key.find(keys[i]) == miss_of_key.end()) {
      miss_of_key.emplace(keys[i], miss_query.size());
      miss_query.push_back(i);
    }
  }

  // Phase 2 (parallel): build the unique missing bodies. Each slot is
  // written by exactly one task and the bodies touch only their own
  // shard's (read-only between ticks) state, so the batch result is
  // thread-count-independent. Empty scope: serialization emits nothing,
  // and worker threads must not inherit the driver's context.
  std::vector<std::shared_ptr<const std::string>> built(miss_query.size());
  std::vector<double> built_us(miss_query.size());
  exec::parallel_for(miss_query.size(), [&](std::size_t b) {
    const obs::ObsScope scope(nullptr, nullptr);
    const auto t0 = std::chrono::steady_clock::now();
    built[b] = build_body(batch[miss_query[b]]);
    built_us[b] = micros_since(t0);
  });

  // Phase 3 (serial): commit to the cache in batch order, resolve every
  // miss, account, and run the oracle lane.
  for (std::size_t b = 0; b < miss_query.size(); ++b)
    cache_insert(keys[miss_query[b]], built[b]);
  stats_.unique_bodies_built += static_cast<long long>(miss_query.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ++stats_.queries;
    if (out[i].body) {
      ++stats_.cache_hits;
      lat_hit_.add(out[i].latency_us);
    } else {
      const std::size_t b = miss_of_key.at(keys[i]);
      out[i].cache_hit = false;
      out[i].body = built[b];
      out[i].latency_us = built_us[b];
      ++stats_.cache_misses;
      lat_miss_.add(out[i].latency_us);
    }
    lat_all_.add(out[i].latency_us);
    const int every = scenario_.oracle_check_every;
    if (every > 0 && stats_.queries % every == 0) {
      ++stats_.oracle_checks;
      if (const auto divergence = oracle_check(batch[i], *out[i].body)) {
        ++stats_.oracle_failures;
        if (first_divergence_.empty()) first_divergence_ = *divergence;
      }
    }
  }
  return out;
}

std::optional<std::string> IsoMapService::oracle_check(
    const QueryRequest& request, const std::string& served) const {
  const Shard& s = *shards_[static_cast<std::size_t>(request.shard)];
  // Empty scope: the rebuild's filter/map phases must not pollute the
  // shard's round metrics.
  const obs::ObsScope scope(nullptr, nullptr);
  const std::vector<IsolineReport> reports = s.mapper.post_filter_reports();
  const ContourMap fresh =
      ContourMapBuilder(s.deployment.bounds(), s.options.base.regulation)
          .build(reports, s.isolevels);
  const std::string rebuilt =
      serialize_response(s.name, wire_levels_from_map(fresh, request.levels));
  if (rebuilt == served) return std::nullopt;
  std::ostringstream os;
  os << "deployment \"" << s.name << "\" round " << rounds_done_
     << " levels [";
  for (std::size_t k = 0; k < request.levels.size(); ++k)
    os << (k ? "," : "") << request.levels[k];
  os << "]: served body (" << served.size()
     << " bytes) != fresh rebuild (" << rebuilt.size() << " bytes)";
  return os.str();
}

JsonValue IsoMapService::service_summary(double wall_s) const {
  const auto quantile = [](const SampleSet& set, double q) {
    return set.count() ? set.quantile(q) : 0.0;
  };
  JsonValue j = JsonValue::object();
  j["scenario"] = scenario_.name;
  j["rounds"] = rounds_done_;
  j["shards"] = shard_count();
  j["queries"] = stats_.queries;
  j["cache_hits"] = stats_.cache_hits;
  j["cache_misses"] = stats_.cache_misses;
  j["unique_bodies_built"] = stats_.unique_bodies_built;
  j["hit_rate_pct"] =
      stats_.queries > 0
          ? 100.0 * static_cast<double>(stats_.cache_hits) /
                static_cast<double>(stats_.queries)
          : 0.0;
  j["cache_size"] = cache_.size();
  j["oracle_checks"] = stats_.oracle_checks;
  j["oracle_failures"] = stats_.oracle_failures;
  if (!first_divergence_.empty()) j["first_divergence"] = first_divergence_;
  JsonValue lat = JsonValue::object();
  lat["p50_us"] = quantile(lat_all_, 0.5);
  lat["p99_us"] = quantile(lat_all_, 0.99);
  lat["hit_p50_us"] = quantile(lat_hit_, 0.5);
  lat["hit_p99_us"] = quantile(lat_hit_, 0.99);
  lat["miss_p50_us"] = quantile(lat_miss_, 0.5);
  lat["miss_p99_us"] = quantile(lat_miss_, 0.99);
  j["latency"] = lat;
  j["wall_s"] = wall_s;
  JsonValue per_shard = JsonValue::array();
  for (const auto& shard : shards_) {
    JsonValue sj = JsonValue::object();
    sj["name"] = shard->name;
    sj["nodes"] = shard->deployment.size();
    sj["levels"] = shard->isolevels.size();
    sj["sink_reports"] = shard->mapper.sink_table_size();
    sj["rounds_recorded"] = shard->recorded_rounds.size();
    sj["tx_bytes"] = shard->ledger.total_tx_bytes();
    sj["rx_bytes"] = shard->ledger.total_rx_bytes();
    sj["ops"] = shard->ledger.total_ops();
    per_shard.push_back(std::move(sj));
  }
  j["per_shard"] = std::move(per_shard);
  return j;
}

JsonValue IsoMapService::shard_summary_json(int shard, double wall_s) const {
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  const obs::RunSummary summary = obs::make_run_summary(
      "serve." + s.name, s.metrics, ledger_totals(s.ledger), wall_s);
  return summary.to_json();
}

bool IsoMapService::save_shard_capsule(int shard,
                                       const std::string& path) const {
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  capsule::RunCapsule c;
  c.kind = capsule::RunKind::kContinuous;
  c.label = "serve." + s.name;
  c.config = s.config;
  c.options = s.options.base;
  c.continuous = s.options;
  c.deployment = capsule::DeploymentSnapshot::of(s.deployment);
  c.radio_range = s.radio_range;
  c.sink = s.tree.sink();
  c.rounds = s.recorded_rounds;
  // replay() installs its own scopes; keep the driver's context out.
  const obs::ObsScope scope(nullptr, nullptr);
  const capsule::RunCapsule filled = capsule::replay(c);
  return capsule::save(path, filled);
}

}  // namespace isomap::serve
