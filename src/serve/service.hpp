#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/scenario.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace isomap::capsule {
struct RunCapsule;
}

namespace isomap::serve {

/// One contour query: a shard (by index) and the requested isolevel
/// indices, ascending and unique (normalize_levels() canonicalizes).
struct QueryRequest {
  int shard = 0;
  std::vector<int> levels;
};

/// One served response. `body` is shared with the cache: a hit hands out
/// the cached bytes, a miss the freshly built ones — both the exact
/// serialize_response() output for the shard's current geometry.
struct QueryResponse {
  bool cache_hit = false;
  std::shared_ptr<const std::string> body;
  double latency_us = 0.0;  ///< Measured serve time for this query.
};

/// Service lifetime counters (all deterministic except latency, which is
/// tracked separately as wall-clock samples).
struct ServiceStats {
  long long queries = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long unique_bodies_built = 0;  ///< Misses after per-batch dedup.
  long long oracle_checks = 0;
  long long oracle_failures = 0;
};

/// Iso-Map as a service: N independent deployments hosted as shards, each
/// owning its scenario, ContinuousMapper, ledger and metrics registry.
/// tick() advances every shard one virtual-time mapping round across the
/// exec pool (per-shard ObsScope inside the region body keeps emissions
/// thread-local — the parallel_trials pattern — so results are bitwise
/// thread-count-independent). Queries are answered between ticks from a
/// FIFO response cache keyed by (deployment, isolevel set, per-level
/// round fingerprint); a batch partitions into hits and deduplicated
/// misses, builds the missing bodies in parallel, then commits them to
/// the cache in batch order. See docs/SERVICE.md.
///
/// Not thread-safe externally: one driver thread calls tick()/serve;
/// internal parallelism goes through exec::parallel_for only.
class IsoMapService {
 public:
  explicit IsoMapService(ServiceScenario scenario);
  ~IsoMapService();
  IsoMapService(const IsoMapService&) = delete;
  IsoMapService& operator=(const IsoMapService&) = delete;

  const ServiceScenario& scenario() const { return scenario_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  const std::string& shard_name(int shard) const;
  int find_shard(const std::string& name) const;  ///< -1 when absent.
  int num_levels(int shard) const;
  int rounds_done() const { return rounds_done_; }

  /// Append a shard hosting a recorded continuous run's deployment: the
  /// capsule's deployment snapshot is materialized and its graph/tree
  /// re-derived exactly as replay() does, the mapper runs under the
  /// capsule's stored ContinuousOptions, and tick() feeds the capsule's
  /// stored per-round readings instead of sampling a field (clamped to
  /// the last recorded round past the end). After rounds() ticks the
  /// shard serves maps bitwise-identical to isomap_replay's output for
  /// the same capsule — the golden-compat contract. Returns the new
  /// shard index. Throws std::logic_error after the first tick() and
  /// std::invalid_argument for non-continuous / empty capsules or a
  /// duplicate shard name.
  int attach_capsule_shard(const std::string& name,
                           const capsule::RunCapsule& capsule);

  /// Advance every shard one mapping round (readings sampled from the
  /// shard's drift schedule at the new round index).
  void tick();

  /// Canonicalize request levels in place: sort + dedupe. Returns false
  /// (request unservable) when the shard index or any level index is out
  /// of range, or the set is empty.
  bool normalize_levels(QueryRequest& request) const;

  /// The deterministic query mix for the current tick (scenario
  /// query_mix; a pure function of (mix seed, rounds_done)).
  std::vector<QueryRequest> mix_for_tick() const;

  /// Serve one batch of normalized requests: cache lookups, then one
  /// parallel build pass over the deduplicated misses, then cache commit.
  /// Requires at least one tick() first (fingerprints exist). When the
  /// scenario's oracle_check_every is k > 0, every k-th query (lifetime
  /// count) is re-built from scratch and byte-compared; a divergence is
  /// recorded in stats().oracle_failures and first_divergence().
  std::vector<QueryResponse> serve_batch(
      const std::vector<QueryRequest>& batch);

  /// Adversarial response check: rebuild the request's body with a fresh
  /// ContourMapBuilder pass over the shard's post-filter reports (under
  /// an empty ObsScope — shard metrics stay untouched) and byte-compare
  /// with `served`. Returns a human-readable divergence, or nullopt when
  /// the bytes match.
  std::optional<std::string> oracle_check(const QueryRequest& request,
                                          const std::string& served) const;

  const ServiceStats& stats() const { return stats_; }
  const std::string& first_divergence() const { return first_divergence_; }
  std::size_t cache_size() const { return cache_.size(); }

  /// Latency sample sets (microseconds) over all queries / hits / misses.
  const SampleSet& latency_all() const { return lat_all_; }
  const SampleSet& latency_hits() const { return lat_hit_; }
  const SampleSet& latency_misses() const { return lat_miss_; }

  /// Service-level summary (queries, hit/miss lanes, latency quantiles,
  /// per-shard ledger digests). Deterministic except wall_s/latency.
  JsonValue service_summary(double wall_s) const;

  /// Per-shard RunSummary JSON ("serve.<name>" protocol tag) from the
  /// shard's metrics registry and ledger.
  JsonValue shard_summary_json(int shard, double wall_s) const;

  /// Pin the shard's recorded rounds (capped at kCapsuleRoundsCap) as a
  /// continuous run capsule: inputs are snapshotted, outputs filled by
  /// capsule::replay through the live protocol code, then saved — so
  /// `isomap_inspect --reconcile` and `isomap_replay` cross-check the
  /// service's shards like any golden capsule. False on I/O error.
  bool save_shard_capsule(int shard, const std::string& path) const;

  /// Rounds of readings retained per shard for capsule export; a soak's
  /// memory stays bounded no matter how long it runs.
  static constexpr int kCapsuleRoundsCap = 64;

 private:
  struct Shard;

  std::string cache_key(const QueryRequest& request) const;
  std::shared_ptr<const std::string> build_body(
      const QueryRequest& request) const;
  void cache_insert(std::string key, std::shared_ptr<const std::string> body);

  ServiceScenario scenario_;
  std::vector<std::unique_ptr<Shard>> shards_;
  int rounds_done_ = 0;

  std::unordered_map<std::string, std::shared_ptr<const std::string>> cache_;
  std::deque<std::string> cache_fifo_;  ///< Insertion order, for eviction.

  ServiceStats stats_;
  std::string first_divergence_;
  SampleSet lat_all_;
  SampleSet lat_hit_;
  SampleSet lat_miss_;
};

}  // namespace isomap::serve
