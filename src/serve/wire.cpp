#include "serve/wire.hpp"

#include "util/json.hpp"

namespace isomap::serve {

std::string serialize_response(const std::string& deployment,
                               const std::vector<WireLevel>& levels) {
  std::string out;
  out.reserve(256);
  out += "{\"deployment\":";
  json_escape(out, deployment);
  out += ",\"levels\":[";
  bool first_level = true;
  for (const WireLevel& level : levels) {
    if (!first_level) out += ',';
    first_level = false;
    out += "{\"isolevel\":";
    out += json_number(level.isolevel);
    out += ",\"reports\":";
    out += std::to_string(level.report_count);
    out += ",\"boundaries\":[";
    bool first_chain = true;
    for (const WirePolyline& chain : level.boundaries) {
      if (!first_chain) out += ',';
      first_chain = false;
      out += "{\"closed\":";
      out += chain.closed ? "true" : "false";
      out += ",\"points\":[";
      bool first_point = true;
      for (const Vec2& p : *chain.points) {
        if (!first_point) out += ',';
        first_point = false;
        out += '[';
        out += json_number(p.x);
        out += ',';
        out += json_number(p.y);
        out += ']';
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::vector<WireLevel> wire_levels_from_map(const ContourMap& map,
                                            const std::vector<int>& levels) {
  std::vector<WireLevel> out;
  out.reserve(levels.size());
  for (const int k : levels) {
    const LevelRegion& region = map.region(k);
    WireLevel w;
    w.isolevel = region.isolevel();
    w.report_count = static_cast<int>(region.reports().size());
    w.boundaries.reserve(region.boundaries().size());
    for (const Polyline& chain : region.boundaries())
      w.boundaries.push_back({chain.closed(), &chain.points()});
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<WireLevel> wire_levels_from_contours(
    const std::vector<capsule::LevelContour>& contours,
    const std::vector<int>& levels) {
  std::vector<WireLevel> out;
  out.reserve(levels.size());
  for (const int k : levels) {
    const capsule::LevelContour& lc = contours[static_cast<std::size_t>(k)];
    WireLevel w;
    w.isolevel = lc.isolevel;
    w.report_count = lc.report_count;
    w.boundaries.reserve(lc.boundaries.size());
    for (const capsule::ContourPolyline& chain : lc.boundaries)
      w.boundaries.push_back({chain.closed, &chain.points});
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace isomap::serve
