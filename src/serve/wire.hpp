#pragma once

#include <string>
#include <vector>

#include "isomap/contour_map.hpp"
#include "sim/run_capsule.hpp"

namespace isomap::serve {

/// Borrowed view of one boundary chain for response serialization. The
/// pointed-to points must outlive the serialize_response() call.
struct WirePolyline {
  bool closed = false;
  const std::vector<Vec2>* points = nullptr;
};

/// Borrowed view of one isolevel's served geometry.
struct WireLevel {
  double isolevel = 0.0;
  int report_count = 0;
  std::vector<WirePolyline> boundaries;
};

/// The single serialization path for query-response bodies. Every source
/// of contour geometry — a live ContourMap (fresh build or cache fill),
/// the oracle's ContourMapBuilder rebuild, a replayed capsule's stored
/// LevelContours — funnels through this function, so "bitwise-identical
/// responses" reduces to "identical WireLevel inputs": json_number emits
/// the shortest round-trip form, making byte equality equivalent to bit
/// equality of the underlying doubles. The body deliberately excludes
/// the round number and fingerprints — bytes must not depend on *when*
/// a response was built, only on the geometry it describes.
///
/// Format (one line, no whitespace):
///   {"deployment":"<name>","levels":[{"isolevel":N,"reports":N,
///    "boundaries":[{"closed":B,"points":[[x,y],...]},...]},...]}
std::string serialize_response(const std::string& deployment,
                               const std::vector<WireLevel>& levels);

/// WireLevels for the requested level indices (ascending, in range) of a
/// live map: reports = the level's post-filter report count, boundaries =
/// the LevelRegion's estimated isolines.
std::vector<WireLevel> wire_levels_from_map(const ContourMap& map,
                                            const std::vector<int>& levels);

/// WireLevels for the requested level indices of a capsule's stored
/// per-level contours (capsule::extract_contours output) — the
/// golden-compat path: a capsule replayed by isomap_replay serializes to
/// the same bytes the service serves for the same deployment state.
std::vector<WireLevel> wire_levels_from_contours(
    const std::vector<capsule::LevelContour>& contours,
    const std::vector<int>& levels);

}  // namespace isomap::serve
