#include "sim/run_capsule.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "sim/runners.hpp"

namespace isomap::capsule {
namespace {

/// Section tags of the run-capsule schema (container-level detail; the
/// public surface is RunCapsule). New sections get new tags — never
/// reuse a retired one.
enum Tag : std::uint64_t {
  kMetaTag = 1,
  kConfigTag = 2,
  kOptionsTag = 3,
  kContinuousTag = 4,
  kDeploymentTag = 5,
  kFaultPlanTag = 6,
  kReadingsTag = 7,
  kSingleOutputsTag = 8,
  kRoundOutputsTag = 9,
  kFinalMapTag = 10,
  kTelemetryTag = 11,
  kLinkImpairTag = 12,
};

/// Decode-time sanity caps: far above any real run, low enough that a
/// corrupt count cannot drive a multi-gigabyte allocation.
constexpr std::size_t kMaxNodes = 1u << 22;
constexpr std::size_t kMaxRounds = 1u << 20;
constexpr std::size_t kMaxItems = 1u << 26;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void put_vec2(Writer& w, Vec2 v) {
  w.put_f64(v.x);
  w.put_f64(v.y);
}

Vec2 get_vec2(Reader& r) {
  Vec2 v;
  v.x = r.get_f64();
  v.y = r.get_f64();
  return v;
}

void put_report(Writer& w, const IsolineReport& report) {
  w.put_f64(report.isolevel);
  put_vec2(w, report.position);
  put_vec2(w, report.gradient);
  w.put_i64(report.source);
}

IsolineReport get_report(Reader& r) {
  IsolineReport report;
  report.isolevel = r.get_f64();
  report.position = get_vec2(r);
  report.gradient = get_vec2(r);
  report.source = static_cast<int>(r.get_i64());
  return report;
}

void put_ledger(Writer& w, const obs::LedgerTotals& t) {
  w.put_i64(t.nodes);
  w.put_f64(t.tx_bytes);
  w.put_f64(t.rx_bytes);
  w.put_f64(t.ops);
  w.put_f64(t.mean_ops);
  w.put_f64(t.max_ops);
}

obs::LedgerTotals get_ledger(Reader& r) {
  obs::LedgerTotals t;
  t.nodes = static_cast<int>(r.get_i64());
  t.tx_bytes = r.get_f64();
  t.rx_bytes = r.get_f64();
  t.ops = r.get_f64();
  t.mean_ops = r.get_f64();
  t.max_ops = r.get_f64();
  return t;
}

void put_contours(Writer& w, const std::vector<LevelContour>& contours) {
  w.put_u64(contours.size());
  for (const LevelContour& lc : contours) {
    w.put_f64(lc.isolevel);
    w.put_i64(lc.report_count);
    w.put_u64(lc.boundaries.size());
    for (const auto& polyline : lc.boundaries) {
      w.put_bool(polyline.closed);
      w.put_u64(polyline.points.size());
      for (Vec2 p : polyline.points) put_vec2(w, p);
    }
  }
}

std::vector<LevelContour> get_contours(Reader& r) {
  std::vector<LevelContour> contours(r.get_count(kMaxItems, 10));
  for (LevelContour& lc : contours) {
    lc.isolevel = r.get_f64();
    lc.report_count = static_cast<int>(r.get_i64());
    lc.boundaries.resize(r.get_count(kMaxItems, 2));
    for (auto& polyline : lc.boundaries) {
      polyline.closed = r.get_bool();
      polyline.points.resize(r.get_count(kMaxItems, 16));
      for (Vec2& p : polyline.points) p = get_vec2(r);
    }
  }
  return contours;
}

/// Throws unless the section payload was consumed exactly — a decoded
/// section with trailing bytes means schema skew or corruption.
void expect_done(Reader& r, const char* section) {
  if (!r.done())
    throw CapsuleError(std::string(section) + " section has " +
                       std::to_string(r.remaining()) + " trailing bytes");
}

const Section& require(const Capsule& c, std::uint64_t tag,
                       const char* name) {
  const Section* s = c.find(tag);
  if (s == nullptr)
    throw CapsuleError(std::string("missing required section ") + name);
  return *s;
}

std::vector<LevelContour> extract_contours(const ContourMap& map) {
  std::vector<LevelContour> out;
  out.reserve(static_cast<std::size_t>(map.level_count()));
  for (int k = 0; k < map.level_count(); ++k) {
    const LevelRegion& region = map.region(k);
    LevelContour lc;
    lc.isolevel = region.isolevel();
    lc.report_count = static_cast<int>(region.reports().size());
    lc.boundaries.reserve(region.boundaries().size());
    for (const Polyline& p : region.boundaries())
      lc.boundaries.push_back({p.closed(), p.points()});
    out.push_back(std::move(lc));
  }
  return out;
}

/// Inputs rebuilt from a capsule: the deployment snapshot materialized,
/// then the graph and tree re-derived exactly as make_scenario derives
/// them (both constructions are deterministic — see net/routing_tree.hpp).
struct Rebuilt {
  Deployment deployment;
  CommGraph graph;
  RoutingTree tree;

  explicit Rebuilt(const RunCapsule& c)
      : deployment(c.deployment.materialize()),
        graph(deployment, c.radio_range),
        tree(graph, c.sink) {}
};

void check_readings(const RunCapsule& c) {
  if (c.rounds.empty())
    throw CapsuleError("capsule holds no readings rounds");
  if (c.kind == RunKind::kSingleShot && c.rounds.size() != 1)
    throw CapsuleError("single-shot capsule must hold exactly one round");
  for (const auto& round : c.rounds)
    if (round.size() != c.deployment.nodes.size())
      throw CapsuleError("readings round size " +
                         std::to_string(round.size()) +
                         " does not match deployment size " +
                         std::to_string(c.deployment.nodes.size()));
}

SingleShotOutputs execute_single_shot(
    const RunCapsule& c, obs::TraceSink* trace,
    std::optional<obs::NodeTelemetrySnapshot>* telemetry_out = nullptr) {
  const Rebuilt in(c);
  Ledger ledger(in.deployment.size());
  obs::MetricsRegistry metrics;
  obs::NodeTelemetry telemetry(in.deployment.size());
  const IsoMapResult result = [&] {
    const obs::ObsScope scope(&metrics, trace, &telemetry);
    const IsoMapProtocol protocol(c.options);
    return protocol.run(c.rounds.front(), in.deployment, in.graph, in.tree,
                        ledger);
  }();
  if (telemetry_out != nullptr) *telemetry_out = telemetry.snapshot();
  SingleShotOutputs out;
  out.isoline_node_count = result.isoline_node_count;
  out.generated_reports = result.generated_reports;
  out.delivered_reports = result.delivered_reports;
  out.filtered_reports = result.filtered_reports;
  out.lost_channel_reports = result.lost_channel_reports;
  out.lost_crash_reports = result.lost_crash_reports;
  out.crashed_nodes = result.crashed_nodes;
  out.route_repairs = result.route_repairs;
  out.repair_traffic_bytes = result.repair_traffic_bytes;
  out.report_traffic_bytes = result.report_traffic_bytes;
  out.measurement_traffic_bytes = result.measurement_traffic_bytes;
  out.dissemination_traffic_bytes = result.dissemination_traffic_bytes;
  out.bottleneck_bytes = result.bottleneck_bytes;
  out.e2e_first_latency_s = result.e2e_first_latency_s;
  out.e2e_last_latency_s = result.e2e_last_latency_s;
  out.e2e_mean_latency_s = result.e2e_mean_latency_s;
  out.sink_reports = result.sink_reports;
  out.contours = extract_contours(result.map);
  out.ledger = ledger_totals(ledger);
  out.summary_json = normalized_summary_json(
      obs::make_run_summary("isomap", metrics, out.ledger, 0.0, 0));
  return out;
}

void execute_continuous(
    const RunCapsule& c, obs::TraceSink* trace,
    std::vector<RoundOutputs>& rounds_out,
    std::vector<LevelContour>& final_contours, std::string& final_summary,
    std::optional<obs::NodeTelemetrySnapshot>* telemetry_out = nullptr) {
  const Rebuilt in(c);
  ContinuousOptions opts = c.continuous;
  opts.base = c.options;
  ContinuousMapper mapper(opts, in.deployment, in.graph, in.tree);
  Ledger ledger(in.deployment.size());
  // One flight-recorder table across every round, mirroring the one
  // ledger: charges accumulate like the ledger's own arrays do. Hop
  // distances come from the initial tree (the continuous engines never
  // rewire it mid-capsule).
  obs::NodeTelemetry telemetry(in.deployment.size());
  for (int v = 0; v < in.deployment.size(); ++v)
    telemetry.set_hops(v, in.tree.level(v));
  rounds_out.clear();
  rounds_out.reserve(c.rounds.size());
  for (std::size_t r = 0; r < c.rounds.size(); ++r) {
    obs::MetricsRegistry metrics;
    const RoundResult result = [&] {
      const obs::ObsScope scope(&metrics, trace, &telemetry);
      return mapper.round(c.rounds[r], ledger);
    }();
    RoundOutputs out;
    out.adds = result.adds;
    out.refreshes = result.refreshes;
    out.withdrawals = result.withdrawals;
    out.suppressed = result.suppressed;
    out.keepalives = result.keepalives;
    out.expired = result.expired;
    out.active_reports = result.active_reports;
    out.delta_traffic_bytes = result.delta_traffic_bytes;
    out.beacon_traffic_bytes = result.beacon_traffic_bytes;
    out.sink = mapper.sink_dump();
    out.ledger = ledger_totals(ledger);
    rounds_out.push_back(std::move(out));
    if (r + 1 == c.rounds.size()) {
      final_contours = extract_contours(result.map);
      final_summary = normalized_summary_json(obs::make_run_summary(
          "continuous", metrics, ledger_totals(ledger), 0.0, 0));
    }
  }
  if (telemetry_out != nullptr) *telemetry_out = telemetry.snapshot();
}

std::string encode_telemetry(const obs::NodeTelemetrySnapshot& t) {
  Writer w;
  const auto n = static_cast<std::size_t>(t.size());
  w.put_u64(n);
  for (double v : t.tx_bytes) w.put_f64(v);
  for (double v : t.rx_bytes) w.put_f64(v);
  for (double v : t.ops) w.put_f64(v);
  for (int v : t.hops) w.put_i64(v);
  for (long long v : t.generated) w.put_i64(v);
  for (long long v : t.delivered) w.put_i64(v);
  for (long long v : t.filtered) w.put_i64(v);
  for (long long v : t.lost_channel) w.put_i64(v);
  for (long long v : t.lost_crash) w.put_i64(v);
  for (long long v : t.relayed) w.put_i64(v);
  for (long long v : t.retries) w.put_i64(v);
  for (long long v : t.drops) w.put_i64(v);
  w.put_f64(t.energy.tx_j_per_byte);
  w.put_f64(t.energy.rx_j_per_byte);
  w.put_f64(t.energy.j_per_op);
  // Per-phase lanes stay out of the capsule on purpose: they are derived
  // observability detail, and omitting them keeps the section a fixed
  // 12-array schema. The link-impairment counters ride *after* the
  // energy triple so pre-impairment readers (which stop at the triple)
  // never see them, and pre-impairment capsules decode with the guarded
  // tail below.
  for (long long v : t.dup_rx) w.put_i64(v);
  for (long long v : t.corrupt_rx) w.put_i64(v);
  for (long long v : t.arq_timeouts) w.put_i64(v);
  return w.take();
}

void decode_telemetry(Reader r, obs::NodeTelemetrySnapshot& t) {
  const std::size_t n = r.get_count(kMaxNodes, 12);
  t.tx_bytes.resize(n);
  t.rx_bytes.resize(n);
  t.ops.resize(n);
  t.hops.resize(n);
  t.generated.resize(n);
  t.delivered.resize(n);
  t.filtered.resize(n);
  t.lost_channel.resize(n);
  t.lost_crash.resize(n);
  t.relayed.resize(n);
  t.retries.resize(n);
  t.drops.resize(n);
  for (double& v : t.tx_bytes) v = r.get_f64();
  for (double& v : t.rx_bytes) v = r.get_f64();
  for (double& v : t.ops) v = r.get_f64();
  for (int& v : t.hops) v = static_cast<int>(r.get_i64());
  for (long long& v : t.generated) v = r.get_i64();
  for (long long& v : t.delivered) v = r.get_i64();
  for (long long& v : t.filtered) v = r.get_i64();
  for (long long& v : t.lost_channel) v = r.get_i64();
  for (long long& v : t.lost_crash) v = r.get_i64();
  for (long long& v : t.relayed) v = r.get_i64();
  for (long long& v : t.retries) v = r.get_i64();
  for (long long& v : t.drops) v = r.get_i64();
  t.energy.tx_j_per_byte = r.get_f64();
  t.energy.rx_j_per_byte = r.get_f64();
  t.energy.j_per_op = r.get_f64();
  // Impairment counters: absent in pre-impairment capsules, where the
  // vectors stay empty. diff_telemetry treats an empty array as n zeros,
  // so such capsules still compare clean against fresh replays (which
  // always fill the arrays — with zeros on an unimpaired run).
  if (!r.done()) {
    t.dup_rx.resize(n);
    t.corrupt_rx.resize(n);
    t.arq_timeouts.resize(n);
    for (long long& v : t.dup_rx) v = r.get_i64();
    for (long long& v : t.corrupt_rx) v = r.get_i64();
    for (long long& v : t.arq_timeouts) v = r.get_i64();
  }
  expect_done(r, "telemetry");
}

// --- Section payload encode/decode ------------------------------------

std::string encode_meta(const RunCapsule& c) {
  Writer w;
  w.put_u64(kRunSchemaVersion);
  w.put_u64(static_cast<std::uint64_t>(c.kind));
  w.put_string(c.label);
  return w.take();
}

void decode_meta(Reader r, RunCapsule& c) {
  const std::uint64_t schema = r.get_u64();
  if (schema == 0 || schema > kRunSchemaVersion)
    throw CapsuleError("unsupported run schema version " +
                       std::to_string(schema));
  const std::uint64_t kind = r.get_u64();
  if (kind > 1) throw CapsuleError("unknown run kind");
  c.kind = static_cast<RunKind>(kind);
  c.label = r.get_string();
  expect_done(r, "meta");
}

std::string encode_config(const ScenarioConfig& s) {
  Writer w;
  w.put_i64(s.num_nodes);
  w.put_f64(s.field_side);
  w.put_f64(s.radio_range);
  w.put_bool(s.grid_deployment);
  w.put_f64(s.failure_fraction);
  w.put_u64(static_cast<std::uint64_t>(s.field));
  w.put_i64(s.random_field_bumps);
  w.put_f64(s.random_field_amplitude);
  w.put_u64(s.seed);
  w.put_f64(s.sink_fx);
  w.put_f64(s.sink_fy);
  w.put_f64(s.reading_noise_std);
  w.put_f64(s.position_error_std);
  return w.take();
}

void decode_config(Reader r, ScenarioConfig& s) {
  s.num_nodes = static_cast<int>(r.get_i64());
  s.field_side = r.get_f64();
  s.radio_range = r.get_f64();
  s.grid_deployment = r.get_bool();
  s.failure_fraction = r.get_f64();
  const std::uint64_t field = r.get_u64();
  if (field > static_cast<std::uint64_t>(FieldKind::kSloped))
    throw CapsuleError("unknown field kind");
  s.field = static_cast<FieldKind>(field);
  s.random_field_bumps = static_cast<int>(r.get_i64());
  s.random_field_amplitude = r.get_f64();
  s.seed = r.get_u64();
  s.sink_fx = r.get_f64();
  s.sink_fy = r.get_f64();
  s.reading_noise_std = r.get_f64();
  s.position_error_std = r.get_f64();
  expect_done(r, "config");
}

std::string encode_options(const IsoMapOptions& o) {
  Writer w;
  const ContourQuery& q = o.query;
  w.put_f64(q.lambda_lo);
  w.put_f64(q.lambda_hi);
  w.put_f64(q.granularity);
  w.put_f64(q.epsilon_fraction);
  w.put_f64(q.angular_separation_deg);
  w.put_f64(q.distance_separation);
  w.put_bool(q.enable_filtering);
  w.put_i64(q.regression_hops);
  w.put_u64(static_cast<std::uint64_t>(o.regulation));
  w.put_bool(o.account_local_measurement);
  w.put_bool(o.account_query_dissemination);
  w.put_f64(o.header_bytes);
  w.put_f64(o.link_loss);
  w.put_i64(o.link_retries);
  w.put_u64(o.link_seed);
  w.put_bool(o.link_burst.has_value());
  if (o.link_burst) {
    w.put_f64(o.link_burst->p_enter_burst);
    w.put_f64(o.link_burst->p_exit_burst);
    w.put_f64(o.link_burst->loss_good);
    w.put_f64(o.link_burst->loss_bad);
  }
  const FaultConfig& f = o.fault;
  w.put_f64(f.crash_fraction);
  w.put_f64(f.crash_window_begin);
  w.put_f64(f.crash_window_end);
  w.put_bool(f.blackout);
  put_vec2(w, f.blackout_center);
  w.put_f64(f.blackout_radius);
  w.put_f64(f.blackout_time);
  w.put_u64(f.seed);
  w.put_bool(f.self_healing);
  w.put_bool(o.record_transmissions);
  w.put_bool(o.adaptive_epsilon);
  return w.take();
}

void decode_options(Reader r, IsoMapOptions& o) {
  ContourQuery& q = o.query;
  q.lambda_lo = r.get_f64();
  q.lambda_hi = r.get_f64();
  q.granularity = r.get_f64();
  q.epsilon_fraction = r.get_f64();
  q.angular_separation_deg = r.get_f64();
  q.distance_separation = r.get_f64();
  q.enable_filtering = r.get_bool();
  q.regression_hops = static_cast<int>(r.get_i64());
  const std::uint64_t regulation = r.get_u64();
  if (regulation > static_cast<std::uint64_t>(RegulationMode::kBlended))
    throw CapsuleError("unknown regulation mode");
  o.regulation = static_cast<RegulationMode>(regulation);
  o.account_local_measurement = r.get_bool();
  o.account_query_dissemination = r.get_bool();
  o.header_bytes = r.get_f64();
  o.link_loss = r.get_f64();
  o.link_retries = static_cast<int>(r.get_i64());
  o.link_seed = r.get_u64();
  if (r.get_bool()) {
    GilbertElliottParams burst;
    burst.p_enter_burst = r.get_f64();
    burst.p_exit_burst = r.get_f64();
    burst.loss_good = r.get_f64();
    burst.loss_bad = r.get_f64();
    o.link_burst = burst;
  } else {
    o.link_burst.reset();
  }
  FaultConfig& f = o.fault;
  f.crash_fraction = r.get_f64();
  f.crash_window_begin = r.get_f64();
  f.crash_window_end = r.get_f64();
  f.blackout = r.get_bool();
  f.blackout_center = get_vec2(r);
  f.blackout_radius = r.get_f64();
  f.blackout_time = r.get_f64();
  f.seed = r.get_u64();
  f.self_healing = r.get_bool();
  o.record_transmissions = r.get_bool();
  o.adaptive_epsilon = r.get_bool();
  expect_done(r, "options");
}

/// Link impairment + ARQ configuration (tag 12, optional — present only
/// when options.link_impair is set, so pre-impairment capsules and
/// unimpaired runs carry byte-identical sections).
std::string encode_link_impair(const ImpairmentConfig& impair,
                               const ArqConfig& arq) {
  Writer w;
  w.put_f64(impair.latency_s);
  w.put_f64(impair.jitter_s);
  w.put_f64(impair.dup_prob);
  w.put_f64(impair.reorder_prob);
  w.put_f64(impair.reorder_extra_s);
  w.put_f64(impair.corrupt_prob);
  w.put_i64(arq.window);
  w.put_f64(arq.frame_payload_bytes);
  w.put_f64(arq.timeout_s);
  w.put_f64(arq.backoff_factor);
  w.put_f64(arq.max_timeout_s);
  w.put_i64(arq.max_frame_attempts);
  return w.take();
}

void decode_link_impair(Reader r, IsoMapOptions& o) {
  ImpairmentConfig impair;
  impair.latency_s = r.get_f64();
  impair.jitter_s = r.get_f64();
  impair.dup_prob = r.get_f64();
  impair.reorder_prob = r.get_f64();
  impair.reorder_extra_s = r.get_f64();
  impair.corrupt_prob = r.get_f64();
  o.link_arq.window = static_cast<int>(r.get_i64());
  o.link_arq.frame_payload_bytes = r.get_f64();
  o.link_arq.timeout_s = r.get_f64();
  o.link_arq.backoff_factor = r.get_f64();
  o.link_arq.max_timeout_s = r.get_f64();
  o.link_arq.max_frame_attempts = static_cast<int>(r.get_i64());
  o.link_impair = impair;
  expect_done(r, "link_impair");
}

std::string encode_continuous(const ContinuousOptions& o) {
  Writer w;
  w.put_f64(o.gradient_refresh_deg);
  w.put_f64(o.withdraw_bytes);
  w.put_f64(o.beacon_bytes);
  w.put_i64(o.stale_rounds);
  w.put_u64(static_cast<std::uint64_t>(o.engine));
  return w.take();
}

void decode_continuous(Reader r, ContinuousOptions& o) {
  o.gradient_refresh_deg = r.get_f64();
  o.withdraw_bytes = r.get_f64();
  o.beacon_bytes = r.get_f64();
  o.stale_rounds = static_cast<int>(r.get_i64());
  const std::uint64_t engine = r.get_u64();
  if (engine > static_cast<std::uint64_t>(ContinuousEngine::kIncremental))
    throw CapsuleError("unknown continuous engine");
  o.engine = static_cast<ContinuousEngine>(engine);
  expect_done(r, "continuous");
}

std::string encode_deployment(const RunCapsule& c) {
  Writer w;
  const DeploymentSnapshot& d = c.deployment;
  w.put_f64(d.bounds.x0);
  w.put_f64(d.bounds.y0);
  w.put_f64(d.bounds.x1);
  w.put_f64(d.bounds.y1);
  w.put_f64(c.radio_range);
  w.put_i64(c.sink);
  w.put_u64(d.nodes.size());
  for (const auto& node : d.nodes) {
    put_vec2(w, node.pos);
    w.put_bool(node.alive);
    w.put_bool(node.believed.has_value());
    if (node.believed) put_vec2(w, *node.believed);
  }
  return w.take();
}

void decode_deployment(Reader r, RunCapsule& c) {
  DeploymentSnapshot& d = c.deployment;
  d.bounds.x0 = r.get_f64();
  d.bounds.y0 = r.get_f64();
  d.bounds.x1 = r.get_f64();
  d.bounds.y1 = r.get_f64();
  c.radio_range = r.get_f64();
  c.sink = static_cast<int>(r.get_i64());
  d.nodes.resize(r.get_count(kMaxNodes, 18));
  for (auto& node : d.nodes) {
    node.pos = get_vec2(r);
    node.alive = r.get_bool();
    if (r.get_bool())
      node.believed = get_vec2(r);
    else
      node.believed.reset();
  }
  if (c.sink < 0 || static_cast<std::size_t>(c.sink) >= d.nodes.size())
    throw CapsuleError("sink id out of range");
  expect_done(r, "deployment");
}

std::string encode_fault_plan(const FaultPlan& plan) {
  Writer w;
  w.put_u64(plan.size());
  for (const FaultEvent& e : plan.events()) {
    w.put_f64(e.time);
    w.put_u64(static_cast<std::uint64_t>(e.kind));
    w.put_i64(e.node);
    put_vec2(w, e.center);
    w.put_f64(e.radius);
  }
  return w.take();
}

void decode_fault_plan(Reader r, FaultPlan& plan) {
  const std::size_t count = r.get_count(kMaxItems, 10);
  for (std::size_t i = 0; i < count; ++i) {
    FaultEvent e;
    e.time = r.get_f64();
    const std::uint64_t kind = r.get_u64();
    if (kind > static_cast<std::uint64_t>(FaultKind::kRegionBlackout))
      throw CapsuleError("unknown fault kind");
    e.kind = static_cast<FaultKind>(kind);
    e.node = static_cast<int>(r.get_i64());
    e.center = get_vec2(r);
    e.radius = r.get_f64();
    if (!(e.time >= 0.0 && e.time <= 1.0) || !(e.radius >= 0.0))
      throw CapsuleError("fault event out of range");
    plan.add(e);
  }
  expect_done(r, "fault_plan");
}

std::string encode_readings(const std::vector<std::vector<double>>& rounds) {
  Writer w;
  w.put_u64(rounds.size());
  for (const auto& round : rounds) {
    w.put_u64(round.size());
    for (double v : round) w.put_f64(v);
  }
  return w.take();
}

void decode_readings(Reader r, std::vector<std::vector<double>>& rounds) {
  rounds.resize(r.get_count(kMaxRounds, 1));
  for (auto& round : rounds) {
    round.resize(r.get_count(kMaxNodes, 8));
    for (double& v : round) v = r.get_f64();
  }
  expect_done(r, "readings");
}

std::string encode_single_outputs(const SingleShotOutputs& o) {
  Writer w;
  w.put_i64(o.isoline_node_count);
  w.put_i64(o.generated_reports);
  w.put_i64(o.delivered_reports);
  w.put_i64(o.filtered_reports);
  w.put_i64(o.lost_channel_reports);
  w.put_i64(o.lost_crash_reports);
  w.put_i64(o.crashed_nodes);
  w.put_i64(o.route_repairs);
  w.put_f64(o.repair_traffic_bytes);
  w.put_f64(o.report_traffic_bytes);
  w.put_f64(o.measurement_traffic_bytes);
  w.put_f64(o.dissemination_traffic_bytes);
  w.put_f64(o.bottleneck_bytes);
  w.put_u64(o.sink_reports.size());
  for (const auto& report : o.sink_reports) put_report(w, report);
  put_contours(w, o.contours);
  put_ledger(w, o.ledger);
  w.put_string(o.summary_json);
  // Impairment latency tail: appended after every original field so
  // pre-impairment readers stop cleanly before it, and pre-impairment
  // capsules decode with the guarded tail below (fields default to 0.0,
  // matching an unimpaired fresh replay bit for bit).
  w.put_f64(o.e2e_first_latency_s);
  w.put_f64(o.e2e_last_latency_s);
  w.put_f64(o.e2e_mean_latency_s);
  return w.take();
}

void decode_single_outputs(Reader r, SingleShotOutputs& o) {
  o.isoline_node_count = static_cast<int>(r.get_i64());
  o.generated_reports = static_cast<int>(r.get_i64());
  o.delivered_reports = static_cast<int>(r.get_i64());
  o.filtered_reports = static_cast<int>(r.get_i64());
  o.lost_channel_reports = static_cast<int>(r.get_i64());
  o.lost_crash_reports = static_cast<int>(r.get_i64());
  o.crashed_nodes = static_cast<int>(r.get_i64());
  o.route_repairs = static_cast<int>(r.get_i64());
  o.repair_traffic_bytes = r.get_f64();
  o.report_traffic_bytes = r.get_f64();
  o.measurement_traffic_bytes = r.get_f64();
  o.dissemination_traffic_bytes = r.get_f64();
  o.bottleneck_bytes = r.get_f64();
  o.sink_reports.resize(r.get_count(kMaxItems, 40));
  for (auto& report : o.sink_reports) report = get_report(r);
  o.contours = get_contours(r);
  o.ledger = get_ledger(r);
  o.summary_json = r.get_string();
  if (!r.done()) {
    o.e2e_first_latency_s = r.get_f64();
    o.e2e_last_latency_s = r.get_f64();
    o.e2e_mean_latency_s = r.get_f64();
  }
  expect_done(r, "single_outputs");
}

std::string encode_round_outputs(const std::vector<RoundOutputs>& rounds) {
  Writer w;
  w.put_u64(rounds.size());
  for (const RoundOutputs& o : rounds) {
    w.put_i64(o.adds);
    w.put_i64(o.refreshes);
    w.put_i64(o.withdrawals);
    w.put_i64(o.suppressed);
    w.put_i64(o.keepalives);
    w.put_i64(o.expired);
    w.put_i64(o.active_reports);
    w.put_f64(o.delta_traffic_bytes);
    w.put_f64(o.beacon_traffic_bytes);
    w.put_u64(o.sink.size());
    for (const auto& entry : o.sink) {
      w.put_i64(entry.node);
      w.put_i64(entry.level);
      w.put_i64(entry.last_update);
      put_report(w, entry.report);
    }
    put_ledger(w, o.ledger);
  }
  return w.take();
}

void decode_round_outputs(Reader r, std::vector<RoundOutputs>& rounds) {
  rounds.resize(r.get_count(kMaxRounds, 24));
  for (RoundOutputs& o : rounds) {
    o.adds = static_cast<int>(r.get_i64());
    o.refreshes = static_cast<int>(r.get_i64());
    o.withdrawals = static_cast<int>(r.get_i64());
    o.suppressed = static_cast<int>(r.get_i64());
    o.keepalives = static_cast<int>(r.get_i64());
    o.expired = static_cast<int>(r.get_i64());
    o.active_reports = static_cast<int>(r.get_i64());
    o.delta_traffic_bytes = r.get_f64();
    o.beacon_traffic_bytes = r.get_f64();
    o.sink.resize(r.get_count(kMaxItems, 42));
    for (auto& entry : o.sink) {
      entry.node = static_cast<int>(r.get_i64());
      entry.level = static_cast<int>(r.get_i64());
      entry.last_update = static_cast<int>(r.get_i64());
      entry.report = get_report(r);
    }
    o.ledger = get_ledger(r);
  }
  expect_done(r, "round_outputs");
}

std::string encode_final_map(const RunCapsule& c) {
  Writer w;
  put_contours(w, c.final_contours);
  w.put_string(c.final_summary_json);
  return w.take();
}

void decode_final_map(Reader r, RunCapsule& c) {
  c.final_contours = get_contours(r);
  c.final_summary_json = r.get_string();
  expect_done(r, "final_map");
}

// --- Structured output diffing -----------------------------------------

/// Collects the first mismatch; all eq_* helpers are no-ops once one is
/// found, so comparisons read as straight-line code.
class DiffFinder {
 public:
  void eq_i(const std::string& where, long long stored, long long fresh) {
    if (found_ || stored == fresh) return;
    found_ = OutputDiff{where, "stored=" + std::to_string(stored) +
                                   " recomputed=" + std::to_string(fresh)};
  }
  void eq_f(const std::string& where, double stored, double fresh) {
    if (found_ || bits(stored) == bits(fresh)) return;
    std::ostringstream os;
    os.precision(17);
    os << "stored=" << stored << " recomputed=" << fresh << " (bits 0x"
       << std::hex << bits(stored) << " vs 0x" << bits(fresh) << ")";
    found_ = OutputDiff{where, os.str()};
  }
  void eq_s(const std::string& where, const std::string& stored,
            const std::string& fresh) {
    if (found_ || stored == fresh) return;
    std::size_t at = 0;
    while (at < stored.size() && at < fresh.size() && stored[at] == fresh[at])
      ++at;
    found_ = OutputDiff{where, "strings diverge at byte " +
                                   std::to_string(at) + " (stored " +
                                   std::to_string(stored.size()) +
                                   " bytes, recomputed " +
                                   std::to_string(fresh.size()) + ")"};
  }
  bool done() const { return found_.has_value(); }
  const std::optional<OutputDiff>& result() const { return found_; }

 private:
  std::optional<OutputDiff> found_;
};

void diff_reports(DiffFinder& d, const std::string& where,
                  const std::vector<IsolineReport>& stored,
                  const std::vector<IsolineReport>& fresh) {
  d.eq_i(where + ".count", static_cast<long long>(stored.size()),
         static_cast<long long>(fresh.size()));
  for (std::size_t i = 0; i < stored.size() && !d.done(); ++i) {
    const std::string at = where + "[" + std::to_string(i) + "]";
    d.eq_f(at + ".isolevel", stored[i].isolevel, fresh[i].isolevel);
    d.eq_f(at + ".position.x", stored[i].position.x, fresh[i].position.x);
    d.eq_f(at + ".position.y", stored[i].position.y, fresh[i].position.y);
    d.eq_f(at + ".gradient.x", stored[i].gradient.x, fresh[i].gradient.x);
    d.eq_f(at + ".gradient.y", stored[i].gradient.y, fresh[i].gradient.y);
    d.eq_i(at + ".source", stored[i].source, fresh[i].source);
  }
}

void diff_contours(DiffFinder& d, const std::string& where,
                   const std::vector<LevelContour>& stored,
                   const std::vector<LevelContour>& fresh) {
  d.eq_i(where + ".levels", static_cast<long long>(stored.size()),
         static_cast<long long>(fresh.size()));
  for (std::size_t k = 0; k < stored.size() && !d.done(); ++k) {
    const std::string at = where + "[" + std::to_string(k) + "]";
    d.eq_f(at + ".isolevel", stored[k].isolevel, fresh[k].isolevel);
    d.eq_i(at + ".report_count", stored[k].report_count,
           fresh[k].report_count);
    d.eq_i(at + ".polylines", static_cast<long long>(stored[k].boundaries.size()),
           static_cast<long long>(fresh[k].boundaries.size()));
    for (std::size_t p = 0; p < stored[k].boundaries.size() && !d.done();
         ++p) {
      const auto& sp = stored[k].boundaries[p];
      const auto& fp = fresh[k].boundaries[p];
      const std::string pl = at + ".polyline[" + std::to_string(p) + "]";
      d.eq_i(pl + ".closed", sp.closed ? 1 : 0, fp.closed ? 1 : 0);
      d.eq_i(pl + ".points", static_cast<long long>(sp.points.size()),
             static_cast<long long>(fp.points.size()));
      for (std::size_t q = 0; q < sp.points.size() && !d.done(); ++q) {
        const std::string pt = pl + "[" + std::to_string(q) + "]";
        d.eq_f(pt + ".x", sp.points[q].x, fp.points[q].x);
        d.eq_f(pt + ".y", sp.points[q].y, fp.points[q].y);
      }
    }
  }
}

void diff_telemetry(DiffFinder& d, const obs::NodeTelemetrySnapshot& stored,
                    const obs::NodeTelemetrySnapshot& fresh) {
  d.eq_i("telemetry.nodes", stored.size(), fresh.size());
  if (d.done()) return;
  const auto per_f64 = [&](const char* field,
                           const std::vector<double>& s,
                           const std::vector<double>& f) {
    for (std::size_t i = 0; i < s.size() && !d.done(); ++i)
      d.eq_f("telemetry." + std::string(field) + "[" + std::to_string(i) +
                 "]",
             s[i], f[i]);
  };
  const auto per_i64 = [&](const char* field,
                           const std::vector<long long>& s,
                           const std::vector<long long>& f) {
    for (std::size_t i = 0; i < s.size() && !d.done(); ++i)
      d.eq_i("telemetry." + std::string(field) + "[" + std::to_string(i) +
                 "]",
             s[i], f[i]);
  };
  per_f64("tx_bytes", stored.tx_bytes, fresh.tx_bytes);
  per_f64("rx_bytes", stored.rx_bytes, fresh.rx_bytes);
  per_f64("ops", stored.ops, fresh.ops);
  for (std::size_t i = 0; i < stored.hops.size() && !d.done(); ++i)
    d.eq_i("telemetry.hops[" + std::to_string(i) + "]", stored.hops[i],
           fresh.hops[i]);
  per_i64("generated", stored.generated, fresh.generated);
  per_i64("delivered", stored.delivered, fresh.delivered);
  per_i64("filtered", stored.filtered, fresh.filtered);
  per_i64("lost_channel", stored.lost_channel, fresh.lost_channel);
  per_i64("lost_crash", stored.lost_crash, fresh.lost_crash);
  per_i64("relayed", stored.relayed, fresh.relayed);
  per_i64("retries", stored.retries, fresh.retries);
  per_i64("drops", stored.drops, fresh.drops);
  // Impairment counters: a capsule recorded before they existed decodes
  // them empty, which compares equal to the all-zero arrays an
  // unimpaired fresh replay produces (empty reads as n zeros).
  const auto per_i64_or_zero = [&](const char* field,
                                   const std::vector<long long>& s,
                                   const std::vector<long long>& f) {
    const std::size_t n = std::max(s.size(), f.size());
    for (std::size_t i = 0; i < n && !d.done(); ++i)
      d.eq_i("telemetry." + std::string(field) + "[" + std::to_string(i) +
                 "]",
             i < s.size() ? s[i] : 0, i < f.size() ? f[i] : 0);
  };
  per_i64_or_zero("dup_rx", stored.dup_rx, fresh.dup_rx);
  per_i64_or_zero("corrupt_rx", stored.corrupt_rx, fresh.corrupt_rx);
  per_i64_or_zero("arq_timeouts", stored.arq_timeouts, fresh.arq_timeouts);
}

void diff_ledger(DiffFinder& d, const std::string& where,
                 const obs::LedgerTotals& stored,
                 const obs::LedgerTotals& fresh) {
  d.eq_i(where + ".nodes", stored.nodes, fresh.nodes);
  d.eq_f(where + ".tx_bytes", stored.tx_bytes, fresh.tx_bytes);
  d.eq_f(where + ".rx_bytes", stored.rx_bytes, fresh.rx_bytes);
  d.eq_f(where + ".ops", stored.ops, fresh.ops);
  d.eq_f(where + ".mean_ops", stored.mean_ops, fresh.mean_ops);
  d.eq_f(where + ".max_ops", stored.max_ops, fresh.max_ops);
}

}  // namespace

DeploymentSnapshot DeploymentSnapshot::of(const Deployment& deployment) {
  DeploymentSnapshot snapshot;
  snapshot.bounds = deployment.bounds();
  snapshot.nodes.reserve(static_cast<std::size_t>(deployment.size()));
  for (const Node& node : deployment.nodes())
    snapshot.nodes.push_back({node.pos, node.alive, node.believed});
  return snapshot;
}

Deployment DeploymentSnapshot::materialize() const {
  std::vector<Node> out;
  out.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Node node;
    node.id = static_cast<int>(i);
    node.pos = nodes[i].pos;
    node.alive = nodes[i].alive;
    node.believed = nodes[i].believed;
    out.push_back(node);
  }
  return Deployment(bounds, std::move(out));
}

std::string normalized_summary_json(obs::RunSummary summary) {
  summary.wall_s = 0.0;
  summary.phases.clear();
  summary.trace_events = 0;
  // Machine-dependent like wall_s: never part of the identity contract.
  summary.peak_rss_bytes = 0.0;
  // The spatial-balance block is capsule-compared through the dedicated
  // telemetry section, not the summary text — and goldens recorded before
  // the block existed must keep replaying byte-identically.
  summary.node_telemetry.reset();
  return summary.to_json().dump(2);
}

RunCapsule record_single_shot(const Scenario& scenario,
                              const IsoMapOptions& options,
                              std::string label) {
  RunCapsule c;
  c.kind = RunKind::kSingleShot;
  c.label = std::move(label);
  c.config = scenario.config;
  c.options = options;
  c.deployment = DeploymentSnapshot::of(scenario.deployment);
  c.radio_range = scenario.graph.radio_range();
  c.sink = scenario.tree.sink();
  c.fault_plan = make_fault_plan(options.fault, scenario.deployment, c.sink);
  c.rounds = {scenario.readings};
  check_readings(c);
  c.single = execute_single_shot(c, nullptr, &c.telemetry);
  return c;
}

RunCapsule record_continuous(const Scenario& scenario,
                             const ContinuousOptions& options,
                             std::vector<std::vector<double>> round_readings,
                             std::string label) {
  RunCapsule c;
  c.kind = RunKind::kContinuous;
  c.label = std::move(label);
  c.config = scenario.config;
  c.options = options.base;
  c.continuous = options;
  c.deployment = DeploymentSnapshot::of(scenario.deployment);
  c.radio_range = scenario.graph.radio_range();
  c.sink = scenario.tree.sink();
  c.fault_plan =
      make_fault_plan(options.base.fault, scenario.deployment, c.sink);
  c.rounds = std::move(round_readings);
  check_readings(c);
  execute_continuous(c, nullptr, c.round_outputs, c.final_contours,
                     c.final_summary_json, &c.telemetry);
  return c;
}

RunCapsule replay(const RunCapsule& stored, obs::TraceSink* trace) {
  check_readings(stored);
  RunCapsule fresh = stored;
  if (stored.kind == RunKind::kSingleShot) {
    fresh.single = execute_single_shot(stored, trace, &fresh.telemetry);
  } else {
    execute_continuous(stored, trace, fresh.round_outputs,
                       fresh.final_contours, fresh.final_summary_json,
                       &fresh.telemetry);
  }
  return fresh;
}

std::optional<OutputDiff> diff_outputs(const RunCapsule& stored,
                                       const RunCapsule& fresh) {
  DiffFinder d;
  d.eq_i("meta.kind", static_cast<long long>(stored.kind),
         static_cast<long long>(fresh.kind));
  if (d.done()) return d.result();
  if (stored.kind == RunKind::kSingleShot) {
    const SingleShotOutputs& s = stored.single;
    const SingleShotOutputs& f = fresh.single;
    d.eq_i("single.isoline_node_count", s.isoline_node_count,
           f.isoline_node_count);
    d.eq_i("single.generated_reports", s.generated_reports,
           f.generated_reports);
    d.eq_i("single.delivered_reports", s.delivered_reports,
           f.delivered_reports);
    d.eq_i("single.filtered_reports", s.filtered_reports,
           f.filtered_reports);
    d.eq_i("single.lost_channel_reports", s.lost_channel_reports,
           f.lost_channel_reports);
    d.eq_i("single.lost_crash_reports", s.lost_crash_reports,
           f.lost_crash_reports);
    d.eq_i("single.crashed_nodes", s.crashed_nodes, f.crashed_nodes);
    d.eq_i("single.route_repairs", s.route_repairs, f.route_repairs);
    d.eq_f("single.repair_traffic_bytes", s.repair_traffic_bytes,
           f.repair_traffic_bytes);
    d.eq_f("single.report_traffic_bytes", s.report_traffic_bytes,
           f.report_traffic_bytes);
    d.eq_f("single.measurement_traffic_bytes", s.measurement_traffic_bytes,
           f.measurement_traffic_bytes);
    d.eq_f("single.dissemination_traffic_bytes",
           s.dissemination_traffic_bytes, f.dissemination_traffic_bytes);
    d.eq_f("single.bottleneck_bytes", s.bottleneck_bytes,
           f.bottleneck_bytes);
    d.eq_f("single.e2e_first_latency_s", s.e2e_first_latency_s,
           f.e2e_first_latency_s);
    d.eq_f("single.e2e_last_latency_s", s.e2e_last_latency_s,
           f.e2e_last_latency_s);
    d.eq_f("single.e2e_mean_latency_s", s.e2e_mean_latency_s,
           f.e2e_mean_latency_s);
    diff_reports(d, "single.sink_reports", s.sink_reports, f.sink_reports);
    diff_contours(d, "single.contours", s.contours, f.contours);
    diff_ledger(d, "single.ledger", s.ledger, f.ledger);
    d.eq_s("single.summary", s.summary_json, f.summary_json);
    // Telemetry is compared only when the stored capsule carries the
    // section: pre-telemetry goldens keep their original surface.
    if (stored.telemetry && fresh.telemetry)
      diff_telemetry(d, *stored.telemetry, *fresh.telemetry);
    return d.result();
  }
  d.eq_i("rounds.count", static_cast<long long>(stored.round_outputs.size()),
         static_cast<long long>(fresh.round_outputs.size()));
  for (std::size_t r = 0; r < stored.round_outputs.size() && !d.done();
       ++r) {
    const RoundOutputs& s = stored.round_outputs[r];
    const RoundOutputs& f = fresh.round_outputs[r];
    const std::string at = "rounds[" + std::to_string(r) + "]";
    d.eq_i(at + ".adds", s.adds, f.adds);
    d.eq_i(at + ".refreshes", s.refreshes, f.refreshes);
    d.eq_i(at + ".withdrawals", s.withdrawals, f.withdrawals);
    d.eq_i(at + ".suppressed", s.suppressed, f.suppressed);
    d.eq_i(at + ".keepalives", s.keepalives, f.keepalives);
    d.eq_i(at + ".expired", s.expired, f.expired);
    d.eq_i(at + ".active_reports", s.active_reports, f.active_reports);
    d.eq_f(at + ".delta_traffic_bytes", s.delta_traffic_bytes,
           f.delta_traffic_bytes);
    d.eq_f(at + ".beacon_traffic_bytes", s.beacon_traffic_bytes,
           f.beacon_traffic_bytes);
    d.eq_i(at + ".sink.count", static_cast<long long>(s.sink.size()),
           static_cast<long long>(f.sink.size()));
    for (std::size_t i = 0; i < s.sink.size() && !d.done(); ++i) {
      const auto& se = s.sink[i];
      const auto& fe = f.sink[i];
      const std::string entry = at + ".sink[" + std::to_string(i) + "]";
      d.eq_i(entry + ".node", se.node, fe.node);
      d.eq_i(entry + ".level", se.level, fe.level);
      d.eq_i(entry + ".last_update", se.last_update, fe.last_update);
      d.eq_f(entry + ".report.isolevel", se.report.isolevel,
             fe.report.isolevel);
      d.eq_f(entry + ".report.position.x", se.report.position.x,
             fe.report.position.x);
      d.eq_f(entry + ".report.position.y", se.report.position.y,
             fe.report.position.y);
      d.eq_f(entry + ".report.gradient.x", se.report.gradient.x,
             fe.report.gradient.x);
      d.eq_f(entry + ".report.gradient.y", se.report.gradient.y,
             fe.report.gradient.y);
      d.eq_i(entry + ".report.source", se.report.source, fe.report.source);
    }
    diff_ledger(d, at + ".ledger", s.ledger, f.ledger);
  }
  diff_contours(d, "final_map.contours", stored.final_contours,
                fresh.final_contours);
  d.eq_s("final_map.summary", stored.final_summary_json,
         fresh.final_summary_json);
  if (stored.telemetry && fresh.telemetry)
    diff_telemetry(d, *stored.telemetry, *fresh.telemetry);
  return d.result();
}

std::optional<OutputDiff> check_fault_plan(const RunCapsule& c) {
  const Deployment deployment = c.deployment.materialize();
  const FaultPlan derived =
      make_fault_plan(c.options.fault, deployment, c.sink);
  DiffFinder d;
  d.eq_i("fault_plan.count", static_cast<long long>(c.fault_plan.size()),
         static_cast<long long>(derived.size()));
  const auto& stored = c.fault_plan.events();
  const auto& fresh = derived.events();
  for (std::size_t i = 0; i < stored.size() && !d.done(); ++i) {
    const std::string at = "fault_plan[" + std::to_string(i) + "]";
    d.eq_f(at + ".time", stored[i].time, fresh[i].time);
    d.eq_i(at + ".kind", static_cast<long long>(stored[i].kind),
           static_cast<long long>(fresh[i].kind));
    d.eq_i(at + ".node", stored[i].node, fresh[i].node);
    d.eq_f(at + ".center.x", stored[i].center.x, fresh[i].center.x);
    d.eq_f(at + ".center.y", stored[i].center.y, fresh[i].center.y);
    d.eq_f(at + ".radius", stored[i].radius, fresh[i].radius);
  }
  return d.result();
}

Capsule to_capsule(const RunCapsule& run) {
  Capsule c;
  c.add(kMetaTag, encode_meta(run));
  c.add(kConfigTag, encode_config(run.config));
  c.add(kOptionsTag, encode_options(run.options));
  if (run.options.link_impair)
    c.add(kLinkImpairTag,
          encode_link_impair(*run.options.link_impair, run.options.link_arq));
  if (run.kind == RunKind::kContinuous)
    c.add(kContinuousTag, encode_continuous(run.continuous));
  c.add(kDeploymentTag, encode_deployment(run));
  c.add(kFaultPlanTag, encode_fault_plan(run.fault_plan));
  c.add(kReadingsTag, encode_readings(run.rounds));
  if (run.kind == RunKind::kSingleShot) {
    c.add(kSingleOutputsTag, encode_single_outputs(run.single));
  } else {
    c.add(kRoundOutputsTag, encode_round_outputs(run.round_outputs));
    c.add(kFinalMapTag, encode_final_map(run));
  }
  if (run.telemetry) c.add(kTelemetryTag, encode_telemetry(*run.telemetry));
  return c;
}

RunCapsule from_capsule(const Capsule& c) {
  RunCapsule run;
  decode_meta(Reader(require(c, kMetaTag, "meta").payload), run);
  decode_config(Reader(require(c, kConfigTag, "config").payload),
                run.config);
  decode_options(Reader(require(c, kOptionsTag, "options").payload),
                 run.options);
  if (const Section* s = c.find(kLinkImpairTag))
    decode_link_impair(Reader(s->payload), run.options);
  if (run.kind == RunKind::kContinuous) {
    decode_continuous(
        Reader(require(c, kContinuousTag, "continuous").payload),
        run.continuous);
    run.continuous.base = run.options;
  }
  decode_deployment(Reader(require(c, kDeploymentTag, "deployment").payload),
                    run);
  decode_fault_plan(Reader(require(c, kFaultPlanTag, "fault_plan").payload),
                    run.fault_plan);
  decode_readings(Reader(require(c, kReadingsTag, "readings").payload),
                  run.rounds);
  check_readings(run);
  if (run.kind == RunKind::kSingleShot) {
    decode_single_outputs(
        Reader(require(c, kSingleOutputsTag, "single_outputs").payload),
        run.single);
  } else {
    decode_round_outputs(
        Reader(require(c, kRoundOutputsTag, "round_outputs").payload),
        run.round_outputs);
    decode_final_map(Reader(require(c, kFinalMapTag, "final_map").payload),
                     run);
  }
  if (const Section* s = c.find(kTelemetryTag)) {
    obs::NodeTelemetrySnapshot t;
    decode_telemetry(Reader(s->payload), t);
    run.telemetry = std::move(t);
  }
  return run;
}

bool save(const std::string& path, const RunCapsule& run) {
  return write_file(path, to_capsule(run));
}

RunCapsule load(const std::string& path) {
  return from_capsule(read_file(path));
}

}  // namespace isomap::capsule
