#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "isomap/continuous.hpp"
#include "isomap/protocol.hpp"
#include "net/comm_graph.hpp"
#include "net/deployment.hpp"
#include "net/routing_tree.hpp"
#include "obs/run_summary.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"
#include "util/capsule.hpp"

namespace isomap::capsule {

/// Run-capsule record/replay: a capsule pins one protocol run — its
/// complete inputs (query/options, deployment, topology parameters,
/// per-round readings, fault plan) and its complete outputs (reports,
/// per-level contour geometry, ledger totals, normalized RunSummary) —
/// in the versioned, endian-stable binary container of util/capsule.hpp.
/// `replay()` re-executes the inputs through the live protocol code and
/// `diff_outputs()` bit-compares what came out against what was stored:
/// any divergence is a behavioural change. tools/isomap_replay is the
/// CLI; tests/golden/ holds the corpus CI replays on every push. See
/// docs/REPLAY.md.

/// Bump when the run-level section schema changes incompatibly (fields
/// reordered/removed, semantics changed). Adding a new *section* does not
/// require a bump — unknown sections are skipped by older readers.
///
/// v2: telemetry gained trailing dup_rx/corrupt_rx/arq_timeouts arrays
/// and single_outputs trailing e2e_*_latency_s fields (schema-1 files
/// still decode — the tails are guard-checked — but schema-1 readers
/// would choke on v2 files, hence the bump); optional link-impairment
/// section (tag 12).
inline constexpr std::uint64_t kRunSchemaVersion = 2;

enum class RunKind : int {
  kSingleShot = 0,  ///< One IsoMapProtocol::run (rounds holds 1 entry).
  kContinuous = 1,  ///< A ContinuousMapper round sequence.
};

/// Value snapshot of a Deployment (positions bit-exact).
struct DeploymentSnapshot {
  FieldBounds bounds;
  struct NodeRec {
    Vec2 pos{};
    bool alive = true;
    std::optional<Vec2> believed;
  };
  std::vector<NodeRec> nodes;

  static DeploymentSnapshot of(const Deployment& deployment);
  Deployment materialize() const;
};

/// One isolevel's sink-side output geometry: the post-filter report count
/// and the estimated isolines (boundary polylines) of its LevelRegion.
struct ContourPolyline {
  bool closed = false;
  std::vector<Vec2> points;
};
struct LevelContour {
  double isolevel = 0.0;
  int report_count = 0;
  std::vector<ContourPolyline> boundaries;
};

/// Outputs of a single-shot run, flattened for bit-comparison.
struct SingleShotOutputs {
  int isoline_node_count = 0;
  int generated_reports = 0;
  int delivered_reports = 0;
  int filtered_reports = 0;
  int lost_channel_reports = 0;
  int lost_crash_reports = 0;
  int crashed_nodes = 0;
  int route_repairs = 0;
  double repair_traffic_bytes = 0.0;
  double report_traffic_bytes = 0.0;
  double measurement_traffic_bytes = 0.0;
  double dissemination_traffic_bytes = 0.0;
  double bottleneck_bytes = 0.0;
  /// Measured end-to-end latency over the impaired link pipeline (all
  /// exactly 0.0 for unimpaired runs — and for capsules recorded before
  /// the fields existed, which decode to the same zeros).
  double e2e_first_latency_s = 0.0;
  double e2e_last_latency_s = 0.0;
  double e2e_mean_latency_s = 0.0;
  std::vector<IsolineReport> sink_reports;
  std::vector<LevelContour> contours;
  obs::LedgerTotals ledger;
  std::string summary_json;  ///< normalized_summary_json() of the run.
};

/// Outputs of one continuous round: the RoundResult counters, the full
/// sink-table dump, and the cumulative ledger totals after the round.
struct RoundOutputs {
  int adds = 0;
  int refreshes = 0;
  int withdrawals = 0;
  int suppressed = 0;
  int keepalives = 0;
  int expired = 0;
  int active_reports = 0;
  double delta_traffic_bytes = 0.0;
  double beacon_traffic_bytes = 0.0;
  std::vector<ContinuousMapper::SinkDumpEntry> sink;
  obs::LedgerTotals ledger;
};

/// A fully decoded run capsule: inputs + recorded outputs.
struct RunCapsule {
  RunKind kind = RunKind::kSingleShot;
  std::string label;
  ScenarioConfig config;  ///< Provenance only; replay never rebuilds from it.

  /// Replayable inputs. For continuous runs `options` is
  /// `continuous.base`; the deployment snapshot plus radio_range and sink
  /// deterministically rebuild the CommGraph and RoutingTree.
  IsoMapOptions options;
  ContinuousOptions continuous;
  DeploymentSnapshot deployment;
  double radio_range = 0.0;
  int sink = 0;
  /// The fault plan the recorded run expanded from options.fault — stored
  /// so replay can cross-check its own expansion before executing.
  FaultPlan fault_plan;
  /// Per-round readings, indexed by node id (single-shot: one round).
  std::vector<std::vector<double>> rounds;

  /// Recorded outputs (one of the two, by kind).
  SingleShotOutputs single;
  std::vector<RoundOutputs> round_outputs;
  std::vector<LevelContour> final_contours;  ///< Last round's map.
  std::string final_summary_json;            ///< Last round, normalized.

  /// Per-node flight-recorder snapshot of the run (tag 11, optional).
  /// Capsules recorded before the telemetry section existed simply lack
  /// it — diff_outputs() only compares telemetry when both sides carry
  /// one, so the golden corpus replays unchanged.
  std::optional<obs::NodeTelemetrySnapshot> telemetry;
};

/// A RunSummary stripped of everything legitimately run-dependent (wall
/// time, per-phase timing histograms, trace-event count) and dumped as
/// canonical JSON — the comparable text form capsules store.
std::string normalized_summary_json(obs::RunSummary summary);

/// Record a single-shot run: snapshot the scenario's inputs, execute the
/// protocol on the snapshot (the exact path replay() takes), store the
/// outputs.
RunCapsule record_single_shot(const Scenario& scenario,
                              const IsoMapOptions& options,
                              std::string label);

/// Record a continuous run over `round_readings` (outer index = round;
/// inner = per-node readings, typically sampled from an evolving field).
RunCapsule record_continuous(const Scenario& scenario,
                             const ContinuousOptions& options,
                             std::vector<std::vector<double>> round_readings,
                             std::string label);

/// Re-execute `stored`'s inputs through the live protocol code and
/// return a capsule identical to `stored` except that every output
/// section holds the recomputed values. When `trace` is given, the run
/// streams its trace events there (for trace_summary smoke tests); the
/// recomputed outputs are unaffected.
RunCapsule replay(const RunCapsule& stored, obs::TraceSink* trace = nullptr);

/// First output divergence between two capsules of the same kind, as a
/// (section.field path, human-readable stored-vs-fresh detail) pair;
/// nullopt when every output matches bit for bit.
struct OutputDiff {
  std::string where;
  std::string detail;
};
std::optional<OutputDiff> diff_outputs(const RunCapsule& stored,
                                       const RunCapsule& fresh);

/// Consistency check on inputs: re-expand options.fault against the
/// stored deployment/sink and diff against the stored plan.
std::optional<OutputDiff> check_fault_plan(const RunCapsule& c);

/// Wire conversion. from_capsule throws CapsuleError on malformed or
/// schema-incompatible payloads; unknown sections are ignored.
Capsule to_capsule(const RunCapsule& run);
RunCapsule from_capsule(const Capsule& c);

/// File helpers (write returns false on I/O error; load throws
/// CapsuleError like from_capsule / read_file).
bool save(const std::string& path, const RunCapsule& run);
RunCapsule load(const std::string& path);

}  // namespace isomap::capsule
