#include "sim/runners.hpp"

#include <chrono>
#include <utility>

#include "obs/obs.hpp"
#include "util/mem.hpp"

namespace isomap {
namespace {

/// Runs `body` under a fresh metrics registry (plus the caller's trace
/// sink, if any) and assembles the RunSummary afterwards. The registry
/// lives on the stack: observability state never leaks between runs.
template <typename Body>
auto observed_run(const char* protocol, const Scenario& scenario,
                  obs::TraceSink* trace, obs::NodeTelemetry* telemetry,
                  Body&& body) {
  Ledger ledger(scenario.deployment.size());
  obs::MetricsRegistry metrics;
  const std::size_t events_before = trace ? trace->events() : 0;
  const auto start = std::chrono::steady_clock::now();
  auto result = [&] {
    const obs::ObsScope scope(&metrics, trace, telemetry);
    return body(ledger);
  }();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  obs::RunSummary summary = obs::make_run_summary(
      protocol, metrics, ledger_totals(ledger), wall_s,
      trace ? trace->events() - events_before : 0, telemetry);
  summary.peak_rss_bytes = static_cast<double>(peak_rss_bytes());
  return std::make_tuple(std::move(result), std::move(ledger),
                         std::move(summary));
}

}  // namespace

obs::LedgerTotals ledger_totals(const Ledger& ledger) {
  obs::LedgerTotals totals;
  totals.nodes = ledger.size();
  totals.tx_bytes = ledger.total_tx_bytes();
  totals.rx_bytes = ledger.total_rx_bytes();
  totals.ops = ledger.total_ops();
  totals.mean_ops = ledger.mean_ops();
  totals.max_ops = ledger.max_ops();
  return totals;
}

IsoMapRun run_isomap(const Scenario& scenario, const IsoMapOptions& options,
                     obs::TraceSink* trace, obs::NodeTelemetry* telemetry) {
  auto [result, ledger, summary] =
      observed_run("isomap", scenario, trace, telemetry, [&](Ledger& l) {
        IsoMapProtocol protocol(options);
        return protocol.run(scenario.readings, scenario.deployment,
                            scenario.graph, scenario.tree, l);
      });
  return {std::move(result), std::move(ledger), std::move(summary)};
}

IsoMapOptions isomap_options(const Scenario& scenario, int num_levels) {
  IsoMapOptions options;
  options.query = default_query(scenario.field, num_levels);
  return options;
}

IsoMapRun run_isomap(const Scenario& scenario, int num_levels,
                     obs::TraceSink* trace, obs::NodeTelemetry* telemetry) {
  return run_isomap(scenario, isomap_options(scenario, num_levels), trace,
                    telemetry);
}

TinyDBRun run_tinydb(const Scenario& scenario, TinyDBOptions options,
                     obs::TraceSink* trace, obs::NodeTelemetry* telemetry) {
  auto [result, ledger, summary] =
      observed_run("tinydb", scenario, trace, telemetry, [&](Ledger& l) {
        TinyDBProtocol protocol(options);
        return protocol.run(scenario.deployment, scenario.readings,
                            scenario.tree, l);
      });
  return {std::move(result), std::move(ledger), std::move(summary)};
}

InlrRun run_inlr(const Scenario& scenario, InlrOptions options,
                 obs::TraceSink* trace, obs::NodeTelemetry* telemetry) {
  auto [result, ledger, summary] =
      observed_run("inlr", scenario, trace, telemetry, [&](Ledger& l) {
        InlrProtocol protocol(options);
        return protocol.run(scenario.deployment, scenario.readings,
                            scenario.tree, l);
      });
  return {std::move(result), std::move(ledger), std::move(summary)};
}

EScanRun run_escan(const Scenario& scenario, EScanOptions options,
                   obs::TraceSink* trace, obs::NodeTelemetry* telemetry) {
  auto [result, ledger, summary] =
      observed_run("escan", scenario, trace, telemetry, [&](Ledger& l) {
        EScanProtocol protocol(options);
        return protocol.run(scenario.deployment, scenario.readings,
                            scenario.tree, l);
      });
  return {std::move(result), std::move(ledger), std::move(summary)};
}

SuppressionRun run_suppression(const Scenario& scenario,
                               SuppressionOptions options,
                               obs::TraceSink* trace,
                               obs::NodeTelemetry* telemetry) {
  auto [result, ledger, summary] =
      observed_run("suppression", scenario, trace, telemetry, [&](Ledger& l) {
        SuppressionProtocol protocol(options);
        return protocol.run(scenario.deployment, scenario.readings,
                            scenario.graph, scenario.tree, l);
      });
  return {std::move(result), std::move(ledger), std::move(summary)};
}

}  // namespace isomap
