#include "sim/runners.hpp"

namespace isomap {

IsoMapRun run_isomap(const Scenario& scenario, const IsoMapOptions& options) {
  Ledger ledger(scenario.deployment.size());
  IsoMapProtocol protocol(options);
  IsoMapResult result = protocol.run(scenario.readings, scenario.deployment,
                                     scenario.graph, scenario.tree, ledger);
  return {std::move(result), std::move(ledger)};
}

IsoMapRun run_isomap(const Scenario& scenario, int num_levels) {
  IsoMapOptions options;
  options.query = default_query(scenario.field, num_levels);
  return run_isomap(scenario, options);
}

TinyDBRun run_tinydb(const Scenario& scenario, TinyDBOptions options) {
  Ledger ledger(scenario.deployment.size());
  TinyDBProtocol protocol(options);
  TinyDBResult result = protocol.run(scenario.deployment, scenario.readings,
                                     scenario.tree, ledger);
  return {std::move(result), std::move(ledger)};
}

InlrRun run_inlr(const Scenario& scenario, InlrOptions options) {
  Ledger ledger(scenario.deployment.size());
  InlrProtocol protocol(options);
  InlrResult result = protocol.run(scenario.deployment, scenario.readings,
                                   scenario.tree, ledger);
  return {result, std::move(ledger)};
}

EScanRun run_escan(const Scenario& scenario, EScanOptions options) {
  Ledger ledger(scenario.deployment.size());
  EScanProtocol protocol(options);
  EScanResult result = protocol.run(scenario.deployment, scenario.readings,
                                    scenario.tree, ledger);
  return {result, std::move(ledger)};
}

SuppressionRun run_suppression(const Scenario& scenario,
                               SuppressionOptions options) {
  Ledger ledger(scenario.deployment.size());
  SuppressionProtocol protocol(options);
  SuppressionResult result =
      protocol.run(scenario.deployment, scenario.readings, scenario.graph,
                   scenario.tree, ledger);
  return {result, std::move(ledger)};
}

}  // namespace isomap
