#pragma once

#include "baselines/escan.hpp"
#include "baselines/inlr.hpp"
#include "baselines/suppression.hpp"
#include "baselines/tinydb.hpp"
#include "energy/mica2.hpp"
#include "isomap/protocol.hpp"
#include "obs/node_telemetry.hpp"
#include "obs/run_summary.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"

namespace isomap {

/// Result + ledger + observability bundles so benchmark harnesses can
/// read traffic, computation, energy, per-phase timings and metric
/// snapshots off one object per protocol run.
///
/// Every runner installs an obs scope for the duration of the run: a
/// fresh MetricsRegistry (always), the caller's TraceSink (when given,
/// for structured JSONL event traces — see docs/OBSERVABILITY.md) and the
/// caller's NodeTelemetry table (when given, for per-node flight-recorder
/// counters; its summarize() lands in the summary's node_telemetry). The
/// returned RunSummary carries the phase timings, the ledger breakdown
/// and the metric snapshot; summary.to_json() is the machine-readable
/// form.

struct IsoMapRun {
  IsoMapResult result;
  Ledger ledger;
  obs::RunSummary summary;
};

struct TinyDBRun {
  TinyDBResult result;
  Ledger ledger;
  obs::RunSummary summary;
};

struct InlrRun {
  InlrResult result;
  Ledger ledger;
  obs::RunSummary summary;
};

struct EScanRun {
  EScanResult result;
  Ledger ledger;
  obs::RunSummary summary;
};

struct SuppressionRun {
  SuppressionResult result;
  Ledger ledger;
  obs::RunSummary summary;
};

/// Flatten a run's ledger into the summary's plain-number form.
obs::LedgerTotals ledger_totals(const Ledger& ledger);

IsoMapRun run_isomap(const Scenario& scenario, const IsoMapOptions& options,
                     obs::TraceSink* trace = nullptr,
                     obs::NodeTelemetry* telemetry = nullptr);

/// Paper-default options with `num_levels` isolevels spanning the
/// scenario field — the starting point callers tweak (link loss, bursty
/// channel, fault injection) before run_isomap(scenario, options).
IsoMapOptions isomap_options(const Scenario& scenario, int num_levels = 4);

/// Convenience: paper-default options with `num_levels` isolevels spanning
/// the scenario field.
IsoMapRun run_isomap(const Scenario& scenario, int num_levels = 4,
                     obs::TraceSink* trace = nullptr,
                     obs::NodeTelemetry* telemetry = nullptr);

TinyDBRun run_tinydb(const Scenario& scenario, TinyDBOptions options = {},
                     obs::TraceSink* trace = nullptr,
                     obs::NodeTelemetry* telemetry = nullptr);
InlrRun run_inlr(const Scenario& scenario, InlrOptions options = {},
                 obs::TraceSink* trace = nullptr,
                 obs::NodeTelemetry* telemetry = nullptr);
EScanRun run_escan(const Scenario& scenario, EScanOptions options = {},
                   obs::TraceSink* trace = nullptr,
                   obs::NodeTelemetry* telemetry = nullptr);
SuppressionRun run_suppression(const Scenario& scenario,
                               SuppressionOptions options = {},
                               obs::TraceSink* trace = nullptr,
                               obs::NodeTelemetry* telemetry = nullptr);

}  // namespace isomap
