#pragma once

#include "baselines/escan.hpp"
#include "baselines/inlr.hpp"
#include "baselines/suppression.hpp"
#include "baselines/tinydb.hpp"
#include "energy/mica2.hpp"
#include "isomap/protocol.hpp"
#include "sim/scenario.hpp"

namespace isomap {

/// Result + ledger bundles so benchmark harnesses can read traffic,
/// computation and energy off one object per protocol run.

struct IsoMapRun {
  IsoMapResult result;
  Ledger ledger;
};

struct TinyDBRun {
  TinyDBResult result;
  Ledger ledger;
};

struct InlrRun {
  InlrResult result;
  Ledger ledger;
};

struct EScanRun {
  EScanResult result;
  Ledger ledger;
};

struct SuppressionRun {
  SuppressionResult result;
  Ledger ledger;
};

IsoMapRun run_isomap(const Scenario& scenario, const IsoMapOptions& options);

/// Convenience: paper-default options with `num_levels` isolevels spanning
/// the scenario field.
IsoMapRun run_isomap(const Scenario& scenario, int num_levels = 4);

TinyDBRun run_tinydb(const Scenario& scenario, TinyDBOptions options = {});
InlrRun run_inlr(const Scenario& scenario, InlrOptions options = {});
EScanRun run_escan(const Scenario& scenario, EScanOptions options = {});
SuppressionRun run_suppression(const Scenario& scenario,
                               SuppressionOptions options = {});

}  // namespace isomap
