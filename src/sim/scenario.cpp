#include "sim/scenario.hpp"

#include <cmath>
#include <stdexcept>

namespace isomap {

double ScenarioConfig::effective_radio_range() const {
  if (radio_range > 0.0) return radio_range;
  const double d = density();
  if (d <= 0.0) throw std::invalid_argument("ScenarioConfig: empty field");
  return 1.5 / std::sqrt(d);
}

namespace {

GaussianField make_field(const ScenarioConfig& config, Rng& rng) {
  const FieldBounds bounds = config.bounds();
  switch (config.field) {
    case FieldKind::kHarbor:
      return harbor_bathymetry(bounds);
    case FieldKind::kSilted:
      return silted_harbor_bathymetry(bounds);
    case FieldKind::kMultiBasin:
      return multi_basin_bathymetry(bounds);
    case FieldKind::kRandom:
      return GaussianField::random(bounds, config.random_field_bumps,
                                   config.random_field_amplitude, rng);
    case FieldKind::kSloped:
      return sloped_seabed_bathymetry(bounds);
  }
  throw std::logic_error("unknown FieldKind");
}

}  // namespace

Scenario make_scenario(const ScenarioConfig& config) {
  Rng field_rng = Rng(config.seed).split();
  return make_scenario_with_field(
      config,
      std::make_shared<GaussianField>(make_field(config, field_rng)));
}

Scenario make_scenario_with_field(ScenarioConfig config,
                                  std::shared_ptr<const ScalarField> field_ptr) {
  if (!field_ptr)
    throw std::invalid_argument("make_scenario_with_field: null field");
  const ScalarField& field = *field_ptr;
  // Align the config with the supplied field's actual bounds (which may
  // not start at the origin for loaded traces).
  const FieldBounds bounds = field.bounds();
  config.field_side = bounds.width();

  Rng rng(config.seed);
  rng.split();  // Field stream (consumed by make_scenario when synthetic).
  Rng deploy_rng = rng.split();
  Rng failure_rng = rng.split();
  Rng noise_rng = rng.split();

  Deployment deployment =
      config.grid_deployment
          ? Deployment::grid(bounds, config.num_nodes)
          : Deployment::uniform_random(bounds, config.num_nodes, deploy_rng);
  if (config.failure_fraction > 0.0)
    deployment.fail_random(config.failure_fraction, failure_rng);
  if (config.position_error_std > 0.0) {
    for (auto& node : deployment.nodes()) {
      node.believed = bounds.clamp(
          node.pos + Vec2{noise_rng.normal(0.0, config.position_error_std),
                          noise_rng.normal(0.0, config.position_error_std)});
    }
  }

  CommGraph graph(deployment, config.effective_radio_range());
  const Vec2 sink_pos{bounds.x0 + bounds.width() * config.sink_fx,
                      bounds.y0 + bounds.height() * config.sink_fy};
  const int sink = deployment.nearest_alive(sink_pos);
  if (sink < 0) throw std::runtime_error("make_scenario: no alive nodes");
  RoutingTree tree(graph, sink);

  std::vector<double> readings(static_cast<std::size_t>(deployment.size()),
                               0.0);
  for (const auto& node : deployment.nodes()) {
    if (!node.alive) continue;
    double v = field.value(node.pos);
    if (config.reading_noise_std > 0.0)
      v += noise_rng.normal(0.0, config.reading_noise_std);
    readings[static_cast<std::size_t>(node.id)] = v;
  }

  return Scenario{config,
                  field_ptr,
                  *field_ptr,
                  std::move(deployment),
                  std::move(graph),
                  std::move(tree),
                  std::move(readings)};
}

ContourQuery scaling_query() {
  ContourQuery query;
  query.lambda_lo = SlopedSeabedQueryWindow::kLambdaLo;
  query.lambda_hi = SlopedSeabedQueryWindow::kLambdaHi;
  query.granularity = SlopedSeabedQueryWindow::kGranularity;
  return query;
}

ContourQuery default_query(const ScalarField& field, int num_levels) {
  if (num_levels < 1)
    throw std::invalid_argument("default_query: need >= 1 level");
  const auto [lo, hi] = field.value_range();
  ContourQuery query;
  // Inset the data space slightly so the extreme isolevels still cross
  // actual field values (isolines exist for every level).
  const double span = hi - lo;
  query.lambda_lo = lo + 0.1 * span;
  query.lambda_hi = hi - 0.1 * span;
  query.granularity = (query.lambda_hi - query.lambda_lo) / num_levels;
  return query;
}

}  // namespace isomap
