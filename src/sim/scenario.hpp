#pragma once

#include <cstdint>
#include <memory>

#include "field/bathymetry.hpp"
#include "field/gaussian_field.hpp"
#include "isomap/query.hpp"
#include "net/comm_graph.hpp"
#include "net/deployment.hpp"
#include "net/routing_tree.hpp"

namespace isomap {

/// Which synthetic bathymetry drives the run.
enum class FieldKind { kHarbor, kSilted, kMultiBasin, kRandom, kSloped };

/// One simulated deployment scenario, mirroring the paper's setup: n nodes
/// over a field_side x field_side normalized field (the paper's default is
/// 2,500 nodes on 50x50, density 1, radio range 1.5 -> average degree ~7).
struct ScenarioConfig {
  int num_nodes = 2500;
  double field_side = 50.0;
  /// Radio range in normalized units; <= 0 selects 1.5 / sqrt(density) so
  /// the average node degree stays ~7 across density sweeps (the paper
  /// scales the physical range the same way to keep connectivity).
  double radio_range = -1.0;
  bool grid_deployment = false;
  double failure_fraction = 0.0;
  FieldKind field = FieldKind::kHarbor;
  int random_field_bumps = 6;      ///< For FieldKind::kRandom.
  double random_field_amplitude = 4.0;
  std::uint64_t seed = 1;
  /// Sink attachment point as a fraction of the bounds (default: centre).
  double sink_fx = 0.5;
  double sink_fy = 0.5;

  /// Gaussian sensing noise (std dev, attribute units) added to each
  /// reading — sonar measurement error. 0 = the paper's noiseless traces.
  double reading_noise_std = 0.0;
  /// Gaussian localization error (std dev, field units) applied to the
  /// position each node *believes* and reports; radio connectivity still
  /// uses the physical position. 0 = exact localization.
  double position_error_std = 0.0;

  double density() const {
    return static_cast<double>(num_nodes) / (field_side * field_side);
  }
  double effective_radio_range() const;
  FieldBounds bounds() const { return {0.0, 0.0, field_side, field_side}; }
};

/// A fully materialized scenario: field, deployment (failures applied),
/// communication graph, routing tree, and per-node readings. The field is
/// polymorphic so trace-driven runs (a GridField loaded from a survey
/// file) use the same machinery as the synthetic presets.
struct Scenario {
  ScenarioConfig config;
  std::shared_ptr<const ScalarField> field_storage;
  const ScalarField& field;  ///< Alias of *field_storage.
  Deployment deployment;
  CommGraph graph;
  RoutingTree tree;
  std::vector<double> readings;
};

/// Build a scenario deterministically from its config. Throws when no
/// alive node can serve as sink.
Scenario make_scenario(const ScenarioConfig& config);

/// Build a scenario over a caller-supplied field (e.g. a GridField loaded
/// from a trace file); config.field is ignored and config.field_side is
/// derived from the field's bounds. num_nodes, deployment style,
/// failures, noise and seeds apply as usual.
Scenario make_scenario_with_field(ScenarioConfig config,
                                  std::shared_ptr<const ScalarField> field);

/// A query spanning the field's value range with `num_levels` isolevels,
/// paper-default parameters (epsilon = 0.05 T, s_a = 30 deg, s_d = 4).
ContourQuery default_query(const ScalarField& field, int num_levels = 4);

/// The fixed-window query for scaling experiments over
/// FieldKind::kSloped terrain (see sloped_seabed_bathymetry): absolute
/// isolevels, so the isoline-node strip width stays constant as the field
/// grows and Theorem 4.1's O(sqrt(n)) regime applies.
ContourQuery scaling_query();

}  // namespace isomap
