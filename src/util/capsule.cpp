#include "util/capsule.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

namespace isomap::capsule {
namespace {

/// LEB128 uses at most ceil(64 / 7) = 10 groups for a 64-bit value.
constexpr int kMaxVarintBytes = 10;

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace

void Writer::put_u64(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void Writer::put_i64(std::int64_t v) { put_u64(zigzag(v)); }

void Writer::put_f64(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
}

void Writer::put_string(std::string_view s) {
  put_u64(s.size());
  buf_.append(s.data(), s.size());
}

const char* Reader::need(std::size_t n, const char* what) {
  if (n > size_ - pos_)
    throw CapsuleError(std::string("truncated ") + what + " (need " +
                       std::to_string(n) + " bytes, have " +
                       std::to_string(size_ - pos_) + ")");
  const char* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint64_t Reader::get_u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    const auto byte =
        static_cast<unsigned char>(*need(1, "varint"));
    if (i == kMaxVarintBytes - 1 && (byte & 0xFE) != 0)
      throw CapsuleError("varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) return v;
  }
  throw CapsuleError("varint longer than 10 bytes");
}

std::int64_t Reader::get_i64() { return unzigzag(get_u64()); }

bool Reader::get_bool() {
  const std::uint64_t v = get_u64();
  if (v > 1) throw CapsuleError("boolean out of range");
  return v == 1;
}

double Reader::get_f64() {
  const char* p = need(8, "f64");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
            << (8 * i);
  return std::bit_cast<double>(bits);
}

std::string Reader::get_string() {
  const std::uint64_t len = get_u64();
  if (len > size_ - pos_)
    throw CapsuleError("string length " + std::to_string(len) +
                       " past end of buffer");
  const char* p = need(static_cast<std::size_t>(len), "string body");
  return std::string(p, static_cast<std::size_t>(len));
}

std::size_t Reader::get_count(std::size_t max, std::size_t min_item_bytes) {
  const std::uint64_t v = get_u64();
  if (v > max)
    throw CapsuleError("count " + std::to_string(v) + " exceeds limit " +
                       std::to_string(max));
  if (min_item_bytes != 0 && v * min_item_bytes > remaining())
    throw CapsuleError("count " + std::to_string(v) + " implies at least " +
                       std::to_string(v * min_item_bytes) +
                       " bytes but only " + std::to_string(remaining()) +
                       " remain");
  return static_cast<std::size_t>(v);
}

const Section* Capsule::find(std::uint64_t tag) const {
  for (const Section& s : sections)
    if (s.tag == tag) return &s;
  return nullptr;
}

std::string Capsule::encode() const {
  Writer w;
  std::string out(kMagic, sizeof(kMagic));
  w.put_u64(version);
  for (const Section& s : sections) {
    w.put_u64(s.tag);
    w.put_string(s.payload);
  }
  out += w.bytes();
  return out;
}

Capsule Capsule::decode(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    throw CapsuleError("bad magic (not a capsule file)");
  Reader r(bytes.substr(sizeof(kMagic)));
  Capsule c;
  c.version = r.get_u64();
  if (c.version == 0 || c.version > kFormatVersion)
    throw CapsuleError("unsupported format version " +
                       std::to_string(c.version) + " (reader supports <= " +
                       std::to_string(kFormatVersion) + ")");
  while (!r.done()) {
    Section s;
    s.tag = r.get_u64();
    s.payload = r.get_string();
    c.sections.push_back(std::move(s));
  }
  return c;
}

Capsule read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CapsuleError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) throw CapsuleError("read error on " + path);
  return Capsule::decode(buf.str());
}

bool write_file(const std::string& path, const Capsule& capsule) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string bytes = capsule.encode();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

}  // namespace isomap::capsule
