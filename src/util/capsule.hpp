#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace isomap::capsule {

/// Any malformed-capsule condition: truncated buffer, over-long varint,
/// bad magic, unsupported version, section length past the end. Decoding
/// untrusted bytes throws this (and only this) — it never crashes or
/// reads out of bounds, which the fuzz tests assert under ASan/UBSan.
class CapsuleError : public std::runtime_error {
 public:
  explicit CapsuleError(const std::string& what)
      : std::runtime_error("capsule: " + what) {}
};

/// Current container format version. Readers reject anything newer;
/// bumping this is only needed when the *container* layout changes
/// (magic / section framing), not when a section gains fields — see
/// docs/REPLAY.md for the versioning rules.
inline constexpr std::uint64_t kFormatVersion = 1;

/// 8-byte file magic. The leading 0x89 byte keeps the file from ever
/// parsing as text; the trailing newline catches ASCII-mode mangling.
inline constexpr char kMagic[8] = {'\x89', 'I', 'S', 'O',
                                   'C',    'A', 'P', '\n'};

/// Append-only encoder for the capsule wire primitives. All output is
/// endian-stable: varints are LEB128 (little groups first) and doubles
/// are their IEEE-754 bit pattern written as 8 explicit little-endian
/// bytes, so a capsule written on any platform decodes bit-identically
/// on any other.
class Writer {
 public:
  /// Unsigned LEB128 varint (1..10 bytes).
  void put_u64(std::uint64_t v);
  /// Signed values, zigzag-mapped then LEB128.
  void put_i64(std::int64_t v);
  void put_bool(bool v) { put_u64(v ? 1 : 0); }
  /// IEEE-754 bit pattern, 8 fixed little-endian bytes (bit-exact,
  /// including NaN payloads and signed zeros).
  void put_f64(double v);
  /// Varint length followed by the raw bytes.
  void put_string(std::string_view s);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a borrowed byte range. Every read that
/// would pass the end throws CapsuleError; nothing is ever read out of
/// bounds.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(std::string_view bytes)
      : Reader(bytes.data(), bytes.size()) {}

  std::uint64_t get_u64();
  std::int64_t get_i64();
  bool get_bool();
  double get_f64();
  std::string get_string();

  /// get_u64 narrowed to [0, max]; throws when outside (guards container
  /// sizes against corrupt counts that would otherwise trigger huge
  /// allocations). When `min_item_bytes` is non-zero, additionally
  /// requires count * min_item_bytes to fit in the remaining payload —
  /// so a corrupt count can never allocate more than the file's own
  /// size.
  std::size_t get_count(std::size_t max, std::size_t min_item_bytes = 0);

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const char* need(std::size_t n, const char* what);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// One tagged section of a capsule file. Tags are application-defined;
/// readers skip tags they do not recognise, which is what lets newer
/// writers add sections without breaking older readers.
struct Section {
  std::uint64_t tag = 0;
  std::string payload;
};

/// A decoded capsule container: the format version plus its sections in
/// file order.
struct Capsule {
  std::uint64_t version = kFormatVersion;
  std::vector<Section> sections;

  void add(std::uint64_t tag, std::string payload) {
    sections.push_back({tag, std::move(payload)});
  }
  /// First section with `tag`, or nullptr.
  const Section* find(std::uint64_t tag) const;

  /// Serialize to the wire form: magic, version varint, then each
  /// section as tag varint + length varint + payload.
  std::string encode() const;

  /// Parse a wire-form buffer. Throws CapsuleError on any malformation
  /// (bad magic, unsupported version, truncated section, trailing
  /// garbage that is not a complete section).
  static Capsule decode(std::string_view bytes);
};

/// Whole-file helpers. read_file throws CapsuleError when the file
/// cannot be opened or fails to decode; write_file returns false on I/O
/// failure.
Capsule read_file(const std::string& path);
bool write_file(const std::string& path, const Capsule& capsule);

}  // namespace isomap::capsule
