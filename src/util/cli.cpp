#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace isomap {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg] = "true";
      } else {
        options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::optional<std::string> CliArgs::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& key,
                            const std::string& def) const {
  return get(key).value_or(def);
}

double CliArgs::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                *v + "'");
  }
}

int CliArgs::get_int(const std::string& key, int def) const {
  const auto v = get(key);
  if (!v) return def;
  try {
    return std::stoi(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key +
                                " expects an integer, got '" + *v + "'");
  }
}

std::uint64_t CliArgs::get_u64(const std::string& key,
                               std::uint64_t def) const {
  const auto v = get(key);
  if (!v) return def;
  try {
    return std::stoull(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key +
                                " expects an integer, got '" + *v + "'");
  }
}

std::vector<std::string> CliArgs::keys() const {
  std::vector<std::string> out;
  out.reserve(options_.size());
  for (const auto& [k, _] : options_) out.push_back(k);
  return out;
}

}  // namespace isomap
