#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace isomap {

/// Minimal --key=value / --flag argument parser used by the examples and
/// benchmark harnesses. Unknown keys are collected so callers can reject or
/// report them.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& def) const;
  double get_double(const std::string& key, double def) const;
  int get_int(const std::string& key, int def) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t def) const;

  /// Positional (non --key) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }
  /// All parsed option keys (for validation / help text).
  std::vector<std::string> keys() const;

 private:
  std::unordered_map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace isomap
