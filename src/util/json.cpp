#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace isomap {

void json_escape(std::string& out, std::string_view s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double d) {
  if (!std::isfinite(d)) return "null";
  // Integers (within the exactly-representable range) print without an
  // exponent or decimal point; everything else uses shortest round-trip.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    return buf;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  return std::string(buf, res.ptr);
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray)
    throw std::logic_error("JsonValue: push_back on non-array");
  array_.push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (kind_ != Kind::kArray || i >= array_.size())
    throw std::out_of_range("JsonValue: array index out of range");
  return array_[i];
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject)
    throw std::logic_error("JsonValue: operator[] on non-object");
  for (auto& [k, v] : object_)
    if (k == key) return v;
  object_.emplace_back(key, JsonValue());
  return object_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v && v->is_number() ? v->number_ : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v && v->is_string() ? v->string_ : fallback;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += json_number(number_); break;
    case Kind::kString: json_escape(out, string_); break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        json_escape(out, object_[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser. `pos` advances past consumed input; any
/// failure sets `ok` false (and the outer parse returns nullopt).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    JsonValue v = value();
    skip_ws();
    if (!ok_ || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    ok_ = false;
    return false;
  }

  JsonValue value() {
    if (++depth_ > kMaxDepth) {
      ok_ = false;
      return {};
    }
    skip_ws();
    JsonValue out;
    if (pos_ >= text_.size()) {
      ok_ = false;
    } else {
      switch (text_[pos_]) {
        case 'n': if (literal("null")) out = JsonValue(); break;
        case 't': if (literal("true")) out = JsonValue(true); break;
        case 'f': if (literal("false")) out = JsonValue(false); break;
        case '"': out = JsonValue(string()); break;
        case '[': out = array(); break;
        case '{': out = object(); break;
        default: out = JsonValue(number()); break;
      }
    }
    --depth_;
    return out;
  }

  std::string string() {
    std::string out;
    if (!consume('"')) {
      ok_ = false;
      return out;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) break;  // Raw control char.
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            ok_ = false;
            return out;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              ok_ = false;
              return out;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are written
          // as-is byte sequences; the writer never emits them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          ok_ = false;
          return out;
      }
    }
    ok_ = false;
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    // JSON forbids leading zeros: "01" is two tokens, not a number.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      ok_ = false;
      return 0.0;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double out = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_ ||
        pos_ == start)
      ok_ = false;
    return out;
  }

  JsonValue array() {
    JsonValue out = JsonValue::array();
    consume('[');
    skip_ws();
    if (consume(']')) return out;
    while (ok_) {
      out.push_back(value());
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) break;
    }
    ok_ = false;
    return out;
  }

  JsonValue object() {
    JsonValue out = JsonValue::object();
    consume('{');
    skip_ws();
    if (consume('}')) return out;
    while (ok_) {
      skip_ws();
      const std::string key = string();
      if (!ok_) break;
      skip_ws();
      if (!consume(':')) break;
      out[key] = value();
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) break;
    }
    ok_ = false;
    return out;
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  bool ok_ = true;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace isomap
