#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace isomap {

/// Minimal dependency-free JSON document: a tagged value supporting the
/// six JSON types, ordered object keys (insertion order, so emitted
/// summaries diff cleanly), a compact/pretty writer and a strict parser.
/// Used by the observability layer (run summaries, JSONL traces) and the
/// benchmark harnesses (BENCH_*.json outputs).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  ///< null
  JsonValue(std::nullptr_t) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}
  JsonValue(int i) : kind_(Kind::kNumber), number_(i) {}
  JsonValue(long long i)
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(std::size_t i)
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& as_string() const { return string_; }

  /// Array access.
  void push_back(JsonValue v);
  std::size_t size() const;
  const JsonValue& at(std::size_t i) const;
  const std::vector<JsonValue>& items() const { return array_; }

  /// Object access. operator[] inserts a null member when missing (and
  /// converts a default-constructed null value into an object); find()
  /// returns nullptr when the key is absent.
  JsonValue& operator[](const std::string& key);
  const JsonValue* find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Convenience lookups for flat records (JSONL trace events).
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  /// Serialize. indent < 0 -> single line; otherwise pretty-print with
  /// `indent` spaces per level. Non-finite numbers are emitted as null
  /// (JSON has no NaN/Inf).
  std::string dump(int indent = -1) const;

  /// Strict parse of exactly one JSON document (trailing whitespace
  /// allowed). Returns nullopt on any syntax error.
  static std::optional<JsonValue> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Append `s` to `out` as a quoted JSON string with all mandatory escapes
/// (quotes, backslash, control characters).
void json_escape(std::string& out, std::string_view s);

/// Format a finite double the way the writer does (shortest round-trip
/// representation; integers without a trailing ".0"). Non-finite -> "null".
std::string json_number(double d);

}  // namespace isomap
