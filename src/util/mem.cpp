#include "util/mem.hpp"

#if defined(__linux__)
#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#endif

namespace isomap {

std::size_t peak_rss_bytes() {
#if defined(__linux__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is in kilobytes on Linux.
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

std::size_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size_pages = 0;
  long long resident_pages = 0;
  const int matched =
      std::fscanf(f, "%lld %lld", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2 || resident_pages < 0) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(resident_pages) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

}  // namespace isomap
