#pragma once

#include <cstddef>

namespace isomap {

/// Peak resident-set size of this process in bytes (high-water mark since
/// process start), or 0 when the platform offers no cheap way to read it.
/// Backed by getrusage(RU_MAXRSS) on Linux. Used by the run summaries and
/// the deployment-scale bench to chart the memory cost of a round
/// alongside its wall time.
std::size_t peak_rss_bytes();

/// Current resident-set size in bytes (0 when unavailable). Parsed from
/// /proc/self/statm on Linux; unlike the peak, this can decrease, so
/// deltas around a phase bound that phase's live allocations.
std::size_t current_rss_bytes();

}  // namespace isomap
