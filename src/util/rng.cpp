#include "util/rng.hpp"

#include <cmath>

namespace isomap {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 so correlated seeds (0, 1, 2, ...)
  // still yield independent-looking streams.
  std::uint64_t s = seed;
  for (auto& word : s_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next()); }

}  // namespace isomap
