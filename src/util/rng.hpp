#pragma once

#include <cstdint>
#include <limits>

namespace isomap {

/// Deterministic, seedable PRNG (xoshiro256**). All randomized components of
/// the simulator take an explicit Rng so every experiment is reproducible
/// from its seed. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Derive an independent stream for a sub-component.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace isomap
