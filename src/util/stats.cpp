#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace isomap {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) *
             static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double SampleSet::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double SampleSet::quantile(double q) const {
  if (xs_.empty()) throw std::logic_error("SampleSet::quantile on empty set");
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

}  // namespace isomap
