#pragma once

#include <cstddef>
#include <vector>

namespace isomap {

/// Streaming univariate statistics (Welford). Used by the evaluation layer
/// to summarize per-trial metrics without retaining samples.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retaining sample set with quantile queries; for per-figure summaries
/// where medians/percentiles are reported.
class SampleSet {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  /// Quantile by linear interpolation, q in [0,1]. Requires non-empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

}  // namespace isomap
