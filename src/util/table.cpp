#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace isomap {

std::string format_double(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs >=1 column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) throw std::logic_error("Table::cell before row()");
  if (rows_.back().size() >= headers_.size())
    throw std::logic_error("Table row has too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }
Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << " " << std::setw(static_cast<int>(widths[c])) << v << " |";
    }
    os << "\n";
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << csv_escape(headers_[c]);
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << csv_escape(row[c]);
    os << "\n";
  }
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  print_csv(out);
  return static_cast<bool>(out);
}

}  // namespace isomap
