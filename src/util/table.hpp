#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace isomap {

/// Fixed-column text table used by the benchmark harnesses to print
/// paper-shaped rows (and optionally CSV for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(double value, int precision = 3);
  Table& cell(long long value);
  Table& cell(std::size_t value);
  Table& cell(int value);

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;
  /// Render as CSV.
  void print_csv(std::ostream& os) const;
  /// Write CSV to a file path; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }
  const std::string& at(std::size_t row, std::size_t col) const;
  const std::vector<std::string>& headers() const { return headers_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with examples).
std::string format_double(double value, int precision);

}  // namespace isomap
