#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "net/arq.hpp"
#include "net/channel.hpp"
#include "obs/node_telemetry.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace isomap {
namespace {

TEST(ArqConfig, ValidatesRanges) {
  ArqConfig ok;
  EXPECT_NO_THROW(ok.validate());

  ArqConfig bad = ok;
  bad.window = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.frame_payload_bytes = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.timeout_s = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.backoff_factor = 0.9;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.max_timeout_s = bad.timeout_s / 2;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.max_frame_attempts = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Crc32, MatchesKnownVectors) {
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
}

TEST(ArqFrame, EncodeDecodeRoundTrip) {
  for (const std::size_t len : {0u, 1u, 7u, 32u, 200u}) {
    ArqFrame frame;
    frame.kind = FrameKind::kData;
    frame.seq = 0xDEADBEEFu;
    frame.payload.assign(len, '\x5A');
    const std::string wire = encode_frame(frame);
    EXPECT_EQ(wire.size(), 9 + len + 4);
    const DecodedFrame decoded = decode_frame(wire);
    ASSERT_EQ(decoded.status, FrameStatus::kOk);
    EXPECT_EQ(decoded.frame.kind, frame.kind);
    EXPECT_EQ(decoded.frame.seq, frame.seq);
    EXPECT_EQ(decoded.frame.payload, frame.payload);
  }
  ArqFrame ack;
  ack.kind = FrameKind::kAck;
  ack.seq = 17;
  const DecodedFrame decoded = decode_frame(encode_frame(ack));
  ASSERT_EQ(decoded.status, FrameStatus::kOk);
  EXPECT_EQ(decoded.frame.kind, FrameKind::kAck);
  EXPECT_EQ(decoded.frame.seq, 17u);
}

TEST(ArqFrame, DecodeRejectsTruncationAndPadding) {
  ArqFrame frame;
  frame.seq = 3;
  frame.payload = "hello arq";
  const std::string wire = encode_frame(frame);
  for (std::size_t cut = 0; cut < wire.size(); ++cut)
    EXPECT_NE(decode_frame(wire.substr(0, cut)).status, FrameStatus::kOk);
  EXPECT_NE(decode_frame(wire + '\0').status, FrameStatus::kOk);
  EXPECT_NE(decode_frame(std::string()).status, FrameStatus::kOk);
}

TEST(ArqFrame, EverySingleByteFlipIsDetected) {
  // Satellite: corrupt-frame fuzz. The CRC covers kind/seq/len/payload,
  // and a flip inside the CRC itself breaks the comparison — so no
  // single-byte corruption may ever decode as kOk.
  ArqFrame frame;
  frame.seq = 42;
  frame.payload = "payload under test";
  const std::string wire = encode_frame(frame);
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    for (const unsigned char mask : {0x01u, 0x10u, 0x80u, 0xFFu}) {
      std::string damaged = wire;
      damaged[pos] = static_cast<char>(
          static_cast<unsigned char>(damaged[pos]) ^ mask);
      EXPECT_NE(decode_frame(damaged).status, FrameStatus::kOk)
          << "undetected flip at byte " << pos;
    }
  }
}

TEST(ArqFrame, RandomFuzzNeverCrashes) {
  Rng rng(0xF022);
  for (int i = 0; i < 20000; ++i) {
    std::string bytes(rng.uniform_int(64), '\0');
    for (char& b : bytes)
      b = static_cast<char>(rng.uniform_int(256));
    (void)decode_frame(bytes);  // Must not crash or throw.
  }
  // Double-flip mutations confined to 4 consecutive bytes: a <= 32-bit
  // error burst, which CRC-32 is guaranteed to detect (arbitrary distant
  // flips would only be caught with probability 1 - 2^-32).
  ArqFrame frame;
  frame.seq = 7;
  frame.payload.assign(24, '\x33');
  const std::string wire = encode_frame(frame);
  for (int i = 0; i < 5000; ++i) {
    std::string damaged = wire;
    const std::size_t a = rng.uniform_int(damaged.size() - 3);
    const std::size_t b = a + 1 + rng.uniform_int(3);
    damaged[a] = static_cast<char>(
        static_cast<unsigned char>(damaged[a]) ^ 0x41u);
    damaged[b] = static_cast<char>(
        static_cast<unsigned char>(damaged[b]) ^ 0x0Bu);
    EXPECT_NE(decode_frame(damaged).status, FrameStatus::kOk);
  }
}

// --- Transfer engine ----------------------------------------------------

ArqTransferStats run(double bytes, const ImpairmentConfig& impair,
                     const ArqConfig& arq, double loss_prob,
                     std::uint64_t seed, Ledger& ledger) {
  Rng rng(seed);
  Rng loss_rng(seed ^ 0x9E3779B97F4A7C15ULL);
  return run_arq_transfer(
      0, 1, bytes, impair, arq, rng,
      [&] { return loss_rng.bernoulli(loss_prob); }, ledger);
}

TEST(ArqTransfer, LossyLinkRetransmitsAndDelivers) {
  ImpairmentConfig impair;
  ArqConfig arq;
  // A lost ACK also burns one of the base frame's attempts (the timeout
  // retransmits it), so give the budget real headroom over the loss rate.
  arq.max_frame_attempts = 16;
  long long retransmissions = 0;
  for (int i = 0; i < 20; ++i) {
    Ledger ledger(2);
    const ArqTransferStats stats =
        run(500.0, impair, arq, 0.25, 4000 + i, ledger);
    EXPECT_TRUE(stats.delivered);
    EXPECT_EQ(stats.frames,
              static_cast<long long>(
                  std::ceil(500.0 / arq.frame_payload_bytes)));
    EXPECT_GE(stats.data_tx, stats.frames);
    retransmissions += stats.retransmissions;
  }
  EXPECT_GT(retransmissions, 0);
}

TEST(ArqTransfer, DeadLinkGivesUpAfterMaxAttempts) {
  ImpairmentConfig impair;
  ArqConfig arq;
  arq.window = 4;
  arq.max_frame_attempts = 5;
  Ledger ledger(2);
  Rng rng(1);
  const ArqTransferStats stats = run_arq_transfer(
      0, 1, 300.0, impair, arq, rng, [] { return true; }, ledger);
  EXPECT_FALSE(stats.delivered);
  // The base frame is tried once up-front and once per timeout until its
  // budget runs out; the final timeout discovers the exhausted budget.
  EXPECT_EQ(stats.timeouts, arq.max_frame_attempts);
  EXPECT_EQ(stats.data_tx,
            arq.window + (arq.max_frame_attempts - 1));
  EXPECT_GT(stats.latency_s, 0.0);
  // All airtime was spent, nothing was ever received.
  EXPECT_GT(ledger.tx_bytes(0), 0.0);
  EXPECT_DOUBLE_EQ(ledger.rx_bytes(1), 0.0);
}

TEST(ArqTransfer, FullCorruptionNeverMisdelivers) {
  ImpairmentConfig impair;
  impair.corrupt_prob = 1.0;
  ArqConfig arq;
  arq.max_frame_attempts = 4;
  for (int i = 0; i < 10; ++i) {
    Ledger ledger(2);
    const ArqTransferStats stats =
        run(200.0, impair, arq, 0.0, 8800 + i, ledger);
    EXPECT_FALSE(stats.delivered);
    EXPECT_GT(stats.corrupt_rx, 0);
    // Corrupt copies are still paid for by the receiver.
    EXPECT_GT(ledger.rx_bytes(1), 0.0);
  }
}

TEST(ArqTransfer, ExponentialBackoffGrowsTheTimeout) {
  // On a dead link, successive timer expiries are spaced by
  // timeout * backoff^k (capped): total dead time grows faster than
  // linear in the timeout count.
  ImpairmentConfig impair;
  ArqConfig arq;
  arq.window = 1;
  arq.max_frame_attempts = 5;
  arq.timeout_s = 0.01;
  arq.backoff_factor = 2.0;
  arq.max_timeout_s = 10.0;
  Ledger ledger(2);
  Rng rng(2);
  const ArqTransferStats stats = run_arq_transfer(
      0, 1, 10.0, impair, arq, rng, [] { return true; }, ledger);
  EXPECT_FALSE(stats.delivered);
  // Expiries at 0.01, +0.02, +0.04, +0.08, +0.16 = 0.31 total.
  EXPECT_NEAR(stats.latency_s, 0.31, 1e-9);
}

TEST(ArqTransfer, DeterministicForSeed) {
  ImpairmentConfig impair;
  impair.jitter_s = 0.01;
  impair.dup_prob = 0.3;
  impair.reorder_prob = 0.3;
  impair.corrupt_prob = 0.1;
  ArqConfig arq;
  for (int i = 0; i < 5; ++i) {
    Ledger la(2), lb(2);
    const ArqTransferStats a = run(400.0, impair, arq, 0.2, 300 + i, la);
    const ArqTransferStats b = run(400.0, impair, arq, 0.2, 300 + i, lb);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.latency_s, b.latency_s);
    EXPECT_EQ(a.data_tx, b.data_tx);
    EXPECT_EQ(a.acks_tx, b.acks_tx);
    EXPECT_EQ(a.dup_rx, b.dup_rx);
    EXPECT_EQ(a.corrupt_rx, b.corrupt_rx);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(la.tx_bytes(0), lb.tx_bytes(0));
    EXPECT_EQ(la.rx_bytes(1), lb.rx_bytes(1));
  }
}

TEST(ArqTransfer, LedgerAndTelemetryReconcileBitwise) {
  // The acceptance contract: every joule the ARQ charges to the Ledger
  // lands in the matching NodeTelemetry lane bit for bit — tx airtime
  // (first tries, retransmissions and ACKs alike) on the sender of each
  // frame, rx on its receiver.
  obs::MetricsRegistry metrics;
  obs::NodeTelemetry telemetry(2);
  Ledger ledger(2);
  ImpairmentConfig impair;
  impair.jitter_s = 0.005;
  impair.dup_prob = 0.2;
  impair.corrupt_prob = 0.1;
  ArqConfig arq;
  ArqTransferStats stats;
  {
    const obs::ObsScope scope(&metrics, nullptr, &telemetry);
    stats = run(1000.0, impair, arq, 0.2, 77, ledger);
  }
  const obs::NodeTelemetrySnapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.tx_bytes[0], ledger.tx_bytes(0));
  EXPECT_EQ(snap.tx_bytes[1], ledger.tx_bytes(1));
  EXPECT_EQ(snap.rx_bytes[0], ledger.rx_bytes(0));
  EXPECT_EQ(snap.rx_bytes[1], ledger.rx_bytes(1));
  EXPECT_GT(ledger.tx_bytes(1), 0.0);  // ACK airtime.
  EXPECT_EQ(snap.retries[0], stats.retransmissions);
  EXPECT_EQ(snap.dup_rx[1], stats.dup_rx);
  EXPECT_EQ(snap.arq_timeouts[0], stats.timeouts);
  EXPECT_EQ(snap.corrupt_rx[0] + snap.corrupt_rx[1], stats.corrupt_rx);
  EXPECT_EQ(static_cast<long long>(metrics.counter("channel.acks")),
            stats.acks_tx);
}

}  // namespace
}  // namespace isomap
