#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "eval/level_map.hpp"
#include "eval/metrics.hpp"
#include "sim/runners.hpp"

namespace isomap {
namespace {

Scenario grid_scenario(std::uint64_t seed = 1, int n = 2500,
                       double side = 50.0, double failures = 0.0) {
  ScenarioConfig config;
  config.num_nodes = n;
  config.field_side = side;
  config.grid_deployment = true;
  config.failure_fraction = failures;
  config.seed = seed;
  return make_scenario(config);
}

TEST(TinyDB, AllNodesReportWithoutFailures) {
  const Scenario s = grid_scenario();
  const TinyDBRun run = run_tinydb(s);
  EXPECT_EQ(run.result.reports_generated, 2500);
  EXPECT_EQ(run.result.reports_delivered, 2500);
  ASSERT_TRUE(run.result.reconstruction.has_value());
}

TEST(TinyDB, ReconstructionMatchesReadingsAtNodes) {
  const Scenario s = grid_scenario();
  const TinyDBRun run = run_tinydb(s);
  ASSERT_TRUE(run.result.reconstruction.has_value());
  for (int id : {0, 77, 1234, 2499}) {
    const Vec2 p = s.deployment.node(id).pos;
    EXPECT_NEAR(run.result.reconstruction->value(p),
                s.readings[static_cast<std::size_t>(id)], 1e-9);
  }
}

TEST(TinyDB, TrafficIsPerHopSum) {
  const Scenario s = grid_scenario(2, 400, 20.0);
  const TinyDBRun run = run_tinydb(s);
  double expected = 0.0;
  for (const auto& node : s.deployment.nodes()) {
    if (!node.alive || !s.tree.reachable(node.id)) continue;
    expected += 6.0 * s.tree.level(node.id);
  }
  EXPECT_NEAR(run.result.traffic_bytes, expected, 1e-9);
  EXPECT_NEAR(run.ledger.total_tx_bytes(), expected, 1e-9);
}

TEST(TinyDB, SinkInterpolationFillsFailedCells) {
  const Scenario s = grid_scenario(3, 2500, 50.0, 0.2);
  const TinyDBRun run = run_tinydb(s);
  EXPECT_LT(run.result.reports_delivered, 2500);
  ASSERT_TRUE(run.result.reconstruction.has_value());
  // Reconstruction still approximates the field at failed nodes.
  double err = 0.0;
  int counted = 0;
  for (const auto& node : s.deployment.nodes()) {
    if (node.alive) continue;
    err += std::abs(run.result.reconstruction->value(node.pos) -
                    s.field.value(node.pos));
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(err / counted, 1.0);
}

TEST(TinyDB, LevelClassificationMatchesGroundTruthMostly) {
  const Scenario s = grid_scenario(4);
  const TinyDBRun run = run_tinydb(s);
  const ContourQuery query = default_query(s.field, 4);
  const auto levels = query.isolevels();
  const LevelMap truth = LevelMap::ground_truth(s.field, levels, 80, 80);
  const LevelMap est = LevelMap::rasterize(
      s.field.bounds(), 80, 80,
      [&](Vec2 p) { return run.result.level_index(p, levels); });
  EXPECT_GT(est.accuracy_against(truth), 0.9);
}

TEST(TinyDB, IsolinesExtractable) {
  const Scenario s = grid_scenario(5);
  const TinyDBRun run = run_tinydb(s);
  const ContourQuery query = default_query(s.field, 4);
  const auto lines = run.result.isolines(query.isolevels()[1], 120);
  EXPECT_FALSE(lines.empty());
}

TEST(TinyDB, EmptyNetworkYieldsNoReconstruction) {
  ScenarioConfig config;
  config.num_nodes = 100;
  config.field_side = 10.0;
  config.grid_deployment = true;
  config.seed = 6;
  Scenario s = make_scenario(config);
  // Kill everything except the sink, which then receives only itself.
  for (auto& node : s.deployment.nodes())
    if (node.id != s.tree.sink()) node.alive = false;
  Ledger ledger(s.deployment.size());
  const TinyDBResult result =
      TinyDBProtocol().run(s.deployment, s.readings, s.tree, ledger);
  EXPECT_EQ(result.reports_delivered, 1);  // The sink's own reading.
  EXPECT_TRUE(result.reconstruction.has_value());
}

TEST(Inlr, AggregationReducesRegionsBelowReports) {
  const Scenario s = grid_scenario(7);
  const InlrRun run = run_inlr(s);
  EXPECT_EQ(run.result.reports_generated, 2500);
  EXPECT_GT(run.result.regions_at_sink, 0);
  EXPECT_LT(run.result.regions_at_sink, run.result.reports_generated);
}

TEST(Inlr, TrafficStaysBelowTinyDBButSameOrder) {
  const Scenario s = grid_scenario(8);
  const TinyDBRun tinydb = run_tinydb(s);
  const InlrRun inlr = run_inlr(s);
  EXPECT_LT(inlr.result.traffic_bytes, tinydb.result.traffic_bytes * 1.3);
  EXPECT_GT(inlr.result.traffic_bytes, tinydb.result.traffic_bytes * 0.2);
}

TEST(Inlr, ComputationMuchHeavierThanTinyDB) {
  const Scenario s = grid_scenario(9);
  const TinyDBRun tinydb = run_tinydb(s);
  const InlrRun inlr = run_inlr(s);
  EXPECT_GT(inlr.ledger.total_ops(), 10.0 * tinydb.ledger.total_ops());
}

TEST(Inlr, PerNodeComputationGrowsWithNetworkSize) {
  // On scale-invariant terrain (constant gradients, so merge behaviour is
  // comparable across sizes) the root funnels more regions in a larger
  // network, so per-node computation grows — the Fig. 15 claim.
  auto sloped = [](int n, double side) {
    ScenarioConfig config;
    config.num_nodes = n;
    config.field_side = side;
    config.grid_deployment = true;
    config.field = FieldKind::kSloped;
    config.seed = 10;
    return make_scenario(config);
  };
  const InlrRun small = run_inlr(sloped(400, 20.0));
  const InlrRun large = run_inlr(sloped(2500, 50.0));
  EXPECT_GT(large.ledger.mean_ops(), small.ledger.mean_ops());
}

TEST(EScan, TuplesAggregateAndTrafficIsLinear) {
  const Scenario s = grid_scenario(11);
  const EScanRun run = run_escan(s);
  EXPECT_EQ(run.result.reports_generated, 2500);
  EXPECT_GT(run.result.tuples_at_sink, 0);
  EXPECT_LT(run.result.tuples_at_sink, 2500);
  EXPECT_GT(run.result.traffic_bytes, 0.0);
}

TEST(EScan, TighterToleranceKeepsMoreTuples) {
  const Scenario s = grid_scenario(12);
  EScanOptions tight;
  tight.value_tolerance = 0.2;
  EScanOptions loose;
  loose.value_tolerance = 5.0;
  const EScanRun a = run_escan(s, tight);
  const EScanRun b = run_escan(s, loose);
  EXPECT_GE(a.result.tuples_at_sink, b.result.tuples_at_sink);
}

TEST(Suppression, PartitionsNodesIntoSentAndSuppressed) {
  const Scenario s = grid_scenario(13);
  const SuppressionRun run = run_suppression(s);
  int reachable_alive = 0;
  for (const auto& node : s.deployment.nodes())
    if (node.alive && s.tree.reachable(node.id)) ++reachable_alive;
  EXPECT_EQ(run.result.reports_generated + run.result.reports_suppressed,
            reachable_alive);
  EXPECT_GT(run.result.reports_suppressed, 0);
  EXPECT_GT(run.result.reports_generated, 0);
}

TEST(Suppression, SuppressionBoundedByNeighbourhood) {
  // Generated reports remain a constant fraction of n (Theta(n)): going
  // from n=625 to n=2500 at the same density roughly quadruples reports.
  const SuppressionRun small = run_suppression(grid_scenario(14, 625, 25.0));
  const SuppressionRun large = run_suppression(grid_scenario(14, 2500, 50.0));
  const double growth = static_cast<double>(large.result.reports_generated) /
                        std::max(1, small.result.reports_generated);
  EXPECT_GT(growth, 2.0);
  EXPECT_LT(growth, 8.0);
}

TEST(Suppression, HigherToleranceSuppressesMore) {
  const Scenario s = grid_scenario(15);
  SuppressionOptions tight;
  tight.value_tolerance = 0.1;
  SuppressionOptions loose;
  loose.value_tolerance = 2.0;
  EXPECT_GT(run_suppression(s, loose).result.reports_suppressed,
            run_suppression(s, tight).result.reports_suppressed);
}

TEST(Inlr, SinkMapReconstructsCoarseField) {
  const Scenario s = grid_scenario(20);
  const InlrRun run = run_inlr(s);
  ASSERT_FALSE(run.result.sink_regions.empty());
  const auto levels = default_query(s.field, 4).isolevels();
  const LevelMap truth = LevelMap::ground_truth(s.field, levels, 60, 60);
  const LevelMap est = LevelMap::rasterize(
      s.field.bounds(), 60, 60,
      [&](Vec2 p) { return run.result.level_index(p, levels); });
  // The count-weighted region models are coarse, but still far above
  // the ~1/(levels+1) chance level.
  EXPECT_GT(est.accuracy_against(truth), 0.4);
  // The estimate at a region centre equals that region's model value.
  const auto& region = run.result.sink_regions.front();
  const double v = run.result.estimated_value(region.center());
  EXPECT_TRUE(std::isfinite(v));
}

TEST(Inlr, EmptySinkClassifiesZero) {
  InlrResult empty;
  EXPECT_TRUE(std::isnan(empty.estimated_value({1, 1})));
  EXPECT_EQ(empty.level_index({1, 1}, {5.0}), 0);
}

TEST(EScan, SinkMapValuesWithinTupleIntervals) {
  const Scenario s = grid_scenario(21);
  const EScanRun run = run_escan(s);
  ASSERT_FALSE(run.result.sink_tuples.empty());
  for (const auto& tuple : run.result.sink_tuples) {
    EXPECT_LE(tuple.vmin, tuple.vmax);
    EXPECT_GE(tuple.mid(), tuple.vmin);
    EXPECT_LE(tuple.mid(), tuple.vmax);
  }
  // Classification produces a spread of levels over the field.
  const auto levels = default_query(s.field, 4).isolevels();
  std::set<int> seen;
  for (int i = 0; i < 100; ++i)
    seen.insert(run.result.level_index(
        {0.5 * (i % 10) * 10.0 + 2.5, 0.5 * (i / 10) * 10.0 + 2.5}, levels));
  EXPECT_GE(seen.size(), 2u);
}

TEST(EScan, EmptySinkClassifiesZero) {
  EScanResult empty;
  EXPECT_TRUE(std::isnan(empty.estimated_value({1, 1})));
  EXPECT_EQ(empty.level_index({1, 1}, {5.0}), 0);
}

TEST(Baselines, IsoMapBeatsAllOnTraffic) {
  // The headline comparison at the paper's default configuration.
  const Scenario s = grid_scenario(16);
  const IsoMapRun isomap = run_isomap(s, 4);
  const TinyDBRun tinydb = run_tinydb(s);
  const InlrRun inlr = run_inlr(s);
  const SuppressionRun sup = run_suppression(s);
  EXPECT_LT(isomap.result.report_traffic_bytes,
            0.25 * tinydb.result.traffic_bytes);
  EXPECT_LT(isomap.result.report_traffic_bytes,
            0.5 * inlr.result.traffic_bytes);
  EXPECT_LT(isomap.result.report_traffic_bytes,
            0.5 * sup.result.traffic_bytes);
}

}  // namespace
}  // namespace isomap
