// Capsule codec + run-capsule record/replay tests.
//
// The fuzz-ish decoder cases (TruncationNeverCrashes / ByteFlips...) are
// the untrusted-input contract: decoding arbitrary bytes must either
// succeed or throw CapsuleError — never crash, never read out of bounds.
// The sanitizer CI job runs this binary under ASan/UBSan to enforce the
// "never" part. GoldenCorpusReplays makes the tests/golden/ corpus a
// tier-1 gate as well as a CI job.

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.hpp"
#include "sim/run_capsule.hpp"
#include "sim/runners.hpp"
#include "util/capsule.hpp"

namespace isomap::capsule {
namespace {

// ---------------------------------------------------------------------------
// Codec primitives.

TEST(CapsuleCodec, VarintRoundTrip) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0xDEADBEEFULL,
                                  std::numeric_limits<std::uint64_t>::max()};
  Writer w;
  for (std::uint64_t v : values) w.put_u64(v);
  Reader r(w.bytes());
  for (std::uint64_t v : values) EXPECT_EQ(r.get_u64(), v);
  EXPECT_TRUE(r.done());
}

TEST(CapsuleCodec, ZigzagRoundTrip) {
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -64,
                                 64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  Writer w;
  for (std::int64_t v : values) w.put_i64(v);
  Reader r(w.bytes());
  for (std::int64_t v : values) EXPECT_EQ(r.get_i64(), v);
  EXPECT_TRUE(r.done());
}

TEST(CapsuleCodec, F64BitExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           std::nextafter(1.0, 2.0)};
  Writer w;
  for (double v : values) w.put_f64(v);
  EXPECT_EQ(w.size(), 8 * std::size(values));  // fixed width, not varint
  Reader r(w.bytes());
  for (double v : values) {
    const double got = r.get_f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(CapsuleCodec, StringsAndBools) {
  Writer w;
  w.put_bool(true);
  w.put_string("");
  w.put_string(std::string("bin\0ary\n", 8));
  w.put_bool(false);
  Reader r(w.bytes());
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string("bin\0ary\n", 8));
  EXPECT_FALSE(r.get_bool());
  EXPECT_TRUE(r.done());
}

TEST(CapsuleCodec, MalformedVarintsThrow) {
  // Unterminated: continuation bit set on every byte.
  const std::string unterminated(11, '\x80');
  EXPECT_THROW(Reader(unterminated).get_u64(), CapsuleError);
  // Ten full groups overflow 64 bits unless the last is 0 or 1.
  std::string overflow(9, '\x80');
  overflow += '\x02';
  EXPECT_THROW(Reader(overflow).get_u64(), CapsuleError);
  // Truncated mid-varint.
  EXPECT_THROW(Reader(std::string(1, '\x80')).get_u64(), CapsuleError);
  // Truncated fixed-width / length-prefixed reads.
  EXPECT_THROW(Reader(std::string(7, 'x')).get_f64(), CapsuleError);
  Writer w;
  w.put_string("hello");
  EXPECT_THROW(Reader(std::string_view(w.bytes()).substr(0, 3)).get_string(),
               CapsuleError);
  // Boolean out of range.
  EXPECT_THROW(Reader(std::string(1, '\x02')).get_bool(), CapsuleError);
}

TEST(CapsuleCodec, CountGuards) {
  Writer w;
  w.put_u64(1000);
  Reader r1(w.bytes());
  EXPECT_THROW(r1.get_count(999), CapsuleError);
  // 1000 items of >= 8 bytes each cannot fit in a 2-byte buffer.
  Reader r2(w.bytes());
  EXPECT_THROW(r2.get_count(100000, 8), CapsuleError);
}

// ---------------------------------------------------------------------------
// Container framing.

TEST(CapsuleContainer, RoundTripAndFind) {
  Capsule c;
  c.add(7, "alpha");
  c.add(3, std::string("\0\x80payload", 9));
  const std::string bytes = c.encode();
  const Capsule back = Capsule::decode(bytes);
  EXPECT_EQ(back.version, kFormatVersion);
  ASSERT_EQ(back.sections.size(), 2u);
  ASSERT_NE(back.find(3), nullptr);
  EXPECT_EQ(back.find(3)->payload, std::string("\0\x80payload", 9));
  EXPECT_EQ(back.find(42), nullptr);
  // Canonical: re-encoding a decoded capsule reproduces the bytes.
  EXPECT_EQ(back.encode(), bytes);
}

TEST(CapsuleContainer, RejectsBadMagicAndVersions) {
  EXPECT_THROW(Capsule::decode(""), CapsuleError);
  EXPECT_THROW(Capsule::decode("not a capsule at all"), CapsuleError);
  std::string bytes = Capsule{}.encode();
  bytes[0] ^= 0x01;
  EXPECT_THROW(Capsule::decode(bytes), CapsuleError);

  const std::string magic(kMagic, sizeof(kMagic));
  EXPECT_THROW(Capsule::decode(magic + '\x00'), CapsuleError);  // version 0
  EXPECT_THROW(Capsule::decode(magic + '\x63'), CapsuleError);  // version 99
  EXPECT_THROW(Capsule::decode(magic), CapsuleError);  // missing version
}

TEST(CapsuleContainer, RejectsTruncatedSection) {
  Capsule c;
  c.add(1, "0123456789");
  const std::string bytes = c.encode();
  // magic + version alone is a valid empty capsule; every longer prefix
  // cuts the section mid-frame and must throw.
  EXPECT_TRUE(Capsule::decode(bytes.substr(0, sizeof(kMagic) + 1))
                  .sections.empty());
  for (std::size_t cut = sizeof(kMagic) + 2; cut < bytes.size(); ++cut)
    EXPECT_THROW(Capsule::decode(bytes.substr(0, cut)), CapsuleError)
        << "prefix of " << cut << " bytes decoded";
}

// ---------------------------------------------------------------------------
// Run-capsule fixtures.

std::vector<double> sense(const Scenario& scenario) {
  std::vector<double> readings(
      static_cast<std::size_t>(scenario.deployment.size()), 0.0);
  for (const auto& node : scenario.deployment.nodes())
    if (node.alive)
      readings[static_cast<std::size_t>(node.id)] =
          scenario.field.value(node.pos);
  return readings;
}

RunCapsule small_single_shot() {
  ScenarioConfig config;
  config.num_nodes = 64;
  config.field_side = 8.0;
  config.seed = 3;
  const Scenario scenario = make_scenario(config);
  return record_single_shot(scenario, isomap_options(scenario, 3),
                            "test: small single shot");
}

RunCapsule small_continuous() {
  ScenarioConfig config;
  config.num_nodes = 64;
  config.field_side = 8.0;
  config.seed = 5;
  const Scenario scenario = make_scenario(config);
  ContinuousOptions options;
  options.base = isomap_options(scenario, 3);
  options.engine = ContinuousEngine::kIncremental;
  std::vector<std::vector<double>> rounds;
  std::vector<double> readings = sense(scenario);
  for (int r = 0; r < 3; ++r) {
    rounds.push_back(readings);
    for (double& v : readings) v += 0.05;  // uniform drift between rounds
  }
  return record_continuous(scenario, options, std::move(rounds),
                           "test: small continuous");
}

// ---------------------------------------------------------------------------
// Record / save / load / replay.

TEST(RunCapsuleTest, SingleShotWireRoundTripIsCanonical) {
  const RunCapsule run = small_single_shot();
  const std::string bytes = to_capsule(run).encode();
  const RunCapsule back = from_capsule(Capsule::decode(bytes));
  EXPECT_EQ(back.kind, RunKind::kSingleShot);
  EXPECT_EQ(back.label, run.label);
  EXPECT_EQ(back.rounds, run.rounds);
  EXPECT_FALSE(diff_outputs(run, back).has_value());
  // decode(encode(x)) re-encodes to the identical bytes.
  EXPECT_EQ(to_capsule(back).encode(), bytes);
}

TEST(RunCapsuleTest, SingleShotReplayMatchesRecording) {
  const RunCapsule run = small_single_shot();
  EXPECT_FALSE(check_fault_plan(run).has_value());
  const RunCapsule fresh = replay(run);
  const auto diff = diff_outputs(run, fresh);
  EXPECT_FALSE(diff.has_value())
      << diff->where << ": " << diff->detail;
}

TEST(RunCapsuleTest, ContinuousReplayMatchesRecording) {
  const RunCapsule run = small_continuous();
  ASSERT_EQ(run.round_outputs.size(), 3u);
  const std::string bytes = to_capsule(run).encode();
  const RunCapsule back = from_capsule(Capsule::decode(bytes));
  EXPECT_FALSE(diff_outputs(run, back).has_value());
  const RunCapsule fresh = replay(back);
  const auto diff = diff_outputs(run, fresh);
  EXPECT_FALSE(diff.has_value())
      << diff->where << ": " << diff->detail;
}

TEST(RunCapsuleTest, SaveLoadRoundTrip) {
  const RunCapsule run = small_single_shot();
  const std::string path = "capsule_test_tmp.capsule";
  ASSERT_TRUE(save(path, run));
  const RunCapsule back = load(path);
  std::remove(path.c_str());
  EXPECT_FALSE(diff_outputs(run, back).has_value());
}

TEST(RunCapsuleTest, DiffPinpointsPerturbedOutput) {
  const RunCapsule run = small_single_shot();
  RunCapsule tampered = run;
  ASSERT_FALSE(tampered.single.sink_reports.empty());
  tampered.single.sink_reports[0].position.x = std::nextafter(
      tampered.single.sink_reports[0].position.x, 1e300);
  const auto diff = diff_outputs(run, tampered);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->where.find("single.sink_reports["), std::string::npos)
      << diff->where;

  RunCapsule counter = run;
  counter.single.delivered_reports += 1;
  const auto diff2 = diff_outputs(run, counter);
  ASSERT_TRUE(diff2.has_value());
  EXPECT_EQ(diff2->where, "single.delivered_reports");
}

TEST(RunCapsuleTest, UnknownSectionsAreSkipped) {
  // A future writer adds a section this reader has no tag for: decoding
  // must ignore it rather than fail (forward compatibility).
  const RunCapsule run = small_single_shot();
  Capsule c = to_capsule(run);
  c.add(9999, "from-the-future");
  const RunCapsule back = from_capsule(Capsule::decode(c.encode()));
  EXPECT_FALSE(diff_outputs(run, back).has_value());
}

TEST(RunCapsuleTest, ReplayStreamsTrace) {
  const RunCapsule run = small_single_shot();
  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out);
  const RunCapsule fresh = replay(run, &sink);
  sink.flush();
  EXPECT_GT(sink.events(), 0u);
  EXPECT_NE(trace_out.str().find("\"kind\""), std::string::npos);
  // Observing the run must not perturb it.
  EXPECT_FALSE(diff_outputs(run, fresh).has_value());
}

TEST(RunCapsuleTest, PreTelemetryCapsulesReplayBitIdentically) {
  // Capsules recorded before the telemetry section existed carry no
  // tag-11 section (the committed golden corpus is exactly this). They
  // must keep replaying bit-identically: replay records a fresh
  // telemetry table, and diff_outputs only compares telemetry when BOTH
  // sides carry one.
  const RunCapsule run = small_single_shot();
  ASSERT_TRUE(run.telemetry.has_value());
  Capsule c = to_capsule(run);
  std::erase_if(c.sections,
                [](const Section& s) { return s.tag == 11; });
  const RunCapsule old = from_capsule(Capsule::decode(c.encode()));
  EXPECT_FALSE(old.telemetry.has_value());
  const RunCapsule fresh = replay(old);
  EXPECT_TRUE(fresh.telemetry.has_value());
  const auto diff = diff_outputs(old, fresh);
  EXPECT_FALSE(diff.has_value()) << diff->where << ": " << diff->detail;
  // The stripped capsule's outputs agree with the original's too.
  EXPECT_FALSE(diff_outputs(run, old).has_value());
}

TEST(RunCapsuleTest, TelemetrySectionRoundTripsBitwise) {
  const RunCapsule run = small_single_shot();
  ASSERT_TRUE(run.telemetry.has_value());
  const RunCapsule back =
      from_capsule(Capsule::decode(to_capsule(run).encode()));
  ASSERT_TRUE(back.telemetry.has_value());
  EXPECT_EQ(back.telemetry->tx_bytes, run.telemetry->tx_bytes);
  EXPECT_EQ(back.telemetry->rx_bytes, run.telemetry->rx_bytes);
  EXPECT_EQ(back.telemetry->ops, run.telemetry->ops);
  EXPECT_EQ(back.telemetry->hops, run.telemetry->hops);
  EXPECT_EQ(back.telemetry->generated, run.telemetry->generated);
  EXPECT_EQ(back.telemetry->delivered, run.telemetry->delivered);
  EXPECT_EQ(back.telemetry->lost_channel, run.telemetry->lost_channel);
  EXPECT_EQ(back.telemetry->lost_crash, run.telemetry->lost_crash);
  // A replay of the telemetry-carrying capsule reproduces the stored
  // table bit for bit — diff_outputs now covers the telemetry arrays.
  const RunCapsule fresh = replay(back);
  ASSERT_TRUE(fresh.telemetry.has_value());
  const auto diff = diff_outputs(back, fresh);
  EXPECT_FALSE(diff.has_value()) << diff->where << ": " << diff->detail;
}

RunCapsule impaired_single_shot() {
  ScenarioConfig config;
  config.num_nodes = 64;
  config.field_side = 8.0;
  config.seed = 13;
  const Scenario scenario = make_scenario(config);
  IsoMapOptions options = isomap_options(scenario, 3);
  options.link_burst = GilbertElliottParams{};
  ImpairmentConfig impair;
  impair.jitter_s = 0.006;
  impair.dup_prob = 0.2;
  impair.reorder_prob = 0.1;
  impair.corrupt_prob = 0.08;
  options.link_impair = impair;
  options.link_arq.window = 4;
  options.link_arq.frame_payload_bytes = 24.0;
  options.link_arq.max_frame_attempts = 5;
  return record_single_shot(scenario, options,
                            "test: impaired single shot");
}

TEST(RunCapsuleTest, LinkImpairSectionRoundTripsAndReplays) {
  const RunCapsule run = impaired_single_shot();
  // The impairment section (tag 12) is present exactly when the recorded
  // run was impaired; unimpaired capsules stay byte-compatible.
  EXPECT_NE(to_capsule(run).find(12), nullptr);
  EXPECT_EQ(to_capsule(small_single_shot()).find(12), nullptr);

  const RunCapsule back =
      from_capsule(Capsule::decode(to_capsule(run).encode()));
  ASSERT_TRUE(back.options.link_impair.has_value());
  EXPECT_EQ(back.options.link_impair->jitter_s, 0.006);
  EXPECT_EQ(back.options.link_impair->dup_prob, 0.2);
  EXPECT_EQ(back.options.link_impair->corrupt_prob, 0.08);
  EXPECT_EQ(back.options.link_arq.window, 4);
  EXPECT_EQ(back.options.link_arq.frame_payload_bytes, 24.0);
  EXPECT_EQ(back.options.link_arq.max_frame_attempts, 5);
  // Measured end-to-end latency survives the wire bit for bit.
  EXPECT_GT(run.single.e2e_last_latency_s, 0.0);
  EXPECT_EQ(back.single.e2e_first_latency_s, run.single.e2e_first_latency_s);
  EXPECT_EQ(back.single.e2e_last_latency_s, run.single.e2e_last_latency_s);
  EXPECT_EQ(back.single.e2e_mean_latency_s, run.single.e2e_mean_latency_s);
  // Replaying the decoded capsule reproduces every output — including
  // the latency fields and the impairment telemetry counters.
  const RunCapsule fresh = replay(back);
  const auto diff = diff_outputs(back, fresh);
  EXPECT_FALSE(diff.has_value()) << diff->where << ": " << diff->detail;
  ASSERT_TRUE(back.telemetry.has_value());
  long long dup_rx = 0;
  for (const long long v : back.telemetry->dup_rx) dup_rx += v;
  EXPECT_GT(dup_rx, 0);
}

TEST(RunCapsuleTest, ImpairedDiffCatchesLatencyPerturbation) {
  const RunCapsule run = impaired_single_shot();
  RunCapsule bent = run;
  bent.single.e2e_mean_latency_s += 1e-9;
  const auto diff = diff_outputs(run, bent);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(diff->where, "single.e2e_mean_latency_s");
}

// ---------------------------------------------------------------------------
// Fuzz-ish decoder robustness. Run under ASan/UBSan in CI.

/// from_capsule over arbitrary bytes must either produce a value or throw
/// CapsuleError. Any other exception (or a sanitizer report) is a bug.
void expect_clean_decode(const std::string& bytes) {
  try {
    (void)from_capsule(Capsule::decode(bytes));
  } catch (const CapsuleError&) {
    // Expected for malformed input.
  }
}

TEST(CapsuleFuzz, TruncationNeverCrashes) {
  const std::string bytes = to_capsule(small_single_shot()).encode();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    expect_clean_decode(bytes.substr(0, cut));
}

TEST(CapsuleFuzz, ByteFlipsNeverCrash) {
  const std::string bytes = to_capsule(small_single_shot()).encode();
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (const char mask : {'\x01', '\x80', '\xFF'}) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ mask);
      expect_clean_decode(mutated);
    }
  }
}

TEST(CapsuleFuzz, CorruptCountsCannotBalloonAllocations) {
  // A section whose node count claims far more items than the payload
  // holds must be rejected up front (not after a giant resize).
  const RunCapsule run = small_single_shot();
  Capsule c = to_capsule(run);
  for (Section& s : c.sections) {
    Writer w;
    w.put_u64((1ULL << 22) - 1);  // huge but within the count cap
    s.payload = w.take();
  }
  EXPECT_THROW((void)from_capsule(c), CapsuleError);
}

// ---------------------------------------------------------------------------
// Golden corpus: every committed capsule replays bit-identically.

TEST(GoldenCorpus, AllGoldensReplayBitIdentically) {
  const std::string dir = ISOMAP_GOLDEN_DIR;
  const char* names[] = {"single_small", "continuous_drift",
                         "chaos_crash_burst", "band_edge_ulp",
                         "impaired_arq"};
  for (const char* name : names) {
    SCOPED_TRACE(name);
    const RunCapsule stored = load(dir + "/" + name + ".capsule");
    const auto plan_diff = check_fault_plan(stored);
    EXPECT_FALSE(plan_diff.has_value())
        << plan_diff->where << ": " << plan_diff->detail;
    const RunCapsule fresh = replay(stored);
    const auto diff = diff_outputs(stored, fresh);
    EXPECT_FALSE(diff.has_value()) << diff->where << ": " << diff->detail;
  }
}

}  // namespace
}  // namespace isomap::capsule
