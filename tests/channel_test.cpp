#include <gtest/gtest.h>

#include "net/channel.hpp"

namespace isomap {
namespace {

TEST(Channel, PerfectAlwaysDelivers) {
  Channel channel;
  Ledger ledger(2);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(channel.send(0, 1, 10.0, ledger));
  EXPECT_DOUBLE_EQ(ledger.tx_bytes(0), 1000.0);
  EXPECT_DOUBLE_EQ(ledger.rx_bytes(1), 1000.0);
  EXPECT_EQ(channel.drops(), 0);
  EXPECT_DOUBLE_EQ(channel.delivery_probability(), 1.0);
}

TEST(Channel, InvalidParametersThrow) {
  EXPECT_THROW(Channel(1.0, 3, Rng(1)), std::invalid_argument);
  EXPECT_THROW(Channel(-0.1, 3, Rng(1)), std::invalid_argument);
  EXPECT_THROW(Channel(0.5, -1, Rng(1)), std::invalid_argument);
}

TEST(Channel, DeliveryProbabilityFormula) {
  Channel channel(0.5, 1, Rng(1));
  EXPECT_DOUBLE_EQ(channel.delivery_probability(), 0.75);
  Channel no_retry(0.3, 0, Rng(1));
  EXPECT_DOUBLE_EQ(no_retry.delivery_probability(), 0.7);
}

TEST(Channel, EmpiricalDeliveryMatchesFormula) {
  Channel channel(0.4, 2, Rng(7));
  Ledger ledger(2);
  int delivered = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    delivered += channel.send(0, 1, 1.0, ledger) ? 1 : 0;
  const double expected = 1.0 - 0.4 * 0.4 * 0.4;  // 0.936
  EXPECT_NEAR(static_cast<double>(delivered) / kTrials, expected, 0.01);
  EXPECT_EQ(channel.drops(), kTrials - delivered);
}

TEST(Channel, LostAttemptsChargeTxOnly) {
  // With certain loss on every try (p close to 1, no retries), the sender
  // pays airtime while the receiver pays nothing.
  Channel channel(0.999, 0, Rng(3));
  Ledger ledger(2);
  int delivered = 0;
  for (int i = 0; i < 1000; ++i)
    delivered += channel.send(0, 1, 5.0, ledger) ? 1 : 0;
  EXPECT_LT(delivered, 20);
  EXPECT_DOUBLE_EQ(ledger.tx_bytes(0), 5000.0);
  EXPECT_DOUBLE_EQ(ledger.rx_bytes(1), 5.0 * delivered);
}

TEST(Channel, RetriesIncreaseAttemptCount) {
  Channel channel(0.5, 3, Rng(11));
  Ledger ledger(2);
  for (int i = 0; i < 1000; ++i) channel.send(0, 1, 1.0, ledger);
  // Expected attempts per send: sum_{k=0..3} 0.5^k = 1.875.
  EXPECT_NEAR(static_cast<double>(channel.attempts()) / 1000.0, 1.875, 0.1);
}

TEST(Channel, DeterministicForSeed) {
  Channel a(0.3, 2, Rng(5));
  Channel b(0.3, 2, Rng(5));
  Ledger la(2), lb(2);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(a.send(0, 1, 1.0, la), b.send(0, 1, 1.0, lb));
}

}  // namespace
}  // namespace isomap
