#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <utility>

#include "net/channel.hpp"
#include "obs/obs.hpp"

namespace isomap {
namespace {

TEST(Channel, PerfectAlwaysDelivers) {
  Channel channel;
  Ledger ledger(2);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(channel.send(0, 1, 10.0, ledger));
  EXPECT_DOUBLE_EQ(ledger.tx_bytes(0), 1000.0);
  EXPECT_DOUBLE_EQ(ledger.rx_bytes(1), 1000.0);
  EXPECT_EQ(channel.drops(), 0);
  EXPECT_DOUBLE_EQ(channel.delivery_probability(), 1.0);
}

TEST(Channel, InvalidParametersThrow) {
  EXPECT_THROW(Channel(1.0, 3, Rng(1)), std::invalid_argument);
  EXPECT_THROW(Channel(-0.1, 3, Rng(1)), std::invalid_argument);
  EXPECT_THROW(Channel(0.5, -1, Rng(1)), std::invalid_argument);
}

TEST(Channel, DeliveryProbabilityFormula) {
  Channel channel(0.5, 1, Rng(1));
  EXPECT_DOUBLE_EQ(channel.delivery_probability(), 0.75);
  Channel no_retry(0.3, 0, Rng(1));
  EXPECT_DOUBLE_EQ(no_retry.delivery_probability(), 0.7);
}

TEST(Channel, EmpiricalDeliveryMatchesFormula) {
  Channel channel(0.4, 2, Rng(7));
  Ledger ledger(2);
  int delivered = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    delivered += channel.send(0, 1, 1.0, ledger) ? 1 : 0;
  const double expected = 1.0 - 0.4 * 0.4 * 0.4;  // 0.936
  EXPECT_NEAR(static_cast<double>(delivered) / kTrials, expected, 0.01);
  EXPECT_EQ(channel.drops(), kTrials - delivered);
}

TEST(Channel, LostAttemptsChargeTxOnly) {
  // With certain loss on every try (p close to 1, no retries), the sender
  // pays airtime while the receiver pays nothing.
  Channel channel(0.999, 0, Rng(3));
  Ledger ledger(2);
  int delivered = 0;
  for (int i = 0; i < 1000; ++i)
    delivered += channel.send(0, 1, 5.0, ledger) ? 1 : 0;
  EXPECT_LT(delivered, 20);
  EXPECT_DOUBLE_EQ(ledger.tx_bytes(0), 5000.0);
  EXPECT_DOUBLE_EQ(ledger.rx_bytes(1), 5.0 * delivered);
}

TEST(Channel, RetriesIncreaseAttemptCount) {
  Channel channel(0.5, 3, Rng(11));
  Ledger ledger(2);
  for (int i = 0; i < 1000; ++i) channel.send(0, 1, 1.0, ledger);
  // Expected attempts per send: sum_{k=0..3} 0.5^k = 1.875.
  EXPECT_NEAR(static_cast<double>(channel.attempts()) / 1000.0, 1.875, 0.1);
}

TEST(Channel, DeterministicForSeed) {
  Channel a(0.3, 2, Rng(5));
  Channel b(0.3, 2, Rng(5));
  Ledger la(2), lb(2);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(a.send(0, 1, 1.0, la), b.send(0, 1, 1.0, lb));
}

TEST(Channel, NoRetryDropChargesOnlyLostTx) {
  // max_retries = 0: a drop is one paid transmission and zero received
  // bytes — the receiver never decodes, so it never pays RX.
  Channel channel(0.5, 0, Rng(9));
  Ledger ledger(2);
  int delivered = 0;
  const int kSends = 4000;
  for (int i = 0; i < kSends; ++i)
    delivered += channel.send(0, 1, 3.0, ledger) ? 1 : 0;
  EXPECT_EQ(channel.attempts(), kSends);  // No retries ever.
  EXPECT_DOUBLE_EQ(ledger.tx_bytes(0), 3.0 * kSends);
  EXPECT_DOUBLE_EQ(ledger.rx_bytes(1), 3.0 * delivered);
  EXPECT_EQ(channel.drops(), kSends - delivered);
}

TEST(GilbertElliott, ValidatesParameters) {
  GilbertElliottParams p;
  EXPECT_NO_THROW(Channel(p, 3, Rng(1)));
  p.p_enter_burst = 1.5;
  EXPECT_THROW(Channel(p, 3, Rng(1)), std::invalid_argument);
  p = {};
  p.p_exit_burst = 0.0;  // Would trap the chain in the burst state.
  EXPECT_THROW(Channel(p, 3, Rng(1)), std::invalid_argument);
  p = {};
  p.loss_good = 1.0;  // Certain loss even in the good state.
  EXPECT_THROW(Channel(p, 3, Rng(1)), std::invalid_argument);
  p = {};
  p.loss_bad = -0.1;
  EXPECT_THROW(Channel(p, 3, Rng(1)), std::invalid_argument);
  p = {};
  EXPECT_THROW(Channel(p, -1, Rng(1)), std::invalid_argument);
}

TEST(GilbertElliott, StationaryLossMatchesEmpirically) {
  GilbertElliottParams p{0.05, 0.2, 0.0, 0.8};
  // stationary_bad = 0.05 / 0.25 = 0.2; mean loss = 0.2 * 0.8 = 0.16.
  EXPECT_NEAR(p.stationary_bad(), 0.2, 1e-12);
  EXPECT_NEAR(p.mean_loss(), 0.16, 1e-12);
  Channel channel(p, 0, Rng(17));
  Ledger ledger(2);
  int delivered = 0;
  const int kSends = 50000;
  for (int i = 0; i < kSends; ++i)
    delivered += channel.send(0, 1, 1.0, ledger) ? 1 : 0;
  EXPECT_NEAR(1.0 - static_cast<double>(delivered) / kSends, p.mean_loss(),
              0.01);
}

TEST(GilbertElliott, LossesComeInBursts) {
  // Compare the drop autocorrelation of a GE channel against an i.i.d.
  // channel of the same mean loss: bursts make consecutive drops far more
  // likely.
  const GilbertElliottParams p{0.02, 0.1, 0.0, 1.0};  // mean loss 1/6.
  const auto consecutive_drop_rate = [](Channel channel) {
    Ledger ledger(2);
    int pairs = 0, drops = 0;
    bool prev_drop = false;
    for (int i = 0; i < 30000; ++i) {
      const bool drop = !channel.send(0, 1, 1.0, ledger);
      if (drop) {
        ++drops;
        if (prev_drop) ++pairs;
      }
      prev_drop = drop;
    }
    return drops ? static_cast<double>(pairs) / drops : 0.0;
  };
  const double bursty = consecutive_drop_rate(Channel(p, 0, Rng(23)));
  const double iid =
      consecutive_drop_rate(Channel(p.mean_loss(), 0, Rng(23)));
  EXPECT_GT(bursty, 2.0 * iid);
}

TEST(GilbertElliott, DeterministicPerSeedAndNeverDropsWhenQuiet) {
  const GilbertElliottParams p{0.03, 0.25, 0.01, 0.9};
  Channel a(p, 2, Rng(31));
  Channel b(p, 2, Rng(31));
  Ledger la(2), lb(2);
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(a.send(0, 1, 1.0, la), b.send(0, 1, 1.0, lb));
  EXPECT_TRUE(a.bursty());

  // p_enter = 0 and loss_good = 0: the chain never leaves the good state
  // and never drops; the channel still reports itself as bursty (not
  // perfect) but behaves losslessly.
  Channel quiet(GilbertElliottParams{0.0, 0.5, 0.0, 0.9}, 0, Rng(1));
  Ledger ledger(2);
  for (int i = 0; i < 1000; ++i)
    EXPECT_TRUE(quiet.send(0, 1, 1.0, ledger));
  EXPECT_EQ(quiet.drops(), 0);
}

TEST(Channel, MakeSelectsIidOrBurstMode) {
  const Channel iid = Channel::make(0.2, 3, 42, std::nullopt);
  EXPECT_FALSE(iid.bursty());
  EXPECT_EQ(iid.max_retries(), 3);
  const Channel ge =
      Channel::make(0.2, 3, 42, GilbertElliottParams{0.02, 0.25, 0.0, 0.8});
  EXPECT_TRUE(ge.bursty());  // The burst spec wins over the scalar loss.
  const Channel perfect = Channel::make(0.0, 3, 42, std::nullopt);
  EXPECT_TRUE(perfect.perfect());
}

TEST(Channel, RetryAndDropCountersReachTheRegistry) {
  obs::MetricsRegistry metrics;
  {
    const obs::ObsScope scope(&metrics, nullptr);
    Channel channel(0.5, 2, Rng(13));
    Ledger ledger(2);
    for (int i = 0; i < 2000; ++i) channel.send(0, 1, 1.0, ledger);
    EXPECT_EQ(static_cast<long long>(metrics.counter("channel.retries")),
              channel.retries());
    EXPECT_EQ(static_cast<long long>(metrics.counter("channel.drops")),
              channel.drops());
    EXPECT_GT(metrics.counter("channel.retries"), 0.0);
    EXPECT_GT(metrics.counter("channel.drops"), 0.0);
  }
  // Outside the scope the counters no-op: sends still work and the
  // registry stays frozen.
  const double drops_before = metrics.counter("channel.drops");
  Channel bare(0.5, 1, Rng(3));
  Ledger ledger(2);
  for (int i = 0; i < 100; ++i) bare.send(0, 1, 1.0, ledger);
  EXPECT_GT(bare.drops(), 0);
  EXPECT_DOUBLE_EQ(metrics.counter("channel.drops"), drops_before);
}

// --- Exact Gilbert–Elliott delivery probability ------------------------

TEST(GilbertElliott, UniformLossReducesToIidFormula) {
  // When both chain states lose with the same probability, the transition
  // probabilities are irrelevant and the exact computation must collapse
  // to the iid closed form 1 - p^(retries+1).
  GilbertElliottParams burst;
  burst.p_enter_burst = 0.2;
  burst.p_exit_burst = 0.4;
  burst.loss_good = 0.3;
  burst.loss_bad = 0.3;
  const Channel channel = Channel::make(0.0, 2, 11, burst);
  EXPECT_NEAR(channel.delivery_probability(), 1.0 - 0.3 * 0.3 * 0.3, 1e-12);
}

TEST(GilbertElliott, ExactDeliveryProbabilityMatchesMonteCarlo) {
  // A fresh channel starts in the good state; the chain recursion must
  // match the empirical first-batch delivery rate across many channels.
  GilbertElliottParams burst;
  burst.p_enter_burst = 0.25;
  burst.p_exit_burst = 0.35;
  burst.loss_good = 0.05;
  burst.loss_bad = 0.8;
  const double predicted =
      Channel::make(0.0, 2, 1, burst).delivery_probability();
  // Sanity: the old approximation (iid at the stationary loss rate) is
  // measurably different for these parameters, so this test would catch
  // a regression to it.
  const double pi_bad =
      burst.p_enter_burst / (burst.p_enter_burst + burst.p_exit_burst);
  const double stationary =
      (1.0 - pi_bad) * burst.loss_good + pi_bad * burst.loss_bad;
  const double iid_approx = 1.0 - stationary * stationary * stationary;
  EXPECT_GT(std::abs(predicted - iid_approx), 0.02);

  int delivered = 0;
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) {
    Channel channel = Channel::make(0.0, 2, 1000 + i, burst);
    Ledger ledger(2);
    delivered += channel.send(0, 1, 1.0, ledger) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / kTrials, predicted, 0.01);
}

TEST(GilbertElliott, ExactDeliveryProbabilityTracksChainState) {
  // delivery_probability() is conditioned on the channel's *current*
  // state, so mid-stream it takes one of two values (from-good /
  // from-bad). Group outcomes by the prediction made immediately before
  // each send: every group's empirical rate must match its prediction.
  GilbertElliottParams burst;
  burst.p_enter_burst = 0.15;
  burst.p_exit_burst = 0.25;
  burst.loss_good = 0.02;
  burst.loss_bad = 0.9;
  Channel channel = Channel::make(0.0, 1, 77, burst);
  Ledger ledger(2);
  std::map<double, std::pair<int, int>> by_prediction;  // p -> {n, delivered}
  for (int i = 0; i < 60000; ++i) {
    const double p = channel.delivery_probability();
    auto& bucket = by_prediction[p];
    ++bucket.first;
    bucket.second += channel.send(0, 1, 1.0, ledger) ? 1 : 0;
  }
  ASSERT_EQ(by_prediction.size(), 2u);  // from-good and from-bad
  for (const auto& [p, bucket] : by_prediction) {
    ASSERT_GT(bucket.first, 1000);
    EXPECT_NEAR(static_cast<double>(bucket.second) / bucket.first, p, 0.02);
  }
}

}  // namespace
}  // namespace isomap
