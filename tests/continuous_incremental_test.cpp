// Incremental-vs-oracle equivalence for the continuous mapper. The
// incremental engine's contract is *bitwise* equality with the full
// recompute: same RoundResult counters, same ledger charges and trace
// events, same sink table, same per-level contour geometry — across
// evolving fields, node crashes mid-sequence, soft-state expiry,
// withdrawals and band-edge readings, at any thread count. Timing
// fields (wall_s, phase histograms/events) and the engine-diagnostic
// continuous.* counters are the only outputs allowed to differ.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "field/bathymetry.hpp"
#include "field/blended_field.hpp"
#include "isomap/continuous.hpp"
#include "obs/obs.hpp"
#include "sim/runners.hpp"

namespace isomap {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Per-round summary JSON with timing and the engine-diagnostic
/// continuous.* counters stripped (they legitimately differ between
/// engines; everything else must not).
std::string normalized(obs::RunSummary summary) {
  summary.wall_s = 0.0;
  summary.phases.clear();
  for (auto it = summary.counters.begin(); it != summary.counters.end();) {
    if (it->first.rfind("continuous.", 0) == 0)
      it = summary.counters.erase(it);
    else
      ++it;
  }
  return summary.to_json().dump(2);
}

/// Trace JSONL minus the "phase" events (which carry wall times).
std::string stable_trace(const std::string& jsonl) {
  std::istringstream in(jsonl);
  std::string line, out;
  while (std::getline(in, line))
    if (line.find("\"kind\":\"phase\"") == std::string::npos) {
      out += line;
      out += '\n';
    }
  return out;
}

struct RoundCapture {
  int adds = 0, refreshes = 0, withdrawals = 0, suppressed = 0;
  int keepalives = 0, expired = 0, active_reports = 0;
  double delta_bytes = 0.0, beacon_bytes = 0.0;
  double dirty_nodes = 0.0, levels_rebuilt = 0.0;  ///< Diagnostics only.
  std::string summary;
  std::string trace;
  std::vector<ContinuousMapper::SinkDumpEntry> sink;
  std::optional<ContourMap> map;
};

void expect_maps_equal(const ContourMap& a, const ContourMap& b,
                       const std::string& where) {
  ASSERT_EQ(a.level_count(), b.level_count()) << where;
  for (int k = 0; k < a.level_count(); ++k) {
    const VoronoiDiagram& va = a.region(k).voronoi();
    const VoronoiDiagram& vb = b.region(k).voronoi();
    ASSERT_EQ(va.size(), vb.size()) << where << " level " << k;
    for (std::size_t i = 0; i < va.size(); ++i) {
      EXPECT_EQ(va.cell(i).vertices, vb.cell(i).vertices)
          << where << " level " << k << " cell " << i;
      EXPECT_EQ(va.cell(i).edge_tags, vb.cell(i).edge_tags)
          << where << " level " << k << " cell " << i;
    }
    ASSERT_EQ(a.isolines(k).size(), b.isolines(k).size())
        << where << " level " << k;
    for (std::size_t p = 0; p < a.isolines(k).size(); ++p)
      EXPECT_EQ(a.isolines(k)[p].points(), b.isolines(k)[p].points())
          << where << " level " << k << " polyline " << p;
  }
}

void expect_rounds_equal(const std::vector<RoundCapture>& a,
                         const std::vector<RoundCapture>& b,
                         const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t r = 0; r < a.size(); ++r) {
    const std::string where = label + " round " + std::to_string(r);
    EXPECT_EQ(a[r].adds, b[r].adds) << where;
    EXPECT_EQ(a[r].refreshes, b[r].refreshes) << where;
    EXPECT_EQ(a[r].withdrawals, b[r].withdrawals) << where;
    EXPECT_EQ(a[r].suppressed, b[r].suppressed) << where;
    EXPECT_EQ(a[r].keepalives, b[r].keepalives) << where;
    EXPECT_EQ(a[r].expired, b[r].expired) << where;
    EXPECT_EQ(a[r].active_reports, b[r].active_reports) << where;
    EXPECT_EQ(bits(a[r].delta_bytes), bits(b[r].delta_bytes)) << where;
    EXPECT_EQ(bits(a[r].beacon_bytes), bits(b[r].beacon_bytes)) << where;
    EXPECT_EQ(a[r].summary, b[r].summary) << where;
    EXPECT_EQ(a[r].trace, b[r].trace) << where;
    ASSERT_EQ(a[r].sink.size(), b[r].sink.size()) << where;
    for (std::size_t i = 0; i < a[r].sink.size(); ++i) {
      const auto& sa = a[r].sink[i];
      const auto& sb = b[r].sink[i];
      EXPECT_EQ(sa.node, sb.node) << where << " entry " << i;
      EXPECT_EQ(sa.level, sb.level) << where << " entry " << i;
      EXPECT_EQ(sa.last_update, sb.last_update) << where << " entry " << i;
      EXPECT_EQ(bits(sa.report.isolevel), bits(sb.report.isolevel)) << where;
      EXPECT_EQ(bits(sa.report.position.x), bits(sb.report.position.x))
          << where;
      EXPECT_EQ(bits(sa.report.position.y), bits(sb.report.position.y))
          << where;
      EXPECT_EQ(bits(sa.report.gradient.x), bits(sb.report.gradient.x))
          << where;
      EXPECT_EQ(bits(sa.report.gradient.y), bits(sb.report.gradient.y))
          << where;
      EXPECT_EQ(sa.report.source, sb.report.source) << where;
    }
    expect_maps_equal(*a[r].map, *b[r].map, where);
  }
}

/// One fully observed round: fresh per-round metrics registry and trace
/// sink, persistent ledger (charge equality accumulates).
RoundCapture observed_round(ContinuousMapper& mapper,
                            const ScalarField& field, Ledger& ledger) {
  std::ostringstream trace_text;
  obs::MetricsRegistry metrics;
  obs::TraceSink trace(trace_text);
  RoundResult result = [&] {
    const obs::ObsScope scope(&metrics, &trace);
    return mapper.round(field, ledger);
  }();
  trace.flush();
  obs::RunSummary summary = obs::make_run_summary(
      "continuous", metrics, ledger_totals(ledger), 0.0, trace.events());
  RoundCapture capture;
  capture.adds = result.adds;
  capture.refreshes = result.refreshes;
  capture.withdrawals = result.withdrawals;
  capture.suppressed = result.suppressed;
  capture.keepalives = result.keepalives;
  capture.expired = result.expired;
  capture.active_reports = result.active_reports;
  capture.delta_bytes = result.delta_traffic_bytes;
  capture.beacon_bytes = result.beacon_traffic_bytes;
  const auto dirty = summary.counters.find("continuous.dirty_nodes");
  if (dirty != summary.counters.end()) capture.dirty_nodes = dirty->second;
  const auto rebuilt = summary.counters.find("continuous.levels_rebuilt");
  if (rebuilt != summary.counters.end())
    capture.levels_rebuilt = rebuilt->second;
  capture.summary = normalized(std::move(summary));
  capture.trace = stable_trace(trace_text.str());
  capture.sink = mapper.sink_dump();
  capture.map = std::move(result.map);
  return capture;
}

/// A 22-round drifting-harbor sequence with a 15% node crash (and
/// topology rebuild) after round 9, soft-state expiry enabled, and every
/// third round held static so the fully cached paths are exercised.
std::vector<RoundCapture> run_sequence(ContinuousEngine engine) {
  ScenarioConfig config;
  config.num_nodes = 900;
  config.field_side = 30.0;
  config.seed = 33;
  Scenario s = make_scenario(config);
  const GaussianField before = harbor_bathymetry({0, 0, 30, 30});
  const GaussianField after = silted_harbor_bathymetry({0, 0, 30, 30});
  BlendedField field(before, after, 0.0);

  ContinuousOptions opts;
  opts.base.query = default_query(before, 4);
  opts.stale_rounds = 6;
  opts.gradient_refresh_deg = 5.0;  // Low enough that drift rotates past it.
  opts.engine = engine;

  ContinuousMapper mapper(opts, s.deployment, s.graph, s.tree);
  Ledger ledger(s.deployment.size());
  std::optional<CommGraph> crashed_graph;
  std::optional<RoutingTree> crashed_tree;

  std::vector<RoundCapture> rounds;
  double alpha = 0.0;
  for (int r = 0; r < 22; ++r) {
    if (r % 3 != 0) alpha += 0.05;  // Hold every third round static.
    field.set_alpha(alpha);
    if (r == 10) {
      Rng rng(4242);
      s.deployment.fail_random(0.15, rng);
      crashed_graph.emplace(s.deployment, s.config.effective_radio_range());
      const int sink = s.deployment.nearest_alive(field.bounds().center());
      crashed_tree.emplace(*crashed_graph, sink);
      mapper.set_topology(s.deployment, *crashed_graph, *crashed_tree);
    }
    rounds.push_back(observed_round(mapper, field, ledger));
  }
  return rounds;
}

template <typename Fn>
auto at_thread_count(int threads, Fn&& fn) {
  exec::set_thread_count(threads);
  auto result = fn();
  exec::set_thread_count(0);
  return result;
}

TEST(ContinuousIncremental, MatchesOracleAcrossCrashesAndThreadCounts) {
  const auto oracle1 = at_thread_count(1, [] {
    return run_sequence(ContinuousEngine::kOracle);
  });
  const auto oracle4 = at_thread_count(4, [] {
    return run_sequence(ContinuousEngine::kOracle);
  });
  const auto incr1 = at_thread_count(1, [] {
    return run_sequence(ContinuousEngine::kIncremental);
  });
  const auto incr4 = at_thread_count(4, [] {
    return run_sequence(ContinuousEngine::kIncremental);
  });

  expect_rounds_equal(oracle1, oracle4, "oracle@1 vs oracle@4");
  expect_rounds_equal(oracle1, incr1, "oracle@1 vs incremental@1");
  expect_rounds_equal(oracle1, incr4, "oracle@1 vs incremental@4");

  // The sequence must actually exercise every delta kind — otherwise the
  // equivalence above is vacuous.
  int adds = 0, refreshes = 0, withdrawals = 0, keepalives = 0, expired = 0;
  for (const auto& r : oracle1) {
    adds += r.adds;
    refreshes += r.refreshes;
    withdrawals += r.withdrawals;
    keepalives += r.keepalives;
    expired += r.expired;
  }
  EXPECT_GT(adds, 0);
  EXPECT_GT(refreshes, 0);
  EXPECT_GT(withdrawals, 0);
  EXPECT_GT(keepalives, 0);
  EXPECT_GT(expired, 0);

  // And the incremental engine must actually cache: held rounds see an
  // empty node dirty set (keepalive refreshes still touch some levels),
  // partial sink rebuilds happen, and the total rebuild count undercuts
  // the oracle's rebuild-everything count.
  bool saw_clean_selection = false, saw_partial_rebuild = false;
  double incr_rebuilt = 0.0, oracle_rebuilt = 0.0;
  for (std::size_t r = 0; r < incr1.size(); ++r) {
    if (r > 0 && incr1[r].dirty_nodes == 0.0) saw_clean_selection = true;
    if (r > 0 && incr1[r].levels_rebuilt < oracle1[r].levels_rebuilt)
      saw_partial_rebuild = true;
    incr_rebuilt += incr1[r].levels_rebuilt;
    oracle_rebuilt += oracle1[r].levels_rebuilt;
  }
  EXPECT_TRUE(saw_clean_selection);
  EXPECT_TRUE(saw_partial_rebuild);
  EXPECT_LT(incr_rebuilt, oracle_rebuilt);
}

/// Two flat plateaus meeting at x = cut: every reading is one of two
/// exact constants, so band-edge cases can be staged to the ulp.
class PlateauField final : public ScalarField {
 public:
  PlateauField(FieldBounds bounds, double cut) : bounds_(bounds), cut_(cut) {}
  void set_values(double left, double right) {
    left_ = left;
    right_ = right;
  }
  double value(Vec2 p) const override { return p.x < cut_ ? left_ : right_; }
  FieldBounds bounds() const override { return bounds_; }

 private:
  FieldBounds bounds_;
  double cut_;
  double left_ = 0.0;
  double right_ = 0.0;
};

TEST(ContinuousIncremental, BandEdgeReadingsMatchOracle) {
  // Readings sit exactly on the lambda + epsilon band edge (candidacy is
  // inclusive), then step one ulp outside and back — the smallest change
  // that can flip Definition 3.1 without changing any level rank. The
  // incremental dirty marking must catch it.
  ScenarioConfig config;
  config.num_nodes = 400;
  config.field_side = 20.0;
  config.seed = 77;
  const Scenario s = make_scenario(config);

  ContinuousOptions opts;
  opts.base.query.lambda_lo = 0.0;
  opts.base.query.lambda_hi = 40.0;
  opts.base.query.granularity = 10.0;  // Levels 0..40, epsilon = 0.5.
  const double lambda = 20.0;
  const double eps = opts.base.query.epsilon();
  ASSERT_EQ(bits(eps), bits(0.5));

  PlateauField field({0, 0, 20, 20}, 10.0);
  const double on_edge = lambda + eps;
  const double outside = std::nextafter(on_edge, 1e30);
  const std::vector<std::pair<double, double>> schedule = {
      {on_edge, 19.0},   // Exactly on the band edge, crossing below.
      {outside, 19.0},   // One ulp out: no longer a candidate.
      {on_edge, 19.0},   // Back on the edge.
      {on_edge, 21.0},   // Candidate but no crossing (both above lambda).
      {on_edge, 19.0},   // Crossing returns.
  };

  auto run = [&](ContinuousEngine engine) {
    ContinuousOptions run_opts = opts;
    run_opts.engine = engine;
    ContinuousMapper mapper(run_opts, s.deployment, s.graph, s.tree);
    Ledger ledger(s.deployment.size());
    PlateauField f = field;
    std::vector<RoundCapture> rounds;
    for (const auto& [left, right] : schedule) {
      f.set_values(left, right);
      rounds.push_back(observed_round(mapper, f, ledger));
    }
    return rounds;
  };

  const auto oracle = run(ContinuousEngine::kOracle);
  const auto incremental = run(ContinuousEngine::kIncremental);
  expect_rounds_equal(oracle, incremental, "band-edge");

  // The staging must bite: the edge round selects, the ulp step withdraws.
  EXPECT_GT(oracle[0].adds, 0);
  EXPECT_GT(oracle[1].withdrawals, 0);
  EXPECT_GT(oracle[2].adds, 0);
  EXPECT_GT(oracle[3].withdrawals, 0);
}

}  // namespace
}  // namespace isomap
